// soak: chaos/soak harness for the streaming fairness daemon
// (docs/SERVICE.md). Drives a scripted delta workload through ServeDaemon
// across several process "lifetimes" while a FaultInjector randomly fails
// WAL appends, fsyncs, lattice applies and ingest reads, and every
// --kill-every-th lifetime ends in a simulated SIGKILL (no checkpoint, the
// WAL is all that survives).
//
// The harness keeps an oracle — the log of every batch the daemon
// acknowledged as applied — and checks three invariants the whole way:
//
//   1. Durability: after every restart the recovered lattice digest equals
//      the oracle replay's digest (when a batch's fate was left ambiguous
//      by a mid-commit fault, either the with-batch or without-batch
//      digest, and the match retroactively settles the fate).
//   2. Liveness: the daemon answers snapshot + identify + health queries
//      after every batch, read-only or not.
//   3. Monitoring: after the final recovery a deliberately skewed batch
//      still trips the online IBS monitor.
//
// Exit 0 when every invariant held; 1 otherwise (the violation is printed).
//
// usage: soak --state-dir DIR [--cycles N] [--batches N] [--kill-every K]
//             [--fault-prob P] [--seed S]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/hierarchy.h"
#include "data/schema.h"
#include "serve/daemon.h"

namespace {

using namespace remedy;

using Batch = std::vector<Hierarchy::LeafDelta>;

struct SoakArgs {
  std::string state_dir;
  int cycles = 4;
  int batches = 25;      // per cycle
  int kill_every = 2;    // every k-th cycle ends in a simulated SIGKILL
  double fault_prob = 0.05;
  uint64_t seed = 1;
};

// The same two-protected-attribute shape the unit tests use: a (3 values)
// and b (2 values) protected, f a feature. Six leaves.
DataSchema SoakSchema() {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("a", {"a0", "a1", "a2"}),
      AttributeSchema("b", {"b0", "b1"}),
      AttributeSchema("f", {"f0", "f1"}),
  };
  return DataSchema(std::move(attributes), {0, 1});
}

// Replays `log` into a fresh lattice and digests it — the ground truth a
// recovered daemon must match.
uint64_t OracleDigest(const DataSchema& schema, const std::vector<Batch>& log) {
  Hierarchy oracle(schema, NodeTable(), RegionCounts());
  Status built = oracle.EagerBuild(1);
  REMEDY_CHECK(built.ok()) << "oracle build failed: " << built.ToString();
  for (const Batch& batch : log) oracle.ApplyDeltas(batch, true);
  return oracle.CountsDigest();
}

RegionCounts OracleTotals(const std::vector<Batch>& log) {
  RegionCounts totals;
  for (const Batch& batch : log) {
    for (const Hierarchy::LeafDelta& d : batch) {
      totals.positives += d.delta_positives;
      totals.negatives += d.delta_negatives;
    }
  }
  return totals;
}

// Net per-leaf counts of the applied log, for bounding retractions.
void OracleLeafCounts(const std::vector<Batch>& log,
                      std::vector<RegionCounts>& leaves) {
  for (RegionCounts& c : leaves) c = RegionCounts();
  for (const Batch& batch : log) {
    for (const Hierarchy::LeafDelta& d : batch) {
      leaves[d.leaf_key].positives += d.delta_positives;
      leaves[d.leaf_key].negatives += d.delta_negatives;
    }
  }
}

// One workload batch: 1-3 leaves of additions, plus (when allowed) a
// retraction bounded to leave at least one instance behind — never a
// candidate for the daemon's underflow rejection.
Batch MakeBatch(Rng& rng, const std::vector<RegionCounts>& leaves,
                bool allow_retraction) {
  Batch batch;
  const int touched = rng.UniformRange(1, 3);
  for (int i = 0; i < touched; ++i) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(static_cast<int>(leaves.size())));
    int64_t dp = rng.UniformInt(4);
    int64_t dn = rng.UniformInt(4);
    if (dp == 0 && dn == 0) dp = 1;  // no-op deltas test nothing
    batch.push_back({key, dp, dn});
  }
  if (allow_retraction && rng.Bernoulli(0.3)) {
    const uint64_t key =
        static_cast<uint64_t>(rng.UniformInt(static_cast<int>(leaves.size())));
    const RegionCounts& have = leaves[key];
    Hierarchy::LeafDelta d = {key, 0, 0};
    if (have.positives > 1) d.delta_positives = -rng.UniformRange(1, static_cast<int>(std::min<int64_t>(have.positives - 1, 3)));
    if (have.negatives > 1) d.delta_negatives = -rng.UniformRange(1, static_cast<int>(std::min<int64_t>(have.negatives - 1, 3)));
    if (d.delta_positives != 0 || d.delta_negatives != 0) batch.push_back(d);
  }
  return batch;
}

int Violation(const char* what) {
  std::fprintf(stderr, "SOAK VIOLATION: %s\n", what);
  return 1;
}

bool ParseArgs(int argc, char** argv, SoakArgs& args) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--state-dir") {
      args.state_dir = next();
    } else if (arg == "--cycles") {
      args.cycles = std::atoi(next());
    } else if (arg == "--batches") {
      args.batches = std::atoi(next());
    } else if (arg == "--kill-every") {
      args.kill_every = std::atoi(next());
    } else if (arg == "--fault-prob") {
      args.fault_prob = std::atof(next());
    } else if (arg == "--seed") {
      args.seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  if (args.state_dir.empty()) {
    std::fprintf(stderr,
                 "usage: soak --state-dir DIR [--cycles N] [--batches N] "
                 "[--kill-every K] [--fault-prob P] [--seed S]\n");
    return false;
  }
  return args.cycles > 0 && args.batches > 0;
}

int RunSoak(const SoakArgs& args) {
  // The oracle starts empty, so the daemon must too: drop any durable
  // state a previous soak left behind (reruns share the state dir).
  std::remove((args.state_dir + "/" + ServeDaemon::kWalFileName).c_str());
  std::remove((args.state_dir + "/" + ServeDaemon::kCheckpointFileName).c_str());

  const DataSchema schema = SoakSchema();
  ServeOptions options;
  options.state_dir = args.state_dir;
  options.queue_capacity = 8;
  options.retry_after_ms = 1;
  options.ibs.min_region_size = 2;
  options.ibs.imbalance_threshold = 0.2;
  options.checkpoint_every_batches = 7;  // exercise mid-cycle checkpoints

  std::vector<Batch> applied_log;  // every batch known to be applied
  Batch pending;                   // fate left ambiguous by a fault
  bool have_pending = false;
  std::vector<RegionCounts> leaves(6);
  Rng rng(args.seed);

  int64_t total_applied = 0, total_rejected = 0, total_queries = 0;
  int kills = 0, recoveries = 0;

  for (int cycle = 0; cycle < args.cycles; ++cycle) {
    // --- recover (fault-free) and reconcile against the oracle ----------
    StatusOr<std::unique_ptr<ServeDaemon>> started =
        ServeDaemon::Start(schema, options);
    if (!started.ok()) {
      std::fprintf(stderr, "start failed: %s\n",
                   started.status().ToString().c_str());
      return Violation("daemon failed to recover from durable state");
    }
    std::unique_ptr<ServeDaemon> daemon = std::move(started.value());
    ++recoveries;

    const uint64_t recovered = daemon->Snapshot()->counts_digest;
    const uint64_t without = OracleDigest(schema, applied_log);
    if (recovered != without && have_pending) {
      applied_log.push_back(pending);  // the ambiguous batch WAS durable
      const uint64_t with = OracleDigest(schema, applied_log);
      if (recovered != with) {
        std::fprintf(stderr,
                     "cycle %d: recovered digest %llu matches neither %llu "
                     "(without pending) nor %llu (with pending)\n",
                     cycle, static_cast<unsigned long long>(recovered),
                     static_cast<unsigned long long>(without),
                     static_cast<unsigned long long>(with));
        return Violation("recovery digest diverged from the applied log");
      }
    } else if (recovered != without) {
      std::fprintf(stderr, "cycle %d: recovered %llu, oracle %llu\n", cycle,
                   static_cast<unsigned long long>(recovered),
                   static_cast<unsigned long long>(without));
      return Violation("recovery digest diverged from the applied log");
    }
    pending.clear();
    have_pending = false;
    OracleLeafCounts(applied_log, leaves);

    // --- workload under random faults -----------------------------------
    const bool kill_cycle =
        args.kill_every > 0 && (cycle + 1) % args.kill_every == 0;
    {
      FaultInjector injector;
      const uint64_t fault_seed = args.seed * 1000003ull + cycle;
      injector.FailWithProbability("wal/append", args.fault_prob,
                                   fault_seed + 1);
      injector.FailWithProbability("wal/fsync", args.fault_prob,
                                   fault_seed + 2);
      injector.FailWithProbability("serve/apply", args.fault_prob,
                                   fault_seed + 3, StatusCode::kInternal);

      for (int b = 0; b < args.batches; ++b) {
        Batch batch = MakeBatch(rng, leaves, !have_pending);
        Status submitted = daemon->Submit(batch);
        int spins = 0;
        while (submitted.code() == StatusCode::kResourceExhausted &&
               ++spins < 200) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          submitted = daemon->Submit(batch);
        }
        Status flushed = daemon->Flush();

        // Liveness: queries must answer no matter what just happened.
        std::shared_ptr<const EpochSnapshot> snap = daemon->Snapshot();
        if (snap == nullptr) return Violation("Snapshot() returned null");
        daemon->QueryIbs();
        if (daemon->HealthJson().empty()) {
          return Violation("HealthJson() returned empty");
        }
        ++total_queries;

        if (submitted.ok() && flushed.ok() && !daemon->read_only()) {
          applied_log.push_back(batch);
          OracleLeafCounts(applied_log, leaves);
          ++total_applied;
          const RegionCounts want = OracleTotals(applied_log);
          if (!(daemon->Snapshot()->totals == want)) {
            return Violation("snapshot totals diverged from the applied log");
          }
        } else if (submitted.ok()) {
          // Queued, then a fault hit the commit path: durable or not is
          // exactly what the next recovery decides.
          pending = batch;
          have_pending = true;
          break;
        } else {
          ++total_rejected;  // backpressure stuck or read-only: not queued
          if (daemon->read_only()) break;
        }
      }

      // --- end of lifetime: crash or graceful ---------------------------
      injector.Disarm("wal/append");
      injector.Disarm("wal/fsync");
      injector.Disarm("serve/apply");
      if (kill_cycle) {
        // Simulated SIGKILL: fail the shutdown checkpoint so the WAL (the
        // durable truth at crash time) is what the next start sees.
        injector.FailAlways("wal/fsync");
        ++kills;
      }
      daemon.reset();  // ~ServeDaemon → Stop → drain (+ checkpoint unless killed)
    }
  }

  // --- final recovery + the monitor must still fire ----------------------
  StatusOr<std::unique_ptr<ServeDaemon>> started =
      ServeDaemon::Start(schema, options);
  if (!started.ok()) return Violation("final recovery failed");
  std::unique_ptr<ServeDaemon> daemon = std::move(started.value());
  const uint64_t recovered = daemon->Snapshot()->counts_digest;
  uint64_t expect = OracleDigest(schema, applied_log);
  if (recovered != expect && have_pending) {
    applied_log.push_back(pending);
    expect = OracleDigest(schema, applied_log);
  }
  if (recovered != expect) {
    return Violation("final recovery digest diverged from the applied log");
  }

  // Shove one leaf far out of balance; the per-epoch audit must notice and
  // the online monitor must count an alert for the changed subgroup set.
  Batch skew;
  skew.push_back({0, 500, 0});
  skew.push_back({3, 0, 500});
  if (!daemon->Submit(skew).ok() || !daemon->Flush().ok()) {
    return Violation("post-soak daemon refused a clean batch");
  }
  applied_log.push_back(skew);
  if (daemon->QueryIbs().empty()) {
    return Violation("skewed batch did not surface in the IBS");
  }
  const std::string health = daemon->HealthJson();
  if (health.find("\"monitor_alerts\":0,") != std::string::npos) {
    return Violation("online monitor never fired across the soak");
  }
  Status stopped = daemon->Stop();
  if (!stopped.ok()) return Violation("clean final shutdown failed");

  std::printf(
      "soak ok: %d cycles (%d kills, %d recoveries), %lld applied, %lld "
      "rejected, %lld query rounds, final digest %llu\n",
      args.cycles, kills, recoveries, static_cast<long long>(total_applied),
      static_cast<long long>(total_rejected),
      static_cast<long long>(total_queries),
      static_cast<unsigned long long>(OracleDigest(schema, applied_log)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SoakArgs args;
  if (!ParseArgs(argc, argv, args)) return 2;
  return RunSoak(args);
}
