# serve_smoke driver: two remedy_serve lifetimes against one state dir.
# Run 1 seeds + ingests and dies via --kill-after WITHOUT checkpointing;
# run 2 must recover by replaying the WAL and finish healthy. Invoked by
# ctest as  cmake -DSERVE=<bin> -DSTATE_DIR=<dir> -P serve_smoke.cmake

file(REMOVE_RECURSE ${STATE_DIR})

execute_process(
  COMMAND ${SERVE} @adult:2000 --state-dir ${STATE_DIR}
          --seed --demo 5 --kill-after 3
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "serve_smoke: first (killed) lifetime exited ${rc1}")
endif()

if(NOT EXISTS ${STATE_DIR}/deltas.wal)
  message(FATAL_ERROR "serve_smoke: killed lifetime left no WAL behind")
endif()

execute_process(
  COMMAND ${SERVE} @adult:2000 --state-dir ${STATE_DIR}
          --demo 2 --health-out ${STATE_DIR}/health.json
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "serve_smoke: recovery lifetime exited ${rc2}")
endif()

file(READ ${STATE_DIR}/health.json health)
if(NOT health MATCHES "\"needs_recovery\":false")
  message(FATAL_ERROR "serve_smoke: recovered daemon still needs recovery")
endif()
if(NOT health MATCHES "\"status\":\"serving\"")
  message(FATAL_ERROR "serve_smoke: recovered daemon is not serving")
endif()
