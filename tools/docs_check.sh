#!/bin/sh
# docs-check: fail on drift between the code's registered surfaces and the
# docs that describe them. Three checks:
#
#   metrics   every metric declared in the X-macro tables of
#             src/common/pipeline_metrics.h
#               X(field, "family/event", "unit", "help...")
#             appears as the first backticked cell of a docs/METRICS.md
#             table row, and vice versa;
#   backends  the registered backend names (the `if (name == "...")` lines
#             of ParseCountingBackend / ParseRemedyBackend, in declaration
#             order) appear pipe-joined — `scalar|simd|sharded`,
#             `rebuild|incremental|streaming` — in docs/CLI.md, and the
#             remedy list also in docs/REMEDY.md, so a backend added to a
#             registry cannot ship undocumented;
#   flags     every `"--flag"` literal in examples/remedy_cli.cpp and
#             examples/remedy_serve.cpp has a backticked `--flag` mention
#             in docs/CLI.md, and every documented flag exists in the code
#             (symmetric, so renames cannot leave stale docs behind).
#
# Exits 1 printing the drift. Wired up as the `docs_check` ctest and the
# `docs-check` build target.
#
# Usage: docs_check.sh [repo-root]
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
header="$root/src/common/pipeline_metrics.h"
doc="$root/docs/METRICS.md"
cli_doc="$root/docs/CLI.md"
remedy_doc="$root/docs/REMEDY.md"
counting_cc="$root/src/core/counting_backend.cc"
remedy_cc="$root/src/core/remedy_backend.cc"
cli_src="$root/examples/remedy_cli.cpp"
serve_src="$root/examples/remedy_serve.cpp"

fail=0
for f in "$header" "$doc" "$cli_doc" "$remedy_doc" "$counting_cc" \
         "$remedy_cc" "$cli_src" "$serve_src"; do
  if [ ! -f "$f" ]; then
    echo "docs-check: missing $f" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Registered names: the first quoted string of each X(...) row. The field
# name precedes it unquoted, so "the first string literal on the line that
# contains a slash" is exactly the metric name; units/help never contain '/'
# except in names, which only appear as that first literal.
sed -n 's/^ *X([a-z_0-9]*, *"\([a-z_0-9]*\/[a-z_0-9/]*\)".*/\1/p' \
  "$header" | sort -u > "$tmpdir/code"

# Documented names: first backticked cell of each table row.
sed -n 's/^| *`\([a-z_0-9]*\/[a-z_0-9/]*\)`.*/\1/p' "$doc" \
  | sort -u > "$tmpdir/docs"

if [ ! -s "$tmpdir/code" ]; then
  echo "docs-check: extracted no metric names from $header (pattern drift?)" >&2
  exit 1
fi

undocumented="$(comm -23 "$tmpdir/code" "$tmpdir/docs")"
stale="$(comm -13 "$tmpdir/code" "$tmpdir/docs")"

if [ -n "$undocumented" ]; then
  echo "docs-check: metrics registered in pipeline_metrics.h but missing from docs/METRICS.md:" >&2
  echo "$undocumented" | sed 's/^/  /' >&2
  fail=1
fi
if [ -n "$stale" ]; then
  echo "docs-check: metrics documented in docs/METRICS.md but not registered:" >&2
  echo "$stale" | sed 's/^/  /' >&2
  fail=1
fi

# --- backend-name drift ----------------------------------------------------
# The authoritative name list of a backend registry is its Parse function's
# `if (name == "...")` chain, read in declaration order and pipe-joined.
# The joined form is exactly what the CLI help and the docs print, so a
# plain substring check catches both a missing name and a reordered list.
backend_list() {
  sed -n 's/^ *if (name == "\([a-z]*\)").*/\1/p' "$1" | paste -sd'|' -
}

counting_names="$(backend_list "$counting_cc")"
remedy_names="$(backend_list "$remedy_cc")"
if [ -z "$counting_names" ] || [ -z "$remedy_names" ]; then
  echo "docs-check: extracted no backend names (pattern drift in Parse*Backend?)" >&2
  exit 1
fi

require_literal() {
  # require_literal <literal> <file> <what>
  if ! grep -qF "$1" "$2"; then
    echo "docs-check: $3 must spell out the registered list \`$1\` ($2)" >&2
    fail=1
  fi
}
require_literal "$counting_names" "$cli_doc" "docs/CLI.md (counting backends)"
require_literal "$remedy_names" "$cli_doc" "docs/CLI.md (remedy backends)"
require_literal "$remedy_names" "$remedy_doc" "docs/REMEDY.md (remedy backends)"

# --- CLI-flag drift --------------------------------------------------------
# Code side: exact `"--flag"` string literals in the two CLI front ends
# (comparison operands only — prose mentions always break the pattern with
# a space before the closing quote). The bare "--" prefix-check literal is
# dropped by the length filter (but `--T`, length 3, must survive it).
grep -ho '"--[A-Za-z-]*"' "$cli_src" "$serve_src" \
  | sed 's/"//g' | awk 'length > 2' | sort -u > "$tmpdir/flags_code"

# Docs side: backtick-opened `--flag tokens anywhere in docs/CLI.md. The
# closing backtick is NOT required, so table cells like `--tau-c x` or
# `--backend scalar|simd|sharded` count as documenting their flag.
grep -o '`--[A-Za-z-]*' "$cli_doc" \
  | sed 's/`//g' | sort -u > "$tmpdir/flags_docs"

if [ ! -s "$tmpdir/flags_code" ]; then
  echo "docs-check: extracted no CLI flags from the examples (pattern drift?)" >&2
  exit 1
fi

flags_undocumented="$(comm -23 "$tmpdir/flags_code" "$tmpdir/flags_docs")"
flags_stale="$(comm -13 "$tmpdir/flags_code" "$tmpdir/flags_docs")"
if [ -n "$flags_undocumented" ]; then
  echo "docs-check: flags parsed by remedy_cli/remedy_serve but missing from docs/CLI.md:" >&2
  echo "$flags_undocumented" | sed 's/^/  /' >&2
  fail=1
fi
if [ -n "$flags_stale" ]; then
  echo "docs-check: flags documented in docs/CLI.md but parsed by neither CLI:" >&2
  echo "$flags_stale" | sed 's/^/  /' >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "docs-check: $(wc -l < "$tmpdir/code" | tr -d ' ') metrics," \
       "$(wc -l < "$tmpdir/flags_code" | tr -d ' ') flags and the" \
       "backend registries ($counting_names; $remedy_names) in sync"
fi
exit "$fail"
