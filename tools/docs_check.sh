#!/bin/sh
# docs-check: keep docs/METRICS.md and the registered metric set in lockstep.
#
# Every metric the library emits is declared in the X-macro tables of
# src/common/pipeline_metrics.h, as the second argument of an X(...) row:
#   X(field, "family/event", "unit", "help...")
# and docs/METRICS.md documents each one as the first backticked cell of a
# markdown table row:
#   | `family/event` | counter | unit | ... |
# This script extracts both name sets and fails (exit 1) on any difference,
# printing the drift. Wired up as the `docs_check` ctest and the
# `docs-check` build target.
#
# Usage: docs_check.sh [repo-root]
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
header="$root/src/common/pipeline_metrics.h"
doc="$root/docs/METRICS.md"

fail=0
for f in "$header" "$doc"; do
  if [ ! -f "$f" ]; then
    echo "docs-check: missing $f" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Registered names: the first quoted string of each X(...) row. The field
# name precedes it unquoted, so "the first string literal on the line that
# contains a slash" is exactly the metric name; units/help never contain '/'
# except in names, which only appear as that first literal.
sed -n 's/^ *X([a-z_0-9]*, *"\([a-z_0-9]*\/[a-z_0-9/]*\)".*/\1/p' \
  "$header" | sort -u > "$tmpdir/code"

# Documented names: first backticked cell of each table row.
sed -n 's/^| *`\([a-z_0-9]*\/[a-z_0-9/]*\)`.*/\1/p' "$doc" \
  | sort -u > "$tmpdir/docs"

if [ ! -s "$tmpdir/code" ]; then
  echo "docs-check: extracted no metric names from $header (pattern drift?)" >&2
  exit 1
fi

undocumented="$(comm -23 "$tmpdir/code" "$tmpdir/docs")"
stale="$(comm -13 "$tmpdir/code" "$tmpdir/docs")"

if [ -n "$undocumented" ]; then
  echo "docs-check: metrics registered in pipeline_metrics.h but missing from docs/METRICS.md:" >&2
  echo "$undocumented" | sed 's/^/  /' >&2
  fail=1
fi
if [ -n "$stale" ]; then
  echo "docs-check: metrics documented in docs/METRICS.md but not registered:" >&2
  echo "$stale" | sed 's/^/  /' >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "docs-check: $(wc -l < "$tmpdir/code" | tr -d ' ') metrics in sync"
fi
exit "$fail"
