# serve_remedy_smoke driver: the online-remedy path through the real
# binaries (docs/REMEDY.md). Four legs against generated adult data:
#
#   1. seed + one-shot --remedy that dies via --kill-after-remedy WITHOUT
#      checkpointing — the remedy record is durable only in the WAL;
#   2. a recovery lifetime that must replay the remedy and serve healthy;
#   3. an --auto-remedy lifetime that must quiesce and exit clean;
#   4. negative checks: an unknown --remedy-backend exits 64 from both
#      remedy_serve and remedy_cli (the registry's suggestion-list path).
#
# Invoked by ctest as
#   cmake -DSERVE=<bin> -DCLI=<bin> -DSTATE_DIR=<dir> -P serve_remedy_smoke.cmake

file(REMOVE_RECURSE ${STATE_DIR})
file(MAKE_DIRECTORY ${STATE_DIR})

# --- leg 1: remedy, then crash before any checkpoint ----------------------
execute_process(
  COMMAND ${SERVE} @adult:2000 --state-dir ${STATE_DIR}
          --seed --remedy ps --kill-after-remedy
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "serve_remedy_smoke: remedy lifetime exited ${rc1}")
endif()
if(NOT out1 MATCHES "remedy committed:")
  message(FATAL_ERROR
          "serve_remedy_smoke: no remedy committed on seeded adult data:\n${out1}")
endif()
if(NOT EXISTS ${STATE_DIR}/deltas.wal)
  message(FATAL_ERROR "serve_remedy_smoke: killed lifetime left no WAL")
endif()

# --- leg 2: recovery must replay the remedy records -----------------------
execute_process(
  COMMAND ${SERVE} @adult:2000 --state-dir ${STATE_DIR}
          --remedy-backend streaming
          --health-out ${STATE_DIR}/health.json
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "serve_remedy_smoke: recovery lifetime exited ${rc2}")
endif()
file(READ ${STATE_DIR}/health.json health)
if(NOT health MATCHES "\"status\":\"serving\"")
  message(FATAL_ERROR "serve_remedy_smoke: recovered daemon is not serving")
endif()
if(NOT health MATCHES "\"needs_recovery\":false")
  message(FATAL_ERROR "serve_remedy_smoke: recovered daemon needs recovery")
endif()
if(NOT health MATCHES "\"remedy_backend\":\"streaming\"")
  message(FATAL_ERROR
          "serve_remedy_smoke: health does not report the remedy backend")
endif()

# --- leg 3: the monitor-triggered auto-remedy loop quiesces ---------------
file(REMOVE_RECURSE ${STATE_DIR}/auto)
execute_process(
  COMMAND ${SERVE} @adult:2000 --state-dir ${STATE_DIR}/auto
          --seed --auto-remedy --remedy-rounds 4
  OUTPUT_VARIABLE out3
  RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "serve_remedy_smoke: auto-remedy lifetime exited ${rc3}")
endif()
if(NOT out3 MATCHES "auto-remedy quiesced:")
  message(FATAL_ERROR
          "serve_remedy_smoke: auto-remedy never quiesced:\n${out3}")
endif()

# --- leg 4: unknown backend names exit 64 from both CLIs ------------------
execute_process(
  COMMAND ${SERVE} @adult:100 --state-dir ${STATE_DIR}/bogus
          --remedy-backend bogus
  RESULT_VARIABLE rc4
  ERROR_QUIET OUTPUT_QUIET)
if(NOT rc4 EQUAL 64)
  message(FATAL_ERROR
          "serve_remedy_smoke: remedy_serve --remedy-backend=bogus exited "
          "${rc4}, want 64")
endif()
execute_process(
  COMMAND ${CLI} remedy @adult:500 --out ${STATE_DIR}/unused.csv
          --remedy-backend bogus
  RESULT_VARIABLE rc5
  ERROR_QUIET OUTPUT_QUIET)
if(NOT rc5 EQUAL 64)
  message(FATAL_ERROR
          "serve_remedy_smoke: remedy_cli --remedy-backend bogus exited "
          "${rc5}, want 64")
endif()
