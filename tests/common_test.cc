#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include <atomic>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace remedy {
namespace {

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int draw = rng.UniformInt(7);
    EXPECT_GE(draw, 0);
    EXPECT_LT(draw, 7);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(2);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    differences += a.UniformInt(1000) != b.UniformInt(1000);
  }
  EXPECT_GT(differences, 50);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(3);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, BernoulliHandlesExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));  // clamped
    EXPECT_TRUE(rng.Bernoulli(1.5));    // clamped
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<int> counts(3, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.25, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.50, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeight) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(7);
  std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(8);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto original = values;
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(10);
  double sum = 0.0, sum_squares = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_squares += x * x;
  }
  double mean = sum / trials;
  double variance = sum_squares / trials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(variance, 9.0, 0.5);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(11);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += parent.UniformInt(1000) == child.UniformInt(1000);
  }
  EXPECT_LT(same, 10);
}

TEST(StringUtilTest, SplitBasic) {
  std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split(",a,", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hi", "hello"));
}

TEST(CsvTest, ParseWithHeader) {
  CsvTable table = ParseCsv("a,b\n1,2\n3,4\n").value();
  EXPECT_EQ(table.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(CsvTest, ParseQuotedFields) {
  CsvParseOptions options;
  options.has_header = false;
  CsvTable table =
      ParseCsv("\"x,y\",\"he said \"\"hi\"\"\"\n", options).value();
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "x,y");
  EXPECT_EQ(table.rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  StatusOr<CsvTable> table = ParseCsv("a,b\n1,2,3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kDataCorruption);
  // The failure names the offending line.
  EXPECT_NE(table.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  CsvParseOptions options;
  options.has_header = false;
  StatusOr<CsvTable> table = ParseCsv("\"abc\n", options);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kDataCorruption);
}

TEST(CsvTest, WriteQuotesWhenNeeded) {
  CsvTable table;
  table.header = {"h1", "h,2"};
  table.rows = {{"plain", "with \"quote\""}};
  CsvTable parsed = ParseCsv(WriteCsv(table)).value();
  EXPECT_EQ(parsed.header[1], "h,2");
  EXPECT_EQ(parsed.rows[0][1], "with \"quote\"");
}

TEST(CsvTest, HandlesCrlf) {
  CsvTable table = ParseCsv("a,b\r\n1,2\r\n").value();
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "1");
}

TEST(CsvTest, StripsUtf8BomBeforeHeader) {
  // Split literal: "\xBFa" would otherwise parse as one hex escape.
  CsvTable table = ParseCsv("\xEF\xBB\xBF" "a,b\n1,2\n").value();
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "a");  // no BOM bytes glued to the name
  ASSERT_EQ(table.rows.size(), 1u);
}

TEST(CsvTest, QuotedFieldMayContainNewlines) {
  CsvTable table = ParseCsv("a,b\n\"line one\nline two\",2\n").value();
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "line one\nline two");
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(CsvTest, TrailingNewlineDoesNotProducePhantomRow) {
  EXPECT_EQ(ParseCsv("a,b\n1,2\n").value().rows.size(), 1u);
  EXPECT_EQ(ParseCsv("a,b\n1,2").value().rows.size(), 1u);     // no newline
  EXPECT_EQ(ParseCsv("a,b\n1,2\n\n\n").value().rows.size(), 1u);  // blanks
}

TEST(CsvTest, TolerantModeDivertsBadRowsAndKeepsTheRest) {
  CsvParseOptions options;
  options.tolerate_bad_rows = true;
  CsvTable table =
      ParseCsv("a,b\n1,2\nonly-one-field\n3,4,5\n6,7\n", options).value();
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "7");
  ASSERT_EQ(table.bad_rows.size(), 2u);
  EXPECT_EQ(table.bad_rows[0].line, 3);
  EXPECT_EQ(table.bad_rows[1].line, 4);
}

TEST(CsvTest, TolerantModeResyncsAfterUnterminatedQuote) {
  CsvParseOptions options;
  options.tolerate_bad_rows = true;
  // The stray quote on line 2 must cost one record, not the rest of the
  // file.
  CsvTable table = ParseCsv("a,b\n\"oops,2\n3,4\n", options).value();
  ASSERT_EQ(table.bad_rows.size(), 1u);
  EXPECT_EQ(table.bad_rows[0].line, 2);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "3");
}

TEST(CsvTest, ReadFileReportsIoErrorForMissingFile) {
  StatusOr<CsvTable> table = ReadCsvFile("/nonexistent/file.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
  // ENOENT is not transient: exactly one attempt, with context.
  EXPECT_NE(table.status().message().find("1 attempt"), std::string::npos);
}

TEST(TablePrinterTest, PrintsAlignedRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow("beta", {2.5}, 1);
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&sum, i] { sum += i; }).ok());
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.Submit([&count] { ++count; }).ok());
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 1);
  ASSERT_TRUE(pool.Submit([&count] { ++count; }).ok());
  ASSERT_TRUE(pool.Submit([&count] { ++count; }).ok());
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    const int64_t count = 257;  // not a multiple of any worker count
    std::vector<std::atomic<int>> hits(count);
    EXPECT_TRUE(
        pool.ParallelFor(count, [&hits](int64_t i) { ++hits[i]; }).ok());
    for (int64_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTiny) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_TRUE(pool.ParallelFor(0, [&calls](int64_t) { ++calls; }).ok());
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(pool.ParallelFor(1, [&calls](int64_t) { ++calls; }).ok());
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
  EXPECT_EQ(ThreadPool(0).num_threads(), 1);  // floor of one worker
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double first = timer.Seconds();
  double second = timer.Seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);  // monotone
  timer.Restart();
  EXPECT_LE(timer.Seconds(), second + 1.0);
  (void)sink;
}

}  // namespace
}  // namespace remedy
