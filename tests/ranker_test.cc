#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ranker.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::SmallSchema;

// Feature f predicts the label strongly; some rows are "borderline" (their
// feature disagrees with their label).
Dataset SignalDataset() {
  Dataset data(SmallSchema());
  AddRows(data, 80, 0, 0, 1, 1);  // clear positives (f=1)
  AddRows(data, 80, 1, 1, 0, 0);  // clear negatives (f=0)
  AddRows(data, 10, 2, 0, 0, 1);  // borderline positives (f=0)
  AddRows(data, 10, 2, 1, 1, 0);  // borderline negatives (f=1)
  return data;
}

TEST(BorderlineRankerTest, ScoresFollowSignal) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  // First clear positive vs first borderline positive.
  EXPECT_GT(ranker.Score(data, 0), ranker.Score(data, 160));
}

TEST(BorderlineRankerTest, BorderlinePositivesRankFirst) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  std::vector<int> positives;
  for (int r = 0; r < data.NumRows(); ++r) {
    if (data.Label(r) == 1) positives.push_back(r);
  }
  std::vector<int> ranked = ranker.RankBorderline(data, positives, 1);
  ASSERT_EQ(ranked.size(), positives.size());
  // The 10 borderline positives (rows 160..169) must lead the ranking.
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(ranked[i], 160);
    EXPECT_LT(ranked[i], 170);
  }
}

TEST(BorderlineRankerTest, BorderlineNegativesRankFirst) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  std::vector<int> negatives;
  for (int r = 0; r < data.NumRows(); ++r) {
    if (data.Label(r) == 0) negatives.push_back(r);
  }
  std::vector<int> ranked = ranker.RankBorderline(data, negatives, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(ranked[i], 170);  // rows 170..179 look positive
  }
}

TEST(BorderlineRankerTest, RankingIsDeterministic) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  std::vector<int> rows;
  for (int r = 0; r < data.NumRows(); ++r) {
    if (data.Label(r) == 0) rows.push_back(r);
  }
  EXPECT_EQ(ranker.RankBorderline(data, rows, 0),
            ranker.RankBorderline(data, rows, 0));
}

TEST(BorderlineRankerTest, EmptyInputGivesEmptyRanking) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  EXPECT_TRUE(ranker.RankBorderline(data, {}, 1).empty());
}

TEST(BorderlineRankerTest, ScoreAllMatchesPerRowScore) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  std::vector<double> scores = ranker.ScoreAll(data);
  ASSERT_EQ(scores.size(), static_cast<size_t>(data.NumRows()));
  for (int r = 0; r < data.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(scores[r], ranker.Score(data, r)) << "row " << r;
  }
}

TEST(BorderlineRankerTest, RankWithScoresMatchesRankBorderline) {
  Dataset data = SignalDataset();
  BorderlineRanker ranker(data);
  std::vector<double> scores = ranker.ScoreAll(data);
  for (int label : {0, 1}) {
    std::vector<int> rows;
    for (int r = 0; r < data.NumRows(); ++r) {
      if (data.Label(r) == label) rows.push_back(r);
    }
    EXPECT_EQ(BorderlineRanker::RankWithScores(scores, rows, label),
              ranker.RankBorderline(data, rows, label))
        << "label " << label;
  }
}

}  // namespace
}  // namespace remedy
