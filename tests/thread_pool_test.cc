// Failure-path coverage for ThreadPool: throwing tasks, shutdown semantics,
// and ParallelFor error propagation. The happy paths live in common_test.cc;
// this suite also has a TSan twin (thread_pool_tsan_test) so the
// synchronization around failure recording is race-checked.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace remedy {
namespace {

TEST(ThreadPoolFailureTest, ThrowingTaskSurfacesInWait) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("boom"); }).ok());
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolFailureTest, WaitClearsTheFailureOnceReported) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("once"); }).ok());
  EXPECT_FALSE(pool.Wait().ok());
  // The pool is usable again and the stale failure is gone.
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&ran] { ++ran; }).ok());
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolFailureTest, FirstFailureWinsAcrossManyThrowingTasks) {
  ThreadPool pool(1);  // single worker => deterministic task order
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.Submit([i] {
              throw std::runtime_error("task " + std::to_string(i));
            }).ok());
  }
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("task 0"), std::string::npos);
}

TEST(ThreadPoolFailureTest, NonStdExceptionIsCaughtToo) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.Submit([] { throw 42; }).ok());
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ThreadPoolFailureTest, SubmitAfterShutdownFailsCleanly) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&ran] { ++ran; }).ok());
  EXPECT_TRUE(pool.Wait().ok());
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  Status status = pool.Submit([&ran] { ++ran; });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolFailureTest, ParallelForAfterShutdownFailsCleanly) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> ran{0};
  Status status = pool.ParallelFor(16, [&ran](int64_t) { ++ran; });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolFailureTest, ShutdownWhileParallelForInFlightDoesNotDeadlock) {
  // Shutdown drains already-submitted work before joining, and ParallelFor's
  // worker chunks keep claiming indices until the sweep is exhausted — so a
  // shutdown landing mid-sweep must neither hang the barrier nor lose work.
  ThreadPool pool(4);
  std::atomic<int64_t> ran{0};
  std::atomic<bool> started{false};
  Status status = InternalError("ParallelFor never returned");
  std::thread runner([&] {
    status = pool.ParallelFor(512, [&](int64_t) {
      started.store(true);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
      ran.fetch_add(1);
    });
  });
  while (!started.load()) std::this_thread::yield();
  pool.Shutdown();
  runner.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ran.load(), 512);
}

TEST(ThreadPoolFailureTest, ShutdownRacingParallelForFailsCleanOrCompletes) {
  // No synchronization between the sweep and the shutdown on purpose: the
  // shutdown lands before, during or after dispatch depending on
  // scheduling. Every interleaving must end in a joined pool and either a
  // completed sweep or a clean first-failure kInternal — never a deadlock
  // or a crash. The TSan twin race-checks the dispatch-vs-stop handoff.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(3);
    std::atomic<int64_t> ran{0};
    Status status;
    std::thread runner([&] {
      status = pool.ParallelFor(64, [&](int64_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(5));
        ran.fetch_add(1);
      });
    });
    pool.Shutdown();
    runner.join();
    if (status.ok()) {
      EXPECT_EQ(ran.load(), 64);
    } else {
      EXPECT_EQ(status.code(), StatusCode::kInternal);
      EXPECT_LE(ran.load(), 64);
    }
  }
}

TEST(ThreadPoolFailureTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  std::atomic<int64_t> completed{0};
  Status status = pool.ParallelFor(1000, [&completed](int64_t i) {
    if (i == 17) throw std::runtime_error("element 17");
    ++completed;
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("element 17"), std::string::npos);
  // The failure short-circuits the sweep: workers stop claiming indices.
  EXPECT_LT(completed.load(), 1000);
}

TEST(ThreadPoolFailureTest, ParallelForInlinePathPropagatesException) {
  ThreadPool pool(1);  // inline execution path
  Status status =
      pool.ParallelFor(8, [](int64_t i) {
        if (i == 3) throw std::runtime_error("inline");
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ThreadPoolFailureTest, PoolStaysUsableAfterParallelForFailure) {
  ThreadPool pool(4);
  ASSERT_FALSE(
      pool.ParallelFor(64, [](int64_t) { throw std::runtime_error("x"); })
          .ok());
  std::vector<std::atomic<int>> hits(64);
  ASSERT_TRUE(pool.ParallelFor(64, [&hits](int64_t i) { ++hits[i]; }).ok());
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolFailureTest, ConcurrentThrowersDoNotRace) {
  // Many tasks throwing at once must still produce exactly one coherent
  // Status; under the TSan twin this checks the failure-recording lock.
  ThreadPool pool(8);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          pool.Submit([] { throw std::runtime_error("concurrent"); }).ok());
    }
    Status status = pool.Wait();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
  }
}

}  // namespace
}  // namespace remedy
