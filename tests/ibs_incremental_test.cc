// Parity suite for the dirty-region incremental identify path
// (core/ibs_incremental.h).
//
// The load-bearing half is randomized equivalence: long delta streams —
// ingest, retractions, remedy-style label flips, brand-new subgroups — are
// applied to a lattice, and after EVERY epoch the incremental identify must
// be byte-identical (same IbsSetDigest, same region-for-region fields) to a
// from-scratch IdentifyIbsInNode sweep of the same hierarchy, across
// random schemas, both neighbor algorithms, ordinal metrics, whole-node
// distance regimes, and EagerBuild thread counts {1, 2, 4, 0}. The rest
// pins the fallback ladder (cold cache, params change, rebuild, swap,
// explicit Invalidate) and the serve wiring: daemon digest parity between
// --identify-mode full and incremental, copy-on-write of the leaf census,
// and WAL-replay recovery forcing a full first identify.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/ibs_incremental.h"
#include "datagen/generator.h"
#include "datagen/random_spec.h"
#include "serve/daemon.h"
#include "test_util.h"

namespace remedy {
namespace {

using remedy::testing::SmallSchema;

#ifdef REMEDY_TSAN_BUILD
// TSan is ~10x slower; the thread-interleaving coverage does not need the
// long streams (the plain binary runs those).
constexpr int kLongStreamEpochs = 40;
constexpr int kSpecSeeds = 2;
constexpr int kShortStreamEpochs = 24;
#else
// The acceptance stream: 200+ epochs of parity on the main workload.
constexpr int kLongStreamEpochs = 220;
constexpr int kSpecSeeds = 4;
constexpr int kShortStreamEpochs = 60;
#endif

// The full sweep the daemon's kFull mode runs — the parity oracle.
std::vector<BiasedRegion> FullSweep(Hierarchy& hierarchy,
                                    const IbsParams& params) {
  std::vector<BiasedRegion> ibs;
  for (uint32_t mask : ScopeMasks(hierarchy, params.scope)) {
    std::vector<BiasedRegion> in_node =
        IdentifyIbsInNode(hierarchy, mask, params);
    ibs.insert(ibs.end(), in_node.begin(), in_node.end());
  }
  return ibs;
}

// Field-for-field equality with useful failure output; the digest alone
// would say "different" without saying where.
void ExpectSameIbs(const std::vector<BiasedRegion>& incremental,
                   const std::vector<BiasedRegion>& full,
                   const std::string& where) {
  ASSERT_EQ(incremental.size(), full.size()) << where;
  for (size_t i = 0; i < full.size(); ++i) {
    const BiasedRegion& a = incremental[i];
    const BiasedRegion& b = full[i];
    EXPECT_TRUE(a.pattern == b.pattern) << where << " region " << i;
    EXPECT_EQ(a.counts.positives, b.counts.positives) << where << " " << i;
    EXPECT_EQ(a.counts.negatives, b.counts.negatives) << where << " " << i;
    EXPECT_EQ(a.neighbor_counts.positives, b.neighbor_counts.positives)
        << where << " " << i;
    EXPECT_EQ(a.neighbor_counts.negatives, b.neighbor_counts.negatives)
        << where << " " << i;
    // Bit-identity, not approximate agreement: same float ops, same order.
    EXPECT_EQ(a.ratio, b.ratio) << where << " " << i;
    EXPECT_EQ(a.neighbor_ratio, b.neighbor_ratio) << where << " " << i;
  }
  EXPECT_EQ(IbsSetDigest(incremental), IbsSetDigest(full)) << where;
}

// One random delta batch against the hierarchy's CURRENT leaf table:
// insertions into existing leaves, bounded retractions (never driving a
// count negative), remedy-style label flips, and occasionally a brand-new
// leaf key (insert_missing ingest). Pre-aggregated per key, as ApplyDeltas
// requires.
std::vector<Hierarchy::LeafDelta> RandomBatch(Hierarchy& hierarchy,
                                              Rng& rng) {
  const NodeTable& leaves = hierarchy.NodeCounts(hierarchy.LeafMask());
  std::map<uint64_t, std::pair<int64_t, int64_t>> net;
  auto remaining = [&](uint64_t key) -> RegionCounts {
    RegionCounts counts;
    auto it = leaves.find(key);
    if (it != leaves.end()) counts = it->second;
    auto applied = net.find(key);
    if (applied != net.end()) {
      counts.positives += applied->second.first;
      counts.negatives += applied->second.second;
    }
    return counts;
  };
  const int ops = rng.UniformRange(1, 6);
  for (int op = 0; op < ops; ++op) {
    const int kind = rng.UniformInt(4);
    if (kind == 3 || leaves.empty()) {
      // A never-seen subgroup appearing mid-stream.
      Pattern pattern(hierarchy.NumProtected());
      for (int i = 0; i < hierarchy.NumProtected(); ++i) {
        pattern.SetValue(i, rng.UniformInt(hierarchy.counter().Cardinality(i)));
      }
      const uint64_t key =
          hierarchy.counter().KeyFor(pattern, hierarchy.LeafMask());
      auto& entry = net[key];
      entry.first += rng.UniformInt(4);
      entry.second += rng.UniformInt(4);
      continue;
    }
    const uint64_t key =
        std::next(leaves.begin(),
                  rng.UniformInt(static_cast<int>(leaves.size())))
            ->first;
    const RegionCounts counts = remaining(key);
    auto& entry = net[key];
    if (kind == 0) {  // ingest
      entry.first += rng.UniformInt(5);
      entry.second += rng.UniformInt(5);
    } else if (kind == 1) {  // retraction, bounded by what is there
      if (counts.positives > 0) {
        entry.first -=
            rng.UniformInt(static_cast<int>(counts.positives) + 1);
      }
      if (counts.negatives > 0) {
        entry.second -=
            rng.UniformInt(static_cast<int>(counts.negatives) + 1);
      }
    } else {  // remedy-style label flip: totals stay put
      if (counts.positives > 0 && rng.Bernoulli(0.5)) {
        const int flips =
            rng.UniformRange(1, static_cast<int>(counts.positives));
        entry.first -= flips;
        entry.second += flips;
      } else if (counts.negatives > 0) {
        const int flips =
            rng.UniformRange(1, static_cast<int>(counts.negatives));
        entry.first += flips;
        entry.second -= flips;
      }
    }
  }
  std::vector<Hierarchy::LeafDelta> deltas;
  for (const auto& [key, delta] : net) {
    if (delta.first == 0 && delta.second == 0) continue;
    deltas.push_back({key, delta.first, delta.second});
  }
  return deltas;
}

// Runs `epochs` random batches through one hierarchy, asserting per-epoch
// parity of the incremental state against the from-scratch sweep.
void RunParityStream(Hierarchy& hierarchy, const IbsParams& params,
                     int epochs, uint64_t stream_seed,
                     const std::string& where) {
  IncrementalIbsState state;
  Rng rng(stream_seed);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    hierarchy.ApplyDeltas(RandomBatch(hierarchy, rng),
                          /*insert_missing=*/true);
    std::vector<BiasedRegion> incremental = state.Identify(hierarchy, params);
    std::vector<BiasedRegion> full = FullSweep(hierarchy, params);
    ExpectSameIbs(incremental, full,
                  where + " epoch " + std::to_string(epoch));
    if (epoch > 0) {
      EXPECT_TRUE(state.last_stats().incremental)
          << where << " epoch " << epoch
          << " unexpectedly fell back: " << state.last_fallback_reason();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

IbsParams TestParams() {
  IbsParams params;
  params.imbalance_threshold = 0.15;
  params.distance_threshold = 1.0;
  params.min_region_size = 5;  // small random data still gets audited
  return params;
}

// ---------------------------------------------------------------------------
// Randomized equivalence over delta streams
// ---------------------------------------------------------------------------

TEST(IbsIncrementalTest, LongStreamParityOnRandomSchema) {
  Rng spec_rng(0xabcdef01u);
  SyntheticSpec spec = RandomSpec(spec_rng);
  spec.num_rows = 600;
  Dataset data = GenerateSynthetic(spec, 7);
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  RunParityStream(hierarchy, TestParams(), kLongStreamEpochs, 0x5eed,
                  "long-stream");
}

TEST(IbsIncrementalTest, RandomSchemasBothAlgorithms) {
  for (int seed = 0; seed < kSpecSeeds; ++seed) {
    Rng spec_rng(0x1000u + static_cast<uint64_t>(seed));
    SyntheticSpec spec = RandomSpec(spec_rng);
    spec.num_rows = 400;
    Dataset data = GenerateSynthetic(spec, 100 + seed);
    for (IbsAlgorithm algorithm :
         {IbsAlgorithm::kOptimized, IbsAlgorithm::kNaive}) {
      Hierarchy hierarchy(data);
      ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
      IbsParams params = TestParams();
      params.algorithm = algorithm;
      RunParityStream(hierarchy, params, kShortStreamEpochs,
                      0x900du + static_cast<uint64_t>(seed),
                      "spec " + std::to_string(seed) + " algo " +
                          (algorithm == IbsAlgorithm::kNaive ? "naive"
                                                             : "optimized"));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IbsIncrementalTest, ParityAcrossThreadCounts) {
  // The same delta stream replayed onto lattices built with different
  // EagerBuild fan-outs must produce identical incremental results — the
  // build is thread-count-invariant and the identify path is downstream of
  // it. Batches are pre-generated once so every replica sees the exact
  // stream (RandomBatch reads the evolving table, so generating per-replica
  // could diverge if a build were wrong — pin the input, compare output).
  Rng spec_rng(0x77);
  SyntheticSpec spec = RandomSpec(spec_rng);
  spec.num_rows = 500;
  Dataset data = GenerateSynthetic(spec, 11);
  std::vector<std::vector<Hierarchy::LeafDelta>> stream;
  {
    Hierarchy scratch(data);
    ASSERT_TRUE(scratch.EagerBuild(1).ok());
    Rng rng(0xfeed);
    for (int epoch = 0; epoch < kShortStreamEpochs; ++epoch) {
      stream.push_back(RandomBatch(scratch, rng));
      scratch.ApplyDeltas(stream.back(), /*insert_missing=*/true);
    }
  }
  const IbsParams params = TestParams();
  std::vector<std::vector<uint64_t>> digests;  // per thread count, per epoch
  for (int threads : {1, 2, 4, 0}) {
    Hierarchy hierarchy(data);
    ASSERT_TRUE(hierarchy.EagerBuild(threads).ok());
    IncrementalIbsState state;
    std::vector<uint64_t> epoch_digests;
    for (size_t epoch = 0; epoch < stream.size(); ++epoch) {
      hierarchy.ApplyDeltas(stream[epoch], /*insert_missing=*/true);
      std::vector<BiasedRegion> incremental =
          state.Identify(hierarchy, params);
      std::vector<BiasedRegion> full = FullSweep(hierarchy, params);
      ExpectSameIbs(incremental, full,
                    "threads " + std::to_string(threads) + " epoch " +
                        std::to_string(epoch));
      epoch_digests.push_back(IbsSetDigest(incremental));
      if (::testing::Test::HasFatalFailure()) return;
    }
    digests.push_back(std::move(epoch_digests));
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0])
        << "thread-count variant " << i << " diverged";
  }
}

TEST(IbsIncrementalTest, OrdinalMetricsAndFractionalThreshold) {
  // Ordinal protected attributes break the unit-distance assumption: the
  // frontier expansion must honor |code_a - code_b| metrics through the
  // naive enumeration. T = 1.5 keeps neighborhoods proper subsets of the
  // nodes (no whole-node shortcut) and reaches 2 steps along the ordinal.
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("age", {"a0", "a1", "a2", "a3", "a4"},
                      /*ordinal=*/true),
      AttributeSchema("group", {"g0", "g1", "g2"}),
      AttributeSchema("f", {"f0", "f1"}),
  };
  DataSchema schema(std::move(attributes), {0, 1});
  Dataset data(schema);
  Rng rows(0x0dd);
  for (int i = 0; i < 400; ++i) {
    const int age = rows.UniformInt(5);
    const int group = rows.UniformInt(3);
    const int label = rows.Bernoulli(0.3 + 0.1 * age) ? 1 : 0;
    data.AddRow({age, group, label}, label);
  }
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  IbsParams params = TestParams();
  params.algorithm = IbsAlgorithm::kNaive;
  params.distance_threshold = 1.5;
  RunParityStream(hierarchy, params, kShortStreamEpochs, 0xbead, "ordinal");
}

TEST(IbsIncrementalTest, WholeNodeRegimeTotalsDriftAndSteadyFlips) {
  // T = 8 >= every node diameter of SmallSchema: r_n = totals - r
  // everywhere. Flip-only batches keep the totals steady (only dirty
  // regions re-score); ingest batches drift them (whole nodes re-sweep).
  // Both paths must stay bit-identical to the full sweep.
  Dataset data = remedy::testing::GridDataset({{{40, 10}, {10, 10}},
                                               {{10, 10}, {10, 10}},
                                               {{10, 10}, {12, 8}}});
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  IbsParams params = TestParams();
  params.distance_threshold = 8.0;
  IncrementalIbsState state;
  (void)state.Identify(hierarchy, params);  // warm the cache

  // Remedy-style flips: totals steady, per-region counts move.
  hierarchy.ApplyDeltas({{0, -3, 3}, {5, 3, -3}}, /*insert_missing=*/true);
  std::vector<BiasedRegion> incremental = state.Identify(hierarchy, params);
  ExpectSameIbs(incremental, FullSweep(hierarchy, params), "steady flips");
  EXPECT_TRUE(state.last_stats().incremental);
  EXPECT_EQ(state.last_stats().full_node_rescores, 0)
      << "steady totals must not trigger whole-node re-sweeps";

  // Ingest: the totals drift, every whole-node neighborhood moves.
  hierarchy.ApplyDeltas({{1, 7, 0}}, /*insert_missing=*/true);
  incremental = state.Identify(hierarchy, params);
  ExpectSameIbs(incremental, FullSweep(hierarchy, params), "totals drift");
  EXPECT_TRUE(state.last_stats().incremental);
  EXPECT_GT(state.last_stats().full_node_rescores, 0);
}

// ---------------------------------------------------------------------------
// Fallback ladder + stats accounting
// ---------------------------------------------------------------------------

TEST(IbsIncrementalTest, FallbackReasonsCoverTheLadder) {
  Dataset data = remedy::testing::GridDataset({{{30, 10}, {10, 10}},
                                               {{10, 10}, {10, 10}},
                                               {{10, 10}, {10, 10}}});
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  IbsParams params = TestParams();
  IncrementalIbsState state;

  (void)state.Identify(hierarchy, params);
  EXPECT_FALSE(state.last_stats().incremental);
  EXPECT_EQ(state.last_fallback_reason(), "cold_cache");
  EXPECT_TRUE(state.has_cache());

  // Params change invalidates every cached verdict.
  params.imbalance_threshold = 0.3;
  (void)state.Identify(hierarchy, params);
  EXPECT_FALSE(state.last_stats().incremental);
  EXPECT_EQ(state.last_fallback_reason(), "params_changed");

  // A rebuild from the row source moves the mutation generation: the
  // interim counts changed in ways no dirty set describes.
  hierarchy.Invalidate();
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  (void)state.Identify(hierarchy, params);
  EXPECT_FALSE(state.last_stats().incremental);
  EXPECT_EQ(state.last_fallback_reason(), "lattice_rebuilt");

  // A different hierarchy object entirely.
  Hierarchy other(data);
  ASSERT_TRUE(other.EagerBuild(1).ok());
  (void)state.Identify(other, params);
  EXPECT_FALSE(state.last_stats().incremental);
  EXPECT_EQ(state.last_fallback_reason(), "hierarchy_swapped");

  // Explicit Invalidate (the daemon's recovery path).
  state.Invalidate("recovery");
  (void)state.Identify(other, params);
  EXPECT_FALSE(state.last_stats().incremental);
  EXPECT_EQ(state.last_fallback_reason(), "recovery");

  // With a warm cache and no interim deltas, everything serves from cache.
  std::vector<BiasedRegion> cached = state.Identify(other, params);
  EXPECT_TRUE(state.last_stats().incremental);
  EXPECT_EQ(state.last_stats().rescored_regions, 0);
  EXPECT_EQ(state.last_stats().dirty_leaves, 0);
  ExpectSameIbs(cached, FullSweep(other, params), "all-cached epoch");
  // Sticky: the incremental pass keeps the last fallback reason readable.
  EXPECT_EQ(state.last_fallback_reason(), "recovery");
}

TEST(IbsIncrementalTest, StatsAccountDirtyAndExpandedRegions) {
  Dataset data = remedy::testing::GridDataset({{{30, 10}, {10, 10}},
                                               {{10, 10}, {10, 10}},
                                               {{10, 10}, {10, 10}}});
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  const IbsParams params = TestParams();
  IncrementalIbsState state;
  (void)state.Identify(hierarchy, params);

  hierarchy.ApplyDeltas({{0, 2, 1}}, /*insert_missing=*/true);
  (void)state.Identify(hierarchy, params);
  const IncrementalIdentifyStats& stats = state.last_stats();
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.dirty_leaves, 1);
  // One leaf delta projects into one region per node; the leaf node also
  // pulls its T-neighborhood into the re-evaluation set.
  EXPECT_GT(stats.dirty_regions, 0);
  EXPECT_GT(stats.expanded_regions, 0);
  EXPECT_GT(stats.rescored_regions, 0);
}

// ---------------------------------------------------------------------------
// Serve wiring: daemon parity, copy-on-write census, recovery fallback
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name + "_" + std::to_string(::getpid());
}

std::string FreshDir(const std::string& name) {
  static int counter = 0;
  const std::string dir =
      TempPath("ibs_incr_" + name + "_" + std::to_string(counter++));
  std::remove((dir + "/" + ServeDaemon::kWalFileName).c_str());
  std::remove((dir + "/" + ServeDaemon::kCheckpointFileName).c_str());
  ::rmdir(dir.c_str());
  return dir;
}

ServeOptions DaemonOptions(const std::string& dir, IdentifyMode mode) {
  ServeOptions options;
  options.state_dir = dir;
  options.identify_mode = mode;
  options.ibs.min_region_size = 2;
  options.ibs.imbalance_threshold = 0.2;
  return options;
}

// SmallSchema leaf keys: a (3 values) then b (2 values), key = a * 2 + b.
Hierarchy::LeafDelta Delta(int a, int b, int64_t dp, int64_t dn) {
  return {static_cast<uint64_t>(a * 2 + b), dp, dn};
}

TEST(IbsIncrementalServeTest, DaemonModesProduceIdenticalIbs) {
  const DataSchema schema = SmallSchema();
  auto full = ServeDaemon::Start(
      schema, DaemonOptions(FreshDir("modefull"), IdentifyMode::kFull));
  auto incremental = ServeDaemon::Start(
      schema, DaemonOptions(FreshDir("modeincr"), IdentifyMode::kIncremental));
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(incremental.ok()) << incremental.status();

  Rng rng(0x1ce);
  for (int batch = 0; batch < 25; ++batch) {
    std::vector<Hierarchy::LeafDelta> deltas;
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 2; ++b) {
        if (rng.Bernoulli(0.4)) {
          deltas.push_back(Delta(a, b, rng.UniformInt(5), rng.UniformInt(5)));
        }
      }
    }
    if (deltas.empty()) deltas.push_back(Delta(0, 0, 1, 1));
    ASSERT_TRUE(full.value()->Submit(deltas).ok());
    ASSERT_TRUE(incremental.value()->Submit(deltas).ok());
    ASSERT_TRUE(full.value()->Flush().ok());
    ASSERT_TRUE(incremental.value()->Flush().ok());
    EXPECT_EQ(full.value()->Snapshot()->counts_digest,
              incremental.value()->Snapshot()->counts_digest);
    EXPECT_EQ(IbsSetDigest(full.value()->QueryIbs()),
              IbsSetDigest(incremental.value()->QueryIbs()))
        << "identify modes diverged at batch " << batch;
  }
  EXPECT_TRUE(full.value()->Stop().ok());
  EXPECT_TRUE(incremental.value()->Stop().ok());
}

TEST(IbsIncrementalServeTest, LeafCensusIsCopiedOnWriteOnly) {
  // A publish with no committed leaf change must share the previous
  // epoch's census table instead of deep-copying it. The zero-apply epoch
  // here comes from a validation-dropped batch: duplicate keys that
  // underflow in aggregate are rejected before the WAL, but the drained
  // group still publishes.
  const DataSchema schema = SmallSchema();
  ServeOptions options =
      DaemonOptions(FreshDir("cow"), IdentifyMode::kIncremental);
  options.enable_remedy = true;  // snapshots carry the census only then
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok()) << daemon.status();

  ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 8, 2)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  std::shared_ptr<const EpochSnapshot> applied = daemon.value()->Snapshot();
  ASSERT_NE(applied->leaf_counts, nullptr);

  ASSERT_TRUE(
      daemon.value()->Submit({Delta(0, 0, -5, 0), Delta(0, 0, -5, 0)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  std::shared_ptr<const EpochSnapshot> dropped = daemon.value()->Snapshot();
  EXPECT_GT(dropped->epoch, applied->epoch);
  EXPECT_EQ(dropped->leaf_counts.get(), applied->leaf_counts.get())
      << "a no-change epoch deep-copied the leaf census";

  // A committed change must produce a fresh table (and fresh contents).
  ASSERT_TRUE(daemon.value()->Submit({Delta(1, 1, 3, 3)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  std::shared_ptr<const EpochSnapshot> changed = daemon.value()->Snapshot();
  EXPECT_NE(changed->leaf_counts.get(), dropped->leaf_counts.get());
  EXPECT_EQ(changed->leaf_counts->at(static_cast<uint64_t>(3)).positives, 3);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

// Pulls "key":"value" or "key":value out of the daemon's health JSON.
std::string HealthField(const std::string& json, const std::string& key) {
  const std::string quoted = "\"" + key + "\":";
  const size_t at = json.find(quoted);
  if (at == std::string::npos) return "";
  size_t begin = at + quoted.size();
  size_t end;
  if (json[begin] == '"') {
    ++begin;
    end = json.find('"', begin);
  } else {
    end = json.find_first_of(",}", begin);
  }
  return json.substr(begin, end - begin);
}

TEST(IbsIncrementalServeTest, RecoveryForcesFullIdentifyThenIncremental) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("recovery");
  {
    auto daemon = ServeDaemon::Start(
        schema, DaemonOptions(dir, IdentifyMode::kIncremental));
    ASSERT_TRUE(daemon.ok()) << daemon.status();
    // A cold start is a full pass too, and says so.
    EXPECT_EQ(HealthField(daemon.value()->HealthJson(), "identify_mode"),
              "incremental");
    EXPECT_EQ(HealthField(daemon.value()->HealthJson(), "fallback_reason"),
              "cold_start");

    ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 6, 2)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    const std::string health = daemon.value()->HealthJson();
    EXPECT_EQ(HealthField(health, "last_epoch_incremental"), "true")
        << health;

    // Kill: the shutdown checkpoint fails, stranding the WAL for replay —
    // the state a SIGKILL leaves behind.
    FaultInjector injector;
    injector.FailAlways("wal/fsync");
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  auto daemon = ServeDaemon::Start(
      schema, DaemonOptions(dir, IdentifyMode::kIncremental));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  // WAL replay rebuilt the lattice behind the incremental state's back:
  // the first post-recovery identify must be a full sweep and say why.
  std::string health = daemon.value()->HealthJson();
  EXPECT_EQ(HealthField(health, "fallback_reason"), "recovery") << health;
  EXPECT_EQ(HealthField(health, "last_epoch_incremental"), "false") << health;
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 6);

  // The very next committed epoch identifies incrementally again.
  ASSERT_TRUE(daemon.value()->Submit({Delta(2, 1, 1, 4)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  health = daemon.value()->HealthJson();
  EXPECT_EQ(HealthField(health, "last_epoch_incremental"), "true") << health;
  EXPECT_EQ(HealthField(health, "fallback_reason"), "recovery") << health;
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

}  // namespace
}  // namespace remedy
