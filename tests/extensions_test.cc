// Tests for the beyond-the-paper extensions: bootstrap confidence
// intervals, the threshold post-processing baseline, and the ordinal
// attribute-metric variant of the COMPAS generator.

#include <gtest/gtest.h>

#include "baselines/threshold_postprocess.h"
#include "common/rng.h"
#include "core/ibs_identify.h"
#include "datagen/compas.h"
#include "fairness/bootstrap.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::SmallSchema;

// ---------------------------------------------------------------------------
// Bootstrap confidence intervals.
// ---------------------------------------------------------------------------

TEST(BootstrapTest, IntervalBracketsPointEstimate) {
  Rng rng(3);
  Dataset data = MakeCompas(2000, 40);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);

  BootstrapOptions options;
  options.replicates = 100;
  BootstrapInterval interval =
      BootstrapFairnessIndex(test, predictions, Statistic::kFpr, options);
  EXPECT_LE(interval.lower, interval.upper);
  EXPECT_GT(interval.point, 0.0);
  // The point estimate should fall inside (or at worst at the edge of) a
  // 95% interval of its own sampling distribution.
  EXPECT_GE(interval.point, interval.lower - 0.05);
  EXPECT_LE(interval.point, interval.upper + 0.05);
  EXPECT_EQ(interval.replicates, 100);
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  Rng rng(4);
  Dataset data = MakeCompas(800, 41);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ClassifierPtr model = MakeClassifier(ModelType::kNaiveBayes);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  BootstrapOptions options;
  options.replicates = 50;
  BootstrapInterval a =
      BootstrapFairnessIndex(test, predictions, Statistic::kFpr, options);
  BootstrapInterval b =
      BootstrapFairnessIndex(test, predictions, Statistic::kFpr, options);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, ZeroIndexHasDegenerateInterval) {
  // Perfect predictions: index 0 in every replicate.
  Dataset data(SmallSchema());
  AddRows(data, 100, 0, 0, 1, 1);
  AddRows(data, 100, 1, 1, 0, 0);
  std::vector<int> predictions(200);
  for (int r = 0; r < 200; ++r) predictions[r] = data.Label(r);
  BootstrapOptions options;
  options.replicates = 50;
  BootstrapInterval interval =
      BootstrapFairnessIndex(data, predictions, Statistic::kFpr, options);
  EXPECT_DOUBLE_EQ(interval.point, 0.0);
  EXPECT_DOUBLE_EQ(interval.lower, 0.0);
  EXPECT_DOUBLE_EQ(interval.upper, 0.0);
}

// ---------------------------------------------------------------------------
// Threshold post-processing.
// ---------------------------------------------------------------------------

// A world where one subgroup's scores are inflated: the post-processor
// should raise that subgroup's threshold.
Dataset SkewedScores(uint64_t seed) {
  Rng rng(seed);
  Dataset data(SmallSchema());
  for (int i = 0; i < 4000; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2), f = rng.UniformInt(2);
    double p = f == 1 ? 0.75 : 0.25;
    if (a == 0) p = std::min(0.95, p + 0.35);  // inflated pocket
    data.AddRow({a, b, f}, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

TEST(ThresholdPostprocessTest, EqualizesSubgroupFpr) {
  Rng rng(9);
  Dataset data = SkewedScores(8);
  auto [train, test] = data.TrainTestSplit(0.7, rng);

  ClassifierPtr plain = MakeClassifier(ModelType::kLogisticRegression);
  plain->Fit(train);
  ThresholdPostprocessor post(
      MakeClassifier(ModelType::kLogisticRegression));
  post.Fit(train);

  // Max subgroup FPR divergence before vs after.
  auto worst_divergence = [&](const std::vector<int>& predictions) {
    SubgroupAnalysis analysis =
        AnalyzeSubgroups(test, predictions, Statistic::kFpr, 0.05, 30);
    double worst = 0.0;
    for (const SubgroupReport& report : analysis.subgroups) {
      worst = std::max(worst, report.divergence);
    }
    return worst;
  };
  EXPECT_LT(worst_divergence(post.PredictAll(test)),
            worst_divergence(plain->PredictAll(test)));
}

TEST(ThresholdPostprocessTest, ThresholdsDifferAcrossSubgroups) {
  Rng rng(10);
  Dataset data = SkewedScores(11);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ThresholdPostprocessor post(
      MakeClassifier(ModelType::kLogisticRegression));
  post.Fit(train);
  double min_threshold = 1.0, max_threshold = 0.0;
  for (int r = 0; r < test.NumRows(); ++r) {
    double threshold = post.ThresholdFor(test, r);
    min_threshold = std::min(min_threshold, threshold);
    max_threshold = std::max(max_threshold, threshold);
  }
  EXPECT_LT(min_threshold, max_threshold);
}

TEST(ThresholdPostprocessTest, ProbabilitiesComeFromBaseModel) {
  Rng rng(11);
  Dataset data = SkewedScores(12);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ClassifierPtr base = MakeClassifier(ModelType::kNaiveBayes);
  base->Fit(train);
  ThresholdPostprocessor post(MakeClassifier(ModelType::kNaiveBayes));
  post.Fit(train);
  for (int r = 0; r < 30; ++r) {
    EXPECT_DOUBLE_EQ(post.PredictProba(test, r), base->PredictProba(test, r));
  }
}

TEST(ThresholdPostprocessTest, SmallGroupsKeepDefaultThreshold) {
  // Tiny dataset: every subgroup is below min_group_size.
  Dataset data(SmallSchema());
  AddRows(data, 10, 0, 0, 1, 1);
  AddRows(data, 10, 1, 1, 0, 0);
  ThresholdPostprocessParams params;
  params.min_group_size = 100;
  ThresholdPostprocessor post(MakeClassifier(ModelType::kNaiveBayes),
                              params);
  post.Fit(data);
  for (int r = 0; r < data.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(post.ThresholdFor(data, r), 0.5);
  }
}

// ---------------------------------------------------------------------------
// Ordinal COMPAS variant.
// ---------------------------------------------------------------------------

TEST(OrdinalCompasTest, DeclaresOrdinalMetrics) {
  Dataset data = MakeCompasOrdinal(500);
  const DataSchema& schema = data.schema();
  EXPECT_TRUE(schema.attribute(schema.AttributeIndex("age")).ordinal());
  EXPECT_TRUE(schema.attribute(schema.AttributeIndex("priors")).ordinal());
  EXPECT_FALSE(schema.attribute(schema.AttributeIndex("race")).ordinal());
}

TEST(OrdinalCompasTest, SameDataDifferentMetric) {
  // Identical draws: ordinality changes distances, not the sampled values.
  Dataset nominal = MakeCompas(400, 77);
  Dataset ordinal = MakeCompasOrdinal(400, 77);
  ASSERT_EQ(nominal.NumRows(), ordinal.NumRows());
  for (int r = 0; r < nominal.NumRows(); ++r) {
    EXPECT_EQ(nominal.Row(r), ordinal.Row(r));
    EXPECT_EQ(nominal.Label(r), ordinal.Label(r));
  }
}

TEST(OrdinalCompasTest, AdjacentOnlyNeighborsAtTOne) {
  Dataset data = MakeCompasOrdinal(6172);
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  // The optimized identity no longer holds on the age axis.
  uint32_t age_mask = 0b001;  // protected order: age, race, sex
  EXPECT_FALSE(neighborhood.SupportsOptimized(age_mask));

  // Age '<25' (code 0): its only distance-1 neighbor is '25-45' (code 1).
  const auto& node = hierarchy.NodeCounts(age_mask);
  Pattern young(std::vector<int>{0, Pattern::kWildcard, Pattern::kWildcard});
  Pattern middle(std::vector<int>{1, Pattern::kWildcard, Pattern::kWildcard});
  RegionCounts middle_counts =
      node.at(hierarchy.counter().KeyFor(middle, age_mask));
  EXPECT_EQ(neighborhood.NaiveNeighborCounts(young), middle_counts);
}

TEST(OrdinalCompasTest, IdentificationFallsBackToNaive) {
  Dataset data = MakeCompasOrdinal(6172);
  IbsParams params;  // optimized requested, naive used where unsupported
  std::vector<BiasedRegion> optimized_request = IdentifyIbs(data, params).value();
  params.algorithm = IbsAlgorithm::kNaive;
  std::vector<BiasedRegion> naive_request = IdentifyIbs(data, params).value();
  ASSERT_EQ(optimized_request.size(), naive_request.size());
  for (size_t i = 0; i < naive_request.size(); ++i) {
    EXPECT_EQ(optimized_request[i].pattern, naive_request[i].pattern);
    EXPECT_EQ(optimized_request[i].neighbor_counts,
              naive_request[i].neighbor_counts);
  }
}

}  // namespace
}  // namespace remedy
