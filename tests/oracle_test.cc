// Brute-force oracle tests: re-implement the core computations the naive
// way (scan every row, enumerate every pattern) and check the optimized
// library paths against them on randomized datasets. These are the
// strongest correctness guarantees in the suite — any indexing, packing or
// caching bug in the fast paths diverges from the oracles.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "fairness/divergence.h"
#include "fairness/fairness_index.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::SmallSchema;

// Random dataset over the 3x2(x2) small schema.
Dataset RandomDataset(int seed, int rows) {
  Rng rng(seed);
  Dataset data(SmallSchema());
  for (int i = 0; i < rows; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2), f = rng.UniformInt(2);
    double p = 0.2 + 0.15 * a + 0.25 * b;
    data.AddRow({a, b, f}, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

// Every pattern over the protected attributes (including wildcards),
// excluding the all-wildcard level-0 pattern.
std::vector<Pattern> AllPatterns(const DataSchema& schema) {
  std::vector<Pattern> patterns;
  const auto& protected_cols = schema.protected_indices();
  int arity = static_cast<int>(protected_cols.size());
  // Odometer over domains extended with the wildcard.
  std::vector<int> state(arity, -1);
  while (true) {
    Pattern pattern(state);
    if (pattern.NumDeterministic() > 0) patterns.push_back(pattern);
    int position = arity - 1;
    while (position >= 0) {
      int cardinality =
          schema.attribute(protected_cols[position]).Cardinality();
      if (++state[position] >= cardinality) {
        state[position] = -1;
        --position;
      } else {
        break;
      }
    }
    if (position < 0) break;
  }
  return patterns;
}

RegionCounts OracleCounts(const Dataset& data, const Pattern& pattern) {
  RegionCounts counts;
  for (int r = 0; r < data.NumRows(); ++r) {
    if (!pattern.Matches(data, r)) continue;
    if (data.Label(r) == 1) {
      ++counts.positives;
    } else {
      ++counts.negatives;
    }
  }
  return counts;
}

class OracleTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleTest, HierarchyCountsMatchRowScan) {
  Dataset data = RandomDataset(GetParam(), 300);
  Hierarchy hierarchy(data);
  for (const Pattern& pattern : AllPatterns(data.schema())) {
    RegionCounts expected = OracleCounts(data, pattern);
    uint32_t mask = pattern.DeterministicMask();
    const auto& node = hierarchy.NodeCounts(mask);
    auto it = node.find(hierarchy.counter().KeyFor(pattern, mask));
    RegionCounts actual =
        it == node.end() ? RegionCounts{} : it->second;
    EXPECT_EQ(actual, expected)
        << pattern.ToString(data.schema()) << " seed " << GetParam();
  }
}

TEST_P(OracleTest, NeighborCountsMatchPairwiseDistanceScan) {
  Dataset data = RandomDataset(GetParam(), 300);
  Hierarchy hierarchy(data);
  const double T = 1.0;
  NeighborhoodCalculator neighborhood(hierarchy, T);
  for (const Pattern& pattern : AllPatterns(data.schema())) {
    // Oracle: sum counts over all same-node patterns within distance T.
    RegionCounts expected;
    for (const Pattern& other : AllPatterns(data.schema())) {
      if (!other.SameNode(pattern) || other == pattern) continue;
      if (pattern.Distance(other, data.schema()) > T + 1e-12) continue;
      RegionCounts counts = OracleCounts(data, other);
      expected.positives += counts.positives;
      expected.negatives += counts.negatives;
    }
    EXPECT_EQ(neighborhood.NaiveNeighborCounts(pattern), expected)
        << pattern.ToString(data.schema());
    RegionCounts region = OracleCounts(data, pattern);
    EXPECT_EQ(neighborhood.OptimizedNeighborCounts(pattern, region),
              expected)
        << pattern.ToString(data.schema());
  }
}

TEST_P(OracleTest, IdentifyIbsMatchesDefinitionalScan) {
  Dataset data = RandomDataset(GetParam(), 400);
  IbsParams params;
  params.imbalance_threshold = 0.15;
  params.min_region_size = 20;

  // Oracle: apply Definition 5 literally to every pattern.
  std::map<std::string, bool> expected;
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy,
                                      params.distance_threshold);
  for (const Pattern& pattern : AllPatterns(data.schema())) {
    RegionCounts counts = OracleCounts(data, pattern);
    if (counts.Total() <= params.min_region_size) continue;
    double ratio = ImbalanceScore(counts);
    double neighbor_ratio =
        ImbalanceScore(neighborhood.NaiveNeighborCounts(pattern));
    if (std::fabs(ratio - neighbor_ratio) > params.imbalance_threshold) {
      expected[pattern.ToString(data.schema())] = true;
    }
  }

  std::map<std::string, bool> actual;
  for (const BiasedRegion& region : IdentifyIbs(data, params).value()) {
    actual[region.pattern.ToString(data.schema())] = true;
  }
  EXPECT_EQ(actual, expected) << "seed " << GetParam();
}

TEST_P(OracleTest, SubgroupStatisticsMatchRowScan) {
  Dataset data = RandomDataset(GetParam(), 300);
  Rng rng(GetParam() + 1000);
  std::vector<int> predictions(data.NumRows());
  for (int& p : predictions) p = rng.UniformInt(2);

  for (Statistic statistic :
       {Statistic::kFpr, Statistic::kFnr, Statistic::kStatisticalParity,
        Statistic::kErrorRate}) {
    SubgroupAnalysis analysis =
        AnalyzeSubgroups(data, predictions, statistic);
    for (const SubgroupReport& report : analysis.subgroups) {
      // Oracle statistic by direct scan.
      int64_t relevant = 0, events = 0;
      for (int r = 0; r < data.NumRows(); ++r) {
        if (!report.pattern.Matches(data, r)) continue;
        bool in_class = true;
        bool event = false;
        switch (statistic) {
          case Statistic::kFpr:
            in_class = data.Label(r) == 0;
            event = in_class && predictions[r] == 1;
            break;
          case Statistic::kFnr:
            in_class = data.Label(r) == 1;
            event = in_class && predictions[r] == 0;
            break;
          case Statistic::kStatisticalParity:
            event = predictions[r] == 1;
            break;
          case Statistic::kErrorRate:
            event = predictions[r] != data.Label(r);
            break;
        }
        relevant += in_class;
        events += event;
      }
      ASSERT_GT(relevant, 0);
      EXPECT_EQ(report.relevant, relevant);
      EXPECT_EQ(report.errors, events);
      EXPECT_NEAR(report.statistic,
                  static_cast<double>(events) / relevant, 1e-12);
    }
  }
}

TEST_P(OracleTest, FairnessIndexMatchesManualSum) {
  Dataset data = RandomDataset(GetParam(), 400);
  Rng rng(GetParam() + 2000);
  std::vector<int> predictions(data.NumRows());
  for (int& p : predictions) p = rng.UniformInt(2);

  FairnessIndexOptions options;
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr,
                       options.min_support);
  double expected = 0.0;
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.support >= options.min_support &&
        report.p_value < options.alpha) {
      expected += report.support * report.divergence;
    }
  }
  EXPECT_NEAR(ComputeFairnessIndex(data, predictions, Statistic::kFpr,
                                   options),
              expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace remedy
