#include <gtest/gtest.h>

#include "core/pattern.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::SmallSchema;

TEST(PatternTest, WildcardConstruction) {
  Pattern pattern(3);
  EXPECT_EQ(pattern.Arity(), 3);
  EXPECT_EQ(pattern.NumDeterministic(), 0);
  EXPECT_EQ(pattern.DeterministicMask(), 0u);
  EXPECT_FALSE(pattern.IsDeterministic(1));
}

TEST(PatternTest, DeterministicMaskAndCount) {
  Pattern pattern({1, Pattern::kWildcard, 0});
  EXPECT_EQ(pattern.NumDeterministic(), 2);
  EXPECT_EQ(pattern.DeterministicMask(), 0b101u);
  EXPECT_TRUE(pattern.IsDeterministic(0));
  EXPECT_FALSE(pattern.IsDeterministic(1));
}

TEST(PatternTest, MatchesRows) {
  Dataset data(SmallSchema());
  data.AddRow({1, 0, 1}, 1);
  data.AddRow({1, 1, 0}, 0);
  data.AddRow({2, 0, 0}, 0);
  Pattern a1({1, Pattern::kWildcard});
  EXPECT_TRUE(a1.Matches(data, 0));
  EXPECT_TRUE(a1.Matches(data, 1));
  EXPECT_FALSE(a1.Matches(data, 2));
  Pattern a1b0({1, 0});
  EXPECT_TRUE(a1b0.Matches(data, 0));
  EXPECT_FALSE(a1b0.Matches(data, 1));
  Pattern everything(2);
  EXPECT_TRUE(everything.Matches(data, 2));
}

TEST(PatternTest, DominanceDefinition) {
  // (a=1) dominates (a=1, b=0): replace b's element with X.
  Pattern general({1, Pattern::kWildcard});
  Pattern specific({1, 0});
  EXPECT_TRUE(general.Dominates(specific));
  EXPECT_FALSE(specific.Dominates(general));
  // Every pattern dominates itself.
  EXPECT_TRUE(general.Dominates(general));
  EXPECT_TRUE(specific.Dominates(specific));
  // The all-wildcard pattern dominates everything.
  Pattern top(2);
  EXPECT_TRUE(top.Dominates(specific));
  // Conflicting values break dominance.
  Pattern other({2, Pattern::kWildcard});
  EXPECT_FALSE(other.Dominates(specific));
}

TEST(PatternTest, SameNodeComparesDeterministicSets) {
  Pattern a({1, Pattern::kWildcard});
  Pattern b({2, Pattern::kWildcard});
  Pattern c({Pattern::kWildcard, 0});
  EXPECT_TRUE(a.SameNode(b));
  EXPECT_FALSE(a.SameNode(c));
}

TEST(PatternTest, DistanceWithinNode) {
  DataSchema schema = SmallSchema();
  Pattern a({0, 0});
  Pattern b({1, 0});
  Pattern c({1, 1});
  EXPECT_DOUBLE_EQ(a.Distance(b, schema), 1.0);
  EXPECT_DOUBLE_EQ(a.Distance(c, schema), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(a.Distance(a, schema), 0.0);
}

TEST(PatternTest, DistanceUsesOrdinalMetric) {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("age", {"a", "b", "c", "d"}, /*ordinal=*/true),
  };
  DataSchema schema(std::move(attributes), {0});
  // NB: Pattern({0}) would resolve to the arity constructor; spell the
  // vector out for single-element patterns.
  Pattern first(std::vector<int>{0});
  Pattern last(std::vector<int>{3});
  EXPECT_DOUBLE_EQ(first.Distance(last, schema), 3.0);
}

TEST(PatternTest, ToStringOmitsWildcards) {
  DataSchema schema = SmallSchema();
  Pattern pattern({1, Pattern::kWildcard});
  EXPECT_EQ(pattern.ToString(schema), "(a=a1)");
  Pattern leaf({2, 0});
  EXPECT_EQ(leaf.ToString(schema), "(a=a2, b=b0)");
  Pattern top(2);
  EXPECT_EQ(top.ToString(schema), "(*)");
}

TEST(PatternTest, OrderingIsLexicographic) {
  Pattern a({0, 1});
  Pattern b({1, 0});
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == Pattern({0, 1}));
}

}  // namespace
}  // namespace remedy
