// Chaos suite for the crash-safe streaming daemon (docs/SERVICE.md).
//
// The load-bearing half is the kill-point matrix: a WAL is truncated at
// EVERY byte offset — simulating a kill at any instant of any commit — and
// recovery must land on the counts digest of an uninterrupted run over the
// surviving committed prefix. The rest drives each fault point of the
// commit pipeline (wal/append, wal/fsync, wal/replay, serve/apply,
// serve/ingest) through the daemon's public API and checks the degradation
// ladder: reject, go read-only, keep answering queries, heal on restart.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/hierarchy.h"
#include "data/shard_file.h"
#include "serve/daemon.h"
#include "serve/wal.h"
#include "test_util.h"

namespace remedy {
namespace {

using remedy::testing::AddRows;
using remedy::testing::SmallSchema;

std::string TempPath(const std::string& name) {
  // Keyed by pid so the plain/TSan/ASan twins never collide when ctest
  // schedules the same case from all three binaries concurrently.
  return ::testing::TempDir() + name + "_" + std::to_string(::getpid());
}

// A unique, empty state directory per test case.
std::string FreshDir(const std::string& name) {
  static int counter = 0;
  const std::string dir =
      TempPath("serve_" + name + "_" + std::to_string(counter++));
  std::remove((dir + "/" + ServeDaemon::kWalFileName).c_str());
  std::remove((dir + "/" + ServeDaemon::kCheckpointFileName).c_str());
  ::rmdir(dir.c_str());
  return dir;
}

std::vector<uint8_t> ReadBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data, 1, size, f), size);
  std::fclose(f);
}

int64_t FileSize(const std::string& path) {
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) return -1;
  return static_cast<int64_t>(info.st_size);
}

// SmallSchema leaf keys: a (3 values) then b (2 values), key = a * 2 + b.
uint64_t LeafKey(int a, int b) { return static_cast<uint64_t>(a * 2 + b); }

Hierarchy::LeafDelta Delta(int a, int b, int64_t dp, int64_t dn) {
  return {LeafKey(a, b), dp, dn};
}

// An empty count-seeded hierarchy, built and ready for ApplyDeltas.
std::unique_ptr<Hierarchy> EmptyHierarchy(const DataSchema& schema) {
  auto hierarchy =
      std::make_unique<Hierarchy>(schema, NodeTable(), RegionCounts());
  EXPECT_TRUE(hierarchy->EagerBuild(1).ok());
  return hierarchy;
}

// The batches the WAL tests commit: one record each, sequences 1..N.
std::vector<std::vector<Hierarchy::LeafDelta>> TestBatches() {
  return {
      {Delta(0, 0, 5, 3), Delta(1, 1, 2, 7)},
      {Delta(0, 1, 1, 4), Delta(2, 0, 6, 2)},
      {Delta(0, 0, -2, 1), Delta(2, 1, 3, 3)},
      {Delta(1, 0, 8, 0), Delta(1, 1, -1, -2)},
      {Delta(2, 0, 0, -1), Delta(0, 1, 2, 2)},
      {Delta(0, 0, 1, 1), Delta(2, 1, -3, 4)},
  };
}

// ---------------------------------------------------------------------------
// WAL unit level
// ---------------------------------------------------------------------------

TEST(DeltaWalTest, AppendSyncReplayRoundTrip) {
  const DataSchema schema = SmallSchema();
  const uint64_t digest = SchemaDigest(schema);
  const std::string path = TempPath("wal_roundtrip.wal");
  std::remove(path.c_str());
  const auto batches = TestBatches();
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, digest, 1);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (const auto& batch : batches) {
      StatusOr<uint64_t> sequence = wal.value()->Append(batch);
      ASSERT_TRUE(sequence.ok()) << sequence.status();
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  std::vector<WalRecord> replayed;
  StatusOr<WalReplayResult> result =
      DeltaWal::Replay(path, digest, 0, [&](const WalRecord& record) {
        replayed.push_back(record);
        return OkStatus();
      });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().records_applied,
            static_cast<int64_t>(batches.size()));
  EXPECT_EQ(result.value().last_sequence, batches.size());
  EXPECT_FALSE(result.value().tail_repaired);
  ASSERT_EQ(replayed.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(replayed[i].sequence, i + 1);
    ASSERT_EQ(replayed[i].deltas.size(), batches[i].size());
    for (size_t d = 0; d < batches[i].size(); ++d) {
      EXPECT_EQ(replayed[i].deltas[d].leaf_key, batches[i][d].leaf_key);
      EXPECT_EQ(replayed[i].deltas[d].delta_positives,
                batches[i][d].delta_positives);
      EXPECT_EQ(replayed[i].deltas[d].delta_negatives,
                batches[i][d].delta_negatives);
    }
  }
}

TEST(DeltaWalTest, ReplaySkipsRecordsTheCheckpointCovers) {
  const DataSchema schema = SmallSchema();
  const uint64_t digest = SchemaDigest(schema);
  const std::string path = TempPath("wal_cutoff.wal");
  std::remove(path.c_str());
  const auto batches = TestBatches();
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, digest, 1);
    ASSERT_TRUE(wal.ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(wal.value()->Append(batch).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  std::vector<uint64_t> sequences;
  StatusOr<WalReplayResult> result =
      DeltaWal::Replay(path, digest, /*min_sequence=*/4,
                       [&](const WalRecord& record) {
                         sequences.push_back(record.sequence);
                         return OkStatus();
                       });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().records_applied, 2);
  EXPECT_EQ(sequences, (std::vector<uint64_t>{5, 6}));
}

TEST(DeltaWalTest, ReplayRejectsForeignSchema) {
  const std::string path = TempPath("wal_schema.wal");
  std::remove(path.c_str());
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, 111, 1);
    ASSERT_TRUE(wal.ok());
  }
  StatusOr<WalReplayResult> result = DeltaWal::Replay(
      path, 222, 0, [](const WalRecord&) { return OkStatus(); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaWalTest, NonMonotonicSequenceIsHardCorruption) {
  const DataSchema schema = SmallSchema();
  const uint64_t digest = SchemaDigest(schema);
  const std::string path = TempPath("wal_sequence.wal");
  std::remove(path.c_str());
  // Open never validates the body, so appending with a rewound numbering
  // forges a checksum-valid but out-of-order log.
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, digest, 5);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append({Delta(0, 0, 1, 0)}).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, digest, 3);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append({Delta(0, 1, 1, 0)}).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  StatusOr<WalReplayResult> result = DeltaWal::Replay(
      path, digest, 0, [](const WalRecord&) { return OkStatus(); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataCorruption);
}

TEST(DeltaWalTest, ResetKeepsNumberingAndDropsRecords) {
  const DataSchema schema = SmallSchema();
  const uint64_t digest = SchemaDigest(schema);
  const std::string path = TempPath("wal_reset.wal");
  std::remove(path.c_str());
  StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, digest, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append({Delta(0, 0, 1, 0)}).ok());
  ASSERT_TRUE(wal.value()->Sync().ok());
  ASSERT_TRUE(wal.value()->Reset().ok());
  EXPECT_EQ(FileSize(path), kWalHeaderBytes);
  StatusOr<uint64_t> next = wal.value()->Append({Delta(0, 1, 1, 0)});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 2u);  // numbering continues across the reset
  ASSERT_TRUE(wal.value()->Sync().ok());
  std::vector<uint64_t> sequences;
  StatusOr<WalReplayResult> result =
      DeltaWal::Replay(path, digest, /*min_sequence=*/1,
                       [&](const WalRecord& record) {
                         sequences.push_back(record.sequence);
                         return OkStatus();
                       });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sequences, (std::vector<uint64_t>{2}));
}

TEST(WalCheckpointTest, WriteReadRoundTrip) {
  const std::string path = TempPath("ckpt_roundtrip.rck");
  std::remove(path.c_str());
  WalCheckpoint checkpoint;
  checkpoint.schema_digest = 987654321;
  checkpoint.epoch = 42;
  checkpoint.wal_sequence = 17;
  checkpoint.leaf_counts = NodeTable({{LeafKey(0, 0), {5, 3}},
                                      {LeafKey(1, 1), {2, 7}},
                                      {LeafKey(2, 0), {6, 2}}});
  checkpoint.totals = {13, 12};
  ASSERT_TRUE(WriteWalCheckpoint(path, checkpoint).ok());
  StatusOr<WalCheckpoint> read = ReadWalCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value().schema_digest, checkpoint.schema_digest);
  EXPECT_EQ(read.value().epoch, checkpoint.epoch);
  EXPECT_EQ(read.value().wal_sequence, checkpoint.wal_sequence);
  ASSERT_EQ(read.value().leaf_counts.size(), 3u);
  EXPECT_EQ(read.value().leaf_counts.at(LeafKey(1, 1)).negatives, 7);
  EXPECT_EQ(read.value().totals.positives, 13);
  EXPECT_EQ(read.value().totals.negatives, 12);
}

TEST(WalCheckpointTest, BitFlipAnywhereIsDetected) {
  const std::string path = TempPath("ckpt_bitflip.rck");
  WalCheckpoint checkpoint;
  checkpoint.schema_digest = 1;
  checkpoint.epoch = 2;
  checkpoint.wal_sequence = 3;
  checkpoint.leaf_counts = NodeTable({{LeafKey(0, 0), {4, 5}}});
  checkpoint.totals = {4, 5};
  const std::vector<uint8_t> clean = [&] {
    std::remove(path.c_str());
    EXPECT_TRUE(WriteWalCheckpoint(path, checkpoint).ok());
    return ReadBytes(path);
  }();
  for (size_t at = 0; at < clean.size(); ++at) {
    std::vector<uint8_t> corrupt = clean;
    corrupt[at] ^= 0x40;
    WriteBytes(path, corrupt.data(), corrupt.size());
    StatusOr<WalCheckpoint> read = ReadWalCheckpoint(path);
    EXPECT_FALSE(read.ok()) << "bit flip at byte " << at << " undetected";
  }
}

TEST(WalCheckpointTest, WrappingEntryCountIsRejected) {
  const std::string path = TempPath("ckpt_wrap.rck");
  std::remove(path.c_str());
  WalCheckpoint checkpoint;
  checkpoint.schema_digest = 7;
  checkpoint.leaf_counts =
      NodeTable({{LeafKey(0, 0), {1, 2}}, {LeafKey(1, 0), {3, 4}}});
  checkpoint.totals = {4, 6};
  ASSERT_TRUE(WriteWalCheckpoint(path, checkpoint).ok());
  std::vector<uint8_t> bytes = ReadBytes(path);
  // Craft num_entries so `num_entries * 24 + 16` wraps back to the true
  // payload size (2^61 * 24 ≡ 0 mod 2^64) and recompute the header
  // checksum, leaving the size sanity check as the only line of defense —
  // a naive check would pass and send the decode loop far out of bounds.
  constexpr size_t kOffNumEntries = 8;  // header layout, see wal.cc
  constexpr size_t kOffChecksum = 56;
  auto get_u64 = [&](size_t at) {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(bytes[at + i]) << (8 * i);
    }
    return value;
  };
  auto put_u64 = [&](size_t at, uint64_t value) {
    for (int i = 0; i < 8; ++i) bytes[at + i] = (value >> (8 * i)) & 0xff;
  };
  put_u64(kOffNumEntries, get_u64(kOffNumEntries) + (1ull << 61));
  put_u64(kOffChecksum, 0);
  put_u64(kOffChecksum, Fnv1a64(bytes.data(), kCheckpointHeaderBytes));
  WriteBytes(path, bytes.data(), bytes.size());
  StatusOr<WalCheckpoint> read = ReadWalCheckpoint(path);
  ASSERT_FALSE(read.ok()) << "wrapping entry count slipped past validation";
  EXPECT_EQ(read.status().code(), StatusCode::kDataCorruption);
}

TEST(WalCheckpointTest, FailedWriteLeavesNoTmpAndOldCheckpointIntact) {
  const std::string path = TempPath("ckpt_atomic.rck");
  std::remove(path.c_str());
  WalCheckpoint checkpoint;
  checkpoint.schema_digest = 7;
  checkpoint.leaf_counts = NodeTable({{LeafKey(0, 0), {1, 1}}});
  checkpoint.totals = {1, 1};
  ASSERT_TRUE(WriteWalCheckpoint(path, checkpoint).ok());
  checkpoint.epoch = 99;
  FaultInjector injector;
  injector.FailAlways("wal/fsync");
  ASSERT_FALSE(WriteWalCheckpoint(path, checkpoint).ok());
  injector.Disarm("wal/fsync");
  EXPECT_EQ(FileSize(path + ".tmp"), -1);  // no torn tmp left behind
  StatusOr<WalCheckpoint> read = ReadWalCheckpoint(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().epoch, 0u);  // the old cut survived
}

// ---------------------------------------------------------------------------
// The kill-point matrix: truncate the log at EVERY byte offset — a kill at
// any instant of any append/fsync — and require recovery to land on the
// digest of an uninterrupted run over however many records stayed durable.
// ---------------------------------------------------------------------------

TEST(WalKillPointMatrixTest, TruncationAtEveryOffsetRecoversValidPrefix) {
  const DataSchema schema = SmallSchema();
  const uint64_t digest = SchemaDigest(schema);
  const std::string clean_path = TempPath("wal_matrix_clean.wal");
  std::remove(clean_path.c_str());
  const auto batches = TestBatches();
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal =
        DeltaWal::Open(clean_path, digest, 1);
    ASSERT_TRUE(wal.ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(wal.value()->Append(batch).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  const std::vector<uint8_t> bytes = ReadBytes(clean_path);

  // File offsets after the header and after each complete record, and the
  // uninterrupted-run digest with k records applied.
  std::vector<int64_t> boundary = {kWalHeaderBytes};
  std::vector<uint64_t> expected_digest;
  {
    auto hierarchy = EmptyHierarchy(schema);
    expected_digest.push_back(hierarchy->CountsDigest());
    for (const auto& batch : batches) {
      boundary.push_back(boundary.back() + kWalFrameBytes +
                         static_cast<int64_t>(batch.size()) * kWalDeltaBytes);
      hierarchy->ApplyDeltas(batch, /*insert_missing=*/true);
      expected_digest.push_back(hierarchy->CountsDigest());
    }
  }
  ASSERT_EQ(boundary.back(), static_cast<int64_t>(bytes.size()));

  const std::string path = TempPath("wal_matrix_cut.wal");
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::remove(path.c_str());
    WriteBytes(path, bytes.data(), cut);

    // How many records are fully durable in this prefix, and whether the
    // prefix ends exactly on a record (or header) boundary.
    size_t survivors = 0;
    while (survivors + 1 < boundary.size() &&
           boundary[survivors + 1] <= static_cast<int64_t>(cut)) {
      ++survivors;
    }
    const bool on_boundary =
        static_cast<int64_t>(cut) == boundary[survivors] &&
        cut >= static_cast<size_t>(kWalHeaderBytes);

    auto hierarchy = EmptyHierarchy(schema);
    StatusOr<WalReplayResult> result =
        DeltaWal::Replay(path, digest, 0, [&](const WalRecord& record) {
          hierarchy->ApplyDeltas(record.deltas, /*insert_missing=*/true);
          return OkStatus();
        });
    ASSERT_TRUE(result.ok()) << "cut at byte " << cut << ": "
                             << result.status();
    EXPECT_EQ(result.value().records_applied,
              static_cast<int64_t>(survivors))
        << "cut at byte " << cut;
    EXPECT_EQ(result.value().tail_repaired, !on_boundary)
        << "cut at byte " << cut;
    EXPECT_EQ(hierarchy->CountsDigest(), expected_digest[survivors])
        << "cut at byte " << cut
        << ": recovery diverged from the uninterrupted run";

    // The repair truncated the torn bytes away, so a second replay (the
    // next restart) sees a clean log with the same survivors.
    EXPECT_EQ(FileSize(path),
              cut < static_cast<size_t>(kWalHeaderBytes)
                  ? 0
                  : boundary[survivors])
        << "cut at byte " << cut;
    int64_t second_pass = 0;
    StatusOr<WalReplayResult> again =
        DeltaWal::Replay(path, digest, 0, [&](const WalRecord&) {
          ++second_pass;
          return OkStatus();
        });
    if (cut >= static_cast<size_t>(kWalHeaderBytes)) {
      ASSERT_TRUE(again.ok()) << "cut at byte " << cut;
      EXPECT_EQ(second_pass, static_cast<int64_t>(survivors));
      EXPECT_FALSE(again.value().tail_repaired) << "cut at byte " << cut;
    }
  }
}

// A bit flip inside a committed record's payload is caught by the payload
// checksum; replay conservatively treats everything from the flip on as
// torn tail.
TEST(WalKillPointMatrixTest, PayloadBitFlipStopsReplayAtPriorRecord) {
  const DataSchema schema = SmallSchema();
  const uint64_t digest = SchemaDigest(schema);
  const std::string path = TempPath("wal_bitflip.wal");
  std::remove(path.c_str());
  const auto batches = TestBatches();
  {
    StatusOr<std::unique_ptr<DeltaWal>> wal = DeltaWal::Open(path, digest, 1);
    ASSERT_TRUE(wal.ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(wal.value()->Append(batch).ok());
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
  }
  std::vector<uint8_t> bytes = ReadBytes(path);
  // Flip one payload byte of record 3 (records 1..2 stay intact).
  const int64_t record_bytes =
      kWalFrameBytes + static_cast<int64_t>(batches[0].size()) * kWalDeltaBytes;
  bytes[kWalHeaderBytes + 2 * record_bytes + kWalFrameBytes + 5] ^= 0x01;
  WriteBytes(path, bytes.data(), bytes.size());
  int64_t replayed = 0;
  StatusOr<WalReplayResult> result =
      DeltaWal::Replay(path, digest, 0, [&](const WalRecord&) {
        ++replayed;
        return OkStatus();
      });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(replayed, 2);
  EXPECT_TRUE(result.value().tail_repaired);
}

// ---------------------------------------------------------------------------
// Daemon level
// ---------------------------------------------------------------------------

// The CSV batch used by the ingest tests: 12 rows over 3 of the 6 cells.
constexpr char kBatchCsv[] =
    "a,b,label\n"
    "a0,b0,1\na0,b0,1\na0,b0,0\n"
    "a1,b1,1\na1,b1,0\na1,b1,0\na1,b1,0\n"
    "a2,b0,1\na2,b0,1\na2,b0,1\na2,b0,0\na2,b0,0\n";

// The same rows as kBatchCsv, as a Dataset (f mirrors the label).
Dataset BatchDataset() {
  Dataset data(SmallSchema());
  AddRows(data, 2, 0, 0, 1, 1);
  AddRows(data, 1, 0, 0, 0, 0);
  AddRows(data, 1, 1, 1, 1, 1);
  AddRows(data, 3, 1, 1, 0, 0);
  AddRows(data, 3, 2, 0, 1, 1);
  AddRows(data, 2, 2, 0, 0, 0);
  return data;
}

ServeOptions SmallOptions(const std::string& dir) {
  ServeOptions options;
  options.state_dir = dir;
  options.ibs.min_region_size = 2;  // tiny test data still gets audited
  options.ibs.imbalance_threshold = 0.2;
  return options;
}

TEST(ServeDaemonTest, IngestMatchesBatchCountedHierarchy) {
  const DataSchema schema = SmallSchema();
  auto daemon = ServeDaemon::Start(schema, SmallOptions(FreshDir("ingest")));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  ASSERT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());

  Dataset data = BatchDataset();
  Hierarchy batch_counted(data);
  ASSERT_TRUE(batch_counted.EagerBuild(1).ok());
  std::shared_ptr<const EpochSnapshot> snapshot = daemon.value()->Snapshot();
  EXPECT_EQ(snapshot->totals.positives, 6);
  EXPECT_EQ(snapshot->totals.negatives, 6);
  EXPECT_EQ(snapshot->counts_digest, batch_counted.CountsDigest())
      << "streamed deltas diverged from batch counting the same rows";
  EXPECT_FALSE(snapshot->read_only);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, CountColumnCarriesSignedWeights) {
  const DataSchema schema = SmallSchema();
  auto daemon = ServeDaemon::Start(schema, SmallOptions(FreshDir("weights")));
  ASSERT_TRUE(daemon.ok());
  ASSERT_TRUE(daemon.value()
                  ->IngestCsv("a,b,label,__count\na0,b0,1,10\na0,b0,0,4\n")
                  .ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 10);
  // Signed weights retract earlier rows (a label flip, a deletion).
  ASSERT_TRUE(
      daemon.value()->IngestCsv("a,b,label,__count\na0,b0,1,-3\n").ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 7);
  EXPECT_EQ(daemon.value()->Snapshot()->totals.negatives, 4);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, BadBatchesRejectWholeWithoutSideEffects) {
  const DataSchema schema = SmallSchema();
  auto daemon = ServeDaemon::Start(schema, SmallOptions(FreshDir("badcsv")));
  ASSERT_TRUE(daemon.ok());
  // Unknown value, bad label, missing column: all reject as a whole.
  EXPECT_EQ(daemon.value()->IngestCsv("a,b,label\na9,b0,1\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(daemon.value()->IngestCsv("a,b,label\na0,b0,yes\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(daemon.value()->IngestCsv("a,label\na0,1\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      daemon.value()->IngestCsv("a,b,label,__count\na0,b0,1,many\n").code(),
      StatusCode::kInvalidArgument);
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 0);
  EXPECT_EQ(daemon.value()->Snapshot()->totals.negatives, 0);
  EXPECT_FALSE(daemon.value()->read_only());
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, UnderflowingBatchIsDroppedNotCommitted) {
  const DataSchema schema = SmallSchema();
  auto daemon =
      ServeDaemon::Start(schema, SmallOptions(FreshDir("underflow")));
  ASSERT_TRUE(daemon.ok());
  // Retracting from an empty region would drive counts negative; the batch
  // is dropped before it ever reaches the WAL, and the daemon stays live.
  ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, -5, 0)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 0);
  EXPECT_FALSE(daemon.value()->read_only());
  EXPECT_NE(daemon.value()->HealthJson().find("\"failed\":1"),
            std::string::npos);
  // The daemon still applies later valid work.
  ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 2, 1)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 2);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, DuplicateKeysInOneBatchValidateCumulatively) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("dupkeys");
  uint64_t digest = 0;
  {
    auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 8, 0)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    // Each -5 alone passes against the leaf count of 8; together they
    // underflow. Submit's contract allows duplicate keys, so validation
    // must accumulate them — the batch is dropped before it is ever
    // WAL-committed (a committed record has to replay cleanly forever).
    ASSERT_TRUE(
        daemon.value()->Submit({Delta(0, 0, -5, 0), Delta(0, 0, -5, 0)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 8);
    EXPECT_FALSE(daemon.value()->read_only());
    // Valid duplicate keys still commit, and a rejected batch rolls its
    // overlay back: this one validates against the untouched count of 8.
    ASSERT_TRUE(
        daemon.value()->Submit({Delta(0, 0, 2, 0), Delta(0, 0, 3, 0)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 13);
    digest = daemon.value()->Snapshot()->counts_digest;
    // Kill (failed shutdown checkpoint) so the restart must replay the WAL.
    FaultInjector injector;
    injector.FailAlways("wal/fsync");
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, digest)
      << "a WAL-committed record failed to replay to the served state";
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, BatchesQueuedDuringATripNeverCommit) {
  // Regression: a batch accepted by Submit while CommitGroup was tripping
  // read-only used to be WAL-appended and applied by the next group —
  // advancing the served counts past durable-but-unapplied records and
  // stranding records behind the torn tail. Race a submitter against a
  // first-fsync failure; whatever lands in the queue around the trip must
  // be dropped, leaving the served digest exactly where the last
  // acknowledged commit left it.
  const DataSchema schema = SmallSchema();
  auto daemon =
      ServeDaemon::Start(schema, SmallOptions(FreshDir("tripdrop")));
  ASSERT_TRUE(daemon.ok());
  ASSERT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  const uint64_t clean_digest = daemon.value()->Snapshot()->counts_digest;

  FaultInjector injector;
  // Only the next group's sync fails; later syncs would succeed, so any
  // batch the old code let through WOULD commit and move the digest.
  injector.FailNth("wal/fsync", 1);
  std::thread submitter([&] {
    for (int i = 0; i < 50000; ++i) {
      const Status submitted = daemon.value()->Submit({Delta(0, 0, 1, 0)});
      if (submitted.code() == StatusCode::kInternal) return;  // read-only
    }
  });
  submitter.join();
  EXPECT_FALSE(daemon.value()->Flush().ok());
  EXPECT_TRUE(daemon.value()->read_only());
  EXPECT_TRUE(daemon.value()->needs_recovery());
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, clean_digest)
      << "a batch queued during the trip was committed after it";
  EXPECT_FALSE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, ConcurrentStopCallersAgreeAndDoNotCrash) {
  // Stop() is documented safe for concurrent callers: exactly one thread
  // runs the shutdown sequence (a double std::thread::join is UB), the
  // rest wait and report the same result. The TSan twin is the teeth.
  const DataSchema schema = SmallSchema();
  auto daemon =
      ServeDaemon::Start(schema, SmallOptions(FreshDir("stopstorm")));
  ASSERT_TRUE(daemon.ok());
  ASSERT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
  std::array<Status, 4> results;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] { results[t] = daemon.value()->Stop(); });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Status& result : results) EXPECT_TRUE(result.ok()) << result;
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 6);
}

TEST(ServeDaemonTest, CleanRestartPreservesDigestAndResetsWal) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("restart");
  uint64_t digest = 0;
  {
    auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    digest = daemon.value()->Snapshot()->counts_digest;
    ASSERT_TRUE(daemon.value()->Stop().ok());
  }
  // The shutdown checkpoint covered everything: the log is bare.
  EXPECT_EQ(FileSize(dir + "/" + ServeDaemon::kWalFileName), kWalHeaderBytes);
  auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, digest);
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 6);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, KillWithoutCheckpointReplaysWalOnRestart) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("killrecover");
  uint64_t digest = 0;
  {
    auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
    ASSERT_TRUE(daemon.value()->Submit({Delta(1, 0, 4, 4)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    digest = daemon.value()->Snapshot()->counts_digest;
    // Simulate a kill: the shutdown checkpoint fails, leaving recovery
    // nothing but the WAL (exactly the state a SIGKILL leaves behind).
    FaultInjector injector;
    injector.FailAlways("wal/fsync");
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  ASSERT_GT(FileSize(dir + "/" + ServeDaemon::kWalFileName), kWalHeaderBytes);
  auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, digest)
      << "WAL replay diverged from the pre-kill state";
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, AutoCheckpointCutoffNeverDoubleApplies) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("autockpt");
  ServeOptions options = SmallOptions(dir);
  options.checkpoint_every_batches = 1;  // checkpoint after every commit
  uint64_t digest = 0;
  {
    auto daemon = ServeDaemon::Start(schema, options);
    ASSERT_TRUE(daemon.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(daemon.value()->Submit({Delta(i, 0, 3, 2)}).ok());
      ASSERT_TRUE(daemon.value()->Flush().ok());
    }
    digest = daemon.value()->Snapshot()->counts_digest;
    ASSERT_TRUE(daemon.value()->Stop().ok());
  }
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok());
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, digest);
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 9);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, WalAppendFailureTripsReadOnlyAndRestartHeals) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("appendfail");
  uint64_t clean_digest = 0;
  {
    auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    clean_digest = daemon.value()->Snapshot()->counts_digest;

    FaultInjector injector;
    injector.FailNth("wal/append", 1);
    ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 1, 1)}).ok());
    EXPECT_FALSE(daemon.value()->Flush().ok());
    EXPECT_TRUE(daemon.value()->read_only());
    EXPECT_TRUE(daemon.value()->needs_recovery());
    // Degraded, not dead: ingestion rejects, queries keep answering from
    // the last good epoch.
    EXPECT_EQ(daemon.value()->Submit({Delta(0, 0, 1, 0)}).code(),
              StatusCode::kInternal);
    EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, clean_digest);
    EXPECT_TRUE(daemon.value()->Snapshot()->read_only);
    EXPECT_NE(daemon.value()->HealthJson().find("\"status\":\"read_only\""),
              std::string::npos);
    // needs-recovery refuses to checkpoint (it would forget the lag).
    EXPECT_FALSE(daemon.value()->Checkpoint().ok());
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  // The failed append never became durable, so recovery lands exactly on
  // the last acknowledged state.
  auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_FALSE(daemon.value()->read_only());
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, clean_digest);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, ApplyWatchdogTripsAfterBoundedRetriesAndHeals) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("watchdog");
  ServeOptions options = SmallOptions(dir);
  options.watchdog_trip_threshold = 3;
  uint64_t healed_digest = 0;
  {
    // What the lattice must look like once the WAL-committed batch lands.
    auto expected = EmptyHierarchy(schema);
    expected->ApplyDeltas({Delta(2, 1, 5, 5)}, /*insert_missing=*/true);
    healed_digest = expected->CountsDigest();
  }
  {
    auto daemon = ServeDaemon::Start(schema, options);
    ASSERT_TRUE(daemon.ok());
    FaultInjector injector;
    injector.FailAlways("serve/apply", StatusCode::kInternal);
    ASSERT_TRUE(daemon.value()->Submit({Delta(2, 1, 5, 5)}).ok());
    EXPECT_FALSE(daemon.value()->Flush().ok());
    EXPECT_EQ(injector.HitCount("serve/apply"), 3);  // bounded, then trip
    EXPECT_TRUE(daemon.value()->read_only());
    EXPECT_TRUE(daemon.value()->needs_recovery());
    // The batch is durable but not applied: reads stay at the old epoch.
    EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 0);
    injector.Disarm("serve/apply");
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  // Restart replays the committed record the watchdog kept out: healed.
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, healed_digest);
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 5);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, ReplayFaultSurfacesThroughStart) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("replayfault");
  {
    auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 3, 3)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    FaultInjector injector;
    injector.FailAlways("wal/fsync");  // kill: leave the WAL for recovery
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  FaultInjector injector;
  injector.FailAlways("wal/replay", StatusCode::kDataCorruption);
  auto failed = ServeDaemon::Start(schema, SmallOptions(dir));
  EXPECT_FALSE(failed.ok());
  injector.Disarm("wal/replay");
  auto daemon = ServeDaemon::Start(schema, SmallOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 3);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, IngestFaultRejectsBeforeParsing) {
  const DataSchema schema = SmallSchema();
  auto daemon =
      ServeDaemon::Start(schema, SmallOptions(FreshDir("ingestfault")));
  ASSERT_TRUE(daemon.ok());
  FaultInjector injector;
  injector.FailNth("serve/ingest", 1);
  EXPECT_EQ(daemon.value()->IngestCsv(kBatchCsv).code(),
            StatusCode::kIoError);
  // Transient: the very next ingest goes through untouched.
  EXPECT_TRUE(daemon.value()->IngestCsv(kBatchCsv).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, 6);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, BackpressureRejectsWithRetryAfterHint) {
  const DataSchema schema = SmallSchema();
  ServeOptions options = SmallOptions(FreshDir("backpressure"));
  options.queue_capacity = 1;
  options.retry_after_ms = 7;
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok());
  // Outrun the single apply thread (each group commit fsyncs, submission
  // is microseconds): some Submit must hit the full queue.
  int64_t accepted = 0;
  bool backpressured = false;
  for (int i = 0; i < 20000 && !backpressured; ++i) {
    Status submitted = daemon.value()->Submit({Delta(0, 0, 1, 0)});
    if (submitted.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(submitted.code(), StatusCode::kResourceExhausted);
      EXPECT_NE(submitted.message().find("retry after 7ms"),
                std::string::npos);
      backpressured = true;
    }
  }
  EXPECT_TRUE(backpressured) << "queue of 1 never filled in 20k submissions";
  // Backpressure sheds load without losing accepted work: the accepted
  // batches all commit.
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(daemon.value()->Snapshot()->totals.positives, accepted);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, SnapshotRingPinsRecentEpochsOnly) {
  const DataSchema schema = SmallSchema();
  auto daemon = ServeDaemon::Start(schema, SmallOptions(FreshDir("ring")));
  ASSERT_TRUE(daemon.ok());
  // Flush after each submit forces one group (and one epoch) per batch.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(daemon.value()->Submit({Delta(0, 0, 1, 1)}).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
  }
  const uint64_t now = daemon.value()->epoch();
  ASSERT_GE(now, 13u);  // epoch 1 at Start + one per batch
  std::shared_ptr<const EpochSnapshot> pinned =
      daemon.value()->SnapshotAt(now);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch, now);
  EXPECT_EQ(daemon.value()->SnapshotAt(1), nullptr) << "epoch 1 never ages";
  // A pinned epoch stays immutable while newer epochs publish.
  const int64_t pinned_positives = pinned->totals.positives;
  ASSERT_TRUE(daemon.value()->Submit({Delta(1, 1, 9, 9)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(pinned->totals.positives, pinned_positives);
  EXPECT_GT(daemon.value()->Snapshot()->totals.positives, pinned_positives);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, MonitorAlertsWhenTheIbsChanges) {
  const DataSchema schema = SmallSchema();
  ServeOptions options = SmallOptions(FreshDir("monitor"));
  options.ibs.min_region_size = 20;
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok());
  // Epoch 2: every cell balanced — no biased subgroup.
  ASSERT_TRUE(daemon.value()
                  ->IngestCsv("a,b,label,__count\n"
                              "a0,b0,1,25\na0,b0,0,25\na0,b1,1,25\na0,b1,0,25\n"
                              "a1,b0,1,25\na1,b0,0,25\na1,b1,1,25\na1,b1,0,25\n"
                              "a2,b0,1,25\na2,b0,0,25\na2,b1,1,25\na2,b1,0,25\n")
                  .ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_TRUE(daemon.value()->QueryIbs().empty());
  // Epoch 3: cell (a0, b0) turns heavily positive — the IBS changes and
  // the online monitor must notice.
  ASSERT_TRUE(
      daemon.value()->IngestCsv("a,b,label,__count\na0,b0,1,200\n").ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_FALSE(daemon.value()->QueryIbs().empty());
  EXPECT_EQ(daemon.value()->HealthJson().find("\"monitor_alerts\":0,"),
            std::string::npos)
      << "IBS changed but no monitor alert fired";
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeDaemonTest, SeededHierarchyMatchesDatasetBuiltDigest) {
  // The recovery path's foundation: a hierarchy seeded from a checkpoint's
  // leaf table must be indistinguishable from one counted off the rows.
  Dataset data = BatchDataset();
  Hierarchy from_rows(data);
  ASSERT_TRUE(from_rows.EagerBuild(1).ok());
  NodeTable leaves = from_rows.NodeCounts(from_rows.LeafMask());
  RegionCounts totals = from_rows.TotalCounts();
  Hierarchy seeded(data.schema(), std::move(leaves), totals);
  ASSERT_TRUE(seeded.EagerBuild(1).ok());
  EXPECT_EQ(seeded.CountsDigest(), from_rows.CountsDigest());
}

}  // namespace
}  // namespace remedy
