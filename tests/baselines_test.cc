#include <gtest/gtest.h>

#include <cmath>

#include "baselines/coverage.h"
#include "baselines/fair_balance.h"
#include "baselines/fair_smote.h"
#include "baselines/gerry_fair.h"
#include "baselines/reweighting.h"
#include "common/rng.h"
#include "core/region_counter.h"
#include "fairness/fairness_violation.h"
#include "ml/metrics.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;
using ::remedy::testing::SmallSchema;

Dataset Imbalanced() {
  // Wildly different class balances per subgroup, plus an empty-ish corner.
  return GridDataset({{{90, 10}, {20, 80}},
                      {{50, 50}, {5, 95}},
                      {{30, 10}, {0, 0}}});
}

TEST(ReweightingTest, WeightedLabelIsIndependentOfGroup) {
  Dataset train = Imbalanced();
  Dataset weighted = ApplyReweighting(train);
  ASSERT_EQ(weighted.NumRows(), train.NumRows());
  // Per subgroup, the weighted positive fraction equals the global rate.
  double global_rate =
      static_cast<double>(train.PositiveCount()) / train.NumRows();
  RegionCounter counter(train.schema());
  auto groups = counter.CollectRows(train, 0b11);
  for (const auto& [key, rows] : groups) {
    double weight = 0.0, positive_weight = 0.0;
    for (int row : rows) {
      weight += weighted.Weight(row);
      if (weighted.Label(row)) positive_weight += weighted.Weight(row);
    }
    EXPECT_NEAR(positive_weight / weight, global_rate, 1e-9);
  }
}

TEST(ReweightingTest, PreservesTotalWeightApproximately) {
  Dataset train = Imbalanced();
  Dataset weighted = ApplyReweighting(train);
  EXPECT_NEAR(weighted.TotalWeight(), train.NumRows(),
              train.NumRows() * 1e-9);
}

TEST(FairBalanceTest, BalancesClassesWithinEachGroup) {
  Dataset train = Imbalanced();
  Dataset weighted = ApplyFairBalance(train);
  RegionCounter counter(train.schema());
  auto groups = counter.CollectRows(train, 0b11);
  for (const auto& [key, rows] : groups) {
    double positive_weight = 0.0, negative_weight = 0.0;
    for (int row : rows) {
      (weighted.Label(row) ? positive_weight : negative_weight) +=
          weighted.Weight(row);
    }
    if (positive_weight > 0 && negative_weight > 0) {
      EXPECT_NEAR(positive_weight, negative_weight, 1e-9);
    }
  }
}

TEST(CoverageTest, RaisesEveryNonEmptyGroupToThreshold) {
  Dataset train = GridDataset({{{40, 40}, {3, 2}},
                               {{1, 0}, {60, 60}},
                               {{10, 10}, {0, 0}}});
  CoverageParams params;
  params.threshold = 30;
  CoverageStats stats;
  Dataset covered = ApplyCoverage(train, params, &stats);
  EXPECT_EQ(stats.uncovered_groups, 3);  // (a0,b1), (a1,b0), (a2,b0)
  EXPECT_EQ(stats.empty_groups, 1);      // (a2,b1)
  RegionCounter counter(train.schema());
  for (const auto& [key, counts] : counter.CountNode(covered, 0b11)) {
    EXPECT_GE(counts.Total(), 30);
  }
}

TEST(CoverageTest, AddsNothingWhenCovered) {
  Dataset train = GridDataset({{{40, 40}, {40, 40}},
                               {{40, 40}, {40, 40}},
                               {{40, 40}, {40, 40}}});
  CoverageStats stats;
  CoverageParams params;
  params.threshold = 30;
  Dataset covered = ApplyCoverage(train, params, &stats);
  EXPECT_EQ(stats.instances_added, 0);
  EXPECT_EQ(covered.NumRows(), train.NumRows());
}

TEST(CoverageTest, DuplicatesComeFromTheSameGroup) {
  Dataset train = GridDataset({{{5, 5}, {50, 50}},
                               {{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}}});
  CoverageParams params;
  params.threshold = 40;
  Dataset covered = ApplyCoverage(train, params);
  // All added rows land in (a0, b0).
  RegionCounter counter(train.schema());
  auto counts = counter.CountNode(covered, 0b11);
  EXPECT_EQ(counts.at(counter.KeyFor(Pattern({0, 0}), 0b11)).Total(), 40);
  EXPECT_EQ(covered.NumRows(), train.NumRows() + 30);
}

TEST(FairSmoteTest, BalancesEveryGroup) {
  Dataset train = Imbalanced();
  FairSmoteStats stats;
  Dataset balanced = ApplyFairSmote(train, {}, &stats);
  EXPECT_GT(stats.instances_added, 0);
  RegionCounter counter(train.schema());
  for (const auto& [key, counts] : counter.CountNode(balanced, 0b11)) {
    EXPECT_EQ(counts.positives, counts.negatives)
        << counter.PatternFor(key, 0b11).ToString(train.schema());
  }
}

TEST(FairSmoteTest, SyntheticRowsStayInTheirSubgroup) {
  Dataset train = Imbalanced();
  Dataset balanced = ApplyFairSmote(train);
  // Original rows are a prefix; synthetic rows follow. Each synthetic row's
  // protected values must match an existing subgroup with a deficit.
  RegionCounter counter(train.schema());
  auto before = counter.CountNode(train, 0b11);
  for (int r = train.NumRows(); r < balanced.NumRows(); ++r) {
    uint64_t key = counter.RowKey(balanced, r, 0b11);
    ASSERT_TRUE(before.count(key));
    const RegionCounts& counts = before.at(key);
    int minority = counts.positives <= counts.negatives ? 1 : 0;
    EXPECT_EQ(balanced.Label(r), minority);
  }
}

TEST(FairSmoteTest, DeterministicGivenSeed) {
  Dataset train = Imbalanced();
  FairSmoteParams params;
  params.seed = 5;
  Dataset a = ApplyFairSmote(train, params);
  Dataset b = ApplyFairSmote(train, params);
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (int r = 0; r < a.NumRows(); ++r) EXPECT_EQ(a.Row(r), b.Row(r));
}

// A training set with one heavily FP-skewed subgroup for GerryFair.
Dataset GerryTrainingSet() {
  Rng rng(3);
  Dataset data(SmallSchema());
  for (int i = 0; i < 3000; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2), f = rng.UniformInt(2);
    double p = f == 1 ? 0.8 : 0.2;
    if (a == 0 && b == 0) p = 0.95;  // skewed pocket
    data.AddRow({a, b, f}, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

TEST(GerryFairTest, ReducesTrainingFairnessViolation) {
  Dataset train = GerryTrainingSet();

  LogisticRegression plain;
  plain.Fit(train);
  double before = ComputeFairnessViolation(train, plain.PredictAll(train),
                                           Statistic::kFpr)
                      .violation;

  GerryFairParams params;
  params.iterations = 10;
  params.learner.epochs = 80;
  GerryFair fair(params);
  fair.Fit(train);
  double after = ComputeFairnessViolation(train, fair.PredictAll(train),
                                          Statistic::kFpr)
                     .violation;
  EXPECT_LT(after, before);
  EXPECT_FALSE(fair.violations().empty());
}

TEST(GerryFairTest, ViolationTrailShrinks) {
  Dataset train = GerryTrainingSet();
  GerryFairParams params;
  params.iterations = 12;
  params.learner.epochs = 60;
  GerryFair fair(params);
  fair.Fit(train);
  const std::vector<double>& trail = fair.violations();
  ASSERT_GE(trail.size(), 2u);
  EXPECT_LT(trail.back(), trail.front());
}

TEST(GerryFairTest, AuditsFnrConstraintToo) {
  // Mirror skew: a pocket with excess negatives drives FNR divergence.
  Rng rng(4);
  Dataset train(SmallSchema());
  for (int i = 0; i < 3000; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2), f = rng.UniformInt(2);
    double p = f == 1 ? 0.8 : 0.2;
    if (a == 0 && b == 0) p = 0.05;
    train.AddRow({a, b, f}, rng.Bernoulli(p) ? 1 : 0);
  }
  LogisticRegression plain;
  plain.Fit(train);
  double before = ComputeFairnessViolation(train, plain.PredictAll(train),
                                           Statistic::kFnr)
                      .violation;
  GerryFairParams params;
  params.iterations = 10;
  params.statistic = Statistic::kFnr;
  params.learner.epochs = 80;
  GerryFair fair(params);
  fair.Fit(train);
  double after = ComputeFairnessViolation(train, fair.PredictAll(train),
                                          Statistic::kFnr)
                     .violation;
  EXPECT_LE(after, before);
}

TEST(GerryFairTest, StillPredictsAccurately) {
  Dataset train = GerryTrainingSet();
  GerryFairParams params;
  params.iterations = 8;
  params.learner.epochs = 60;
  GerryFair fair(params);
  fair.Fit(train);
  EXPECT_GT(Accuracy(train, fair.PredictAll(train)), 0.6);
}

}  // namespace
}  // namespace remedy
