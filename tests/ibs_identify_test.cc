#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/ibs_identify.h"
#include "datagen/adult.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;
using ::remedy::testing::SmallSchema;

// A grid with one strongly skewed cell (a0, b0): ratio 4.0 vs balanced
// neighbors at ratio ~1.0.
Dataset PlantedBias() {
  return GridDataset({{{200, 50}, {50, 50}},
                      {{50, 50}, {50, 50}},
                      {{50, 50}, {50, 50}}});
}

TEST(IbsIdentifyTest, FindsPlantedBiasedRegion) {
  IbsParams params;
  params.imbalance_threshold = 1.0;
  std::vector<BiasedRegion> ibs = IdentifyIbs(PlantedBias(), params).value();
  ASSERT_FALSE(ibs.empty());
  bool found = false;
  for (const BiasedRegion& region : ibs) {
    if (region.pattern == Pattern({0, 0})) {
      found = true;
      EXPECT_DOUBLE_EQ(region.ratio, 4.0);
      EXPECT_NEAR(region.neighbor_ratio, 1.0, 0.01);
      EXPECT_EQ(region.counts.positives, 200);
      EXPECT_EQ(region.counts.negatives, 50);
    }
  }
  EXPECT_TRUE(found);
}

TEST(IbsIdentifyTest, BalancedDataHasNoIbs) {
  Dataset data = GridDataset({{{50, 50}, {50, 50}},
                              {{50, 50}, {50, 50}},
                              {{50, 50}, {50, 50}}});
  IbsParams params;
  params.imbalance_threshold = 0.1;
  EXPECT_TRUE(IdentifyIbs(data, params).value().empty());
}

TEST(IbsIdentifyTest, SizeFilterSkipsSmallRegions) {
  // The skewed cell has only 20 instances; k = 30 must skip it.
  Dataset data = GridDataset({{{18, 2}, {50, 50}},
                              {{50, 50}, {50, 50}},
                              {{50, 50}, {50, 50}}});
  IbsParams params;
  params.imbalance_threshold = 0.5;
  params.min_region_size = 30;
  for (const BiasedRegion& region : IdentifyIbs(data, params).value()) {
    EXPECT_NE(region.pattern, Pattern({0, 0}));
  }
  params.min_region_size = 10;
  std::vector<BiasedRegion> ibs = IdentifyIbs(data, params).value();
  bool found = std::any_of(ibs.begin(), ibs.end(), [](const BiasedRegion& r) {
    return r.pattern == Pattern({0, 0});
  });
  EXPECT_TRUE(found);
}

TEST(IbsIdentifyTest, ThresholdControlsSensitivity) {
  Dataset data = PlantedBias();
  IbsParams loose;
  loose.imbalance_threshold = 0.05;
  IbsParams tight;
  tight.imbalance_threshold = 5.0;
  EXPECT_GE(IdentifyIbs(data, loose).value().size(),
            IdentifyIbs(data, tight).value().size());
  EXPECT_TRUE(IdentifyIbs(data, tight).value().empty());
}

TEST(IbsIdentifyTest, LeafScopeOnlyLeafLevel) {
  IbsParams params;
  params.imbalance_threshold = 0.3;
  params.scope = IbsScope::kLeaf;
  for (const BiasedRegion& region : IdentifyIbs(PlantedBias(), params).value()) {
    EXPECT_EQ(region.pattern.NumDeterministic(), 2);
  }
}

TEST(IbsIdentifyTest, TopScopeOnlyLevelOne) {
  IbsParams params;
  params.imbalance_threshold = 0.05;
  params.scope = IbsScope::kTop;
  std::vector<BiasedRegion> ibs = IdentifyIbs(PlantedBias(), params).value();
  for (const BiasedRegion& region : ibs) {
    EXPECT_EQ(region.pattern.NumDeterministic(), 1);
  }
  // The a0 marginal (250 pos / 100 neg vs others ~1.0) must show up.
  bool found = std::any_of(ibs.begin(), ibs.end(), [](const BiasedRegion& r) {
    return r.pattern == Pattern({0, Pattern::kWildcard});
  });
  EXPECT_TRUE(found);
}

TEST(IbsIdentifyTest, LatticeScopeIsSupersetOfLeafAndTop) {
  IbsParams params;
  params.imbalance_threshold = 0.3;
  std::vector<BiasedRegion> lattice = IdentifyIbs(PlantedBias(), params).value();
  params.scope = IbsScope::kLeaf;
  std::vector<BiasedRegion> leaf = IdentifyIbs(PlantedBias(), params).value();
  params.scope = IbsScope::kTop;
  std::vector<BiasedRegion> top = IdentifyIbs(PlantedBias(), params).value();
  EXPECT_EQ(lattice.size(), leaf.size() + top.size());
}

TEST(IbsIdentifyTest, AllPositiveRegionUsesSentinel) {
  Dataset data = GridDataset({{{60, 0}, {30, 30}},
                              {{30, 30}, {30, 30}},
                              {{30, 30}, {30, 30}}});
  IbsParams params;
  params.imbalance_threshold = 1.0;
  std::vector<BiasedRegion> ibs = IdentifyIbs(data, params).value();
  bool found = false;
  for (const BiasedRegion& region : ibs) {
    if (region.pattern == Pattern({0, 0})) {
      found = true;
      EXPECT_DOUBLE_EQ(region.ratio, kAllPositiveRatio);
    }
  }
  // |(-1) - ~1.0| = 2 > 1: the sentinel makes the region biased.
  EXPECT_TRUE(found);
}

TEST(IbsIdentifyTest, DominatesAnyBiasedRegion) {
  IbsParams params;
  params.imbalance_threshold = 1.0;
  std::vector<BiasedRegion> ibs = IdentifyIbs(PlantedBias(), params).value();
  // (a=0) dominates the biased (a0, b0).
  EXPECT_TRUE(
      DominatesAnyBiasedRegion(Pattern({0, Pattern::kWildcard}), ibs));
  EXPECT_FALSE(
      DominatesAnyBiasedRegion(Pattern({2, Pattern::kWildcard}), ibs));
}

// Property: naive and optimized algorithms find identical IBS on random
// data, for T = 1 and for the whole-node regime.
class IbsAlgorithmEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(IbsAlgorithmEquivalenceTest, NaiveEqualsOptimized) {
  auto [seed, distance_threshold] = GetParam();
  Rng rng(seed);
  Dataset data(SmallSchema());
  for (int i = 0; i < 400; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2);
    // Skew some cells so the IBS is non-trivial.
    double p = (a == 0 && b == 0) ? 0.8 : (a == 2 ? 0.2 : 0.5);
    data.AddRow({a, b, rng.UniformInt(2)}, rng.Bernoulli(p) ? 1 : 0);
  }
  IbsParams params;
  params.imbalance_threshold = 0.2;
  params.min_region_size = 10;
  params.distance_threshold = distance_threshold;
  params.algorithm = IbsAlgorithm::kNaive;
  std::vector<BiasedRegion> naive = IdentifyIbs(data, params).value();
  params.algorithm = IbsAlgorithm::kOptimized;
  std::vector<BiasedRegion> optimized = IdentifyIbs(data, params).value();
  ASSERT_EQ(naive.size(), optimized.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive[i].pattern, optimized[i].pattern);
    EXPECT_EQ(naive[i].neighbor_counts, optimized[i].neighbor_counts);
    EXPECT_DOUBLE_EQ(naive[i].neighbor_ratio, optimized[i].neighbor_ratio);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, IbsAlgorithmEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1.0, 2.0)));

// The Fig. 9 workload end to end: on Adult widened to |X| = 3..8, the naive
// and optimized identification must produce field-for-field identical IBS.
// Combined with the rollup-vs-scan equivalence in region_counter_test, this
// pins the counting engine to the per-node-scan reference behavior.
TEST(IbsIdentifyTest, AdultScalabilityNaiveEqualsOptimized) {
#ifdef REMEDY_TSAN_BUILD
  GTEST_SKIP() << "45k-row dataset sweep is too slow under TSan";
#endif
  Dataset base = MakeAdult();
  for (int count = 3; count <= 8; ++count) {
    Dataset data = base;
    data.SetProtected(AdultScalabilityProtected(count));
    IbsParams params;
    params.imbalance_threshold = 0.5;
    params.algorithm = IbsAlgorithm::kNaive;
    std::vector<BiasedRegion> naive = IdentifyIbs(data, params).value();
    params.algorithm = IbsAlgorithm::kOptimized;
    std::vector<BiasedRegion> optimized = IdentifyIbs(data, params).value();
    ASSERT_EQ(naive.size(), optimized.size()) << "|X| = " << count;
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_EQ(naive[i].pattern, optimized[i].pattern);
      EXPECT_EQ(naive[i].counts, optimized[i].counts);
      EXPECT_EQ(naive[i].neighbor_counts, optimized[i].neighbor_counts);
      EXPECT_DOUBLE_EQ(naive[i].ratio, optimized[i].ratio);
      EXPECT_DOUBLE_EQ(naive[i].neighbor_ratio, optimized[i].neighbor_ratio);
    }
  }
}

}  // namespace
}  // namespace remedy
