#include "common/metrics.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/pipeline_metrics.h"
#include "common/thread_pool.h"

namespace remedy {
namespace {

// The registry is process-global and other code (thread pools, loaders)
// writes into it, so every assertion here is delta-based: snapshot, act,
// snapshot again, compare the difference.

int64_t CounterValue(const std::string& name) {
  for (const MetricSnapshot& s : MetricsRegistry::Global().Snapshot()) {
    if (s.name == name) return s.value;
  }
  return -1;
}

TEST(CounterTest, IncrementsAccumulate) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

// The shard-aggregation contract: increments from many threads — which land
// on different shards — sum to exactly the number of increments. The TSan
// twin runs this under -fsanitize=thread.
TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge gauge;
  gauge.Set(5);
  EXPECT_EQ(gauge.Value(), 5);
  EXPECT_EQ(gauge.Max(), 5);
  gauge.Add(3);
  EXPECT_EQ(gauge.Value(), 8);
  EXPECT_EQ(gauge.Max(), 8);
  gauge.Add(-6);
  EXPECT_EQ(gauge.Value(), 2);
  EXPECT_EQ(gauge.Max(), 8) << "max must not follow the value down";
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(gauge.Max(), 0);
}

TEST(GaugeTest, ConcurrentAddsBalanceOut) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  Gauge gauge;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge.Add(1);
        gauge.Add(-1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_GE(gauge.Max(), 1);
  EXPECT_LE(gauge.Max(), kThreads);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds values <= 1; bucket i holds (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 0);
  EXPECT_EQ(Histogram::BucketFor(2), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 2);
  EXPECT_EQ(Histogram::BucketFor(5), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 3);
  EXPECT_EQ(Histogram::BucketFor(9), 4);
  EXPECT_EQ(Histogram::BucketFor(1024), 10);
  EXPECT_EQ(Histogram::BucketFor(1025), 11);
  // Out-of-range values clamp into the open-ended last bucket.
  EXPECT_EQ(Histogram::BucketFor(INT64_MAX), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            INT64_MAX);
}

TEST(HistogramTest, ObserveAggregates) {
  Histogram hist;
  hist.Observe(1);
  hist.Observe(100);
  hist.Observe(100);
  hist.Observe(10000);
  EXPECT_EQ(hist.Count(), 4);
  EXPECT_EQ(hist.Sum(), 10201);
  std::array<int64_t, Histogram::kNumBuckets> buckets = hist.BucketCounts();
  EXPECT_EQ(buckets[Histogram::BucketFor(1)], 1);
  EXPECT_EQ(buckets[Histogram::BucketFor(100)], 2);
  EXPECT_EQ(buckets[Histogram::BucketFor(10000)], 1);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0);
  EXPECT_EQ(hist.Sum(), 0);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram hist;
  EXPECT_EQ(hist.ApproxQuantile(0.5), 0) << "empty histogram";
  for (int i = 0; i < 99; ++i) hist.Observe(10);    // bucket (8, 16]
  hist.Observe(1 << 20);                            // one outlier
  // The 50th percentile observation sits in the (8, 16] bucket, whose
  // inclusive upper bound is 16.
  EXPECT_EQ(hist.ApproxQuantile(0.5), 16);
  // The 99th percentile is still within the bulk; the 100th is the outlier.
  EXPECT_EQ(hist.ApproxQuantile(0.99), 16);
  EXPECT_EQ(hist.ApproxQuantile(1.0), 1 << 20);
}

TEST(HistogramTest, ConcurrentObservesSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  Histogram hist;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) hist.Observe(t + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Count(), int64_t{kThreads} * kPerThread);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += int64_t{t + 1} * kPerThread;
  EXPECT_EQ(hist.Sum(), expected_sum);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test/registry_stable", "events", "help");
  Counter* b = registry.GetCounter("test/registry_stable", "events", "help");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(CounterValue("test/registry_stable"), b->Value());
}

// Death tests fork, which TSan instrumentation does not tolerate well;
// the sanitizer twin skips this case.
#if !defined(REMEDY_TSAN_BUILD)
TEST(RegistryTest, TypeMismatchDies) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test/registry_typed", "events", "help");
  EXPECT_DEATH(registry.GetGauge("test/registry_typed", "events", "help"),
               "");
}
#endif

TEST(RegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test/zzz_last", "events", "help");
  registry.GetCounter("test/aaa_first", "events", "help");
  std::vector<MetricSnapshot> snapshots = registry.Snapshot();
  ASSERT_GE(snapshots.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      snapshots.begin(), snapshots.end(),
      [](const MetricSnapshot& a, const MetricSnapshot& b) {
        return a.name < b.name;
      }));
  std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), snapshots.size());
}

TEST(RegistryTest, PipelineMetricsRegistersEveryDocumentedName) {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  (void)metrics;
  std::set<std::string> registered;
  for (const std::string& name : MetricsRegistry::Global().Names()) {
    registered.insert(name);
  }
  // Spot-check one instrument per family; tools/docs_check.sh enforces the
  // full list against docs/METRICS.md.
  for (const char* name :
       {"lattice/nodes_built", "ibs/nodes_visited", "remedy/regions_planned",
        "loader/rows_loaded", "csv/records", "threadpool/tasks_submitted",
        "threadpool/queue_depth", "threadpool/task_latency_ns",
        "fault/points_crossed"}) {
    EXPECT_TRUE(registered.count(name)) << name << " not registered";
  }
}

TEST(RegistryTest, ThreadPoolPublishesTaskMetrics) {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  const int64_t submitted_before = metrics.threadpool_tasks_submitted->Value();
  const int64_t latency_before = metrics.threadpool_task_latency_ns->Count();
  const int64_t wait_before = metrics.threadpool_queue_wait_ns->Count();
  {
    ThreadPool pool(4);
    ASSERT_TRUE(pool.ParallelFor(32, [](int64_t) {}).ok());
  }
  EXPECT_GE(metrics.threadpool_tasks_submitted->Value() - submitted_before, 1);
  EXPECT_GE(metrics.threadpool_task_latency_ns->Count() - latency_before, 1);
  EXPECT_EQ(metrics.threadpool_task_latency_ns->Count() - latency_before,
            metrics.threadpool_queue_wait_ns->Count() - wait_before);
  // Every submitted task drained: the queue-depth gauge is balanced again.
  EXPECT_EQ(metrics.threadpool_queue_depth->Value(), 0);
}

TEST(JsonTest, MetricsToJsonShape) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test/json_counter", "rows", "help");
  Gauge* gauge = registry.GetGauge("test/json_gauge", "tasks", "help");
  Histogram* hist = registry.GetHistogram("test/json_hist", "ns", "help");
  counter->Increment(7);
  gauge->Set(3);
  hist->Observe(100);
  const std::string json = MetricsToJson(registry.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"test/json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"max\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(JsonTest, WriteMetricsJsonFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/metrics_roundtrip.json";
  ASSERT_TRUE(WriteMetricsJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str().front(), '{');
  std::remove(path.c_str());
}

TEST(JsonTest, WriteMetricsJsonFileReportsIoError) {
  Status status = WriteMetricsJsonFile("/nonexistent-dir/metrics.json");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(PrintTest, TableListsEveryInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test/print_counter", "rows", "help");
  std::ostringstream out;
  PrintMetricsTable(registry.Snapshot(), out);
  const std::string table = out.str();
  EXPECT_NE(table.find("test/print_counter"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
}

}  // namespace
}  // namespace remedy
