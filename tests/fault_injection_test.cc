// Deterministic fault-injection suite: every registered fault point is
// driven through its public entry point and must surface a clean error
// Status — never an abort. Also proves the ingestion hardening acceptance
// criterion: loading a lightly corrupted Adult CSV under quarantine yields
// the exact IBS of loading only the surviving rows.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "data/columnar.h"
#include "data/loader.h"
#include "data/shard_file.h"
#include "datagen/adult.h"

namespace remedy {
namespace {

std::string TempPath(const std::string& name) {
  // Keyed by pid so the plain and sanitizer twins never collide when ctest
  // schedules the same case from multiple binaries concurrently.
  return ::testing::TempDir() + name + "_" + std::to_string(::getpid());
}

void WriteText(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

TEST(FaultInjectionTest, RegistryListsEveryPoint) {
  std::vector<std::string> points = RegisteredFaultPoints();
  std::set<std::string> expected = {
      "csv/read",          "csv/write",        "loader/build",
      "threadpool/dispatch", "remedy/apply",   "store/spill_write",
      "store/mmap_map",    "store/shard_read", "wal/append",
      "wal/fsync",         "wal/replay",       "serve/ingest",
      "serve/apply"};
  EXPECT_EQ(std::set<std::string>(points.begin(), points.end()), expected);
}

TEST(FaultInjectionTest, InactiveByDefault) {
  EXPECT_FALSE(FaultInjectionActive());
  {
    FaultInjector injector;
    EXPECT_TRUE(FaultInjectionActive());
  }
  EXPECT_FALSE(FaultInjectionActive());
}

TEST(FaultInjectionTest, CsvReadFailAlwaysExhaustsRetries) {
  const std::string path = TempPath("fi_read.csv");
  WriteText(path, "a,label\nx,1\ny,0\n");
  FaultInjector injector;
  injector.FailAlways("csv/read");
  StatusOr<CsvTable> table = ReadCsvFile(path);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
  // All three attempts were burned, and the context says so.
  EXPECT_EQ(injector.HitCount("csv/read"), 3);
  EXPECT_NE(table.status().message().find("3 attempt"), std::string::npos);
}

TEST(FaultInjectionTest, CsvReadFailNthOnceIsAbsorbedByRetry) {
  const std::string path = TempPath("fi_read_retry.csv");
  WriteText(path, "a,label\nx,1\ny,0\n");
  FaultInjector injector;
  injector.FailNth("csv/read", 1);
  StatusOr<CsvTable> table = ReadCsvFile(path);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table.value().rows.size(), 2u);
  EXPECT_EQ(injector.HitCount("csv/read"), 2);  // one failure + one success
}

TEST(FaultInjectionTest, CsvWriteSurfacesInjectedError) {
  FaultInjector injector;
  injector.FailAlways("csv/write");
  CsvTable table;
  table.header = {"a"};
  table.rows = {{"x"}};
  Status status = WriteCsvFile(TempPath("fi_write.csv"), table);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(FaultInjectionTest, LoaderBuildSurfacesInjectedError) {
  CsvTable table = ParseCsv("a,label\nx,1\ny,0\n").value();
  FaultInjector injector;
  injector.FailAlways("loader/build", StatusCode::kResourceExhausted);
  StatusOr<Dataset> built = BuildDataset(table, LoaderOptions());
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kResourceExhausted);
  // The same injection crosses LoadCsvDataset, which adds file context.
  const std::string path = TempPath("fi_build.csv");
  WriteText(path, "a,label\nx,1\ny,0\n");
  StatusOr<Dataset> loaded = LoadCsvDataset(path, LoaderOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
}

TEST(FaultInjectionTest, ThreadPoolDispatchSurfacesInjectedError) {
  ThreadPool pool(4);
  FaultInjector injector;
  injector.FailAlways("threadpool/dispatch", StatusCode::kInternal);
  std::atomic<int> ran{0};
  Status status = pool.ParallelFor(32, [&ran](int64_t) { ++ran; });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(ran.load(), 0);  // fault fires before any task dispatch
}

TEST(FaultInjectionTest, SpillWriteSurfacesAtFinishSpilled) {
  Dataset data = MakeAdult(600, 3);
  ColumnarShardStoreBuilder builder(data.schema(), /*shard_rows=*/128);
  ASSERT_TRUE(builder.EnableSpill(TempPath("fi_spill")).ok());
  FaultInjector injector;
  injector.FailAlways("store/spill_write");
  builder.Append(data);  // write failures are remembered, not fatal
  StatusOr<ColumnarShardStore> store = builder.FinishSpilled();
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
  EXPECT_NE(store.status().message().find("fi_spill"), std::string::npos);
  EXPECT_GE(injector.HitCount("store/spill_write"), 1);
}

TEST(FaultInjectionTest, SpillFailureCleansPartialShardFiles) {
  const std::string dir = TempPath("fi_spill_clean");
  Dataset data = MakeAdult(600, 5);
  ColumnarShardStoreBuilder builder(data.schema(), /*shard_rows=*/128);
  ASSERT_TRUE(builder.EnableSpill(dir).ok());
  FaultInjector injector;
  injector.FailNth("store/spill_write", 2);  // shard 0 lands, shard 1 fails
  builder.Append(data);
  StatusOr<ColumnarShardStore> store = builder.FinishSpilled();
  ASSERT_FALSE(store.ok());
  // The completed shard 0 must not survive as a truncated-looking store.
  struct stat info;
  EXPECT_NE(::stat((dir + "/" + ShardFileName(0)).c_str(), &info), 0);
}

TEST(FaultInjectionTest, ShardReadFaultIsAbsorbedByRetry) {
  const std::string dir = TempPath("fi_shard_retry");
  Dataset data = MakeAdult(600, 6);
  ColumnarShardStoreBuilder builder(data.schema(), /*shard_rows=*/128);
  ASSERT_TRUE(builder.EnableSpill(dir).ok());
  builder.Append(data);
  ASSERT_TRUE(builder.FinishSpilled().ok());
  FaultInjector injector;
  injector.FailNth("store/shard_read", 1);
  StatusOr<ColumnarShardStore> reopened =
      ColumnarShardStore::OpenSpilled(dir, data.schema());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.value().NumRows(), 600);
}

TEST(FaultInjectionTest, ShardReadFailAlwaysExhaustsRetries) {
  const std::string dir = TempPath("fi_shard_exhaust");
  Dataset data = MakeAdult(300, 7);
  ColumnarShardStoreBuilder builder(data.schema(), /*shard_rows=*/128);
  ASSERT_TRUE(builder.EnableSpill(dir).ok());
  builder.Append(data);
  ASSERT_TRUE(builder.FinishSpilled().ok());
  FaultInjector injector;
  injector.FailAlways("store/shard_read");
  StatusOr<ColumnarShardStore> reopened =
      ColumnarShardStore::OpenSpilled(dir, data.schema());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIoError);
  EXPECT_EQ(injector.HitCount("store/shard_read"), 3);  // bounded attempts
}

TEST(FaultInjectionTest, MmapMapFaultIsAbsorbedByRetry) {
  Dataset data = MakeAdult(600, 8);
  ColumnarShardStoreBuilder builder(data.schema(), /*shard_rows=*/128);
  ASSERT_TRUE(builder.EnableSpill(TempPath("fi_map_retry")).ok());
  builder.Append(data);
  StatusOr<ColumnarShardStore> store = builder.FinishSpilled();
  ASSERT_TRUE(store.ok()) << store.status();
  FaultInjector injector;
  injector.FailNth("store/mmap_map", 1);  // transient: one attempt lost
  IbsParams params;
  params.imbalance_threshold = 0.3;
  StatusOr<std::vector<BiasedRegion>> ibs =
      IdentifyIbs(store.value(), params);
  ASSERT_TRUE(ibs.ok()) << ibs.status();
}

TEST(FaultInjectionTest, MmapMapSurfacesThroughIdentify) {
  Dataset data = MakeAdult(600, 4);
  ColumnarShardStoreBuilder builder(data.schema(), /*shard_rows=*/128);
  ASSERT_TRUE(builder.EnableSpill(TempPath("fi_map")).ok());
  builder.Append(data);
  StatusOr<ColumnarShardStore> store = builder.FinishSpilled();
  ASSERT_TRUE(store.ok()) << store.status();
  // The store is opened lazily: arming the map point now makes the first
  // count's Hierarchy::PrepareCounting fail with a clean Status.
  FaultInjector injector;
  injector.FailAlways("store/mmap_map");
  IbsParams params;
  params.imbalance_threshold = 0.3;
  StatusOr<std::vector<BiasedRegion>> ibs =
      IdentifyIbs(store.value(), params);
  ASSERT_FALSE(ibs.ok());
  EXPECT_EQ(ibs.status().code(), StatusCode::kIoError);
  EXPECT_GE(injector.HitCount("store/mmap_map"), 1);
}

TEST(FaultInjectionTest, RemedySurfacesDispatchFaultWithContext) {
  Dataset data = MakeAdult(400, 11);
  FaultInjector injector;
  injector.FailAlways("threadpool/dispatch", StatusCode::kInternal);
  RemedyParams params;
  // Force the parallel EagerBuild/planning path even on 1-core machines,
  // where DefaultThreads() == 1 would keep everything inline.
  params.planning_threads = 4;
  StatusOr<Dataset> remedied = RemedyDataset(data, params);
  ASSERT_FALSE(remedied.ok());
  EXPECT_EQ(remedied.status().code(), StatusCode::kInternal);
}

TEST(FaultInjectionTest, RemedyApplySurfacesInjectedError) {
  Dataset data = MakeAdult(400, 11);
  FaultInjector injector;
  injector.FailAlways("remedy/apply", StatusCode::kResourceExhausted);
  StatusOr<Dataset> remedied = RemedyDataset(data, RemedyParams());
  ASSERT_FALSE(remedied.ok());
  EXPECT_EQ(remedied.status().code(), StatusCode::kResourceExhausted);
  // RemedyUntilConverged forwards the same failure.
  StatusOr<IterativeRemedyResult> iterated =
      RemedyUntilConverged(data, RemedyParams(), 2);
  ASSERT_FALSE(iterated.ok());
  EXPECT_EQ(iterated.status().code(), StatusCode::kResourceExhausted);
}

TEST(FaultInjectionTest, DisarmStopsFailuresButKeepsCounting) {
  const std::string path = TempPath("fi_disarm.csv");
  WriteText(path, "a,label\nx,1\ny,0\n");
  FaultInjector injector;
  injector.FailAlways("csv/read");
  EXPECT_FALSE(ReadCsvFile(path).ok());
  int64_t hits_while_armed = injector.HitCount("csv/read");
  injector.Disarm("csv/read");
  EXPECT_TRUE(ReadCsvFile(path).ok());
  EXPECT_EQ(injector.HitCount("csv/read"), hits_while_armed + 1);
}

TEST(FaultInjectionTest, ProbabilisticFailuresAreSeedDeterministic) {
  auto draw_pattern = [](uint64_t seed) {
    FaultInjector injector;
    injector.FailWithProbability("csv/read", 0.5, seed);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += injector.Hit("csv/read").ok() ? '.' : 'X';
    }
    return pattern;
  };
  std::string first = draw_pattern(42);
  EXPECT_EQ(first, draw_pattern(42));
  EXPECT_NE(first, draw_pattern(43));
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

// --- Quarantine-load equivalence (the ingestion acceptance criterion) -----

// Corrupts ~`fraction` of the data lines of `csv` in ways that break the
// field count, so every damaged line is detectable. Returns the corrupted
// text and fills `clean` with the same file minus the damaged lines.
std::string CorruptLines(const std::string& csv, double fraction,
                         uint64_t seed, std::string* clean,
                         int* num_corrupted) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < csv.size()) {
    size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    lines.push_back(csv.substr(start, end - start));
    start = end + 1;
  }
  Rng rng(seed);
  std::string corrupted = lines[0] + "\n";
  *clean = lines[0] + "\n";
  *num_corrupted = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    bool damage = rng.Uniform() < fraction;
    if (!damage) {
      corrupted += lines[i] + "\n";
      *clean += lines[i] + "\n";
      continue;
    }
    ++*num_corrupted;
    std::string bad = lines[i];
    switch (rng.UniformInt(3)) {
      case 0: {  // delete the first comma: one field short
        size_t comma = bad.find(',');
        if (comma != std::string::npos) bad.erase(comma, 1);
        break;
      }
      case 1:  // extra trailing field: one field long
        bad += ",<corrupt>";
        break;
      default:  // truncate at the last comma: short and ragged
        bad = bad.substr(0, bad.rfind(','));
        break;
    }
    corrupted += bad + "\n";
  }
  return corrupted;
}

TEST(FaultInjectionTest, QuarantineLoadMatchesCleanLoadOfSurvivingRows) {
  Dataset source = MakeAdult(3000, 202);
  std::string healthy = WriteCsv(source.ToCsv());

  std::string clean;
  int num_corrupted = 0;
  std::string corrupted =
      CorruptLines(healthy, /*fraction=*/0.04, /*seed=*/99, &clean,
                   &num_corrupted);
  ASSERT_GT(num_corrupted, 0);
  ASSERT_LT(num_corrupted, 3000 * 0.05 * 2);  // sanity: stayed light

  LoaderOptions options;
  options.protected_attributes = {"age",          "race",
                                  "gender",       "marital_status",
                                  "relationship", "country"};
  const std::string corrupted_path = TempPath("fi_adult_corrupted.csv");
  const std::string clean_path = TempPath("fi_adult_clean.csv");
  WriteText(corrupted_path, corrupted);
  WriteText(clean_path, clean);

  LoaderOptions quarantine_options = options;
  quarantine_options.on_bad_row = BadRowPolicy::kQuarantine;
  quarantine_options.max_quarantine_fraction = 0.05;
  QuarantineReport quarantine;
  Dataset from_corrupted =
      LoadCsvDataset(corrupted_path, quarantine_options, nullptr, &quarantine)
          .value();
  EXPECT_EQ(quarantine.rows_quarantined, num_corrupted);

  Dataset from_clean = LoadCsvDataset(clean_path, options).value();

  // The two datasets must be bit-identical...
  ASSERT_EQ(from_corrupted.NumRows(), from_clean.NumRows());
  ASSERT_EQ(from_corrupted.NumColumns(), from_clean.NumColumns());
  for (int r = 0; r < from_clean.NumRows(); ++r) {
    ASSERT_EQ(from_corrupted.Label(r), from_clean.Label(r)) << "row " << r;
    for (int c = 0; c < from_clean.NumColumns(); ++c) {
      ASSERT_EQ(from_corrupted.Value(r, c), from_clean.Value(r, c))
          << "row " << r << " col " << c;
    }
  }

  // ...and so must the IBS identified from them.
  IbsParams params;
  std::vector<BiasedRegion> ibs_corrupted =
      IdentifyIbs(from_corrupted, params).value();
  std::vector<BiasedRegion> ibs_clean =
      IdentifyIbs(from_clean, params).value();
  ASSERT_EQ(ibs_corrupted.size(), ibs_clean.size());
  ASSERT_GT(ibs_clean.size(), 0u);  // the comparison is non-vacuous
  for (size_t i = 0; i < ibs_clean.size(); ++i) {
    EXPECT_EQ(ibs_corrupted[i].pattern.ToString(from_corrupted.schema()),
              ibs_clean[i].pattern.ToString(from_clean.schema()));
    EXPECT_EQ(ibs_corrupted[i].counts.positives,
              ibs_clean[i].counts.positives);
    EXPECT_EQ(ibs_corrupted[i].counts.negatives,
              ibs_clean[i].counts.negatives);
    EXPECT_DOUBLE_EQ(ibs_corrupted[i].ratio, ibs_clean[i].ratio);
    EXPECT_DOUBLE_EQ(ibs_corrupted[i].neighbor_ratio,
                     ibs_clean[i].neighbor_ratio);
  }
}

TEST(FaultInjectionTest, HeavyCorruptionTripsTheCircuitBreaker) {
  Dataset source = MakeAdult(500, 202);
  std::string healthy = WriteCsv(source.ToCsv());
  std::string clean;
  int num_corrupted = 0;
  std::string corrupted = CorruptLines(healthy, /*fraction=*/0.30,
                                       /*seed=*/7, &clean, &num_corrupted);
  ASSERT_GT(num_corrupted, 500 * 0.10);
  const std::string path = TempPath("fi_adult_heavy.csv");
  WriteText(path, corrupted);

  LoaderOptions options;
  options.on_bad_row = BadRowPolicy::kQuarantine;
  options.max_quarantine_fraction = 0.05;
  StatusOr<Dataset> loaded = LoadCsvDataset(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataCorruption);
  EXPECT_NE(loaded.status().message().find("max_quarantine_fraction"),
            std::string::npos);
}

}  // namespace
}  // namespace remedy
