#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/imbalance.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;

TEST(ImbalanceScoreTest, RatioOfPositivesToNegatives) {
  EXPECT_DOUBLE_EQ(ImbalanceScore(882, 397), 882.0 / 397.0);  // Example 4
  EXPECT_DOUBLE_EQ(ImbalanceScore(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(ImbalanceScore(RegionCounts{3, 6}), 0.5);
}

TEST(ImbalanceScoreTest, AllPositiveSentinel) {
  EXPECT_DOUBLE_EQ(ImbalanceScore(7, 0), kAllPositiveRatio);
  EXPECT_DOUBLE_EQ(ImbalanceScore(0, 0), kAllPositiveRatio);
}

TEST(NeighborhoodTest, NaiveNeighborsAtDistanceOne) {
  // 3x2 grid; region (a0, b0) has T=1 neighbors (a1,b0), (a2,b0), (a0,b1).
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 1}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  RegionCounts counts = neighborhood.NaiveNeighborCounts(Pattern({0, 0}));
  EXPECT_EQ(counts.positives, 4 + 1 + 1);
  EXPECT_EQ(counts.negatives, 1 + 1 + 2);
}

TEST(NeighborhoodTest, NaiveExcludesRegionItself) {
  Dataset data = GridDataset({{{10, 10}, {1, 1}},
                              {{1, 1}, {1, 1}},
                              {{1, 1}, {1, 1}}});
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  RegionCounts counts = neighborhood.NaiveNeighborCounts(Pattern({0, 0}));
  // (a0,b0)'s own 10/10 must not appear.
  EXPECT_EQ(counts.positives, 3);
  EXPECT_EQ(counts.negatives, 3);
}

TEST(NeighborhoodTest, LargeTCoversWholeNode) {
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 1}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  Hierarchy hierarchy(data);
  // T = sqrt(2) covers the node diameter of a 2-attribute nominal node.
  NeighborhoodCalculator neighborhood(hierarchy, 2.0);
  RegionCounts counts = neighborhood.NaiveNeighborCounts(Pattern({1, 1}));
  EXPECT_EQ(counts.positives, data.PositiveCount() - 5);
  EXPECT_EQ(counts.negatives, data.NegativeCount() - 5);
}

TEST(NeighborhoodTest, OptimizedMatchesNaiveAtTOne) {
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 1}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  const auto& node = hierarchy.NodeCounts(0b11);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      Pattern pattern({a, b});
      RegionCounts region =
          node.at(hierarchy.counter().KeyFor(pattern, 0b11));
      RegionCounts naive = neighborhood.NaiveNeighborCounts(pattern);
      RegionCounts optimized =
          neighborhood.OptimizedNeighborCounts(pattern, region);
      EXPECT_EQ(naive, optimized) << "(" << a << "," << b << ")";
    }
  }
}

TEST(NeighborhoodTest, OptimizedMatchesNaiveAtLevelOne) {
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 1}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  const auto& node = hierarchy.NodeCounts(0b01);
  for (int a = 0; a < 3; ++a) {
    Pattern pattern({a, Pattern::kWildcard});
    RegionCounts region = node.at(hierarchy.counter().KeyFor(pattern, 0b01));
    EXPECT_EQ(neighborhood.NaiveNeighborCounts(pattern),
              neighborhood.OptimizedNeighborCounts(pattern, region));
  }
}

TEST(NeighborhoodTest, OptimizedLargeTUsesNodeComplement) {
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 1}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 2.0);  // T = |X| regime
  Pattern pattern({1, 1});
  RegionCounts region{5, 5};
  RegionCounts counts =
      neighborhood.OptimizedNeighborCounts(pattern, region);
  EXPECT_EQ(counts.positives, data.PositiveCount() - 5);
  EXPECT_EQ(counts.negatives, data.NegativeCount() - 5);
  EXPECT_EQ(counts, neighborhood.NaiveNeighborCounts(pattern));
}

TEST(NeighborhoodTest, SupportsOptimizedRules) {
  Dataset data = GridDataset({{{1, 1}, {1, 1}},
                              {{1, 1}, {1, 1}},
                              {{1, 1}, {1, 1}}});
  Hierarchy hierarchy(data);
  EXPECT_TRUE(NeighborhoodCalculator(hierarchy, 1.0).SupportsOptimized(0b11));
  EXPECT_TRUE(NeighborhoodCalculator(hierarchy, 2.0).SupportsOptimized(0b11));
  // T = 1.3 is neither T=1 nor the whole-node regime.
  EXPECT_FALSE(
      NeighborhoodCalculator(hierarchy, 1.3).SupportsOptimized(0b11));
}

// Property sweep: naive and optimized agree on random datasets at T = 1
// for every region of every node.
class NeighborhoodPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NeighborhoodPropertyTest, NaiveEqualsOptimizedEverywhere) {
  Rng rng(GetParam());
  Dataset data(remedy::testing::SmallSchema());
  int rows = 200 + rng.UniformInt(200);
  for (int i = 0; i < rows; ++i) {
    data.AddRow({rng.UniformInt(3), rng.UniformInt(2), rng.UniformInt(2)},
                rng.UniformInt(2));
  }
  Hierarchy hierarchy(data);
  NeighborhoodCalculator neighborhood(hierarchy, 1.0);
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    const auto node = hierarchy.NodeCounts(mask);
    for (const auto& [key, counts] : node) {
      Pattern pattern = hierarchy.counter().PatternFor(key, mask);
      EXPECT_EQ(neighborhood.NaiveNeighborCounts(pattern),
                neighborhood.OptimizedNeighborCounts(pattern, counts))
          << pattern.ToString(data.schema()) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeighborhoodPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace remedy
