#include <gtest/gtest.h>

#include "data/loader.h"

namespace remedy {
namespace {

CsvTable MakeTable(const std::string& csv) {
  CsvTable table;
  std::string error;
  EXPECT_TRUE(ParseCsv(csv, /*has_header=*/true, &table, &error)) << error;
  return table;
}

TEST(LoaderTest, BuildsCategoricalDataset) {
  CsvTable table = MakeTable(
      "race,sex,outcome\n"
      "white,male,1\n"
      "black,female,0\n"
      "white,female,1\n"
      "black,male,0\n");
  LoaderOptions options;
  options.protected_attributes = {"race", "sex"};
  Dataset dataset;
  std::string error;
  LoaderReport report;
  ASSERT_TRUE(BuildDataset(table, options, &dataset, &error, &report))
      << error;
  EXPECT_EQ(dataset.NumRows(), 4);
  EXPECT_EQ(dataset.NumColumns(), 2);
  EXPECT_EQ(dataset.schema().NumProtected(), 2);
  EXPECT_EQ(dataset.schema().label_name(), "outcome");
  EXPECT_EQ(dataset.PositiveCount(), 2);
  EXPECT_EQ(report.categorical_columns, 2);
  EXPECT_EQ(report.numeric_columns, 0);
}

TEST(LoaderTest, LabelColumnByName) {
  CsvTable table = MakeTable(
      "y,a\n"
      "yes,p\n"
      "no,q\n");
  LoaderOptions options;
  options.label_column = "y";
  options.positive_label = "yes";
  Dataset dataset;
  std::string error;
  ASSERT_TRUE(BuildDataset(table, options, &dataset, &error)) << error;
  EXPECT_EQ(dataset.NumColumns(), 1);
  EXPECT_EQ(dataset.Label(0), 1);
  EXPECT_EQ(dataset.Label(1), 0);
}

TEST(LoaderTest, NumericColumnsGetQuantileBuckets) {
  std::string csv = "age,label\n";
  for (int i = 0; i < 100; ++i) {
    csv += std::to_string(20 + i) + "," + std::to_string(i % 2) + "\n";
  }
  LoaderOptions options;
  options.numeric_buckets = 4;
  Dataset dataset;
  std::string error;
  LoaderReport report;
  ASSERT_TRUE(BuildDataset(MakeTable(csv), options, &dataset, &error,
                           &report))
      << error;
  EXPECT_EQ(report.numeric_columns, 1);
  const AttributeSchema& age = dataset.schema().attribute(0);
  EXPECT_EQ(age.Cardinality(), 4);
  EXPECT_TRUE(age.ordinal());
  // Buckets roughly balanced.
  std::vector<int> counts(4, 0);
  for (int r = 0; r < dataset.NumRows(); ++r) ++counts[dataset.Value(r, 0)];
  for (int count : counts) EXPECT_NEAR(count, 25, 10);
}

TEST(LoaderTest, SmallNumericDomainStaysCategorical) {
  CsvTable table = MakeTable(
      "flag,label\n"
      "0,1\n"
      "1,0\n"
      "0,1\n"
      "1,0\n");
  LoaderOptions options;
  Dataset dataset;
  std::string error;
  LoaderReport report;
  ASSERT_TRUE(BuildDataset(table, options, &dataset, &error, &report))
      << error;
  EXPECT_EQ(report.categorical_columns, 1);
  EXPECT_FALSE(dataset.schema().attribute(0).ordinal());
}

TEST(LoaderTest, DropsRowsWithMissingValues) {
  CsvTable table = MakeTable(
      "a,label\n"
      "x,1\n"
      ",0\n"
      "?,0\n"
      "y,0\n");
  LoaderOptions options;
  Dataset dataset;
  std::string error;
  LoaderReport report;
  ASSERT_TRUE(BuildDataset(table, options, &dataset, &error, &report))
      << error;
  EXPECT_EQ(dataset.NumRows(), 2);
  EXPECT_EQ(report.rows_dropped_missing, 2);
}

TEST(LoaderTest, PoolsRareCategoriesIntoOther) {
  std::string csv = "city,label\n";
  // Two frequent values plus 30 singletons.
  for (int i = 0; i < 40; ++i) csv += "metropolis," + std::to_string(i % 2) + "\n";
  for (int i = 0; i < 40; ++i) csv += "gotham," + std::to_string(i % 2) + "\n";
  for (int i = 0; i < 30; ++i) {
    csv += "village" + std::to_string(i) + ",0\n";
  }
  LoaderOptions options;
  options.max_categories = 4;
  Dataset dataset;
  std::string error;
  LoaderReport report;
  ASSERT_TRUE(BuildDataset(MakeTable(csv), options, &dataset, &error,
                           &report))
      << error;
  const AttributeSchema& city = dataset.schema().attribute(0);
  EXPECT_EQ(city.Cardinality(), 4);
  EXPECT_GE(city.ValueIndex("<other>"), 0);
  EXPECT_GE(city.ValueIndex("metropolis"), 0);
  EXPECT_EQ(report.pooled_columns, 1);
  // Three values are kept (metropolis, gotham, and the highest-ranked
  // village); the remaining 29 villages share the pooled code.
  int other_code = city.ValueIndex("<other>");
  int pooled = 0;
  for (int r = 0; r < dataset.NumRows(); ++r) {
    pooled += dataset.Value(r, 0) == other_code;
  }
  EXPECT_EQ(pooled, 29);
}

TEST(LoaderTest, RejectsUnknownProtectedAttribute) {
  CsvTable table = MakeTable("a,label\nx,1\ny,0\n");
  LoaderOptions options;
  options.protected_attributes = {"nonexistent"};
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(BuildDataset(table, options, &dataset, &error));
  EXPECT_NE(error.find("nonexistent"), std::string::npos);
}

TEST(LoaderTest, RejectsUnknownLabelColumn) {
  CsvTable table = MakeTable("a,label\nx,1\ny,0\n");
  LoaderOptions options;
  options.label_column = "missing";
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(BuildDataset(table, options, &dataset, &error));
}

TEST(LoaderTest, RejectsConstantLabels) {
  CsvTable table = MakeTable("a,label\nx,1\ny,1\n");
  LoaderOptions options;
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(BuildDataset(table, options, &dataset, &error));
  EXPECT_NE(error.find("constant"), std::string::npos);
}

TEST(LoaderTest, RoundTripsThroughDatasetCsv) {
  // Export a dataset to CSV, reload it, and check the cells agree.
  CsvTable table = MakeTable(
      "race,sex,outcome\n"
      "white,male,1\n"
      "black,female,0\n"
      "asian,male,1\n");
  LoaderOptions options;
  options.protected_attributes = {"race"};
  Dataset first;
  std::string error;
  ASSERT_TRUE(BuildDataset(table, options, &first, &error)) << error;

  CsvTable exported = first.ToCsv();
  Dataset second;
  ASSERT_TRUE(BuildDataset(exported, options, &second, &error)) << error;
  ASSERT_EQ(second.NumRows(), first.NumRows());
  for (int r = 0; r < first.NumRows(); ++r) {
    EXPECT_EQ(second.Label(r), first.Label(r));
    // Codes may be permuted (frequency order), so compare value names.
    for (int c = 0; c < first.NumColumns(); ++c) {
      EXPECT_EQ(
          second.schema().attribute(c).ValueName(second.Value(r, c)),
          first.schema().attribute(c).ValueName(first.Value(r, c)));
    }
  }
}

TEST(LoaderTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "loader_test.csv";
  CsvTable table = MakeTable("a,label\nx,1\ny,0\n");
  std::string error;
  ASSERT_TRUE(WriteCsvFile(path, table, &error)) << error;
  LoaderOptions options;
  Dataset dataset;
  ASSERT_TRUE(LoadCsvDataset(path, options, &dataset, &error)) << error;
  EXPECT_EQ(dataset.NumRows(), 2);
  EXPECT_FALSE(LoadCsvDataset("/nonexistent/file.csv", options, &dataset,
                              &error));
}

}  // namespace
}  // namespace remedy
