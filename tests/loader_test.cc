#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/loader.h"

namespace remedy {
namespace {

CsvTable MakeTable(const std::string& csv) { return ParseCsv(csv).value(); }

TEST(LoaderTest, BuildsCategoricalDataset) {
  CsvTable table = MakeTable(
      "race,sex,outcome\n"
      "white,male,1\n"
      "black,female,0\n"
      "white,female,1\n"
      "black,male,0\n");
  LoaderOptions options;
  options.protected_attributes = {"race", "sex"};
  LoaderReport report;
  Dataset dataset = BuildDataset(table, options, &report).value();
  EXPECT_EQ(dataset.NumRows(), 4);
  EXPECT_EQ(dataset.NumColumns(), 2);
  EXPECT_EQ(dataset.schema().NumProtected(), 2);
  EXPECT_EQ(dataset.schema().label_name(), "outcome");
  EXPECT_EQ(dataset.PositiveCount(), 2);
  EXPECT_EQ(report.categorical_columns, 2);
  EXPECT_EQ(report.numeric_columns, 0);
}

TEST(LoaderTest, LabelColumnByName) {
  CsvTable table = MakeTable(
      "y,a\n"
      "yes,p\n"
      "no,q\n");
  LoaderOptions options;
  options.label_column = "y";
  options.positive_label = "yes";
  Dataset dataset = BuildDataset(table, options).value();
  EXPECT_EQ(dataset.NumColumns(), 1);
  EXPECT_EQ(dataset.Label(0), 1);
  EXPECT_EQ(dataset.Label(1), 0);
}

TEST(LoaderTest, NumericColumnsGetQuantileBuckets) {
  std::string csv = "age,label\n";
  for (int i = 0; i < 100; ++i) {
    csv += std::to_string(20 + i) + "," + std::to_string(i % 2) + "\n";
  }
  LoaderOptions options;
  options.numeric_buckets = 4;
  LoaderReport report;
  Dataset dataset = BuildDataset(MakeTable(csv), options, &report).value();
  EXPECT_EQ(report.numeric_columns, 1);
  const AttributeSchema& age = dataset.schema().attribute(0);
  EXPECT_EQ(age.Cardinality(), 4);
  EXPECT_TRUE(age.ordinal());
  // Buckets roughly balanced.
  std::vector<int> counts(4, 0);
  for (int r = 0; r < dataset.NumRows(); ++r) ++counts[dataset.Value(r, 0)];
  for (int count : counts) EXPECT_NEAR(count, 25, 10);
}

TEST(LoaderTest, SmallNumericDomainStaysCategorical) {
  CsvTable table = MakeTable(
      "flag,label\n"
      "0,1\n"
      "1,0\n"
      "0,1\n"
      "1,0\n");
  LoaderOptions options;
  LoaderReport report;
  Dataset dataset = BuildDataset(table, options, &report).value();
  EXPECT_EQ(report.categorical_columns, 1);
  EXPECT_FALSE(dataset.schema().attribute(0).ordinal());
}

TEST(LoaderTest, DropsRowsWithMissingValues) {
  CsvTable table = MakeTable(
      "a,label\n"
      "x,1\n"
      ",0\n"
      "?,0\n"
      "y,0\n");
  LoaderOptions options;
  LoaderReport report;
  Dataset dataset = BuildDataset(table, options, &report).value();
  EXPECT_EQ(dataset.NumRows(), 2);
  EXPECT_EQ(report.rows_dropped_missing, 2);
}

TEST(LoaderTest, PoolsRareCategoriesIntoOther) {
  std::string csv = "city,label\n";
  // Two frequent values plus 30 singletons.
  for (int i = 0; i < 40; ++i) csv += "metropolis," + std::to_string(i % 2) + "\n";
  for (int i = 0; i < 40; ++i) csv += "gotham," + std::to_string(i % 2) + "\n";
  for (int i = 0; i < 30; ++i) {
    csv += "village" + std::to_string(i) + ",0\n";
  }
  LoaderOptions options;
  options.max_categories = 4;
  LoaderReport report;
  Dataset dataset = BuildDataset(MakeTable(csv), options, &report).value();
  const AttributeSchema& city = dataset.schema().attribute(0);
  EXPECT_EQ(city.Cardinality(), 4);
  EXPECT_GE(city.ValueIndex("<other>"), 0);
  EXPECT_GE(city.ValueIndex("metropolis"), 0);
  EXPECT_EQ(report.pooled_columns, 1);
  // Three values are kept (metropolis, gotham, and the highest-ranked
  // village); the remaining 29 villages share the pooled code.
  int other_code = city.ValueIndex("<other>");
  int pooled = 0;
  for (int r = 0; r < dataset.NumRows(); ++r) {
    pooled += dataset.Value(r, 0) == other_code;
  }
  EXPECT_EQ(pooled, 29);
}

TEST(LoaderTest, RejectsUnknownProtectedAttribute) {
  CsvTable table = MakeTable("a,label\nx,1\ny,0\n");
  LoaderOptions options;
  options.protected_attributes = {"nonexistent"};
  StatusOr<Dataset> built = BuildDataset(table, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("nonexistent"), std::string::npos);
}

TEST(LoaderTest, RejectsUnknownLabelColumn) {
  CsvTable table = MakeTable("a,label\nx,1\ny,0\n");
  LoaderOptions options;
  options.label_column = "missing";
  StatusOr<Dataset> built = BuildDataset(table, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(LoaderTest, RejectsConstantLabels) {
  CsvTable table = MakeTable("a,label\nx,1\ny,1\n");
  StatusOr<Dataset> built = BuildDataset(table, LoaderOptions());
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("constant"), std::string::npos);
}

TEST(LoaderTest, RejectsHeaderlessTable) {
  StatusOr<Dataset> built = BuildDataset(CsvTable(), LoaderOptions());
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kDataCorruption);
}

TEST(LoaderTest, RoundTripsThroughDatasetCsv) {
  // Export a dataset to CSV, reload it, and check the cells agree.
  CsvTable table = MakeTable(
      "race,sex,outcome\n"
      "white,male,1\n"
      "black,female,0\n"
      "asian,male,1\n");
  LoaderOptions options;
  options.protected_attributes = {"race"};
  Dataset first = BuildDataset(table, options).value();

  Dataset second = BuildDataset(first.ToCsv(), options).value();
  ASSERT_EQ(second.NumRows(), first.NumRows());
  for (int r = 0; r < first.NumRows(); ++r) {
    EXPECT_EQ(second.Label(r), first.Label(r));
    // Codes may be permuted (frequency order), so compare value names.
    for (int c = 0; c < first.NumColumns(); ++c) {
      EXPECT_EQ(
          second.schema().attribute(c).ValueName(second.Value(r, c)),
          first.schema().attribute(c).ValueName(first.Value(r, c)));
    }
  }
}

TEST(LoaderTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "loader_test.csv";
  CsvTable table = MakeTable("a,label\nx,1\ny,0\n");
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  LoaderOptions options;
  Dataset dataset = LoadCsvDataset(path, options).value();
  EXPECT_EQ(dataset.NumRows(), 2);
  StatusOr<Dataset> missing = LoadCsvDataset("/nonexistent/file.csv", options);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

// --- Quarantine path ------------------------------------------------------

constexpr const char* kDirtyCsv =
    "race,sex,outcome\n"
    "white,male,1\n"
    "black,female,0\n"
    "too,many,fields,here\n"
    "white,female,1\n"
    "short-row\n"
    "black,male,0\n";

TEST(LoaderTest, FailPolicyRejectsBadRows) {
  CsvParseOptions parse;
  parse.tolerate_bad_rows = true;
  CsvTable table = ParseCsv(kDirtyCsv, parse).value();
  ASSERT_EQ(table.bad_rows.size(), 2u);
  LoaderOptions options;  // on_bad_row defaults to kFail
  StatusOr<Dataset> built = BuildDataset(table, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kDataCorruption);
  EXPECT_NE(built.status().message().find("line 4"), std::string::npos);
}

TEST(LoaderTest, QuarantinePolicyKeepsGoodRowsAndReports) {
  CsvParseOptions parse;
  parse.tolerate_bad_rows = true;
  CsvTable table = ParseCsv(kDirtyCsv, parse).value();
  LoaderOptions options;
  options.on_bad_row = BadRowPolicy::kQuarantine;
  options.max_quarantine_fraction = 0.5;
  LoaderReport report;
  QuarantineReport quarantine;
  Dataset dataset =
      BuildDataset(table, options, &report, &quarantine).value();
  EXPECT_EQ(dataset.NumRows(), 4);
  EXPECT_EQ(report.rows_quarantined, 2);
  EXPECT_EQ(quarantine.rows_quarantined, 2);
  EXPECT_NEAR(quarantine.fraction, 2.0 / 6.0, 1e-9);
  ASSERT_EQ(quarantine.examples.size(), 2u);
  EXPECT_EQ(quarantine.examples[0].line, 4);
  EXPECT_EQ(quarantine.examples[1].line, 6);
}

TEST(LoaderTest, QuarantineCircuitBreakerTrips) {
  CsvParseOptions parse;
  parse.tolerate_bad_rows = true;
  CsvTable table = ParseCsv(kDirtyCsv, parse).value();
  LoaderOptions options;
  options.on_bad_row = BadRowPolicy::kQuarantine;
  options.max_quarantine_fraction = 0.1;  // 2/6 is well above this
  StatusOr<Dataset> built = BuildDataset(table, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kDataCorruption);
  EXPECT_NE(built.status().message().find("max_quarantine_fraction"),
            std::string::npos);
}

TEST(LoaderTest, DropPolicyIgnoresCircuitBreaker) {
  CsvParseOptions parse;
  parse.tolerate_bad_rows = true;
  CsvTable table = ParseCsv(kDirtyCsv, parse).value();
  LoaderOptions options;
  options.on_bad_row = BadRowPolicy::kDrop;
  options.max_quarantine_fraction = 0.0;  // breaker only applies to kQuarantine
  LoaderReport report;
  Dataset dataset = BuildDataset(table, options, &report).value();
  EXPECT_EQ(dataset.NumRows(), 4);
  EXPECT_EQ(report.rows_quarantined, 2);
}

TEST(LoaderTest, LoadCsvDatasetQuarantinesFromDisk) {
  const std::string path = ::testing::TempDir() + "loader_dirty.csv";
  // kDirtyCsv does not parse strictly, so write the raw bytes directly.
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(kDirtyCsv, 1, std::strlen(kDirtyCsv), f);
    std::fclose(f);
  }
  LoaderOptions options;
  options.on_bad_row = BadRowPolicy::kQuarantine;
  options.max_quarantine_fraction = 0.5;
  QuarantineReport quarantine;
  Dataset dataset =
      LoadCsvDataset(path, options, nullptr, &quarantine).value();
  EXPECT_EQ(dataset.NumRows(), 4);
  EXPECT_EQ(quarantine.rows_quarantined, 2);
  // The same file under the strict default policy fails loudly.
  StatusOr<Dataset> strict = LoadCsvDataset(path, LoaderOptions());
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataCorruption);
}

// --- Seeded fuzz: malformed input must never abort ------------------------

TEST(LoaderFuzzTest, MutatedCsvNeverAborts) {
  // Start from a healthy file and apply random byte- and structure-level
  // damage. Every outcome must be a clean success or a clean Status —
  // no crash, no REMEDY_CHECK failure.
  std::string base = "color,size,label\n";
  Rng make(7);
  for (int i = 0; i < 60; ++i) {
    base += (make.UniformInt(2) ? "red" : "blue");
    base += ",";
    base += (make.UniformInt(2) ? "big" : "small");
    base += ",";
    base += std::to_string(make.UniformInt(2));
    base += "\n";
  }

  const char kNoise[] = {',', '"', '\n', '\r', '\0', 'x', '\xFF', '\x01'};
  Rng rng(1234);
  int parse_failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    int edits = 1 + rng.UniformInt(8);
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<int>(mutated.size())));
      switch (rng.UniformInt(3)) {
        case 0:  // overwrite a byte
          mutated[pos] = kNoise[rng.UniformInt(8)];
          break;
        case 1:  // insert a byte
          mutated.insert(mutated.begin() + pos, kNoise[rng.UniformInt(8)]);
          break;
        default:  // delete a span
          mutated.erase(pos, 1 + rng.UniformInt(5));
          break;
      }
    }
    for (BadRowPolicy policy :
         {BadRowPolicy::kFail, BadRowPolicy::kQuarantine, BadRowPolicy::kDrop}) {
      CsvParseOptions parse;
      parse.tolerate_bad_rows = policy != BadRowPolicy::kFail;
      StatusOr<CsvTable> table = ParseCsv(mutated, parse);
      if (!table.ok()) {
        ++parse_failures;
        continue;
      }
      LoaderOptions options;
      options.on_bad_row = policy;
      options.max_quarantine_fraction = 1.0;
      StatusOr<Dataset> built = BuildDataset(table.value(), options);
      if (built.ok()) {
        EXPECT_GT(built.value().NumRows(), 0);
      } else {
        EXPECT_NE(built.status().code(), StatusCode::kOk);
      }
    }
  }
  // Sanity: the fuzzer does exercise the failure path.
  EXPECT_GT(parse_failures, 0);
}

}  // namespace
}  // namespace remedy
