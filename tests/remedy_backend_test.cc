// RemedyBackend seam tests (docs/REMEDY.md).
//
// The load-bearing half is the randomized parity suite: the streaming
// backend's delta plan, applied to the source leaf counts, must land on the
// exact FNV-1a counts digest of running the batch rebuild engine over the
// canonical materialization of those same counts — for every technique and
// every planning thread count. That digest identity is what lets the daemon
// commit remedies as WAL deltas and still claim byte-equivalence with the
// offline pipeline. The rest pins the registry (names, parse errors), the
// canonical materialization round-trip, and the DiffLeafCounts algebra.

#include "core/remedy_backend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/hierarchy.h"
#include "core/region_counter.h"
#include "core/remedy.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "test_util.h"

namespace remedy {
namespace {

using remedy::testing::GridDataset;
using remedy::testing::SmallSchema;

void ExpectIdenticalRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (int r = 0; r < a.NumRows(); ++r) {
    ASSERT_EQ(a.Row(r), b.Row(r)) << "row " << r;
    ASSERT_EQ(a.Label(r), b.Label(r)) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// Registry: names, parsing, construction
// ---------------------------------------------------------------------------

TEST(RemedyBackendRegistryTest, NamesRoundTripThroughParse) {
  for (RemedyBackendKind kind :
       {RemedyBackendKind::kRebuild, RemedyBackendKind::kIncremental,
        RemedyBackendKind::kStreaming}) {
    StatusOr<RemedyBackendKind> parsed =
        ParseRemedyBackend(RemedyBackendName(kind));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed.value(), kind);
  }
}

TEST(RemedyBackendRegistryTest, UnknownNameListsTheValidOnes) {
  for (const std::string& bogus : {"", "Rebuild", "online", "stream"}) {
    StatusOr<RemedyBackendKind> parsed = ParseRemedyBackend(bogus);
    ASSERT_FALSE(parsed.ok()) << "'" << bogus << "' parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    // The message is the CLI's only hint; it must name every backend.
    const std::string& message = parsed.status().message();
    EXPECT_NE(message.find("rebuild"), std::string::npos) << message;
    EXPECT_NE(message.find("incremental"), std::string::npos) << message;
    EXPECT_NE(message.find("streaming"), std::string::npos) << message;
  }
}

TEST(RemedyBackendRegistryTest, CreateReturnsTheAskedForKind) {
  for (RemedyBackendKind kind :
       {RemedyBackendKind::kRebuild, RemedyBackendKind::kIncremental,
        RemedyBackendKind::kStreaming}) {
    auto backend = RemedyBackend::Create(kind);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
    EXPECT_STREQ(backend->name(), RemedyBackendName(kind));
  }
}

// ---------------------------------------------------------------------------
// Canonical materialization
// ---------------------------------------------------------------------------

TEST(MaterializeLeafCountsTest, RoundTripsTheLeafCensus) {
  Dataset data = GridDataset({{{7, 3}, {0, 5}},
                              {{2, 2}, {9, 0}},
                              {{0, 0}, {4, 6}}});
  const NodeTable counts = LeafCountsOf(data);
  StatusOr<Dataset> materialized =
      MaterializeLeafCounts(data.schema(), counts);
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  // Count-faithful: the materialized rows re-census to the input exactly.
  EXPECT_EQ(LeafCountsOf(materialized.value()), counts);
  EXPECT_EQ(LeafCountsDigest(LeafCountsOf(materialized.value())),
            LeafCountsDigest(counts));
  // Row count matches the census total (empty cells add nothing).
  EXPECT_EQ(materialized.value().NumRows(), 7 + 3 + 5 + 2 + 2 + 9 + 4 + 6);
}

TEST(MaterializeLeafCountsTest, IsDeterministicInTheCountsAlone) {
  // Two different row orders with the same census materialize identically —
  // the property that makes the daemon's count-only state sufficient.
  Dataset forward(SmallSchema());
  Dataset backward(SmallSchema());
  remedy::testing::AddRows(forward, 4, 0, 0, 1, 1);
  remedy::testing::AddRows(forward, 2, 1, 1, 0, 0);
  remedy::testing::AddRows(backward, 2, 1, 1, 1, 0);
  remedy::testing::AddRows(backward, 4, 0, 0, 0, 1);
  Dataset a =
      MaterializeLeafCounts(forward.schema(), LeafCountsOf(forward)).value();
  Dataset b =
      MaterializeLeafCounts(backward.schema(), LeafCountsOf(backward)).value();
  ExpectIdenticalRows(a, b);
}

TEST(MaterializeLeafCountsTest, RejectsUnprotectedSchemaAndNegativeCounts) {
  DataSchema no_protected(
      {AttributeSchema("x", {"x0", "x1"})}, {});
  EXPECT_EQ(MaterializeLeafCounts(no_protected, NodeTable())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  NodeTable negative({{0, RegionCounts{-1, 2}}});
  EXPECT_EQ(MaterializeLeafCounts(SmallSchema(), negative).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// DiffLeafCounts algebra
// ---------------------------------------------------------------------------

NodeTable Applied(const NodeTable& base,
                  const std::vector<Hierarchy::LeafDelta>& deltas) {
  NodeTable out = base;
  for (const Hierarchy::LeafDelta& delta : deltas) {
    out.UpsertDelta(delta.leaf_key, delta.delta_positives,
                    delta.delta_negatives);
  }
  return out;
}

TEST(DiffLeafCountsTest, BeforePlusDiffEqualsAfter) {
  NodeTable before({{0, {5, 3}}, {2, {1, 1}}, {4, {0, 7}}});
  // Key 0 changes, key 2 drains to zero, key 3 appears, key 4 is untouched.
  NodeTable after({{0, {6, 2}}, {2, {0, 0}}, {3, {4, 4}}, {4, {0, 7}}});
  const std::vector<Hierarchy::LeafDelta> diff =
      DiffLeafCounts(before, after);
  EXPECT_EQ(LeafCountsDigest(Applied(before, diff)),
            LeafCountsDigest(after));
  // Untouched keys must not appear; deltas come out ascending by key.
  for (size_t i = 0; i < diff.size(); ++i) {
    EXPECT_TRUE(diff[i].delta_positives != 0 || diff[i].delta_negatives != 0);
    if (i > 0) EXPECT_LT(diff[i - 1].leaf_key, diff[i].leaf_key);
  }
  EXPECT_EQ(diff.size(), 3u);
}

TEST(DiffLeafCountsTest, EqualTablesDiffToNothing) {
  NodeTable counts({{1, {2, 2}}, {5, {0, 9}}});
  EXPECT_TRUE(DiffLeafCounts(counts, counts).empty());
}

// ---------------------------------------------------------------------------
// PlanDeltas edge cases
// ---------------------------------------------------------------------------

TEST(RemedyBackendTest, EmptySourcePlansNothing) {
  // The daemon may ask for a remedy before any batch arrived; that is a
  // no-op plan, not an error.
  const DataSchema schema = SmallSchema();
  NodeTable empty;
  RemedySource source;
  source.schema = &schema;
  source.leaf_counts = &empty;
  auto backend = RemedyBackend::Create(RemedyBackendKind::kStreaming);
  StatusOr<RemedyDeltaPlan> plan = backend->PlanDeltas(source, RemedyParams());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan.value().deltas.empty());
}

TEST(RemedyBackendTest, SourceValidationRejectsAmbiguityAndAbsence) {
  Dataset data = GridDataset({{{5, 5}}});
  const NodeTable counts = LeafCountsOf(data);
  auto backend = RemedyBackend::Create(RemedyBackendKind::kIncremental);

  RemedySource none;  // neither form set
  EXPECT_EQ(backend->Remedy(none, RemedyParams()).status().code(),
            StatusCode::kInvalidArgument);

  RemedySource both;  // both forms set
  both.dataset = &data;
  both.schema = &data.schema();
  both.leaf_counts = &counts;
  EXPECT_EQ(backend->Remedy(both, RemedyParams()).status().code(),
            StatusCode::kInvalidArgument);

  RemedySource counts_without_schema;
  counts_without_schema.leaf_counts = &counts;
  EXPECT_EQ(
      backend->Remedy(counts_without_schema, RemedyParams()).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Parity: streaming deltas == rebuild on the materialized dataset
// ---------------------------------------------------------------------------

RemedyParams BiasedParams(RemedyTechnique technique, uint64_t seed,
                          int threads) {
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.2;
  params.ibs.min_region_size = 5;
  params.technique = technique;
  params.seed = seed;
  params.planning_threads = threads;
  return params;
}

// A random census with skewed cells so the IBS is usually non-empty.
NodeTable RandomCounts(Rng& rng) {
  std::vector<std::vector<std::pair<int, int>>> cells(3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      cells[a].push_back(
          {rng.UniformInt(120), rng.UniformInt(40)});
    }
  }
  return LeafCountsOf(GridDataset(cells));
}

class RemedyBackendParityTest
    : public ::testing::TestWithParam<std::tuple<RemedyTechnique, int>> {};

TEST_P(RemedyBackendParityTest, StreamingDeltasMatchRebuildOnMaterialized) {
  auto [technique, threads] = GetParam();
#ifdef REMEDY_TSAN_BUILD
  const int kDraws = 2;  // TSan is ~10x slower; the race surface is the same
#else
  const int kDraws = 8;
#endif
  const DataSchema schema = SmallSchema();
  auto streaming = RemedyBackend::Create(RemedyBackendKind::kStreaming);
  auto rebuild = RemedyBackend::Create(RemedyBackendKind::kRebuild);
  int acted = 0;
  for (int draw = 0; draw < kDraws; ++draw) {
    Rng rng(100 * draw + threads + 7);
    const NodeTable counts = RandomCounts(rng);
    const RemedyParams params = BiasedParams(technique, 23 + draw, threads);

    RemedySource count_source;
    count_source.schema = &schema;
    count_source.leaf_counts = &counts;
    StatusOr<RemedyDeltaPlan> plan =
        streaming->PlanDeltas(count_source, params);
    ASSERT_TRUE(plan.ok()) << plan.status();

    // Oracle: batch-rebuild the remedy over the canonical materialization
    // of the same counts, then census the remedied rows.
    Dataset materialized = MaterializeLeafCounts(schema, counts).value();
    RemedySource row_source;
    row_source.dataset = &materialized;
    StatusOr<Dataset> remedied = rebuild->Remedy(row_source, params);
    ASSERT_TRUE(remedied.ok()) << remedied.status();

    EXPECT_EQ(LeafCountsDigest(Applied(counts, plan.value().deltas)),
              LeafCountsDigest(LeafCountsOf(remedied.value())))
        << TechniqueName(technique) << " draw " << draw << " threads "
        << threads;
    if (!plan.value().deltas.empty()) ++acted;
  }
  EXPECT_GT(acted, 0) << "every draw planned nothing; the sweep proved "
                         "nothing — reskew RandomCounts";
}

INSTANTIATE_TEST_SUITE_P(
    TechniqueThreadSweep, RemedyBackendParityTest,
    ::testing::Combine(
        ::testing::Values(RemedyTechnique::kOversample,
                          RemedyTechnique::kUndersample,
                          RemedyTechnique::kPreferentialSampling,
                          RemedyTechnique::kMassaging),
        ::testing::Values(1, 2, 4, 0)),
    [](const ::testing::TestParamInfo<std::tuple<RemedyTechnique, int>>&
           info) {
      return TechniqueName(std::get<0>(info.param)) + "_threads" +
             std::to_string(std::get<1>(info.param));
    });

// The two batch backends are row-faithful twins: same rows out, not just
// the same census (the PR 2 identity, restated through the seam).
TEST(RemedyBackendTest, BatchBackendsAreByteIdenticalOnRows) {
  Dataset data = GridDataset({{{80, 10}, {12, 40}},
                              {{30, 30}, {5, 60}},
                              {{90, 9}, {20, 20}}});
  RemedySource source;
  source.dataset = &data;
  const RemedyParams params =
      BiasedParams(RemedyTechnique::kPreferentialSampling, 23, 2);
  StatusOr<Dataset> a =
      RemedyBackend::Create(RemedyBackendKind::kRebuild)
          ->Remedy(source, params);
  StatusOr<Dataset> b =
      RemedyBackend::Create(RemedyBackendKind::kIncremental)
          ->Remedy(source, params);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectIdenticalRows(a.value(), b.value());
}

}  // namespace
}  // namespace remedy
