#include "data/columnar.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "datagen/generator.h"
#include "datagen/random_spec.h"

namespace remedy {
namespace {

DataSchema TwoProtectedSchema() {
  return DataSchema({AttributeSchema("gender", {"m", "f"}),
                     AttributeSchema("score", {"low", "mid", "high"}),
                     AttributeSchema("race", {"a", "b", "c"})},
                    /*protected_indices=*/{0, 2});
}

TEST(ColumnarShardStoreTest, EncodesProtectedColumnsAndLabels) {
  DataSchema schema = TwoProtectedSchema();
  Dataset data(schema);
  data.AddRow({0, 1, 2}, 1);
  data.AddRow({1, 0, 0}, 0);
  data.AddRow({1, 2, 1}, 1);

  ColumnarShardStore store = ColumnarShardStore::FromDataset(data);
  EXPECT_EQ(store.NumRows(), 3);
  EXPECT_EQ(store.NumShards(), 1);
  EXPECT_EQ(store.NumProtected(), 2);
  EXPECT_EQ(store.Cardinality(0), 2);
  EXPECT_EQ(store.Cardinality(1), 3);
  EXPECT_TRUE(store.IsNarrow(0));
  EXPECT_EQ(store.PositiveCount(), 2);
  EXPECT_EQ(store.NegativeCount(), 1);

  const ColumnarShardStore::Shard& shard = store.shard(0);
  EXPECT_EQ(shard.num_rows, 3);
  // Position 0 = gender (dataset column 0), position 1 = race (column 2).
  EXPECT_EQ(shard.columns[0].narrow, (std::vector<uint8_t>{0, 1, 1}));
  EXPECT_EQ(shard.columns[1].narrow, (std::vector<uint8_t>{2, 0, 1}));
  EXPECT_EQ(shard.labels, (std::vector<uint8_t>{1, 0, 1}));
}

TEST(ColumnarShardStoreTest, CutsShardsAtShardRows) {
  DataSchema schema = TwoProtectedSchema();
  Dataset data(schema);
  for (int r = 0; r < 10; ++r) data.AddRow({r % 2, r % 3, r % 3}, r % 2);

  ColumnarShardStore store = ColumnarShardStore::FromDataset(data, 4);
  EXPECT_EQ(store.NumRows(), 10);
  EXPECT_EQ(store.NumShards(), 3);
  EXPECT_EQ(store.shard(0).num_rows, 4);
  EXPECT_EQ(store.shard(1).num_rows, 4);
  EXPECT_EQ(store.shard(2).num_rows, 2);
}

TEST(ColumnarShardStoreTest, ChunkedAppendMatchesFromDataset) {
  Rng rng(11);
  RandomSpecOptions options;
  options.num_rows = 500;
  for (int trial = 0; trial < 10; ++trial) {
    SyntheticSpec spec = RandomSpec(rng, options);
    Dataset data = GenerateSynthetic(spec, 77 + trial);
    const int64_t shard_rows = 64 + rng.UniformInt(128);
    ColumnarShardStore whole =
        ColumnarShardStore::FromDataset(data, shard_rows);

    // Stream the same rows through the builder in ragged chunks; chunk
    // boundaries must not shift shard cuts.
    ColumnarShardStoreBuilder builder(data.schema(), shard_rows);
    Dataset chunk(data.schema());
    for (int r = 0; r < data.NumRows(); ++r) {
      chunk.AddRow(data.Row(r), data.Label(r));
      if (chunk.NumRows() >= 1 + rng.UniformInt(100)) {
        builder.Append(chunk);
        chunk = Dataset(data.schema());
      }
    }
    builder.Append(chunk);
    ColumnarShardStore streamed = builder.Finish();

    ASSERT_EQ(streamed.NumRows(), whole.NumRows());
    ASSERT_EQ(streamed.NumShards(), whole.NumShards());
    EXPECT_EQ(streamed.PositiveCount(), whole.PositiveCount());
    EXPECT_EQ(streamed.NegativeCount(), whole.NegativeCount());
    for (int s = 0; s < whole.NumShards(); ++s) {
      const auto& a = streamed.shard(s);
      const auto& b = whole.shard(s);
      ASSERT_EQ(a.num_rows, b.num_rows);
      EXPECT_EQ(a.labels, b.labels);
      for (size_t c = 0; c < b.columns.size(); ++c) {
        EXPECT_EQ(a.columns[c].narrow, b.columns[c].narrow);
        EXPECT_EQ(a.columns[c].wide, b.columns[c].wide);
      }
    }
  }
}

TEST(ColumnarShardStoreTest, WideColumnsForLargeCardinalities) {
  std::vector<std::string> many;
  for (int v = 0; v < 300; ++v) many.push_back("v" + std::to_string(v));
  DataSchema schema({AttributeSchema("wide", many),
                     AttributeSchema("narrow", {"x", "y"})},
                    /*protected_indices=*/{0, 1});
  Dataset data(schema);
  data.AddRow({257, 1}, 0);
  data.AddRow({0, 0}, 1);

  ColumnarShardStore store = ColumnarShardStore::FromDataset(data);
  EXPECT_FALSE(store.IsNarrow(0));
  EXPECT_TRUE(store.IsNarrow(1));
  const ColumnarShardStore::Shard& shard = store.shard(0);
  EXPECT_TRUE(shard.columns[0].narrow.empty());
  EXPECT_EQ(shard.columns[0].wide, (std::vector<uint16_t>{257, 0}));
  EXPECT_EQ(shard.columns[1].narrow, (std::vector<uint8_t>{1, 0}));
}

TEST(GeneratorStreamingTest, ChunksConcatenateToGenerateSynthetic) {
  Rng rng(5);
  RandomSpecOptions options;
  options.num_rows = 333;
  SyntheticSpec spec = RandomSpec(rng, options);
  Dataset whole = GenerateSynthetic(spec, 99);

  Dataset reassembled(spec.MakeSchema());
  int chunks = 0;
  GenerateSyntheticChunks(spec, 99, 50, [&](const Dataset& chunk) {
    ++chunks;
    EXPECT_LE(chunk.NumRows(), 50);
    for (int r = 0; r < chunk.NumRows(); ++r) {
      reassembled.AddRow(chunk.Row(r), chunk.Label(r));
    }
  });
  EXPECT_EQ(chunks, 7);  // ceil(333 / 50)
  ASSERT_EQ(reassembled.NumRows(), whole.NumRows());
  for (int r = 0; r < whole.NumRows(); ++r) {
    EXPECT_EQ(reassembled.Row(r), whole.Row(r));
    EXPECT_EQ(reassembled.Label(r), whole.Label(r));
  }
}

TEST(GeneratorStreamingTest, StoreMatchesDatasetEncoding) {
  Rng rng(21);
  RandomSpecOptions options;
  options.num_rows = 400;
  SyntheticSpec spec = RandomSpec(rng, options);
  Dataset whole = GenerateSynthetic(spec, 123);
  ColumnarShardStore from_dataset =
      ColumnarShardStore::FromDataset(whole, 128);
  ColumnarShardStore streamed = GenerateSyntheticStore(spec, 123, 128);

  ASSERT_EQ(streamed.NumRows(), from_dataset.NumRows());
  ASSERT_EQ(streamed.NumShards(), from_dataset.NumShards());
  for (int s = 0; s < from_dataset.NumShards(); ++s) {
    const auto& a = streamed.shard(s);
    const auto& b = from_dataset.shard(s);
    EXPECT_EQ(a.labels, b.labels);
    for (size_t c = 0; c < b.columns.size(); ++c) {
      EXPECT_EQ(a.columns[c].narrow, b.columns[c].narrow);
      EXPECT_EQ(a.columns[c].wide, b.columns[c].wide);
    }
  }
}

}  // namespace
}  // namespace remedy
