#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/cost_sensitive.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/grid_search.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"
#include "ml/naive_bayes.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::SmallSchema;

// Noisy but learnable task with additive signal on f and a, so both linear
// and tree learners can reach well above chance.
Dataset LearnableData(int rows, uint64_t seed) {
  Rng rng(seed);
  Dataset data(SmallSchema());
  for (int i = 0; i < rows; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2), f = rng.UniformInt(2);
    double p = f == 1 ? 0.82 : 0.12;
    if (a == 2) p += 0.08;
    data.AddRow({a, b, f}, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

class ModelTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(ModelTest, LearnsAboveChance) {
  Rng rng(1);
  Dataset all = LearnableData(2000, 5);
  auto [train, test] = all.TrainTestSplit(0.7, rng);
  ClassifierPtr model = MakeClassifier(GetParam());
  model->Fit(train);
  double accuracy = Accuracy(test, model->PredictAll(test));
  EXPECT_GT(accuracy, 0.72) << ModelName(GetParam());
}

TEST_P(ModelTest, ProbabilitiesAreValid) {
  Dataset data = LearnableData(500, 6);
  ClassifierPtr model = MakeClassifier(GetParam());
  model->Fit(data);
  for (int r = 0; r < 50; ++r) {
    double p = model->PredictProba(data, r);
    EXPECT_GE(p, 0.0) << ModelName(GetParam());
    EXPECT_LE(p, 1.0) << ModelName(GetParam());
    EXPECT_EQ(model->Predict(data, r), p >= 0.5 ? 1 : 0);
  }
}

TEST_P(ModelTest, DeterministicGivenSeed) {
  Dataset data = LearnableData(500, 7);
  ClassifierPtr first = MakeClassifier(GetParam(), 42);
  ClassifierPtr second = MakeClassifier(GetParam(), 42);
  first->Fit(data);
  second->Fit(data);
  for (int r = 0; r < data.NumRows(); r += 7) {
    EXPECT_DOUBLE_EQ(first->PredictProba(data, r),
                     second->PredictProba(data, r))
        << ModelName(GetParam());
  }
}

TEST_P(ModelTest, RefitReplacesModel) {
  Dataset positive_world(SmallSchema());
  Dataset negative_world(SmallSchema());
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    std::vector<int> row = {rng.UniformInt(3), rng.UniformInt(2),
                            rng.UniformInt(2)};
    positive_world.AddRow(row, 1);
    negative_world.AddRow(row, 0);
  }
  // One positive/negative row keeps degenerate learners from dividing by 0.
  positive_world.AddRow({0, 0, 0}, 0);
  negative_world.AddRow({0, 0, 0}, 1);
  ClassifierPtr model = MakeClassifier(GetParam());
  model->Fit(positive_world);
  double p_after_positive = model->PredictProba(positive_world, 0);
  model->Fit(negative_world);
  double p_after_negative = model->PredictProba(negative_world, 0);
  EXPECT_GT(p_after_positive, 0.6) << ModelName(GetParam());
  EXPECT_LT(p_after_negative, 0.4) << ModelName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelTest,
    ::testing::Values(ModelType::kDecisionTree, ModelType::kRandomForest,
                      ModelType::kLogisticRegression,
                      ModelType::kNeuralNetwork, ModelType::kNaiveBayes,
                      ModelType::kGradientBoosting),
    [](const ::testing::TestParamInfo<ModelType>& info) {
      return ModelName(info.param);
    });

TEST(GradientBoostingTest, MoreRoundsFitTighter) {
  Dataset data = LearnableData(800, 21);
  GradientBoostingParams weak;
  weak.rounds = 2;
  GradientBoosting small(weak);
  small.Fit(data);
  GradientBoostingParams strong;
  strong.rounds = 80;
  GradientBoosting large(strong);
  large.Fit(data);
  EXPECT_GE(Accuracy(data, large.PredictAll(data)),
            Accuracy(data, small.PredictAll(data)));
  EXPECT_EQ(large.NumTrees(), 80);
}

TEST(GradientBoostingTest, RespectsInstanceWeights) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 30; ++i) data.AddRow({0, 0, 1}, 1, 10.0);
  for (int i = 0; i < 70; ++i) data.AddRow({0, 0, 1}, 0, 1.0);
  GradientBoosting model;
  model.Fit(data);
  EXPECT_GT(model.PredictProba(data, 0), 0.5);
}

TEST(GradientBoostingTest, CapturesInteractions) {
  // XOR-style target that linear models cannot represent.
  Rng rng(22);
  Dataset data(SmallSchema());
  for (int i = 0; i < 1500; ++i) {
    int b = rng.UniformInt(2), f = rng.UniformInt(2);
    int label = rng.Bernoulli((b ^ f) ? 0.9 : 0.1) ? 1 : 0;
    data.AddRow({rng.UniformInt(3), b, f}, label);
  }
  GradientBoosting boosted;
  boosted.Fit(data);
  LogisticRegression linear;
  linear.Fit(data);
  EXPECT_GT(Accuracy(data, boosted.PredictAll(data)), 0.8);
  EXPECT_LT(Accuracy(data, linear.PredictAll(data)), 0.65);
}

TEST(DecisionTreeTest, FitsPureFunctionExactly) {
  Dataset data(SmallSchema());
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int i = 0; i < 20; ++i) data.AddRow({a, b, 0}, a == 1 ? 1 : 0);
    }
  }
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_DOUBLE_EQ(Accuracy(data, tree.PredictAll(data)), 1.0);
  EXPECT_GE(tree.NumNodes(), 4);  // root + one leaf per a-value
}

TEST(DecisionTreeTest, MaxDepthZeroIsMajorityVote) {
  Dataset data = LearnableData(300, 9);
  DecisionTreeParams params;
  params.max_depth = 0;
  DecisionTree stump(params);
  stump.Fit(data);
  double p = stump.PredictProba(data, 0);
  for (int r = 1; r < data.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(stump.PredictProba(data, r), p);
  }
  EXPECT_EQ(stump.NumNodes(), 1);
}

TEST(DecisionTreeTest, RespectsInstanceWeights) {
  // 30 positives vs 70 negatives at the same point: unweighted majority is
  // negative; weighting positives 10x flips it.
  Dataset data(SmallSchema());
  for (int i = 0; i < 30; ++i) data.AddRow({0, 0, 0}, 1, 10.0);
  for (int i = 0; i < 70; ++i) data.AddRow({0, 0, 0}, 0, 1.0);
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_EQ(tree.Predict(data, 0), 1);
}

TEST(LogisticRegressionTest, RespectsInstanceWeights) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 30; ++i) data.AddRow({0, 0, 1}, 1, 10.0);
  for (int i = 0; i < 70; ++i) data.AddRow({0, 0, 1}, 0, 1.0);
  LogisticRegression model;
  model.Fit(data);
  EXPECT_GT(model.PredictProba(data, 0), 0.5);
}

TEST(NaiveBayesTest, RespectsInstanceWeights) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 30; ++i) data.AddRow({0, 0, 1}, 1, 10.0);
  for (int i = 0; i < 70; ++i) data.AddRow({0, 0, 1}, 0, 1.0);
  NaiveBayes model;
  model.Fit(data);
  EXPECT_GT(model.PredictProba(data, 0), 0.5);
}

TEST(RandomForestTest, EnsembleBeatsWorstTree) {
  Rng rng(2);
  Dataset all = LearnableData(1500, 10);
  auto [train, test] = all.TrainTestSplit(0.7, rng);
  RandomForestParams params;
  params.num_trees = 15;
  RandomForest forest(params);
  forest.Fit(train);
  EXPECT_EQ(forest.NumTrees(), 15);
  EXPECT_GT(Accuracy(test, forest.PredictAll(test)), 0.7);
}

TEST(LogisticRegressionTest, LearnsLinearSignal) {
  Rng rng(3);
  Dataset data(SmallSchema());
  for (int i = 0; i < 1000; ++i) {
    int f = rng.UniformInt(2);
    data.AddRow({rng.UniformInt(3), rng.UniformInt(2), f},
                rng.Bernoulli(f ? 0.9 : 0.1) ? 1 : 0);
  }
  LogisticRegression model;
  model.Fit(data);
  // Coefficient on f=1 must clearly exceed f=0's.
  OneHotEncoder encoder(data.schema());
  double w_f1 = model.coefficients()[encoder.Offset(2) + 1];
  double w_f0 = model.coefficients()[encoder.Offset(2) + 0];
  EXPECT_GT(w_f1 - w_f0, 1.0);
}

TEST(NaiveBayesTest, SmoothingHandlesUnseenValues) {
  Dataset train(SmallSchema());
  for (int i = 0; i < 50; ++i) train.AddRow({0, 0, 1}, 1);
  for (int i = 0; i < 50; ++i) train.AddRow({1, 0, 0}, 0);
  NaiveBayes model;
  model.Fit(train);
  Dataset probe(SmallSchema());
  probe.AddRow({2, 1, 1}, 0);  // a=2, b=1 never seen in training
  double p = model.PredictProba(probe, 0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(CostSensitiveTest, ThresholdFromCosts) {
  CostMatrix costs;
  costs.false_positive_cost = 3.0;
  costs.false_negative_cost = 1.0;
  CostSensitiveClassifier model(
      MakeClassifier(ModelType::kNaiveBayes), costs);
  // Bayes-optimal threshold c_fp / (c_fp + c_fn) = 0.75.
  EXPECT_DOUBLE_EQ(model.Threshold(), 0.75);
}

TEST(CostSensitiveTest, HighFpCostSuppressesPositives) {
  Dataset data = LearnableData(1000, 13);
  CostMatrix fp_averse;
  fp_averse.false_positive_cost = 9.0;
  CostSensitiveClassifier cautious(
      MakeClassifier(ModelType::kLogisticRegression), fp_averse);
  cautious.Fit(data);
  ClassifierPtr neutral = MakeClassifier(ModelType::kLogisticRegression);
  neutral->Fit(data);
  int cautious_positives = 0, neutral_positives = 0;
  for (int r = 0; r < data.NumRows(); ++r) {
    cautious_positives += cautious.Predict(data, r);
    neutral_positives += neutral->Predict(data, r);
  }
  EXPECT_LT(cautious_positives, neutral_positives);
  // FPR drops under the FP-averse policy.
  EXPECT_LE(FalsePositiveRate(data, cautious.PredictAll(data)),
            FalsePositiveRate(data, neutral->PredictAll(data)));
}

TEST(CostSensitiveTest, ProbabilitiesPassThrough) {
  Dataset data = LearnableData(300, 14);
  ClassifierPtr base = MakeClassifier(ModelType::kNaiveBayes);
  base->Fit(data);
  CostSensitiveClassifier wrapped(MakeClassifier(ModelType::kNaiveBayes),
                                  CostMatrix{2.0, 1.0});
  wrapped.Fit(data);
  for (int r = 0; r < 20; ++r) {
    EXPECT_DOUBLE_EQ(wrapped.PredictProba(data, r),
                     base->PredictProba(data, r));
  }
}

TEST(CostSensitiveTest, EqualCostsMatchBaseDecisions) {
  Dataset data = LearnableData(300, 15);
  CostSensitiveClassifier wrapped(MakeClassifier(ModelType::kNaiveBayes),
                                  CostMatrix{1.0, 1.0});
  wrapped.Fit(data);
  ClassifierPtr base = MakeClassifier(ModelType::kNaiveBayes);
  base->Fit(data);
  for (int r = 0; r < data.NumRows(); ++r) {
    EXPECT_EQ(wrapped.Predict(data, r), base->Predict(data, r));
  }
}

TEST(GridSearchTest, PicksBestCandidate) {
  Dataset data = LearnableData(800, 11);
  // A stump vs a real tree: the real tree must win.
  std::vector<std::function<ClassifierPtr()>> candidates = {
      [] {
        DecisionTreeParams params;
        params.max_depth = 0;
        return std::make_unique<DecisionTree>(params);
      },
      [] {
        DecisionTreeParams params;
        params.max_depth = 10;
        return std::make_unique<DecisionTree>(params);
      },
  };
  GridSearchResult result = GridSearch(data, candidates);
  EXPECT_EQ(result.best_index, 1);
  EXPECT_EQ(result.accuracies.size(), 2u);
  EXPECT_GT(result.best_accuracy, result.accuracies[0]);
}

TEST(GridSearchTest, TunedClassifierWorksForEveryModel) {
  Dataset data = LearnableData(600, 12);
  for (ModelType type :
       {ModelType::kDecisionTree, ModelType::kRandomForest,
        ModelType::kLogisticRegression, ModelType::kNeuralNetwork,
        ModelType::kNaiveBayes, ModelType::kGradientBoosting}) {
    ClassifierPtr model = TunedClassifier(type, data);
    EXPECT_GT(Accuracy(data, model->PredictAll(data)), 0.6)
        << ModelName(type);
  }
}

}  // namespace
}  // namespace remedy
