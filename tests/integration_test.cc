// End-to-end pipeline tests: generate data, train classifiers, audit
// subgroup fairness, remedy the training set, and verify the paper's
// qualitative claims hold on the simulated datasets.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "datagen/law_school.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace remedy {
namespace {

struct Pipeline {
  Dataset train;
  Dataset test;
};

Pipeline CompasSplit() {
  Rng rng(17);
  Dataset data = MakeCompas();
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  return {std::move(train), std::move(test)};
}

TEST(IntegrationTest, BiasedTrainingYieldsUnfairSubgroups) {
  Pipeline pipeline = CompasSplit();
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(pipeline.train);
  std::vector<int> predictions = model->PredictAll(pipeline.test);

  SubgroupAnalysis analysis =
      AnalyzeSubgroups(pipeline.test, predictions, Statistic::kFpr);
  std::vector<SubgroupReport> unfair = FilterUnfair(analysis, 0.1);
  EXPECT_FALSE(unfair.empty())
      << "the planted representation bias must surface as subgroup "
         "unfairness";
}

TEST(IntegrationTest, UnfairSubgroupsAlignWithIbs) {
  // The Fig. 3 claim: unfair subgroups are in the IBS or dominate regions
  // in it.
  Pipeline pipeline = CompasSplit();
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(pipeline.train);
  std::vector<int> predictions = model->PredictAll(pipeline.test);

  IbsParams params;  // tau_c = 0.1, T = 1 as in Sec. V-B1
  std::vector<BiasedRegion> ibs = IdentifyIbs(pipeline.train, params).value();
  ASSERT_FALSE(ibs.empty());

  SubgroupAnalysis analysis =
      AnalyzeSubgroups(pipeline.test, predictions, Statistic::kFpr);
  std::vector<SubgroupReport> unfair = FilterUnfair(analysis, 0.1);
  ASSERT_FALSE(unfair.empty());

  int aligned = 0;
  for (const SubgroupReport& report : unfair) {
    aligned += DominatesAnyBiasedRegion(report.pattern, ibs);
  }
  // "Nearly all" in the paper; demand a clear majority here.
  EXPECT_GT(aligned * 2, static_cast<int>(unfair.size()));
}

TEST(IntegrationTest, RemedyImprovesFairnessIndex) {
  Pipeline pipeline = CompasSplit();

  ClassifierPtr original = MakeClassifier(ModelType::kDecisionTree);
  original->Fit(pipeline.train);
  double index_before = ComputeFairnessIndex(
      pipeline.test, original->PredictAll(pipeline.test), Statistic::kFpr);

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(pipeline.train, params).value();

  ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
  treated->Fit(remedied);
  double index_after = ComputeFairnessIndex(
      pipeline.test, treated->PredictAll(pipeline.test), Statistic::kFpr);

  EXPECT_LT(index_after, index_before);
}

TEST(IntegrationTest, RemedyKeepsAccuracyLossBounded) {
  // The paper reports < 0.1 accuracy decrease across datasets and models.
  Pipeline pipeline = CompasSplit();

  ClassifierPtr original = MakeClassifier(ModelType::kDecisionTree);
  original->Fit(pipeline.train);
  double accuracy_before =
      Accuracy(pipeline.test, original->PredictAll(pipeline.test));

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(pipeline.train, params).value();
  ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
  treated->Fit(remedied);
  double accuracy_after =
      Accuracy(pipeline.test, treated->PredictAll(pipeline.test));

  EXPECT_GT(accuracy_after, accuracy_before - 0.12);
}

TEST(IntegrationTest, RemedyHelpsBothStatisticsAtOnce) {
  // Fixing ratio_r > ratio_rn and ratio_r < ratio_rn regions improves FPR
  // and FNR unfairness concurrently (Sec. V-B2).
  Pipeline pipeline = CompasSplit();

  ClassifierPtr original = MakeClassifier(ModelType::kDecisionTree);
  original->Fit(pipeline.train);
  std::vector<int> before = original->PredictAll(pipeline.test);

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(pipeline.train, params).value();
  ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
  treated->Fit(remedied);
  std::vector<int> after = treated->PredictAll(pipeline.test);

  double fpr_index_change =
      ComputeFairnessIndex(pipeline.test, after, Statistic::kFpr) -
      ComputeFairnessIndex(pipeline.test, before, Statistic::kFpr);
  double fnr_index_change =
      ComputeFairnessIndex(pipeline.test, after, Statistic::kFnr) -
      ComputeFairnessIndex(pipeline.test, before, Statistic::kFnr);
  EXPECT_LE(fpr_index_change, 0.0);
  EXPECT_LE(fnr_index_change, 0.05);  // must not blow FNR up while fixing FPR
}

TEST(IntegrationTest, RemedyIsModelAgnostic) {
  // The pre-processing happens before training, so any downstream learner
  // benefits; check a second model family end-to-end.
  Pipeline pipeline = CompasSplit();

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kUndersample;
  Dataset remedied = RemedyDataset(pipeline.train, params).value();

  for (ModelType type :
       {ModelType::kLogisticRegression, ModelType::kNaiveBayes}) {
    ClassifierPtr original = MakeClassifier(type);
    original->Fit(pipeline.train);
    double before = ComputeFairnessIndex(
        pipeline.test, original->PredictAll(pipeline.test), Statistic::kFpr);

    ClassifierPtr treated = MakeClassifier(type);
    treated->Fit(remedied);
    double after = ComputeFairnessIndex(
        pipeline.test, treated->PredictAll(pipeline.test), Statistic::kFpr);
    EXPECT_LE(after, before + 1e-9) << ModelName(type);
  }
}

TEST(IntegrationTest, LawSchoolPipelineRuns) {
  Rng rng(23);
  Dataset data = MakeLawSchool();
  auto [train, test] = data.TrainTestSplit(0.7, rng);

  RemedyParams params;
  params.ibs.imbalance_threshold = 0.1;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(train, params).value();

  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(remedied);
  double accuracy = Accuracy(test, model->PredictAll(test));
  EXPECT_GT(accuracy, 0.5);
}

}  // namespace
}  // namespace remedy
