#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::SmallSchema;

// 4 positives, 6 negatives; predictions hit 3 TP, 1 FN, 4 TN, 2 FP.
Dataset TenRows(std::vector<int>* predictions) {
  Dataset data(SmallSchema());
  AddRows(data, 4, 0, 0, 1, 1);
  AddRows(data, 6, 1, 1, 0, 0);
  *predictions = {1, 1, 1, 0, 1, 1, 0, 0, 0, 0};
  return data;
}

TEST(MetricsTest, ConfusionCounts) {
  std::vector<int> predictions;
  Dataset data = TenRows(&predictions);
  ConfusionCounts counts = Confusion(data, predictions);
  EXPECT_EQ(counts.true_positives, 3);
  EXPECT_EQ(counts.false_negatives, 1);
  EXPECT_EQ(counts.false_positives, 2);
  EXPECT_EQ(counts.true_negatives, 4);
  EXPECT_EQ(counts.Total(), 10);
}

TEST(MetricsTest, DerivedRates) {
  std::vector<int> predictions;
  Dataset data = TenRows(&predictions);
  EXPECT_DOUBLE_EQ(Accuracy(data, predictions), 0.7);
  EXPECT_DOUBLE_EQ(FalsePositiveRate(data, predictions), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(FalseNegativeRate(data, predictions), 1.0 / 4.0);
}

TEST(MetricsTest, ConfusionOnRowsSubset) {
  std::vector<int> predictions;
  Dataset data = TenRows(&predictions);
  // Only the negatives (rows 4..9).
  ConfusionCounts counts =
      ConfusionOnRows(data, predictions, {4, 5, 6, 7, 8, 9});
  EXPECT_EQ(counts.false_positives, 2);
  EXPECT_EQ(counts.true_negatives, 4);
  EXPECT_EQ(counts.true_positives, 0);
}

TEST(MetricsTest, EmptyDenominatorsAreZero) {
  ConfusionCounts counts;  // all zero
  EXPECT_DOUBLE_EQ(Accuracy(counts), 0.0);
  EXPECT_DOUBLE_EQ(FalsePositiveRate(counts), 0.0);
  EXPECT_DOUBLE_EQ(FalseNegativeRate(counts), 0.0);
}

TEST(MetricsTest, PerfectPredictions) {
  Dataset data(SmallSchema());
  AddRows(data, 5, 0, 0, 1, 1);
  AddRows(data, 5, 1, 1, 0, 0);
  std::vector<int> predictions = {1, 1, 1, 1, 1, 0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Accuracy(data, predictions), 1.0);
  EXPECT_DOUBLE_EQ(FalsePositiveRate(data, predictions), 0.0);
  EXPECT_DOUBLE_EQ(FalseNegativeRate(data, predictions), 0.0);
}

}  // namespace
}  // namespace remedy
