#include <gtest/gtest.h>

#include <cmath>

#include "core/ibs_identify.h"
#include "datagen/adult.h"
#include "datagen/compas.h"
#include "datagen/generator.h"
#include "datagen/law_school.h"

namespace remedy {
namespace {

TEST(GeneratorTest, ProducesRequestedRows) {
  SyntheticSpec spec = CompasSpec(500);
  Dataset data = GenerateSynthetic(spec, 1);
  EXPECT_EQ(data.NumRows(), 500);
  EXPECT_EQ(data.NumColumns(), 6);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  Dataset a = MakeCompas(300, 9);
  Dataset b = MakeCompas(300, 9);
  for (int r = 0; r < a.NumRows(); ++r) {
    EXPECT_EQ(a.Row(r), b.Row(r));
    EXPECT_EQ(a.Label(r), b.Label(r));
  }
  Dataset c = MakeCompas(300, 10);
  int differences = 0;
  for (int r = 0; r < a.NumRows(); ++r) differences += a.Label(r) != c.Label(r);
  EXPECT_GT(differences, 0);
}

TEST(GeneratorTest, LabelLogitAddsTermsAndInjections) {
  SyntheticSpec spec = CompasSpec(100);
  // Afr-Am male with the strongest priors: base + priors>3 + age<25 +
  // juvenile + felony + (Afr-Am male) + (young Afr-Am).
  std::vector<int> values = {0, 0, 0, 2, 0, 1};
  double expected = -1.9 + 1.9 + 0.4 + 0.9 + 0.5 + 1.0 + 0.8;
  EXPECT_NEAR(LabelLogit(spec, values), expected, 1e-12);
  // Older Caucasian female, no priors, misdemeanor, no juvenile record.
  std::vector<int> benign = {2, 1, 1, 0, 1, 0};
  EXPECT_NEAR(LabelLogit(spec, benign), -1.9 - 0.35 - 0.9 - 0.7, 1e-12);
}

TEST(GeneratorTest, ConditionalDependencyShowsInData) {
  Dataset data = MakeCompas(6172, 3);
  // P(priors > 3 | age > 45) should clearly exceed P(priors > 3 | age < 25).
  int old_count = 0, old_high = 0, young_count = 0, young_high = 0;
  for (int r = 0; r < data.NumRows(); ++r) {
    bool high = data.Value(r, 3) == 2;
    if (data.Value(r, 0) == 2) {
      ++old_count;
      old_high += high;
    } else if (data.Value(r, 0) == 0) {
      ++young_count;
      young_high += high;
    }
  }
  ASSERT_GT(old_count, 100);
  ASSERT_GT(young_count, 100);
  EXPECT_GT(static_cast<double>(old_high) / old_count,
            static_cast<double>(young_high) / young_count + 0.1);
}

TEST(CompasTest, MatchesPaperCharacteristics) {
  Dataset data = MakeCompas();
  EXPECT_EQ(data.NumRows(), 6172);
  EXPECT_EQ(data.NumColumns(), 6);
  EXPECT_EQ(data.schema().NumProtected(), 3);
  double base_rate = static_cast<double>(data.PositiveCount()) /
                     data.NumRows();
  EXPECT_NEAR(base_rate, 0.45, 0.1);
}

TEST(CompasTest, PlantsIbsInProtectedSpace) {
  Dataset data = MakeCompas();
  IbsParams params;
  params.imbalance_threshold = 0.3;
  std::vector<BiasedRegion> ibs = IdentifyIbs(data, params).value();
  EXPECT_FALSE(ibs.empty());
  // The canonical Afr-Am male region must surface somewhere in the IBS
  // (as itself or dominated by an injected ancestor).
  int race = 1, sex = 2;  // protected positions: age=0, race=1, sex=2
  // At least one Afr-Am-male region must be skewed toward positives.
  bool found = false;
  for (const BiasedRegion& region : ibs) {
    if (region.pattern.Value(race) == 0 && region.pattern.Value(sex) == 0 &&
        region.ratio > region.neighbor_ratio) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AdultTest, MatchesPaperCharacteristics) {
  Dataset data = MakeAdult();
  EXPECT_EQ(data.NumRows(), 45222);
  EXPECT_EQ(data.NumColumns(), 13);
  EXPECT_EQ(data.schema().NumProtected(), 6);
  double base_rate = static_cast<double>(data.PositiveCount()) /
                     data.NumRows();
  EXPECT_NEAR(base_rate, 0.25, 0.08);
}

TEST(AdultTest, ScalabilityProtectedWidensTo8) {
  Dataset data = MakeAdult(2000);
  std::vector<std::string> names = AdultScalabilityProtected(8);
  EXPECT_EQ(names.size(), 8u);
  data.SetProtected(names);
  EXPECT_EQ(data.schema().NumProtected(), 8);
  EXPECT_TRUE(data.schema().IsProtected(
      data.schema().AttributeIndex("education")));
  // Narrowing works too.
  data.SetProtected(AdultScalabilityProtected(3));
  EXPECT_EQ(data.schema().NumProtected(), 3);
}

TEST(LawSchoolTest, MatchesPaperCharacteristics) {
  Dataset data = MakeLawSchool();
  EXPECT_EQ(data.NumRows(), 4590);
  EXPECT_EQ(data.NumColumns(), 12);
  EXPECT_EQ(data.schema().NumProtected(), 4);
  // The paper balanced the labels ~1:1.
  double base_rate = static_cast<double>(data.PositiveCount()) /
                     data.NumRows();
  EXPECT_NEAR(base_rate, 0.5, 0.08);
}

TEST(SpecValidationTest, AllSpecsValidate) {
  AdultSpec().Validate();
  CompasSpec().Validate();
  LawSchoolSpec().Validate();
}

TEST(SpecValidationTest, SchemasExposeProtectedSets) {
  DataSchema adult = AdultSpec().MakeSchema();
  EXPECT_EQ(adult.NumProtected(), 6);
  EXPECT_TRUE(adult.IsProtected(adult.AttributeIndex("gender")));
  EXPECT_FALSE(adult.IsProtected(adult.AttributeIndex("education")));
}

TEST(AllDatasetsTest, EveryProtectedAttributeHasFullSupport) {
  // Every protected value occurs: otherwise lattice nodes would silently
  // shrink and paper comparisons would be apples-to-oranges.
  for (Dataset data : {MakeCompas(), MakeAdult(20000), MakeLawSchool()}) {
    for (int index : data.schema().protected_indices()) {
      std::vector<int> seen(data.schema().attribute(index).Cardinality(), 0);
      for (int r = 0; r < data.NumRows(); ++r) ++seen[data.Value(r, index)];
      for (size_t v = 0; v < seen.size(); ++v) {
        EXPECT_GT(seen[v], 0)
            << data.schema().attribute(index).name() << "=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace remedy
