#include "core/pipeline_report.h"

#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "core/ibs_identify.h"
#include "datagen/adult.h"

namespace remedy {
namespace {

Dataset SmallAdult() {
  Dataset data = MakeAdult(3000, 17);
  data.SetProtected(AdultScalabilityProtected(3));
  return data;
}

TEST(PipelineReportTest, AuditMatchesRemedyOutput) {
  Dataset train = SmallAdult();
  RemedyParams params;
  params.technique = RemedyTechnique::kPreferentialSampling;

  Dataset remedied(train.schema());
  StatusOr<PipelineReport> report_or =
      RunAuditedRemedy(train, params, &remedied);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const PipelineReport& report = report_or.value();

  EXPECT_EQ(report.technique, TechniqueName(params.technique));
  EXPECT_EQ(report.engine, "incremental");
  EXPECT_EQ(report.seed, params.seed);
  EXPECT_EQ(report.rows_before, train.NumRows());
  EXPECT_EQ(report.rows_after, remedied.NumRows());
  EXPECT_EQ(report.rows_after,
            report.rows_before + report.stats.instances_added -
                report.stats.instances_removed);

  // The audit covers every region the identification pass flagged.
  const size_t ibs_size = IdentifyIbs(train, params.ibs).value().size();
  EXPECT_EQ(report.regions.size(), ibs_size);
  ASSERT_FALSE(report.regions.empty())
      << "generator must yield at least one biased region for the audit";

  int64_t improved = 0;
  for (const RegionReportEntry& entry : report.regions) {
    EXPECT_FALSE(entry.region.empty());
    EXPECT_GE(entry.positives_before, 0);
    EXPECT_GE(entry.negatives_before, 0);
    EXPECT_GE(entry.positives_after, 0);
    EXPECT_GE(entry.negatives_after, 0);
    if (entry.improved) ++improved;
  }
  EXPECT_EQ(report.regions_improved, improved);
  EXPECT_GT(report.regions_improved, 0)
      << "the remedy should move at least one region toward its target";
  EXPECT_GE(report.residual_ibs_size, 0);
}

TEST(PipelineReportTest, AuditedRemedyMatchesDirectRemedy) {
  // RunAuditedRemedy must not perturb the remedy itself: the remedied rows
  // and stats are identical to a direct RemedyDataset call.
  Dataset train = SmallAdult();
  RemedyParams params;
  params.technique = RemedyTechnique::kMassaging;

  RemedyStats direct_stats;
  Dataset direct = RemedyDataset(train, params, &direct_stats).value();

  Dataset audited(train.schema());
  PipelineReport report =
      RunAuditedRemedy(train, params, &audited).value();

  ASSERT_EQ(audited.NumRows(), direct.NumRows());
  for (int r = 0; r < direct.NumRows(); ++r) {
    ASSERT_EQ(audited.Row(r), direct.Row(r)) << "row " << r;
    ASSERT_EQ(audited.Label(r), direct.Label(r)) << "row " << r;
  }
  EXPECT_EQ(report.stats.regions_processed, direct_stats.regions_processed);
  EXPECT_EQ(report.stats.instances_added, direct_stats.instances_added);
  EXPECT_EQ(report.stats.instances_removed, direct_stats.instances_removed);
  EXPECT_EQ(report.stats.labels_flipped, direct_stats.labels_flipped);
}

TEST(PipelineReportTest, ReportWorksWithoutDatasetOut) {
  Dataset train = SmallAdult();
  RemedyParams params;
  StatusOr<PipelineReport> report = RunAuditedRemedy(train, params);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rows_before, train.NumRows());
}

TEST(PipelineReportTest, FailsOnUnremediableDataset) {
  Dataset empty(SmallAdult().schema());
  RemedyParams params;
  StatusOr<PipelineReport> report = RunAuditedRemedy(empty, params);
  EXPECT_FALSE(report.ok());
}

TEST(PipelineReportTest, ToJsonCarriesTheAudit) {
  Dataset train = SmallAdult();
  RemedyParams params;
  params.engine = RemedyEngine::kRebuild;
  PipelineReport report = RunAuditedRemedy(train, params).value();
  const std::string json = report.ToJson();
  EXPECT_EQ(json.front(), '{');
  for (const char* key :
       {"\"technique\"", "\"engine\"", "\"seed\"", "\"rows_before\"",
        "\"rows_after\"", "\"instances_added\"", "\"instances_removed\"",
        "\"labels_flipped\"", "\"regions\"", "\"regions_improved\"",
        "\"residual_ibs_size\"", "\"score_before\"", "\"score_after\"",
        "\"neighbor_score\"", "\"improved\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  EXPECT_NE(json.find("\"engine\": \"rebuild\""), std::string::npos);
}

TEST(PipelineReportTest, PrintRendersSummaryAndTable) {
  Dataset train = SmallAdult();
  RemedyParams params;
  PipelineReport report = RunAuditedRemedy(train, params).value();
  std::ostringstream out;
  PrintPipelineReport(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find(report.technique), std::string::npos);
  EXPECT_NE(text.find("region"), std::string::npos);
  EXPECT_NE(text.find("improved"), std::string::npos);
  // Every audited region appears in the table.
  EXPECT_NE(text.find(report.regions.front().region), std::string::npos);
}

TEST(PipelineReportTest, AuditRunsUnderActiveTraceSink) {
  // The audit is itself instrumented; a live sink must collect its spans
  // without disturbing the result.
  Dataset train = SmallAdult();
  RemedyParams params;
  TraceSink sink;
  PipelineReport report = RunAuditedRemedy(train, params).value();
  EXPECT_EQ(report.rows_before, train.NumRows());
  bool saw_audit_span = false;
  for (const TraceEvent& e : sink.Events()) {
    if (std::string(e.name) == "report/audited_remedy") saw_audit_span = true;
  }
#if defined(REMEDY_TRACE_DISABLED)
  EXPECT_FALSE(saw_audit_span) << "trace-off build must emit no spans";
#else
  EXPECT_TRUE(saw_audit_span);
#endif
}

}  // namespace
}  // namespace remedy
