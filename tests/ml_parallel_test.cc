// Determinism contract of the parallel training/evaluation engine: every
// parallel path (random-forest bagging, blocked logistic-regression
// gradients, batch-accumulated neural network, bootstrap replicates, grid
// search) must produce byte-identical output for any thread count, and the
// encoded fast paths must match their Dataset counterparts bitwise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/encoding.h"
#include "fairness/bootstrap.h"
#include "fairness/fairness_index.h"
#include "ml/grid_search.h"
#include "ml/logistic_regression.h"
#include "ml/neural_network.h"
#include "ml/random_forest.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::SmallSchema;

#ifdef REMEDY_TSAN_BUILD
constexpr int kRows = 900;
constexpr int kEpochs = 5;
#else
constexpr int kRows = 5000;
constexpr int kEpochs = 30;
#endif

// Noisy but learnable data over the shared small schema.
Dataset LearnableData(int rows, uint64_t seed) {
  Rng rng(seed);
  Dataset data(SmallSchema());
  for (int i = 0; i < rows; ++i) {
    int a = rng.UniformInt(3), b = rng.UniformInt(2), f = rng.UniformInt(2);
    double p = f == 1 ? 0.8 : 0.15;
    if (a == 0) p += 0.1;
    data.AddRow({a, b, f}, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

// A predictor biased against a = 1 rows, so the subgroup analysis and the
// fairness index have real signal.
std::vector<int> BiasedPredictions(const Dataset& data) {
  std::vector<int> predictions(data.NumRows());
  for (int r = 0; r < data.NumRows(); ++r) {
    predictions[r] = data.Value(r, 0) == 1 ? 1 : data.Label(r);
  }
  return predictions;
}

const int kThreadCounts[] = {2, 4, 0};  // vs the serial reference (1)

TEST(MlParallelTest, EncodedMatrixMatchesEncoder) {
  Dataset data = LearnableData(200, 3);
  EncodedMatrix encoded(data);
  EXPECT_EQ(encoded.NumRows(), data.NumRows());
  EXPECT_EQ(encoded.NumColumns(), data.NumColumns());
  EXPECT_EQ(encoded.Width(), encoded.encoder().Width());
  for (int r = 0; r < data.NumRows(); r += 17) {
    const int* active = encoded.ActiveRow(r);
    for (int c = 0; c < data.NumColumns(); ++c) {
      EXPECT_EQ(active[c],
                encoded.encoder().Offset(c) + data.Value(r, c));
    }
  }
}

TEST(MlParallelTest, RandomForestThreadCountEquivalence) {
  Dataset train = LearnableData(kRows, 11);
  Dataset probe = LearnableData(300, 12);
  RandomForestParams params;
  params.threads = 1;
  RandomForest serial(params);
  serial.Fit(train);
  std::vector<double> reference = serial.PredictProbaAll(probe);
  for (int threads : kThreadCounts) {
    params.threads = threads;
    RandomForest parallel(params);
    parallel.Fit(train);
    std::vector<double> probabilities = parallel.PredictProbaAll(probe);
    ASSERT_EQ(probabilities.size(), reference.size());
    for (size_t r = 0; r < reference.size(); ++r) {
      EXPECT_DOUBLE_EQ(probabilities[r], reference[r])
          << "threads=" << threads << " row=" << r;
    }
  }
}

TEST(MlParallelTest, LogisticRegressionThreadCountEquivalence) {
  // kRows spans several 2048-row gradient blocks in the non-TSan build.
  Dataset train = LearnableData(kRows, 21);
  LogisticRegressionParams params;
  params.epochs = kEpochs;
  params.threads = 1;
  LogisticRegression serial(params);
  serial.Fit(train);
  for (int threads : kThreadCounts) {
    params.threads = threads;
    LogisticRegression parallel(params);
    parallel.Fit(train);
    EXPECT_DOUBLE_EQ(parallel.intercept(), serial.intercept())
        << "threads=" << threads;
    ASSERT_EQ(parallel.coefficients().size(), serial.coefficients().size());
    for (size_t j = 0; j < serial.coefficients().size(); ++j) {
      EXPECT_DOUBLE_EQ(parallel.coefficients()[j], serial.coefficients()[j])
          << "threads=" << threads << " coefficient=" << j;
    }
  }
}

TEST(MlParallelTest, LogisticRegressionEncodedFitMatchesDatasetFit) {
  Dataset train = LearnableData(1200, 22);
  LogisticRegressionParams params;
  params.epochs = kEpochs;
  LogisticRegression from_dataset(params);
  from_dataset.Fit(train);
  LogisticRegression from_encoded(params);
  EncodedMatrix encoded(train);
  from_encoded.FitEncoded(encoded);
  EXPECT_DOUBLE_EQ(from_encoded.intercept(), from_dataset.intercept());
  for (size_t j = 0; j < from_dataset.coefficients().size(); ++j) {
    EXPECT_DOUBLE_EQ(from_encoded.coefficients()[j],
                     from_dataset.coefficients()[j]);
  }
  // The encoded predict path must match the per-row path bitwise too.
  std::vector<double> encoded_probabilities =
      from_encoded.PredictProbaAllEncoded(encoded);
  for (int r = 0; r < train.NumRows(); r += 31) {
    EXPECT_DOUBLE_EQ(encoded_probabilities[r],
                     from_dataset.PredictProba(train, r));
  }
}

TEST(MlParallelTest, NeuralNetworkThreadCountEquivalence) {
  Dataset train = LearnableData(std::min(kRows, 2000), 31);
  Dataset probe = LearnableData(200, 32);
  NeuralNetworkParams params;
  params.epochs = 5;
  params.batch_size = 256;  // four 64-row sub-blocks per batch
  params.threads = 1;
  NeuralNetwork serial(params);
  serial.Fit(train);
  std::vector<double> reference = serial.PredictProbaAll(probe);
  for (int threads : kThreadCounts) {
    params.threads = threads;
    NeuralNetwork parallel(params);
    parallel.Fit(train);
    std::vector<double> probabilities = parallel.PredictProbaAll(probe);
    for (size_t r = 0; r < reference.size(); ++r) {
      EXPECT_DOUBLE_EQ(probabilities[r], reference[r])
          << "threads=" << threads << " row=" << r;
    }
  }
}

TEST(MlParallelTest, NeuralNetworkEncodedFitMatchesDatasetFit) {
  Dataset train = LearnableData(800, 33);
  NeuralNetworkParams params;
  params.epochs = 3;
  NeuralNetwork from_dataset(params);
  from_dataset.Fit(train);
  NeuralNetwork from_encoded(params);
  EncodedMatrix encoded(train);
  from_encoded.FitEncoded(encoded);
  std::vector<double> encoded_probabilities =
      from_encoded.PredictProbaAllEncoded(encoded);
  for (int r = 0; r < train.NumRows(); r += 23) {
    EXPECT_DOUBLE_EQ(encoded_probabilities[r],
                     from_dataset.PredictProba(train, r));
  }
}

TEST(MlParallelTest, GridSearchThreadCountEquivalence) {
  Dataset train = LearnableData(1000, 41);
  std::vector<std::function<ClassifierPtr()>> candidates;
  for (double l2 : {1e-4, 1e-3, 1e-2, 1e-1}) {
    candidates.push_back([l2] {
      LogisticRegressionParams params;
      params.l2 = l2;
      params.epochs = 40;
      return std::make_unique<LogisticRegression>(params);
    });
  }
  GridSearchResult serial = GridSearch(train, candidates, 0.2, 17, 1);
  for (int threads : kThreadCounts) {
    GridSearchResult parallel = GridSearch(train, candidates, 0.2, 17,
                                           threads);
    EXPECT_EQ(parallel.best_index, serial.best_index)
        << "threads=" << threads;
    ASSERT_EQ(parallel.accuracies.size(), serial.accuracies.size());
    for (size_t i = 0; i < serial.accuracies.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel.accuracies[i], serial.accuracies[i])
          << "threads=" << threads << " candidate=" << i;
    }
  }
}

TEST(MlParallelTest, BootstrapThreadCountEquivalence) {
  Dataset test = LearnableData(600, 51);
  std::vector<int> predictions = BiasedPredictions(test);
  BootstrapOptions options;
  options.replicates = 40;
  options.threads = 1;
  BootstrapInterval serial =
      BootstrapFairnessIndex(test, predictions, Statistic::kFpr, options);
  for (int threads : kThreadCounts) {
    options.threads = threads;
    BootstrapInterval parallel =
        BootstrapFairnessIndex(test, predictions, Statistic::kFpr, options);
    EXPECT_DOUBLE_EQ(parallel.point, serial.point) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(parallel.lower, serial.lower) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(parallel.upper, serial.upper) << "threads=" << threads;
  }
}

TEST(MlParallelTest, FairnessIndexViewMatchesMaterializedResample) {
  Dataset test = LearnableData(400, 52);
  std::vector<int> predictions = BiasedPredictions(test);
  Rng rng(99);
  std::vector<int> rows(test.NumRows());
  for (int& row : rows) row = rng.UniformInt(test.NumRows());

  double view = ComputeFairnessIndexView(test, rows, predictions,
                                         Statistic::kFpr);
  Dataset materialized = test.Select(rows);
  std::vector<int> gathered(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) gathered[i] = predictions[rows[i]];
  double reference = ComputeFairnessIndex(materialized, gathered,
                                          Statistic::kFpr);
  EXPECT_DOUBLE_EQ(view, reference);
}

TEST(MlParallelTest, PercentileFromSortedInterpolates) {
  const std::vector<double> sorted = {0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PercentileFromSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileFromSorted(sorted, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileFromSorted(sorted, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(PercentileFromSorted(sorted, 0.25), 0.75);
  EXPECT_DOUBLE_EQ(PercentileFromSorted(sorted, 0.9), 2.7);
  EXPECT_DOUBLE_EQ(PercentileFromSorted({4.5}, 0.3), 4.5);
}

// Regression for the truncation bug: the interval bounds must be the
// linearly interpolated order statistics of the replicate indices, not the
// floor-rank entries. Reconstructs the replicate sample from the same
// per-replicate streams the implementation uses and pins the bounds.
TEST(MlParallelTest, BootstrapIntervalUsesInterpolatedPercentiles) {
  Dataset test = LearnableData(300, 53);
  std::vector<int> predictions = BiasedPredictions(test);
  BootstrapOptions options;
  options.replicates = 40;  // tail rank 0.025 * 39 = 0.975: interpolation
  options.seed = 61;        // lands strictly between order statistics
  options.threads = 1;

  std::vector<double> replicate_indices(options.replicates);
  for (int b = 0; b < options.replicates; ++b) {
    Rng rng(StreamSeed(options.seed, static_cast<uint64_t>(b)));
    std::vector<int> rows(test.NumRows());
    for (int& row : rows) row = rng.UniformInt(test.NumRows());
    replicate_indices[b] = ComputeFairnessIndexView(
        test, rows, predictions, Statistic::kFpr, options.index);
  }
  std::sort(replicate_indices.begin(), replicate_indices.end());
  const double tail = (1.0 - options.confidence) / 2.0;
  const double expected_lower =
      PercentileFromSorted(replicate_indices, tail);
  const double expected_upper =
      PercentileFromSorted(replicate_indices, 1.0 - tail);
  // The truncating rank would return replicate_indices[0] / [38]; the
  // interpolated bounds sit strictly inside unless neighbors collide.
  EXPECT_GE(expected_lower, replicate_indices[0]);
  EXPECT_LE(expected_upper, replicate_indices[options.replicates - 1]);

  BootstrapInterval interval =
      BootstrapFairnessIndex(test, predictions, Statistic::kFpr, options);
  EXPECT_DOUBLE_EQ(interval.lower, expected_lower);
  EXPECT_DOUBLE_EQ(interval.upper, expected_upper);
}

}  // namespace
}  // namespace remedy
