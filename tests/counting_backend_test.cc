#include "core/counting_backend.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/region_counter.h"
#include "data/columnar.h"
#include "datagen/generator.h"
#include "datagen/random_spec.h"

namespace remedy {
namespace {

// TSan executes the same suite ~10x slower; fewer random trials keep the
// twin fast while every code path still runs.
#ifdef REMEDY_TSAN_BUILD
constexpr int kTrials = 6;
#else
constexpr int kTrials = 30;
#endif

TEST(CountingBackendTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(CountingBackendName(CountingBackendKind::kScalar), "scalar");
  EXPECT_STREQ(CountingBackendName(CountingBackendKind::kSimd), "simd");
  EXPECT_STREQ(CountingBackendName(CountingBackendKind::kSharded),
               "sharded");
  for (CountingBackendKind kind :
       {CountingBackendKind::kScalar, CountingBackendKind::kSimd,
        CountingBackendKind::kSharded}) {
    StatusOr<CountingBackendKind> parsed =
        ParseCountingBackend(CountingBackendName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
    EXPECT_EQ(CountingBackend::Create(kind)->kind(), kind);
  }
  EXPECT_FALSE(ParseCountingBackend("gpu").ok());
  EXPECT_FALSE(ParseCountingBackend("").ok());
  EXPECT_FALSE(ParseCountingBackend("Scalar").ok());
}

// The central contract: for random schemas, row counts, shard sizes and
// thread counts, every backend produces the exact NodeTable the scalar
// row-scan produces — full contents, every lattice node.
TEST(CountingBackendTest, AllBackendsMatchScalarOnRandomInputs) {
  Rng rng(4242);
  RandomSpecOptions options;
  options.min_attributes = 2;
  options.max_attributes = 6;
  options.max_cardinality = 7;
  options.max_protected = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    options.num_rows = 50 + rng.UniformInt(1200);
    SyntheticSpec spec = RandomSpec(rng, options);
    Dataset data = GenerateSynthetic(spec, 1000 + trial);
    // Small shard size so multi-shard merge paths run at test-scale rows.
    const int64_t shard_rows = 16 + rng.UniformInt(200);
    ColumnarShardStore store =
        ColumnarShardStore::FromDataset(data, shard_rows);
    RegionCounter counter(data.schema());
    const uint32_t leaf_mask = (1u << counter.NumProtected()) - 1;

    CountingSource dataset_source;
    dataset_source.dataset = &data;
    CountingSource store_source;
    store_source.store = &store;

    auto scalar = CountingBackend::Create(CountingBackendKind::kScalar);
    auto simd = CountingBackend::Create(CountingBackendKind::kSimd);
    auto sharded = CountingBackend::Create(CountingBackendKind::kSharded);

    for (uint32_t mask = 1; mask <= leaf_mask; ++mask) {
      NodeTable reference =
          scalar->CountNode(dataset_source, counter, mask, 1);
      // Scalar over the store must equal scalar over the dataset.
      EXPECT_EQ(scalar->CountNode(store_source, counter, mask, 1),
                reference)
          << "scalar/store mask=" << mask << " trial=" << trial;
      EXPECT_EQ(simd->CountNode(store_source, counter, mask, 1), reference)
          << "simd mask=" << mask << " trial=" << trial;
      for (int threads : {1, 2, 4, 0}) {
        EXPECT_EQ(sharded->CountNode(store_source, counter, mask, threads),
                  reference)
            << "sharded mask=" << mask << " threads=" << threads
            << " trial=" << trial;
      }
    }
  }
}

TEST(CountingBackendTest, HierarchyBackendsAgreeOnNodeCounts) {
  Rng rng(7);
  RandomSpecOptions options;
  options.num_rows = 900;
  SyntheticSpec spec = RandomSpec(rng, options);
  Dataset data = GenerateSynthetic(spec, 55);
  ColumnarShardStore store = ColumnarShardStore::FromDataset(data, 128);

  Hierarchy reference(data);
  Hierarchy simd_over_dataset(data);
  simd_over_dataset.SetCountingBackend(CountingBackendKind::kSimd);
  Hierarchy sharded_over_store(store);
  sharded_over_store.SetCountingBackend(CountingBackendKind::kSharded,
                                        /*threads=*/3);

  for (uint32_t mask : reference.BottomUpMasks()) {
    const NodeTable& expected = reference.NodeCounts(mask);
    EXPECT_EQ(simd_over_dataset.NodeCounts(mask), expected)
        << "simd mask=" << mask;
    EXPECT_EQ(sharded_over_store.NodeCounts(mask), expected)
        << "sharded mask=" << mask;
  }
  EXPECT_EQ(sharded_over_store.TotalCounts(), reference.TotalCounts());
}

// End to end, fixed seed: IBS identification over a streamed store must be
// identical region for region across every backend and thread count — the
// same check backend_smoke runs at 1M rows, pinned here at unit scale.
TEST(CountingBackendTest, IdentifyIbsIdenticalAcrossBackendsAndThreads) {
  Rng rng(31);
  RandomSpecOptions options;
  options.num_rows = 1500;
  options.num_injections = 4;
  SyntheticSpec spec = RandomSpec(rng, options);
  Dataset data = GenerateSynthetic(spec, 321);
  ColumnarShardStore store = ColumnarShardStore::FromDataset(data, 200);

  IbsParams params;
  params.imbalance_threshold = 0.05;
  params.min_region_size = 10;
  StatusOr<std::vector<BiasedRegion>> reference = IdentifyIbs(data, params);
  ASSERT_TRUE(reference.ok());

  for (CountingBackendKind kind :
       {CountingBackendKind::kScalar, CountingBackendKind::kSimd,
        CountingBackendKind::kSharded}) {
    for (int threads : {1, 2, 4, 0}) {
      IbsParams backend_params = params;
      backend_params.backend = kind;
      backend_params.backend_threads = threads;
      StatusOr<std::vector<BiasedRegion>> got =
          IdentifyIbs(store, backend_params);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().size(), reference.value().size())
          << CountingBackendName(kind) << " threads=" << threads;
      for (size_t i = 0; i < got.value().size(); ++i) {
        const BiasedRegion& a = got.value()[i];
        const BiasedRegion& b = reference.value()[i];
        EXPECT_EQ(a.pattern, b.pattern);
        EXPECT_EQ(a.counts, b.counts);
        EXPECT_EQ(a.neighbor_counts, b.neighbor_counts);
        EXPECT_EQ(a.ratio, b.ratio);  // exact: same integer inputs
        EXPECT_EQ(a.neighbor_ratio, b.neighbor_ratio);
      }
    }
  }
}

TEST(CountingBackendTest, WideCardinalityColumnsCountCorrectly) {
  // Cardinality > 256 forces the u16 column path through the SIMD widening
  // loads.
  std::vector<std::string> wide_values;
  for (int v = 0; v < 400; ++v) wide_values.push_back(std::to_string(v));
  DataSchema schema({AttributeSchema("wide", wide_values),
                     AttributeSchema("bit", {"0", "1"})},
                    /*protected_indices=*/{0, 1});
  Dataset data(schema);
  Rng rng(13);
  for (int r = 0; r < 3000; ++r) {
    data.AddRow({rng.UniformInt(400), rng.UniformInt(2)},
                rng.Bernoulli(0.4) ? 1 : 0);
  }
  ColumnarShardStore store = ColumnarShardStore::FromDataset(data, 512);
  RegionCounter counter(schema);
  CountingSource dataset_source;
  dataset_source.dataset = &data;
  CountingSource store_source;
  store_source.store = &store;
  auto scalar = CountingBackend::Create(CountingBackendKind::kScalar);
  for (uint32_t mask = 1; mask <= 3; ++mask) {
    NodeTable reference = scalar->CountNode(dataset_source, counter, mask, 1);
    for (CountingBackendKind kind :
         {CountingBackendKind::kSimd, CountingBackendKind::kSharded}) {
      EXPECT_EQ(CountingBackend::Create(kind)->CountNode(store_source,
                                                         counter, mask, 2),
                reference)
          << CountingBackendName(kind) << " mask=" << mask;
    }
  }
}

}  // namespace
}  // namespace remedy
