#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/attribute.h"
#include "data/dataset.h"
#include "data/discretize.h"
#include "data/encoding.h"
#include "data/schema.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::SmallSchema;

TEST(AttributeTest, BasicAccessors) {
  AttributeSchema attr("color", {"red", "green", "blue"});
  EXPECT_EQ(attr.name(), "color");
  EXPECT_EQ(attr.Cardinality(), 3);
  EXPECT_EQ(attr.ValueIndex("green"), 1);
  EXPECT_EQ(attr.ValueIndex("purple"), -1);
  EXPECT_EQ(attr.ValueName(2), "blue");
  EXPECT_FALSE(attr.ordinal());
}

TEST(AttributeTest, NominalDistanceIsDiscrete) {
  AttributeSchema attr("color", {"red", "green", "blue"});
  EXPECT_DOUBLE_EQ(attr.Distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(attr.Distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(attr.Distance(0, 2), 1.0);
}

TEST(AttributeTest, OrdinalDistanceRespectsOrdering) {
  AttributeSchema attr("age", {"<25", "25-45", ">45"}, /*ordinal=*/true);
  EXPECT_DOUBLE_EQ(attr.Distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(attr.Distance(1, 2), 1.0);
}

TEST(SchemaTest, ProtectedIndices) {
  DataSchema schema = SmallSchema();
  EXPECT_EQ(schema.NumAttributes(), 3);
  EXPECT_EQ(schema.NumProtected(), 2);
  EXPECT_TRUE(schema.IsProtected(0));
  EXPECT_TRUE(schema.IsProtected(1));
  EXPECT_FALSE(schema.IsProtected(2));
  EXPECT_EQ(schema.AttributeIndex("f"), 2);
  EXPECT_EQ(schema.AttributeIndex("nope"), -1);
}

TEST(SchemaTest, WithProtectedSwapsSet) {
  DataSchema schema = SmallSchema().WithProtected({"b", "f"});
  EXPECT_EQ(schema.NumProtected(), 2);
  EXPECT_FALSE(schema.IsProtected(0));
  EXPECT_TRUE(schema.IsProtected(1));
  EXPECT_TRUE(schema.IsProtected(2));
}

TEST(DatasetTest, AddAndReadRows) {
  Dataset data(SmallSchema());
  data.AddRow({0, 1, 0}, 1, 2.0);
  data.AddRow({2, 0, 1}, 0);
  EXPECT_EQ(data.NumRows(), 2);
  EXPECT_EQ(data.Value(0, 0), 0);
  EXPECT_EQ(data.Value(1, 0), 2);
  EXPECT_EQ(data.Label(0), 1);
  EXPECT_EQ(data.Label(1), 0);
  EXPECT_DOUBLE_EQ(data.Weight(0), 2.0);
  EXPECT_DOUBLE_EQ(data.Weight(1), 1.0);
  EXPECT_EQ(data.Row(1), (std::vector<int>{2, 0, 1}));
}

TEST(DatasetTest, CountsAndWeights) {
  Dataset data(SmallSchema());
  AddRows(data, 3, 0, 0, 0, 1);
  AddRows(data, 5, 1, 1, 1, 0);
  EXPECT_EQ(data.PositiveCount(), 3);
  EXPECT_EQ(data.NegativeCount(), 5);
  EXPECT_DOUBLE_EQ(data.TotalWeight(), 8.0);
  data.SetWeight(0, 3.5);
  EXPECT_DOUBLE_EQ(data.TotalWeight(), 10.5);
}

TEST(DatasetTest, SetLabelFlips) {
  Dataset data(SmallSchema());
  data.AddRow({0, 0, 0}, 0);
  data.SetLabel(0, 1);
  EXPECT_EQ(data.Label(0), 1);
  EXPECT_EQ(data.PositiveCount(), 1);
}

TEST(DatasetTest, SelectAndRemove) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 5; ++i) data.AddRow({i % 3, i % 2, 0}, i % 2);
  Dataset selected = data.Select({4, 0});
  EXPECT_EQ(selected.NumRows(), 2);
  EXPECT_EQ(selected.Value(0, 0), 4 % 3);
  Dataset removed = data.Remove({1, 3});
  EXPECT_EQ(removed.NumRows(), 3);
  EXPECT_EQ(removed.Value(0, 0), 0);
  EXPECT_EQ(removed.Value(1, 0), 2);
}

TEST(DatasetTest, AppendRowFromDuplicates) {
  Dataset data(SmallSchema());
  data.AddRow({1, 1, 1}, 1, 4.0);
  data.AppendRowFrom(data, 0);  // self-append must be safe
  EXPECT_EQ(data.NumRows(), 2);
  EXPECT_EQ(data.Row(1), data.Row(0));
  EXPECT_DOUBLE_EQ(data.Weight(1), 4.0);
}

TEST(DatasetTest, TrainTestSplitPartitions) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 100; ++i) data.AddRow({i % 3, i % 2, i % 2}, i % 2);
  Rng rng(1);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  EXPECT_EQ(train.NumRows(), 70);
  EXPECT_EQ(test.NumRows(), 30);
  EXPECT_EQ(train.PositiveCount() + test.PositiveCount(),
            data.PositiveCount());
}

TEST(DatasetTest, SampleRowsWithoutReplacement) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 50; ++i) data.AddRow({i % 3, i % 2, 0}, 0);
  Rng rng(2);
  Dataset sample = data.SampleRows(20, rng);
  EXPECT_EQ(sample.NumRows(), 20);
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset data(SmallSchema());
  data.AddRow({0, 1, 1}, 1);
  data.AddRow({2, 0, 0}, 0);
  CsvTable table = data.ToCsv();
  EXPECT_EQ(table.header.back(), "label");
  Dataset parsed;
  std::string error;
  ASSERT_TRUE(Dataset::FromCsv(data.schema(), table, &parsed, &error))
      << error;
  EXPECT_EQ(parsed.NumRows(), 2);
  EXPECT_EQ(parsed.Row(0), data.Row(0));
  EXPECT_EQ(parsed.Label(1), 0);
}

TEST(DatasetTest, FromCsvRejectsUnknownValue) {
  Dataset data(SmallSchema());
  data.AddRow({0, 0, 0}, 0);
  CsvTable table = data.ToCsv();
  table.rows[0][0] = "not-a-value";
  Dataset parsed;
  std::string error;
  EXPECT_FALSE(Dataset::FromCsv(data.schema(), table, &parsed, &error));
  EXPECT_NE(error.find("unknown value"), std::string::npos);
}

TEST(DatasetTest, FromCsvRejectsBadLabel) {
  Dataset data(SmallSchema());
  data.AddRow({0, 0, 0}, 0);
  CsvTable table = data.ToCsv();
  table.rows[0].back() = "2";
  Dataset parsed;
  std::string error;
  EXPECT_FALSE(Dataset::FromCsv(data.schema(), table, &parsed, &error));
}

TEST(BucketizerTest, ExplicitCuts) {
  Bucketizer buckets("age", {25.0, 45.0});
  EXPECT_EQ(buckets.NumBuckets(), 3);
  EXPECT_EQ(buckets.Code(10.0), 0);
  EXPECT_EQ(buckets.Code(25.0), 0);  // right-closed
  EXPECT_EQ(buckets.Code(30.0), 1);
  EXPECT_EQ(buckets.Code(90.0), 2);
}

TEST(BucketizerTest, EqualWidth) {
  std::vector<double> values = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Bucketizer buckets = Bucketizer::EqualWidth("v", values, 5);
  EXPECT_EQ(buckets.NumBuckets(), 5);
  EXPECT_EQ(buckets.Code(0.0), 0);
  EXPECT_EQ(buckets.Code(10.0), 4);
}

TEST(BucketizerTest, QuantileBalancesPopulation) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  Bucketizer buckets = Bucketizer::Quantile("v", values, 4);
  EXPECT_EQ(buckets.NumBuckets(), 4);
  std::vector<int> counts(4, 0);
  for (double v : values) ++counts[buckets.Code(v)];
  for (int count : counts) EXPECT_NEAR(count, 250, 30);
}

TEST(BucketizerTest, QuantileCollapsesTies) {
  std::vector<double> values(100, 5.0);
  Bucketizer buckets = Bucketizer::Quantile("v", values, 4);
  EXPECT_EQ(buckets.NumBuckets(), 1);
}

TEST(BucketizerTest, SchemaIsOrdinalWithRangeNames) {
  Bucketizer buckets("age", {30.0, 45.0});
  AttributeSchema schema = buckets.MakeSchema();
  EXPECT_TRUE(schema.ordinal());
  EXPECT_EQ(schema.Cardinality(), 3);
  EXPECT_EQ(schema.ValueName(0), "<=30");
  EXPECT_EQ(schema.ValueName(2), ">45");
}

TEST(OneHotEncoderTest, WidthAndOffsets) {
  OneHotEncoder encoder(SmallSchema());
  EXPECT_EQ(encoder.Width(), 3 + 2 + 2);
  EXPECT_EQ(encoder.Offset(0), 0);
  EXPECT_EQ(encoder.Offset(1), 3);
  EXPECT_EQ(encoder.Offset(2), 5);
}

TEST(DatasetTest, CompactMatchesSelectOfKeptRows) {
  Dataset data(SmallSchema());
  AddRows(data, 7, 0, 0, 1, 1);
  AddRows(data, 5, 1, 1, 0, 0);
  data.SetWeight(3, 2.5);
  std::vector<char> keep(data.NumRows(), 1);
  keep[0] = keep[4] = keep[11] = 0;
  std::vector<int> kept_rows;
  for (int r = 0; r < data.NumRows(); ++r) {
    if (keep[r]) kept_rows.push_back(r);
  }
  Dataset compacted = data.Compact(keep);
  Dataset selected = data.Select(kept_rows);
  ASSERT_EQ(compacted.NumRows(), selected.NumRows());
  for (int r = 0; r < compacted.NumRows(); ++r) {
    EXPECT_EQ(compacted.Row(r), selected.Row(r));
    EXPECT_EQ(compacted.Label(r), selected.Label(r));
    EXPECT_EQ(compacted.Weight(r), selected.Weight(r));
  }
}

TEST(DatasetTest, CompactAllAndNone) {
  Dataset data(SmallSchema());
  AddRows(data, 4, 0, 0, 1, 1);
  EXPECT_EQ(data.Compact(std::vector<char>(4, 1)).NumRows(), 4);
  EXPECT_EQ(data.Compact(std::vector<char>(4, 0)).NumRows(), 0);
}

TEST(DatasetTest, CompactRejectsWrongMaskLength) {
  Dataset data(SmallSchema());
  AddRows(data, 4, 0, 0, 1, 1);
  EXPECT_DEATH(data.Compact(std::vector<char>(3, 1)), "");
}

TEST(OneHotEncoderTest, EncodesIndicators) {
  Dataset data(SmallSchema());
  data.AddRow({2, 0, 1}, 1);
  OneHotEncoder encoder(data.schema());
  std::vector<float> row;
  encoder.EncodeRow(data, 0, &row);
  std::vector<float> expected = {0, 0, 1, 1, 0, 0, 1};
  EXPECT_EQ(row, expected);
  std::vector<float> all = encoder.EncodeAll(data);
  EXPECT_EQ(all, expected);
}

}  // namespace
}  // namespace remedy
