// Compiled with REMEDY_TRACE_DISABLED (see tests/CMakeLists.txt): the
// REMEDY_TRACE_SPAN* macros must expand to nothing, the TraceSpan/TraceSink
// types must still be defined (tools that construct a sink keep linking),
// and instrumented code paths must emit zero spans even with a sink active.
//
// This test guards the compile-time kill switch itself — that the macros
// vanish without breaking surrounding code — independently of the
// `trace-off` CMake preset, which turns the flag on for the whole build.
#if !defined(REMEDY_TRACE_DISABLED)
#error "trace_disabled_test must be compiled with REMEDY_TRACE_DISABLED"
#endif

#include "common/trace.h"

#include <string>

#include <gtest/gtest.h>

namespace remedy {
namespace {

TEST(TraceDisabledTest, MacrosExpandToNothing) {
  TraceSink sink;
  {
    REMEDY_TRACE_SPAN("never_recorded");
    REMEDY_TRACE_SPAN_ARG("never_recorded_arg", 42);
    // With the macros compiled out, two same-line-style spans in one scope
    // must not even declare variables. A plain statement keeps the block
    // non-empty.
    EXPECT_TRUE(TracingActive());
  }
  EXPECT_TRUE(sink.Events().empty());
}

TEST(TraceDisabledTest, ExplicitSpansStillWork) {
  // The kill switch removes the *macros*; the types stay functional so
  // tools that construct spans directly keep working.
  TraceSink sink;
  { TraceSpan span("explicit"); }
  EXPECT_EQ(sink.Events().size(), 1u);
}

TEST(TraceDisabledTest, InstrumentedPipelineEmitsNoMacroSpans) {
  // The library itself was built WITH tracing (only this test file defines
  // REMEDY_TRACE_DISABLED), so this cannot assert the library emits zero
  // spans — that is what the trace-off preset build verifies. What it can
  // assert: this TU's disabled macros coexist with the traced library, and
  // the empty-sink JSON stays valid.
  TraceSink sink;
  REMEDY_TRACE_SPAN("local_macro_span");
  const std::string json = sink.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace remedy
