#include <gtest/gtest.h>

#include <cmath>

#include "core/remedy.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;

// ---------------------------------------------------------------------------
// ComputeUpdate: the Eq. (1) arithmetic, checked against the paper's
// Example 8 (region with 882 positives, 397 negatives, ratio_rn = 0.64).
// ---------------------------------------------------------------------------

constexpr int64_t kExamplePositives = 882;
constexpr int64_t kExampleNegatives = 397;

TEST(ComputeUpdateTest, OversampleMatchesExample8) {
  // Paper: add ~981-984 negatives so 882 / (397 + n) = 0.64.
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kOversample, kExamplePositives,
                    kExampleNegatives, 0.64);
  EXPECT_EQ(update.delta_positives, 0);
  EXPECT_NEAR(static_cast<double>(update.delta_negatives), 981.0, 2.0);
  double new_ratio =
      static_cast<double>(kExamplePositives) /
      (kExampleNegatives + update.delta_negatives);
  EXPECT_NEAR(new_ratio, 0.64, 0.01);
}

TEST(ComputeUpdateTest, UndersampleMatchesExample8) {
  // Paper: remove ~628 positives so (882 - p) / 397 = 0.64.
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kUndersample, kExamplePositives,
                    kExampleNegatives, 0.64);
  EXPECT_EQ(update.delta_negatives, 0);
  EXPECT_NEAR(static_cast<double>(-update.delta_positives), 628.0, 2.0);
  double new_ratio =
      static_cast<double>(kExamplePositives + update.delta_positives) /
      kExampleNegatives;
  EXPECT_NEAR(new_ratio, 0.64, 0.01);
}

TEST(ComputeUpdateTest, PreferentialSamplingMatchesExample8) {
  // Paper: move ~383-384 each way so (882 - k) / (397 + k) = 0.64.
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kPreferentialSampling,
                    kExamplePositives, kExampleNegatives, 0.64);
  EXPECT_EQ(update.delta_positives, -update.delta_negatives);
  EXPECT_NEAR(static_cast<double>(update.delta_negatives), 383.0, 2.0);
  double new_ratio =
      static_cast<double>(kExamplePositives + update.delta_positives) /
      (kExampleNegatives + update.delta_negatives);
  EXPECT_NEAR(new_ratio, 0.64, 0.01);
}

TEST(ComputeUpdateTest, MassagingMatchesExample8) {
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kMassaging, kExamplePositives,
                    kExampleNegatives, 0.64);
  EXPECT_NEAR(static_cast<double>(update.flips), 383.0, 2.0);
  EXPECT_EQ(update.delta_positives, -update.flips);
  EXPECT_EQ(update.delta_negatives, update.flips);
}

TEST(ComputeUpdateTest, MirroredDirectionAddsPositives) {
  // Region at ratio 0.25 with target 1.0.
  RegionUpdate over =
      ComputeUpdate(RemedyTechnique::kOversample, 25, 100, 1.0);
  EXPECT_EQ(over.delta_positives, 75);
  EXPECT_EQ(over.delta_negatives, 0);
  RegionUpdate under =
      ComputeUpdate(RemedyTechnique::kUndersample, 25, 100, 1.0);
  EXPECT_EQ(under.delta_negatives, -75);
  RegionUpdate ps = ComputeUpdate(RemedyTechnique::kPreferentialSampling, 25,
                                  100, 1.0);
  // (25 + k) / (100 - k) = 1  =>  k = 37.5 -> 38 (rounded)
  EXPECT_EQ(ps.delta_positives, 38);
  EXPECT_EQ(ps.delta_negatives, -38);
}

TEST(ComputeUpdateTest, AlreadyMatchingIsNoOp) {
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kOversample, 50, 100, 0.5);
  EXPECT_EQ(update.delta_positives, 0);
  EXPECT_EQ(update.delta_negatives, 0);
  EXPECT_TRUE(update.reachable);
}

TEST(ComputeUpdateTest, AllPositiveRegionIsTooPositive) {
  // ratio_r = -1 sentinel must be treated as "too positive", not compared
  // numerically against the finite target.
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kOversample, 100, 0, 1.0);
  EXPECT_EQ(update.delta_negatives, 100);
  EXPECT_EQ(update.delta_positives, 0);
}

TEST(ComputeUpdateTest, AllPositiveNeighborhoodTargets) {
  // target_ratio = -1: the neighborhood has no negatives.
  RegionUpdate over =
      ComputeUpdate(RemedyTechnique::kOversample, 10, 40, kAllPositiveRatio);
  EXPECT_FALSE(over.reachable);
  RegionUpdate under = ComputeUpdate(RemedyTechnique::kUndersample, 10, 40,
                                     kAllPositiveRatio);
  EXPECT_EQ(under.delta_negatives, -40);
  RegionUpdate massage = ComputeUpdate(RemedyTechnique::kMassaging, 10, 40,
                                       kAllPositiveRatio);
  EXPECT_EQ(massage.flips, 40);
}

TEST(ComputeUpdateTest, ZeroTargetUnreachableByOversampling) {
  RegionUpdate update =
      ComputeUpdate(RemedyTechnique::kOversample, 50, 50, 0.0);
  EXPECT_FALSE(update.reachable);
  // ... but undersampling can remove all positives.
  RegionUpdate under =
      ComputeUpdate(RemedyTechnique::kUndersample, 50, 50, 0.0);
  EXPECT_EQ(under.delta_positives, -50);
}

TEST(ComputeUpdateTest, ClampsRemovalsToAvailableInstances) {
  // PS removals are bounded by the class population; duplicates may repeat,
  // so here k = (100 - 0.02) / 1.01 = 99 positions are removed and the two
  // borderline negatives are duplicated 99 times.
  RegionUpdate ps = ComputeUpdate(RemedyTechnique::kPreferentialSampling,
                                  100, 2, 0.01);
  EXPECT_EQ(ps.delta_positives, -99);
  EXPECT_EQ(ps.delta_negatives, 99);
  double new_ratio = (100.0 - 99.0) / (2.0 + 99.0);
  EXPECT_NEAR(new_ratio, 0.01, 0.001);
  // Undersampling can never remove more than the class holds.
  RegionUpdate under =
      ComputeUpdate(RemedyTechnique::kUndersample, 5, 1000, 10.0);
  EXPECT_GE(under.delta_negatives, -1000);
}

// ---------------------------------------------------------------------------
// RemedyDataset end-to-end on a grid with planted bias.
// ---------------------------------------------------------------------------

Dataset PlantedBias() {
  return GridDataset({{{200, 50}, {50, 50}},
                      {{50, 50}, {50, 50}},
                      {{50, 50}, {50, 50}}});
}

class RemedyTechniqueTest
    : public ::testing::TestWithParam<RemedyTechnique> {};

TEST_P(RemedyTechniqueTest, ReducesIbsCount) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = GetParam();
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, params, &stats).value();
  EXPECT_GT(stats.regions_processed, 0);
  std::vector<BiasedRegion> before = IdentifyIbs(train, params.ibs).value();
  std::vector<BiasedRegion> after = IdentifyIbs(remedied, params.ibs).value();
  EXPECT_LT(after.size(), before.size())
      << TechniqueName(GetParam());
}

TEST_P(RemedyTechniqueTest, InputDatasetIsUntouched) {
  Dataset train = PlantedBias();
  int rows_before = train.NumRows();
  int positives_before = train.PositiveCount();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = GetParam();
  RemedyDataset(train, params).value();
  EXPECT_EQ(train.NumRows(), rows_before);
  EXPECT_EQ(train.PositiveCount(), positives_before);
}

TEST_P(RemedyTechniqueTest, IsDeterministic) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = GetParam();
  params.seed = 77;
  Dataset first = RemedyDataset(train, params).value();
  Dataset second = RemedyDataset(train, params).value();
  ASSERT_EQ(first.NumRows(), second.NumRows());
  for (int r = 0; r < first.NumRows(); ++r) {
    EXPECT_EQ(first.Row(r), second.Row(r));
    EXPECT_EQ(first.Label(r), second.Label(r));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, RemedyTechniqueTest,
    ::testing::Values(RemedyTechnique::kOversample,
                      RemedyTechnique::kUndersample,
                      RemedyTechnique::kPreferentialSampling,
                      RemedyTechnique::kMassaging),
    [](const ::testing::TestParamInfo<RemedyTechnique>& info) {
      return TechniqueName(info.param);
    });

TEST(RemedyDatasetTest, OversampleOnlyAdds) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kOversample;
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, params, &stats).value();
  EXPECT_EQ(stats.instances_removed, 0);
  EXPECT_EQ(stats.labels_flipped, 0);
  EXPECT_GT(stats.instances_added, 0);
  EXPECT_EQ(remedied.NumRows(), train.NumRows() + stats.instances_added);
}

TEST(RemedyDatasetTest, UndersampleOnlyRemoves) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kUndersample;
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, params, &stats).value();
  EXPECT_EQ(stats.instances_added, 0);
  EXPECT_GT(stats.instances_removed, 0);
  EXPECT_EQ(remedied.NumRows(), train.NumRows() - stats.instances_removed);
}

TEST(RemedyDatasetTest, MassagingPreservesSize) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kMassaging;
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, params, &stats).value();
  EXPECT_EQ(remedied.NumRows(), train.NumRows());
  EXPECT_GT(stats.labels_flipped, 0);
  // Flips move mass from positive to negative in the too-positive region.
  EXPECT_LT(remedied.PositiveCount(), train.PositiveCount());
}

TEST(RemedyDatasetTest, PreferentialSamplingPreservesSize) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kPreferentialSampling;
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, params, &stats).value();
  // PS adds and removes the same count per region.
  EXPECT_EQ(stats.instances_added, stats.instances_removed);
  EXPECT_EQ(remedied.NumRows(), train.NumRows());
}

TEST(RemedyDatasetTest, TargetRatioApproached) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kUndersample;
  Dataset remedied = RemedyDataset(train, params).value();
  // The planted cell's imbalance must now be near its neighbors' ~1.0.
  int positives = 0, negatives = 0;
  Pattern cell({0, 0});
  for (int r = 0; r < remedied.NumRows(); ++r) {
    if (!cell.Matches(remedied, r)) continue;
    (remedied.Label(r) ? positives : negatives)++;
  }
  ASSERT_GT(negatives, 0);
  EXPECT_NEAR(static_cast<double>(positives) / negatives, 1.0, 0.55);
}

TEST(RemedyDatasetTest, AddBudgetIsRespected) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kOversample;
  params.max_added_total = 10;
  RemedyStats stats;
  RemedyDataset(train, params, &stats).value();
  EXPECT_LE(stats.instances_added, 10);
  EXPECT_TRUE(stats.add_budget_exhausted);
}

TEST(PlanRemedyTest, PreviewsEveryBiasedRegion) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kUndersample;
  std::vector<PlannedAction> plan = PlanRemedy(train, params).value();
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, params.ibs).value();
  ASSERT_EQ(plan.size(), ibs.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].region.pattern, ibs[i].pattern);
    // The planned update solves Eq. (1) for the previewed counts.
    RegionUpdate expected = ComputeUpdate(
        params.technique, ibs[i].counts.positives, ibs[i].counts.negatives,
        ibs[i].neighbor_ratio);
    EXPECT_EQ(plan[i].update.delta_positives, expected.delta_positives);
    EXPECT_EQ(plan[i].update.delta_negatives, expected.delta_negatives);
  }
}

TEST(PlanRemedyTest, DoesNotTouchTheDataset) {
  Dataset train = PlantedBias();
  int rows = train.NumRows();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  PlanRemedy(train, params).value();
  EXPECT_EQ(train.NumRows(), rows);
}

TEST(PlanRemedyTest, EmptyOnCleanData) {
  Dataset train = GridDataset({{{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}}});
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.2;
  EXPECT_TRUE(PlanRemedy(train, params).value().empty());
}

// Property sweep over random grids: every technique moves each processed
// region's imbalance score to (or clearly toward) the Eq. (1) target it was
// computed against — the per-region postcondition Algorithm 2 guarantees.
// (The gap against the *recomputed* neighborhood may grow, because fixing
// one region shifts its neighbors' scores; that is the limitation the paper
// concedes in Sec. VI and the iterative remedy addresses.)
class RemedyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, RemedyTechnique>> {};

TEST_P(RemedyPropertyTest, ProcessedRegionsReachTheirOriginalTarget) {
  auto [seed, technique] = GetParam();
  Rng rng(seed);
  std::vector<std::vector<std::pair<int, int>>> cells(3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      cells[a].push_back({40 + rng.UniformInt(150), 40 + rng.UniformInt(150)});
    }
  }
  Dataset train = GridDataset(cells);
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.25;
  params.ibs.scope = IbsScope::kLeaf;
  params.technique = technique;
  params.seed = seed;

  std::vector<BiasedRegion> before = IdentifyIbs(train, params.ibs).value();
  ASSERT_FALSE(before.empty()) << "uninformative draw, adjust the seed set";
  Dataset remedied = RemedyDataset(train, params).value();

  Hierarchy hierarchy(remedied);
  uint32_t leaf = hierarchy.LeafMask();
  const auto& node = hierarchy.NodeCounts(leaf);
  for (const BiasedRegion& region : before) {
    auto it = node.find(hierarchy.counter().KeyFor(region.pattern, leaf));
    if (it == node.end()) continue;  // fully undersampled away
    double target = region.neighbor_ratio;  // the Eq. (1) target
    double distance_before = std::fabs(region.ratio - target);
    double distance_after = std::fabs(ImbalanceScore(it->second) - target);
    // Rounding to whole instances leaves at most a small residual.
    EXPECT_LT(distance_after,
              std::max(0.05, 0.5 * distance_before))
        << TechniqueName(technique) << " seed " << seed << " region "
        << region.pattern.ToString(train.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, RemedyPropertyTest,
    ::testing::Combine(
        ::testing::Range(0, 5),
        ::testing::Values(RemedyTechnique::kOversample,
                          RemedyTechnique::kUndersample,
                          RemedyTechnique::kPreferentialSampling,
                          RemedyTechnique::kMassaging)),
    [](const ::testing::TestParamInfo<std::tuple<int, RemedyTechnique>>&
           info) {
      return TechniqueName(std::get<1>(info.param)) +
             std::to_string(std::get<0>(info.param));
    });

TEST(IterativeRemedyTest, ConvergesOnPlantedBias) {
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.5;
  params.technique = RemedyTechnique::kUndersample;
  IterativeRemedyResult result = RemedyUntilConverged(train, params, 5).value();
  EXPECT_GE(result.rounds, 1);
  EXPECT_GT(result.total_stats.instances_removed, 0);
  // Residual IBS shrinks monotonically to convergence (or stalls).
  std::vector<BiasedRegion> residual =
      IdentifyIbs(result.dataset, params.ibs).value();
  if (result.converged) {
    EXPECT_TRUE(residual.empty());
  } else {
    EXPECT_LE(residual.size(), IdentifyIbs(train, params.ibs).value().size());
  }
}

TEST(IterativeRemedyTest, CleanDataConvergesInZeroRounds) {
  Dataset train = GridDataset({{{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}}});
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.2;
  IterativeRemedyResult result = RemedyUntilConverged(train, params).value();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0);
  EXPECT_EQ(result.dataset.NumRows(), train.NumRows());
}

TEST(IterativeRemedyTest, ExtraRoundsReduceResidualIbs) {
  // One pass typically leaves some residual bias (the paper's stated
  // limitation); extra passes must not leave more.
  Dataset train = PlantedBias();
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.3;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset one_pass = RemedyDataset(train, params).value();
  size_t residual_after_one = IdentifyIbs(one_pass, params.ibs).value().size();
  IterativeRemedyResult iterated = RemedyUntilConverged(train, params, 4).value();
  size_t residual_after_many =
      IdentifyIbs(iterated.dataset, params.ibs).value().size();
  EXPECT_LE(residual_after_many, residual_after_one);
}

TEST(RemedyDatasetTest, CleanDataIsANoOp) {
  Dataset train = GridDataset({{{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}},
                               {{50, 50}, {50, 50}}});
  RemedyParams params;
  params.ibs.imbalance_threshold = 0.2;
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, params, &stats).value();
  EXPECT_EQ(stats.regions_processed, 0);
  EXPECT_EQ(remedied.NumRows(), train.NumRows());
}

}  // namespace
}  // namespace remedy
