#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/region_counter.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;
using ::remedy::testing::SmallSchema;

// Four protected attributes with mixed cardinalities (2·3·4·3 = 72 leaf
// regions) — wide enough that rollup exercises every digit position.
DataSchema WideSchema() {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("p", {"p0", "p1"}),
      AttributeSchema("q", {"q0", "q1", "q2"}),
      AttributeSchema("s", {"s0", "s1", "s2", "s3"}),
      AttributeSchema("t", {"t0", "t1", "t2"}),
  };
  return DataSchema(std::move(attributes), {0, 1, 2, 3});
}

Dataset RandomWideDataset(uint64_t seed, int rows) {
  Rng rng(seed);
  Dataset data(WideSchema());
  for (int i = 0; i < rows; ++i) {
    data.AddRow({rng.UniformInt(2), rng.UniformInt(3), rng.UniformInt(4),
                 rng.UniformInt(3)},
                rng.UniformInt(2));
  }
  return data;
}

TEST(RegionCounterTest, KeyPatternRoundTrip) {
  RegionCounter counter(SmallSchema());
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      Pattern pattern({a, b});
      uint64_t key = counter.KeyFor(pattern, 0b11);
      EXPECT_EQ(counter.PatternFor(key, 0b11), pattern);
    }
  }
  // Single-attribute node.
  Pattern only_b({Pattern::kWildcard, 1});
  uint64_t key = counter.KeyFor(only_b, 0b10);
  EXPECT_EQ(counter.PatternFor(key, 0b10), only_b);
}

TEST(RegionCounterTest, KeysAreUniquePerNode) {
  RegionCounter counter(SmallSchema());
  std::set<uint64_t> keys;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      keys.insert(counter.KeyFor(Pattern({a, b}), 0b11));
    }
  }
  EXPECT_EQ(keys.size(), 6u);
}

TEST(RegionCounterTest, CountNodeLeaf) {
  // cells[a][b] = {positives, negatives}
  Dataset data = GridDataset({{{2, 3}, {1, 0}},
                              {{0, 4}, {5, 5}},
                              {{1, 1}, {0, 0}}});
  RegionCounter counter(data.schema());
  auto counts = counter.CountNode(data, 0b11);
  EXPECT_EQ(counts.size(), 5u);  // (a2,b1) is empty, absent from the map
  RegionCounts cell = counts.at(counter.KeyFor(Pattern({0, 0}), 0b11));
  EXPECT_EQ(cell.positives, 2);
  EXPECT_EQ(cell.negatives, 3);
  EXPECT_EQ(cell.Total(), 5);
}

TEST(RegionCounterTest, CountNodeMarginalizes) {
  Dataset data = GridDataset({{{2, 3}, {1, 0}},
                              {{0, 4}, {5, 5}},
                              {{1, 1}, {0, 0}}});
  RegionCounter counter(data.schema());
  auto by_a = counter.CountNode(data, 0b01);
  RegionCounts a0 = by_a.at(counter.KeyFor(
      Pattern({0, Pattern::kWildcard}), 0b01));
  EXPECT_EQ(a0.positives, 3);  // 2 + 1
  EXPECT_EQ(a0.negatives, 3);
  auto by_b = counter.CountNode(data, 0b10);
  RegionCounts b1 = by_b.at(counter.KeyFor(
      Pattern({Pattern::kWildcard, 1}), 0b10));
  EXPECT_EQ(b1.positives, 6);  // 1 + 5 + 0
  EXPECT_EQ(b1.negatives, 5);
}

TEST(RegionCounterTest, NodeCountsSumToDataset) {
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 0}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  RegionCounter counter(data.schema());
  for (uint32_t mask : {0b01u, 0b10u, 0b11u}) {
    int64_t positives = 0, negatives = 0;
    for (const auto& [key, counts] : counter.CountNode(data, mask)) {
      positives += counts.positives;
      negatives += counts.negatives;
    }
    EXPECT_EQ(positives, data.PositiveCount()) << "mask " << mask;
    EXPECT_EQ(negatives, data.NegativeCount()) << "mask " << mask;
  }
}

TEST(NodeTableTest, IterationIsKeySorted) {
  NodeTable table({{7, {1, 0}}, {2, {0, 1}}, {5, {2, 2}}});
  std::vector<uint64_t> keys;
  for (const auto& [key, counts] : table) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<uint64_t>{2, 5, 7}));
}

TEST(NodeTableTest, DuplicateKeysMergeBySumming) {
  NodeTable table({{3, {1, 2}}, {1, {5, 0}}, {3, {10, 20}}});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.at(3), (RegionCounts{11, 22}));
  EXPECT_EQ(table.at(1), (RegionCounts{5, 0}));
}

TEST(NodeTableTest, FindAndCountOnMissingKeys) {
  NodeTable table({{4, {1, 1}}});
  EXPECT_EQ(table.find(4)->second, (RegionCounts{1, 1}));
  EXPECT_EQ(table.find(3), table.end());
  EXPECT_EQ(table.find(5), table.end());
  EXPECT_EQ(table.count(4), 1u);
  EXPECT_EQ(table.count(9), 0u);
  EXPECT_TRUE(NodeTable().empty());
}

TEST(RegionCounterTest, RollUpMatchesDirectCount) {
  Dataset data = GridDataset({{{2, 3}, {1, 0}},
                              {{0, 4}, {5, 5}},
                              {{1, 1}, {0, 0}}});
  RegionCounter counter(data.schema());
  NodeTable leaf = counter.CountNode(data, 0b11);
  EXPECT_EQ(counter.RollUp(leaf, 0b11, 0b01), counter.CountNode(data, 0b01));
  EXPECT_EQ(counter.RollUp(leaf, 0b11, 0b10), counter.CountNode(data, 0b10));
}

// Randomized equivalence: every single-attribute rollup step, from every
// child node, must reproduce the direct one-pass scan of the parent node.
class RollUpEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RollUpEquivalenceTest, EveryRollUpStepMatchesDirectScan) {
  Dataset data = RandomWideDataset(GetParam(), 300 + 40 * GetParam());
  RegionCounter counter(data.schema());
  const uint32_t leaf = (1u << counter.NumProtected()) - 1u;
  for (uint32_t child_mask = 1; child_mask <= leaf; ++child_mask) {
    NodeTable child = counter.CountNode(data, child_mask);
    for (uint32_t bits = child_mask; bits != 0; bits &= bits - 1) {
      const uint32_t parent_mask = child_mask & ~(bits & (~bits + 1));
      if (parent_mask == 0) continue;
      EXPECT_EQ(counter.RollUp(child, child_mask, parent_mask),
                counter.CountNode(data, parent_mask))
          << "child " << child_mask << " parent " << parent_mask << " seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollUpEquivalenceTest,
                         ::testing::Range(0, 8));

TEST(RegionCounterTest, KeySpaceIsCardinalityProduct) {
  RegionCounter counter(WideSchema());
  EXPECT_EQ(counter.KeySpace(0b1111), 72u);  // 2 * 3 * 4 * 3
  EXPECT_EQ(counter.KeySpace(0b0001), 2u);
  EXPECT_EQ(counter.KeySpace(0b1010), 9u);  // q * t
  EXPECT_EQ(counter.KeySpace(0), 1u);
}

TEST(RegionCounterTest, CountNodeKeysAreWithinKeySpace) {
  Dataset data = RandomWideDataset(3, 500);
  RegionCounter counter(data.schema());
  for (uint32_t mask = 1; mask <= 0b1111u; ++mask) {
    for (const auto& [key, counts] : counter.CountNode(data, mask)) {
      EXPECT_LT(key, counter.KeySpace(mask));
      EXPECT_GT(counts.Total(), 0);
    }
  }
}

TEST(RegionCounterTest, CollectRowsPartitions) {
  Dataset data = GridDataset({{{1, 1}, {0, 0}},
                              {{0, 0}, {2, 0}},
                              {{0, 0}, {0, 0}}});
  RegionCounter counter(data.schema());
  auto rows = counter.CollectRows(data, 0b11);
  EXPECT_EQ(rows.size(), 2u);
  size_t total = 0;
  for (const auto& [key, group] : rows) total += group.size();
  EXPECT_EQ(total, static_cast<size_t>(data.NumRows()));
  // Every row in a group matches the group's pattern.
  for (const auto& [key, group] : rows) {
    Pattern pattern = counter.PatternFor(key, 0b11);
    for (int row : group) EXPECT_TRUE(pattern.Matches(data, row));
  }
}

TEST(RegionCounterTest, RowKeyMatchesPatternKey) {
  Dataset data = GridDataset({{{1, 0}, {1, 0}},
                              {{1, 0}, {1, 0}},
                              {{1, 0}, {1, 0}}});
  RegionCounter counter(data.schema());
  for (int r = 0; r < data.NumRows(); ++r) {
    Pattern pattern({data.Value(r, 0), data.Value(r, 1)});
    EXPECT_EQ(counter.RowKey(data, r, 0b11),
              counter.KeyFor(pattern, 0b11));
  }
}

TEST(RegionCounterTest, ProjectKeyMatchesPatternProjection) {
  Dataset data = RandomWideDataset(13, 300);
  RegionCounter counter(data.schema());
  const uint32_t leaf = 0b1111;
  for (int r = 0; r < 40; ++r) {
    const uint64_t leaf_key = counter.RowKey(data, r, leaf);
    for (uint32_t mask = 1; mask <= leaf; ++mask) {
      // Dropping digits from the leaf key must land on the same key as
      // packing the row's values under the coarser mask directly.
      EXPECT_EQ(counter.ProjectKey(leaf_key, leaf, mask),
                counter.RowKey(data, r, mask))
          << "row " << r << " mask " << mask;
    }
  }
}

TEST(RegionCounterTest, ProjectKeyFromIntermediateNode) {
  Dataset data = RandomWideDataset(17, 200);
  RegionCounter counter(data.schema());
  const uint32_t from = 0b1011;
  for (int r = 0; r < 40; ++r) {
    const uint64_t from_key = counter.RowKey(data, r, from);
    for (uint32_t to : {0b0011u, 0b1010u, 0b0001u, 0b1011u}) {
      EXPECT_EQ(counter.ProjectKey(from_key, from, to),
                counter.RowKey(data, r, to))
          << "row " << r << " to " << to;
    }
  }
}

TEST(NodeTableTest, ApplyDeltaAdjustsExistingEntry) {
  NodeTable table({{5, {3, 4}}, {2, {1, 0}}, {9, {0, 7}}});
  table.ApplyDelta(5, -2, 3);
  EXPECT_EQ(table.at(5), (RegionCounts{1, 7}));
  // Neighbors untouched.
  EXPECT_EQ(table.at(2), (RegionCounts{1, 0}));
  EXPECT_EQ(table.at(9), (RegionCounts{0, 7}));
}

TEST(NodeTableTest, ApplyDeltaMayZeroButKeepsEntry) {
  NodeTable table({{4, {2, 1}}});
  table.ApplyDelta(4, -2, -1);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.at(4), (RegionCounts{0, 0}));
}

TEST(NodeTableTest, ApplyDeltaOnMissingKeyDies) {
  NodeTable table({{4, {2, 1}}});
  EXPECT_DEATH(table.ApplyDelta(3, 1, 0), "");
}

TEST(RegionCounterTest, DatasetCounts) {
  Dataset data = GridDataset({{{2, 3}, {0, 0}},
                              {{0, 0}, {0, 0}},
                              {{0, 0}, {0, 0}}});
  RegionCounter counter(data.schema());
  RegionCounts total = counter.DatasetCounts(data);
  EXPECT_EQ(total.positives, 2);
  EXPECT_EQ(total.negatives, 3);
}

}  // namespace
}  // namespace remedy
