#include <gtest/gtest.h>

#include <set>

#include "core/region_counter.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;
using ::remedy::testing::SmallSchema;

TEST(RegionCounterTest, KeyPatternRoundTrip) {
  RegionCounter counter(SmallSchema());
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      Pattern pattern({a, b});
      uint64_t key = counter.KeyFor(pattern, 0b11);
      EXPECT_EQ(counter.PatternFor(key, 0b11), pattern);
    }
  }
  // Single-attribute node.
  Pattern only_b({Pattern::kWildcard, 1});
  uint64_t key = counter.KeyFor(only_b, 0b10);
  EXPECT_EQ(counter.PatternFor(key, 0b10), only_b);
}

TEST(RegionCounterTest, KeysAreUniquePerNode) {
  RegionCounter counter(SmallSchema());
  std::set<uint64_t> keys;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) {
      keys.insert(counter.KeyFor(Pattern({a, b}), 0b11));
    }
  }
  EXPECT_EQ(keys.size(), 6u);
}

TEST(RegionCounterTest, CountNodeLeaf) {
  // cells[a][b] = {positives, negatives}
  Dataset data = GridDataset({{{2, 3}, {1, 0}},
                              {{0, 4}, {5, 5}},
                              {{1, 1}, {0, 0}}});
  RegionCounter counter(data.schema());
  auto counts = counter.CountNode(data, 0b11);
  EXPECT_EQ(counts.size(), 5u);  // (a2,b1) is empty, absent from the map
  RegionCounts cell = counts.at(counter.KeyFor(Pattern({0, 0}), 0b11));
  EXPECT_EQ(cell.positives, 2);
  EXPECT_EQ(cell.negatives, 3);
  EXPECT_EQ(cell.Total(), 5);
}

TEST(RegionCounterTest, CountNodeMarginalizes) {
  Dataset data = GridDataset({{{2, 3}, {1, 0}},
                              {{0, 4}, {5, 5}},
                              {{1, 1}, {0, 0}}});
  RegionCounter counter(data.schema());
  auto by_a = counter.CountNode(data, 0b01);
  RegionCounts a0 = by_a.at(counter.KeyFor(
      Pattern({0, Pattern::kWildcard}), 0b01));
  EXPECT_EQ(a0.positives, 3);  // 2 + 1
  EXPECT_EQ(a0.negatives, 3);
  auto by_b = counter.CountNode(data, 0b10);
  RegionCounts b1 = by_b.at(counter.KeyFor(
      Pattern({Pattern::kWildcard, 1}), 0b10));
  EXPECT_EQ(b1.positives, 6);  // 1 + 5 + 0
  EXPECT_EQ(b1.negatives, 5);
}

TEST(RegionCounterTest, NodeCountsSumToDataset) {
  Dataset data = GridDataset({{{2, 3}, {1, 2}},
                              {{4, 0}, {5, 5}},
                              {{1, 1}, {3, 2}}});
  RegionCounter counter(data.schema());
  for (uint32_t mask : {0b01u, 0b10u, 0b11u}) {
    int64_t positives = 0, negatives = 0;
    for (const auto& [key, counts] : counter.CountNode(data, mask)) {
      positives += counts.positives;
      negatives += counts.negatives;
    }
    EXPECT_EQ(positives, data.PositiveCount()) << "mask " << mask;
    EXPECT_EQ(negatives, data.NegativeCount()) << "mask " << mask;
  }
}

TEST(RegionCounterTest, CollectRowsPartitions) {
  Dataset data = GridDataset({{{1, 1}, {0, 0}},
                              {{0, 0}, {2, 0}},
                              {{0, 0}, {0, 0}}});
  RegionCounter counter(data.schema());
  auto rows = counter.CollectRows(data, 0b11);
  EXPECT_EQ(rows.size(), 2u);
  size_t total = 0;
  for (const auto& [key, group] : rows) total += group.size();
  EXPECT_EQ(total, static_cast<size_t>(data.NumRows()));
  // Every row in a group matches the group's pattern.
  for (const auto& [key, group] : rows) {
    Pattern pattern = counter.PatternFor(key, 0b11);
    for (int row : group) EXPECT_TRUE(pattern.Matches(data, row));
  }
}

TEST(RegionCounterTest, RowKeyMatchesPatternKey) {
  Dataset data = GridDataset({{{1, 0}, {1, 0}},
                              {{1, 0}, {1, 0}},
                              {{1, 0}, {1, 0}}});
  RegionCounter counter(data.schema());
  for (int r = 0; r < data.NumRows(); ++r) {
    Pattern pattern({data.Value(r, 0), data.Value(r, 1)});
    EXPECT_EQ(counter.RowKey(data, r, 0b11),
              counter.KeyFor(pattern, 0b11));
  }
}

TEST(RegionCounterTest, DatasetCounts) {
  Dataset data = GridDataset({{{2, 3}, {0, 0}},
                              {{0, 0}, {0, 0}},
                              {{0, 0}, {0, 0}}});
  RegionCounter counter(data.schema());
  RegionCounts total = counter.DatasetCounts(data);
  EXPECT_EQ(total.positives, 2);
  EXPECT_EQ(total.negatives, 3);
}

}  // namespace
}  // namespace remedy
