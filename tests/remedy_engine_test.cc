// Equivalence suite for the two remedy engines: the delta-maintained
// incremental engine must be indistinguishable — remedied rows and stats —
// from the rebuild-from-scratch reference, at any planning thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/remedy.h"
#include "datagen/adult.h"

namespace remedy {
namespace {

// TSan builds run the same assertions on a smaller instance (the sanitizer
// is ~10x slower); the threading coverage itself does not need the rows.
#ifdef REMEDY_TSAN_BUILD
constexpr int kRows = 4000;
constexpr int kMaxProtected = 4;
#else
constexpr int kRows = 20000;
constexpr int kMaxProtected = 6;
#endif

Dataset AdultData(int num_protected) {
  Dataset data = MakeAdult(kRows);
  data.SetProtected(AdultScalabilityProtected(num_protected));
  return data;
}

constexpr RemedyTechnique kTechniques[] = {
    RemedyTechnique::kOversample,
    RemedyTechnique::kUndersample,
    RemedyTechnique::kPreferentialSampling,
    RemedyTechnique::kMassaging,
};

// The engines preserve the surviving rows' relative order and append in the
// same merge order, so the remedied datasets are row-for-row identical —
// stronger than the multiset equality the contract promises.
void ExpectIdenticalDatasets(const Dataset& a, const Dataset& b,
                             const std::string& context) {
  ASSERT_EQ(a.NumRows(), b.NumRows()) << context;
  for (int r = 0; r < a.NumRows(); ++r) {
    ASSERT_EQ(a.Row(r), b.Row(r)) << context << " row " << r;
    ASSERT_EQ(a.Label(r), b.Label(r)) << context << " row " << r;
    ASSERT_EQ(a.Weight(r), b.Weight(r)) << context << " row " << r;
  }
}

void ExpectIdenticalStats(const RemedyStats& a, const RemedyStats& b,
                          const std::string& context) {
  EXPECT_EQ(a.regions_processed, b.regions_processed) << context;
  EXPECT_EQ(a.regions_skipped, b.regions_skipped) << context;
  EXPECT_EQ(a.instances_added, b.instances_added) << context;
  EXPECT_EQ(a.instances_removed, b.instances_removed) << context;
  EXPECT_EQ(a.labels_flipped, b.labels_flipped) << context;
  EXPECT_EQ(a.add_budget_exhausted, b.add_budget_exhausted) << context;
}

TEST(RemedyEngineTest, IncrementalMatchesRebuild) {
  for (int num_protected = 3; num_protected <= kMaxProtected;
       ++num_protected) {
    Dataset data = AdultData(num_protected);
    for (RemedyTechnique technique : kTechniques) {
      const std::string context =
          TechniqueName(technique) + " |X|=" + std::to_string(num_protected);
      RemedyParams params;
      params.technique = technique;
      // Bound the oversampling growth so the rebuild reference stays cheap;
      // the cap exercises the shared budget truncation on both sides.
      params.max_added_total = 2 * kRows;
      params.planning_threads = 2;

      params.engine = RemedyEngine::kRebuild;
      RemedyStats rebuild_stats;
      Dataset rebuilt = RemedyDataset(data, params, &rebuild_stats).value();

      params.engine = RemedyEngine::kIncremental;
      RemedyStats incremental_stats;
      Dataset incremental = RemedyDataset(data, params, &incremental_stats).value();

      ExpectIdenticalDatasets(rebuilt, incremental, context);
      ExpectIdenticalStats(rebuild_stats, incremental_stats, context);
      EXPECT_GT(rebuild_stats.regions_processed, 0) << context;
    }
  }
}

TEST(RemedyEngineTest, OutputIsIndependentOfPlanningThreads) {
  Dataset data = AdultData(kMaxProtected);
  for (RemedyTechnique technique : kTechniques) {
    const std::string context = TechniqueName(technique);
    RemedyParams params;
    params.technique = technique;
    params.max_added_total = 2 * kRows;
    params.engine = RemedyEngine::kIncremental;

    params.planning_threads = 1;
    RemedyStats serial_stats;
    Dataset serial = RemedyDataset(data, params, &serial_stats).value();

    params.planning_threads = 4;
    RemedyStats parallel_stats;
    Dataset parallel = RemedyDataset(data, params, &parallel_stats).value();

    ExpectIdenticalDatasets(serial, parallel, context);
    ExpectIdenticalStats(serial_stats, parallel_stats, context);
  }
}

TEST(RemedyEngineTest, AddBudgetPathMatches) {
  Dataset data = AdultData(3);
  RemedyParams params;
  params.technique = RemedyTechnique::kOversample;
  params.max_added_total = 40;  // tight: some region must overflow it
  params.planning_threads = 2;

  params.engine = RemedyEngine::kRebuild;
  RemedyStats rebuild_stats;
  Dataset rebuilt = RemedyDataset(data, params, &rebuild_stats).value();

  params.engine = RemedyEngine::kIncremental;
  RemedyStats incremental_stats;
  Dataset incremental = RemedyDataset(data, params, &incremental_stats).value();

  ExpectIdenticalDatasets(rebuilt, incremental, "budget");
  ExpectIdenticalStats(rebuild_stats, incremental_stats, "budget");
  EXPECT_TRUE(incremental_stats.add_budget_exhausted);
  EXPECT_LE(incremental_stats.instances_added, 40);
}

TEST(RemedyEngineTest, UnlimitedBudgetMatches) {
  Dataset data = AdultData(3);
  RemedyParams params;
  params.technique = RemedyTechnique::kOversample;
  params.max_added_total = -1;  // cap disabled
  params.planning_threads = 2;

  params.engine = RemedyEngine::kRebuild;
  RemedyStats rebuild_stats;
  Dataset rebuilt = RemedyDataset(data, params, &rebuild_stats).value();

  params.engine = RemedyEngine::kIncremental;
  RemedyStats incremental_stats;
  Dataset incremental = RemedyDataset(data, params, &incremental_stats).value();

  ExpectIdenticalDatasets(rebuilt, incremental, "unlimited");
  ExpectIdenticalStats(rebuild_stats, incremental_stats, "unlimited");
  EXPECT_FALSE(incremental_stats.add_budget_exhausted);
}

}  // namespace
}  // namespace remedy
