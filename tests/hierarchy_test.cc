#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "core/hierarchy.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;

Dataset ThreeByTwo() {
  return GridDataset({{{2, 3}, {1, 2}},
                      {{4, 1}, {5, 5}},
                      {{1, 1}, {3, 2}}});
}

TEST(HierarchyTest, LeafMask) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  EXPECT_EQ(hierarchy.NumProtected(), 2);
  EXPECT_EQ(hierarchy.LeafMask(), 0b11u);
}

TEST(HierarchyTest, TotalCounts) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  EXPECT_EQ(hierarchy.TotalCounts().positives, data.PositiveCount());
  EXPECT_EQ(hierarchy.TotalCounts().negatives, data.NegativeCount());
}

TEST(HierarchyTest, NodeCountsAreMemoized) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  const auto& first = hierarchy.NodeCounts(0b11);
  const auto& second = hierarchy.NodeCounts(0b11);
  EXPECT_EQ(&first, &second);  // same map instance
}

TEST(HierarchyTest, InvalidateRefreshesAfterMutation) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  int64_t before = hierarchy.TotalCounts().positives;
  data.AddRow({0, 0, 1}, 1);
  // Stale until invalidated.
  EXPECT_EQ(hierarchy.TotalCounts().positives, before);
  hierarchy.Invalidate();
  EXPECT_EQ(hierarchy.TotalCounts().positives, before + 1);
}

TEST(HierarchyTest, ParentMasksRemoveOneBit) {
  std::vector<uint32_t> parents = Hierarchy::ParentMasks(0b111);
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<uint32_t>{0b011, 0b101, 0b110}));
  // Level-1 nodes have no parents here (level 0 is TotalCounts()).
  EXPECT_TRUE(Hierarchy::ParentMasks(0b100).empty());
}

TEST(HierarchyTest, MasksAtLevelHaveRightPopcount) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  std::vector<uint32_t> level1 = hierarchy.MasksAtLevel(1);
  EXPECT_EQ(level1, (std::vector<uint32_t>{0b01, 0b10}));
  std::vector<uint32_t> level2 = hierarchy.MasksAtLevel(2);
  EXPECT_EQ(level2, (std::vector<uint32_t>{0b11}));
}

TEST(HierarchyTest, BottomUpOrderIsLeafFirst) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  std::vector<uint32_t> masks = hierarchy.BottomUpMasks();
  ASSERT_EQ(masks.size(), 3u);
  EXPECT_EQ(masks[0], 0b11u);
  // Levels are non-increasing along the traversal.
  for (size_t i = 1; i < masks.size(); ++i) {
    EXPECT_LE(std::popcount(masks[i]), std::popcount(masks[i - 1]));
  }
}

TEST(HierarchyTest, BottomUpCoversAllNonEmptyMasks) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  std::vector<uint32_t> masks = hierarchy.BottomUpMasks();
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(masks, (std::vector<uint32_t>{0b01, 0b10, 0b11}));
}

}  // namespace
}  // namespace remedy
