#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/hierarchy.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;

Dataset ThreeByTwo() {
  return GridDataset({{{2, 3}, {1, 2}},
                      {{4, 1}, {5, 5}},
                      {{1, 1}, {3, 2}}});
}

// Four protected attributes (2·3·2·4 leaf regions) with random rows, for
// exercising the lattice beyond the two-attribute grid.
Dataset RandomFourAttrDataset(uint64_t seed, int rows) {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("w", {"w0", "w1"}),
      AttributeSchema("x", {"x0", "x1", "x2"}),
      AttributeSchema("y", {"y0", "y1"}),
      AttributeSchema("z", {"z0", "z1", "z2", "z3"}),
  };
  DataSchema schema(std::move(attributes), {0, 1, 2, 3});
  Rng rng(seed);
  Dataset data(schema);
  for (int i = 0; i < rows; ++i) {
    data.AddRow({rng.UniformInt(2), rng.UniformInt(3), rng.UniformInt(2),
                 rng.UniformInt(4)},
                rng.UniformInt(2));
  }
  return data;
}

TEST(HierarchyTest, LeafMask) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  EXPECT_EQ(hierarchy.NumProtected(), 2);
  EXPECT_EQ(hierarchy.LeafMask(), 0b11u);
}

TEST(HierarchyTest, TotalCounts) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  EXPECT_EQ(hierarchy.TotalCounts().positives, data.PositiveCount());
  EXPECT_EQ(hierarchy.TotalCounts().negatives, data.NegativeCount());
}

TEST(HierarchyTest, NodeCountsAreMemoized) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  const auto& first = hierarchy.NodeCounts(0b11);
  const auto& second = hierarchy.NodeCounts(0b11);
  EXPECT_EQ(&first, &second);  // same map instance
}

TEST(HierarchyTest, InvalidateRefreshesAfterMutation) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  int64_t before = hierarchy.TotalCounts().positives;
  data.AddRow({0, 0, 1}, 1);
  // Stale until invalidated.
  EXPECT_EQ(hierarchy.TotalCounts().positives, before);
  hierarchy.Invalidate();
  EXPECT_EQ(hierarchy.TotalCounts().positives, before + 1);
}

TEST(HierarchyTest, ParentMasksRemoveOneBit) {
  std::vector<uint32_t> parents = Hierarchy::ParentMasks(0b111);
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<uint32_t>{0b011, 0b101, 0b110}));
  // Level-1 nodes have no parents here (level 0 is TotalCounts()).
  EXPECT_TRUE(Hierarchy::ParentMasks(0b100).empty());
}

TEST(HierarchyTest, MasksAtLevelHaveRightPopcount) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  std::vector<uint32_t> level1 = hierarchy.MasksAtLevel(1);
  EXPECT_EQ(level1, (std::vector<uint32_t>{0b01, 0b10}));
  std::vector<uint32_t> level2 = hierarchy.MasksAtLevel(2);
  EXPECT_EQ(level2, (std::vector<uint32_t>{0b11}));
}

TEST(HierarchyTest, BottomUpOrderIsLeafFirst) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  std::vector<uint32_t> masks = hierarchy.BottomUpMasks();
  ASSERT_EQ(masks.size(), 3u);
  EXPECT_EQ(masks[0], 0b11u);
  // Levels are non-increasing along the traversal.
  for (size_t i = 1; i < masks.size(); ++i) {
    EXPECT_LE(std::popcount(masks[i]), std::popcount(masks[i - 1]));
  }
}

TEST(HierarchyTest, BottomUpCoversAllNonEmptyMasks) {
  Dataset data = ThreeByTwo();
  Hierarchy hierarchy(data);
  std::vector<uint32_t> masks = hierarchy.BottomUpMasks();
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(masks, (std::vector<uint32_t>{0b01, 0b10, 0b11}));
}

TEST(HierarchyTest, MasksAtLevelEnumeratesCombinationsAscending) {
  Dataset data = RandomFourAttrDataset(1, 50);
  Hierarchy hierarchy(data);
  const int binomial[5] = {1, 4, 6, 4, 1};  // C(4, k)
  for (int level = 1; level <= 4; ++level) {
    std::vector<uint32_t> masks = hierarchy.MasksAtLevel(level);
    EXPECT_EQ(masks.size(), static_cast<size_t>(binomial[level]));
    EXPECT_TRUE(std::is_sorted(masks.begin(), masks.end()));
    for (uint32_t mask : masks) {
      EXPECT_EQ(std::popcount(mask), level);
      EXPECT_EQ(mask & ~hierarchy.LeafMask(), 0u);
    }
  }
}

TEST(HierarchyTest, RollupNodeCountsMatchDirectScan) {
  Dataset data = RandomFourAttrDataset(7, 600);
  Hierarchy hierarchy(data);
  const RegionCounter& counter = hierarchy.counter();
  // Lazy access in arbitrary (not bottom-up) order still has to agree with
  // a direct one-pass scan of every node.
  for (uint32_t mask = 1; mask <= hierarchy.LeafMask(); ++mask) {
    EXPECT_EQ(hierarchy.NodeCounts(mask), counter.CountNode(data, mask))
        << "mask " << mask;
  }
}

TEST(HierarchyTest, EagerBuildMatchesLazyAndDirectScan) {
  Dataset data = RandomFourAttrDataset(11, 400);
  Hierarchy eager(data);
  ASSERT_TRUE(eager.EagerBuild(1).ok());
  Hierarchy lazy(data);
  for (uint32_t mask = 1; mask <= eager.LeafMask(); ++mask) {
    EXPECT_EQ(eager.NodeCounts(mask), lazy.NodeCounts(mask))
        << "mask " << mask;
  }
  EXPECT_EQ(eager.TotalCounts(), lazy.TotalCounts());
}

TEST(HierarchyTest, EagerBuildSingleAndMultiThreadCachesAreIdentical) {
  for (uint64_t seed : {3u, 19u}) {
    Dataset data = RandomFourAttrDataset(seed, 500);
    Hierarchy serial(data);
    ASSERT_TRUE(serial.EagerBuild(1).ok());
    Hierarchy parallel(data);
    ASSERT_TRUE(parallel.EagerBuild(std::max(4, ThreadPool::DefaultThreads())).ok());
    for (uint32_t mask = 1; mask <= serial.LeafMask(); ++mask) {
      EXPECT_EQ(serial.NodeCounts(mask), parallel.NodeCounts(mask))
          << "mask " << mask << " seed " << seed;
    }
  }
}

TEST(HierarchyTest, EagerBuildOnPartiallyBuiltHierarchy) {
  Dataset data = RandomFourAttrDataset(5, 300);
  Hierarchy hierarchy(data);
  hierarchy.NodeCounts(0b0101);  // lazy-build a slice first
  ASSERT_TRUE(hierarchy.EagerBuild(2).ok());
  Hierarchy fresh(data);
  ASSERT_TRUE(fresh.EagerBuild(1).ok());
  for (uint32_t mask = 1; mask <= hierarchy.LeafMask(); ++mask) {
    EXPECT_EQ(hierarchy.NodeCounts(mask), fresh.NodeCounts(mask))
        << "mask " << mask;
  }
}

TEST(HierarchyTest, ApplyDeltaPropagatesToEveryAncestor) {
  Dataset data = RandomFourAttrDataset(21, 200);
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(1).ok());
  const RegionCounter& counter = hierarchy.counter();
  const uint32_t leaf = hierarchy.LeafMask();

  const uint64_t leaf_key = counter.RowKey(data, 0, leaf);
  const int64_t dp = data.Label(0) == 1 ? -1 : 1;
  const int64_t dn = -dp;  // one label flip of row 0
  hierarchy.ApplyDelta({leaf_key, dp, dn});

  // Every node's entry at the projected key moves by exactly the delta;
  // every other entry is untouched.
  Hierarchy before(data);
  for (uint32_t mask = 1; mask <= leaf; ++mask) {
    const uint64_t key = counter.ProjectKey(leaf_key, leaf, mask);
    for (const auto& [k, counts] : hierarchy.NodeCounts(mask)) {
      RegionCounts expected = before.NodeCounts(mask).at(k);
      if (k == key) {
        expected.positives += dp;
        expected.negatives += dn;
      }
      EXPECT_EQ(counts, expected) << "mask " << mask << " key " << k;
    }
  }
  EXPECT_EQ(hierarchy.TotalCounts().positives,
            before.TotalCounts().positives + dp);
  EXPECT_EQ(hierarchy.TotalCounts().negatives,
            before.TotalCounts().negatives + dn);
}

TEST(HierarchyTest, ApplyDeltasMatchesRebuildOfMutatedDataset) {
  Dataset data = RandomFourAttrDataset(33, 500);
  Hierarchy incremental(data);
  ASSERT_TRUE(incremental.EagerBuild(1).ok());
  const RegionCounter& counter = incremental.counter();
  const uint32_t leaf = incremental.LeafMask();

  // Random flips, duplications, and removals, mirrored as count deltas.
  Rng rng(99);
  Dataset mutated = data;
  std::vector<char> keep(data.NumRows(), 1);
  std::vector<char> touched(data.NumRows(), 0);  // flip/remove once per row
  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> net;
  for (int step = 0; step < 120; ++step) {
    const int row = rng.UniformInt(data.NumRows());
    const uint64_t key = counter.RowKey(data, row, leaf);
    auto& d = net[key];
    switch (rng.UniformInt(3)) {
      case 0: {  // flip
        if (touched[row]) break;
        touched[row] = 1;
        const int label = mutated.Label(row);
        mutated.SetLabel(row, 1 - label);
        d.first += label == 1 ? -1 : 1;
        d.second += label == 1 ? 1 : -1;
        break;
      }
      case 1: {  // duplicate
        mutated.AppendRowFrom(data, row);
        (data.Label(row) == 1 ? d.first : d.second) += 1;
        break;
      }
      case 2: {  // remove (tombstone in the mirror)
        if (touched[row]) break;
        touched[row] = 1;
        keep[row] = 0;
        (data.Label(row) == 1 ? d.first : d.second) -= 1;
        break;
      }
    }
  }
  // Rebuild the removal side: rows tombstoned by case 2 still sit in
  // `mutated`, so build the reference dataset from scratch instead.
  Dataset reference(data.schema());
  for (int r = 0; r < mutated.NumRows(); ++r) {
    if (r >= data.NumRows() || keep[r]) reference.AppendRowFrom(mutated, r);
  }

  std::vector<Hierarchy::LeafDelta> deltas;
  for (const auto& [key, d] : net) {
    if (d.first != 0 || d.second != 0) {
      deltas.push_back({key, d.first, d.second});
    }
  }
  incremental.ApplyDeltas(deltas);

  Hierarchy rebuilt(reference);
  for (uint32_t mask = 1; mask <= leaf; ++mask) {
    // Delta maintenance keeps entries whose counts reached zero; ignore
    // them when comparing against the rebuilt node.
    std::vector<NodeTable::Entry> nonzero;
    for (const auto& entry : incremental.NodeCounts(mask)) {
      if (entry.second.Total() > 0) nonzero.push_back(entry);
    }
    EXPECT_EQ(nonzero, rebuilt.NodeCounts(mask).entries()) << "mask " << mask;
  }
  EXPECT_EQ(incremental.TotalCounts(), rebuilt.TotalCounts());
}

TEST(HierarchyTest, EagerBuildSingleProtectedAttribute) {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("a", {"a0", "a1", "a2"}),
  };
  DataSchema schema(std::move(attributes), {0});
  Dataset data(schema);
  data.AddRow({0}, 1);
  data.AddRow({1}, 0);
  data.AddRow({1}, 1);
  Hierarchy hierarchy(data);
  ASSERT_TRUE(hierarchy.EagerBuild(4).ok());
  EXPECT_EQ(hierarchy.NodeCounts(0b1).size(), 2u);
  EXPECT_EQ(hierarchy.TotalCounts(), (RegionCounts{2, 1}));
}

}  // namespace
}  // namespace remedy
