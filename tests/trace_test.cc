#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace remedy {
namespace {

// --- Minimal JSON validator --------------------------------------------------
// Enough of a parser to certify that ToChromeJson() emits syntactically valid
// JSON (balanced structure, proper strings/numbers/commas) without pulling in
// a JSON library. Rejects, rather than tolerates, malformed output.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// -----------------------------------------------------------------------------

TEST(TraceTest, NoSinkMeansInertSpans) {
  ASSERT_EQ(TraceSink::Active(), nullptr);
  EXPECT_FALSE(TracingActive());
  {
    TraceSpan span("orphan");  // must not crash or leak
  }
  EXPECT_EQ(TraceSink::Active(), nullptr);
}

TEST(TraceTest, RecordsCompletedSpans) {
  TraceSink sink;
  EXPECT_TRUE(TracingActive());
  EXPECT_EQ(TraceSink::Active(), &sink);
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
  }
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  // Children close before parents.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_GE(events[0].duration_ns, 0);
  EXPECT_GE(events[1].duration_ns, 0);
}

TEST(TraceTest, NestingLinksParentAndDepth) {
  TraceSink sink;
  {
    TraceSpan a("a");
    {
      TraceSpan b("b");
      { TraceSpan c("c"); }
    }
    { TraceSpan d("d"); }
  }
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& e : sink.Events()) by_name[e.name] = e;
  ASSERT_EQ(by_name.size(), 4u);
  EXPECT_EQ(by_name["a"].parent_id, 0u);
  EXPECT_EQ(by_name["a"].depth, 0);
  EXPECT_EQ(by_name["b"].parent_id, by_name["a"].id);
  EXPECT_EQ(by_name["b"].depth, 1);
  EXPECT_EQ(by_name["c"].parent_id, by_name["b"].id);
  EXPECT_EQ(by_name["c"].depth, 2);
  // d is a sibling of b: same parent, same depth, later id.
  EXPECT_EQ(by_name["d"].parent_id, by_name["a"].id);
  EXPECT_EQ(by_name["d"].depth, 1);
  EXPECT_GT(by_name["d"].id, by_name["b"].id);
}

TEST(TraceTest, ChildTimestampsNestWithinParent) {
  TraceSink sink;
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
  }
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& e : sink.Events()) by_name[e.name] = e;
  const TraceEvent& outer = by_name["outer"];
  const TraceEvent& inner = by_name["inner"];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST(TraceTest, ArgIsCarried) {
  TraceSink sink;
  { TraceSpan span("with_arg", 42); }
  { TraceSpan span("without_arg"); }
  std::map<std::string, TraceEvent> by_name;
  for (const TraceEvent& e : sink.Events()) by_name[e.name] = e;
  EXPECT_TRUE(by_name["with_arg"].has_arg);
  EXPECT_EQ(by_name["with_arg"].arg, 42);
  EXPECT_FALSE(by_name["without_arg"].has_arg);
}

TEST(TraceTest, MacroSpansFollowTheBuildFlag) {
  TraceSink sink;
  {
    REMEDY_TRACE_SPAN("macro_span");
    REMEDY_TRACE_SPAN_ARG("macro_arg_span", 7);
  }
  std::vector<TraceEvent> events = sink.Events();
#if defined(REMEDY_TRACE_DISABLED)
  // trace-off preset: the macros compile to nothing.
  ASSERT_EQ(events.size(), 0u);
#else
  ASSERT_EQ(events.size(), 2u);
#endif
}

TEST(TraceTest, SinkUninstallsOnDestruction) {
  {
    TraceSink sink;
    EXPECT_TRUE(TracingActive());
  }
  EXPECT_FALSE(TracingActive());
  // A successor sink installs cleanly.
  TraceSink next;
  EXPECT_EQ(TraceSink::Active(), &next);
}

TEST(TraceTest, SpanOutlivingSinkDropsItsEvent) {
  auto sink = std::make_unique<TraceSink>();
  auto span = std::make_unique<TraceSpan>("straggler");
  sink.reset();            // sink gone while the span is open
  span.reset();            // must not touch freed memory (ASan-checked twin)
  TraceSink successor;     // and must not record into a successor
  EXPECT_TRUE(successor.Events().empty());
}

// Spans opened concurrently inside pool tasks must record race-free (the
// TSan twin checks this under -fsanitize=thread) and keep per-thread
// nesting: every worker's spans form their own parent chains, and no event
// is lost. The pool is constructed with 4 workers regardless of the host's
// core count, so the test is genuinely concurrent even on 1-CPU CI.
TEST(TraceTest, ConcurrentSpansUnderThreadPool) {
  constexpr int kTasks = 64;
  TraceSink sink;
  ThreadPool pool(4);
  ASSERT_TRUE(pool
                  .ParallelFor(kTasks,
                               [](int64_t i) {
                                 TraceSpan outer("task");
                                 TraceSpan inner("task_inner", i);
                               })
                  .ok());
  ASSERT_TRUE(pool.Wait().ok());
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u * kTasks);

  std::map<uint64_t, TraceEvent> by_id;
  int inner_count = 0;
  for (const TraceEvent& e : events) by_id[e.id] = e;
  ASSERT_EQ(by_id.size(), events.size()) << "span ids must be unique";
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "task_inner") continue;
    ++inner_count;
    // Each inner span's parent is a "task" span on the same thread.
    auto parent = by_id.find(e.parent_id);
    ASSERT_NE(parent, by_id.end());
    EXPECT_STREQ(parent->second.name, "task");
    EXPECT_EQ(parent->second.tid, e.tid);
    EXPECT_EQ(e.depth, parent->second.depth + 1);
  }
  EXPECT_EQ(inner_count, kTasks);
}

TEST(TraceTest, ChromeJsonIsValidAndNormalized) {
  TraceSink sink;
  {
    TraceSpan outer("phase \"quoted\"");  // exercises string escaping
    { TraceSpan inner("inner", 3); }
  }
  const std::string json = sink.ToChromeJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Timestamps are normalized to the earliest span: some event is at ts 0.
  EXPECT_NE(json.find("\"ts\": 0"), std::string::npos);
}

TEST(TraceTest, EmptySinkSerializesToValidJson) {
  TraceSink sink;
  const std::string json = sink.ToChromeJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
}

TEST(TraceTest, WriteChromeJsonRoundTrips) {
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.json";
  TraceSink sink;
  { TraceSpan span("persisted"); }
  ASSERT_TRUE(sink.WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_EQ(contents, sink.ToChromeJson());
  JsonValidator validator(contents);
  EXPECT_TRUE(validator.Valid());
  EXPECT_NE(contents.find("persisted"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, WriteChromeJsonReportsIoError) {
  TraceSink sink;
  Status status = sink.WriteChromeJson("/nonexistent-dir/trace.json");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace remedy
