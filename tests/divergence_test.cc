#include <gtest/gtest.h>

#include <algorithm>

#include "fairness/divergence.h"
#include "fairness/fairness_index.h"
#include "fairness/fairness_violation.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::SmallSchema;

// A test set where predictions misclassify negatives only in (a0, b0):
// that subgroup has FPR 1, everything else 0.
Dataset SkewedErrors(std::vector<int>* predictions) {
  Dataset data(SmallSchema());
  predictions->clear();
  // (a0, b0): 40 negatives, all predicted positive (FP).
  AddRows(data, 40, 0, 0, 0, 0);
  for (int i = 0; i < 40; ++i) predictions->push_back(1);
  // (a1, b0): 60 negatives predicted negative.
  AddRows(data, 60, 1, 0, 0, 0);
  for (int i = 0; i < 60; ++i) predictions->push_back(0);
  // (a2, b1): 60 positives predicted positive.
  AddRows(data, 60, 2, 1, 1, 1);
  for (int i = 0; i < 60; ++i) predictions->push_back(1);
  // (a1, b1): 40 negatives predicted negative.
  AddRows(data, 40, 1, 1, 0, 0);
  for (int i = 0; i < 40; ++i) predictions->push_back(0);
  return data;
}

TEST(AnalyzeSubgroupsTest, OverallStatistic) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr);
  // 40 FP out of 140 negatives.
  EXPECT_NEAR(analysis.overall, 40.0 / 140.0, 1e-12);
}

TEST(AnalyzeSubgroupsTest, FindsTheUnfairSubgroup) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr);
  const SubgroupReport* worst = nullptr;
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.pattern == Pattern({0, 0})) worst = &report;
  }
  ASSERT_NE(worst, nullptr);
  EXPECT_DOUBLE_EQ(worst->statistic, 1.0);
  EXPECT_NEAR(worst->divergence, 1.0 - 40.0 / 140.0, 1e-12);
  EXPECT_LT(worst->p_value, 0.001);
  EXPECT_EQ(worst->relevant, 40);
  EXPECT_EQ(worst->errors, 40);
}

TEST(AnalyzeSubgroupsTest, EnumeratesAllLevels) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr);
  int leaf_level = 0, level_one = 0;
  for (const SubgroupReport& report : analysis.subgroups) {
    int d = report.pattern.NumDeterministic();
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 2);
    (d == 2 ? leaf_level : level_one)++;
  }
  EXPECT_GT(leaf_level, 0);
  EXPECT_GT(level_one, 0);
}

TEST(AnalyzeSubgroupsTest, SkipsGroupsWithoutRelevantPopulation) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  // Under FPR, (a2, b1) has no negatives: it must not be reported.
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr);
  for (const SubgroupReport& report : analysis.subgroups) {
    EXPECT_NE(report.pattern, Pattern({2, 1}));
  }
}

TEST(AnalyzeSubgroupsTest, FnrMirrorsFpr) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  // Flip every prediction: FP become "correct", positives become FN.
  for (int& p : predictions) p = 1 - p;
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFnr);
  // All 60 positives are now misclassified.
  EXPECT_DOUBLE_EQ(analysis.overall, 1.0);
}

TEST(AnalyzeSubgroupsTest, MinSupportFilters) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis loose =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr, 0.0);
  SubgroupAnalysis tight =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr, 0.4);
  EXPECT_LT(tight.subgroups.size(), loose.subgroups.size());
  for (const SubgroupReport& report : tight.subgroups) {
    EXPECT_GE(report.support, 0.4);
  }
}

TEST(FilterUnfairTest, RespectsThresholdAndSignificance) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr);
  std::vector<SubgroupReport> unfair = FilterUnfair(analysis, 0.1);
  ASSERT_FALSE(unfair.empty());
  // Sorted by descending divergence.
  for (size_t i = 1; i < unfair.size(); ++i) {
    EXPECT_GE(unfair[i - 1].divergence, unfair[i].divergence);
  }
  for (const SubgroupReport& report : unfair) {
    EXPECT_GT(report.divergence, 0.1);
    EXPECT_LT(report.p_value, 0.05);
  }
  // An absurd threshold filters everything.
  EXPECT_TRUE(FilterUnfair(analysis, 2.0).empty());
}

TEST(FairnessIndexTest, ZeroForPerfectPredictions) {
  Dataset data(SmallSchema());
  AddRows(data, 50, 0, 0, 1, 1);
  AddRows(data, 50, 1, 1, 0, 0);
  std::vector<int> predictions(100);
  for (int i = 0; i < 100; ++i) predictions[i] = data.Label(i);
  EXPECT_DOUBLE_EQ(
      ComputeFairnessIndex(data, predictions, Statistic::kFpr), 0.0);
}

TEST(FairnessIndexTest, PositiveForSkewedErrors) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  double index = ComputeFairnessIndex(data, predictions, Statistic::kFpr);
  EXPECT_GT(index, 0.0);
}

TEST(FairnessIndexTest, SupportWeightingShrinksIndex) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kFpr);
  FairnessIndexOptions weighted;
  FairnessIndexOptions plain;
  plain.weight_by_support = false;
  EXPECT_LT(FairnessIndex(analysis, weighted),
            FairnessIndex(analysis, plain));
}

TEST(FairnessViolationTest, FindsWorstGroup) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  FairnessViolation violation =
      ComputeFairnessViolation(data, predictions, Statistic::kFpr);
  EXPECT_GT(violation.violation, 0.0);
  // The worst violation is support * divergence; the (a0, b0) group at
  // support 0.2 and divergence ~0.714 or its a0 / b0 parents dominate.
  EXPECT_TRUE(Pattern({0, Pattern::kWildcard})
                  .Dominates(violation.worst_pattern) ||
              Pattern({Pattern::kWildcard, 0})
                  .Dominates(violation.worst_pattern));
}

TEST(FairnessViolationTest, ZeroForPerfectPredictions) {
  Dataset data(SmallSchema());
  AddRows(data, 50, 0, 0, 1, 1);
  AddRows(data, 50, 1, 1, 0, 0);
  std::vector<int> predictions(100);
  for (int i = 0; i < 100; ++i) predictions[i] = data.Label(i);
  EXPECT_DOUBLE_EQ(
      ComputeFairnessViolation(data, predictions, Statistic::kFpr).violation,
      0.0);
}

TEST(StatisticNameTest, Names) {
  EXPECT_EQ(StatisticName(Statistic::kFpr), "FPR");
  EXPECT_EQ(StatisticName(Statistic::kFnr), "FNR");
  EXPECT_EQ(StatisticName(Statistic::kStatisticalParity), "SP");
  EXPECT_EQ(StatisticName(Statistic::kErrorRate), "ER");
}

TEST(AnalyzeSubgroupsTest, StatisticalParityIgnoresLabels) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kStatisticalParity);
  // 100 positive predictions (40 FP + 60 TP) out of 200 rows.
  EXPECT_DOUBLE_EQ(analysis.overall, 0.5);
  // Every subgroup is relevant under SP (no class conditioning), so the
  // positively-labelled-only group (a2, b1) now appears.
  bool found = false;
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.pattern == Pattern({2, 1})) {
      found = true;
      EXPECT_DOUBLE_EQ(report.statistic, 1.0);  // all predicted positive
      EXPECT_EQ(report.relevant, report.size);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzeSubgroupsTest, ErrorRateCombinesBothClasses) {
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kErrorRate);
  // Only the 40 false positives are wrong out of 200 rows.
  EXPECT_DOUBLE_EQ(analysis.overall, 0.2);
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.pattern == Pattern({0, 0})) {
      EXPECT_DOUBLE_EQ(report.statistic, 1.0);  // fully misclassified
    }
    if (report.pattern == Pattern({2, 1})) {
      EXPECT_DOUBLE_EQ(report.statistic, 0.0);  // fully correct
    }
  }
}

TEST(AnalyzeSubgroupsTest, ErrorRateDivergenceMirrorsAccuracyDivergence) {
  // |acc_g - acc_D| == |err_g - err_D|, so one statistic serves both.
  std::vector<int> predictions;
  Dataset data = SkewedErrors(&predictions);
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(data, predictions, Statistic::kErrorRate);
  for (const SubgroupReport& report : analysis.subgroups) {
    double accuracy_g = 1.0 - report.statistic;
    double accuracy_d = 1.0 - analysis.overall;
    EXPECT_NEAR(report.divergence, std::fabs(accuracy_g - accuracy_d),
                1e-12);
  }
}

}  // namespace
}  // namespace remedy
