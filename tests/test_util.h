#ifndef REMEDY_TESTS_TEST_UTIL_H_
#define REMEDY_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace remedy::testing {

// A tiny two-protected-attribute schema used across the unit tests:
//   a (protected, 3 values), b (protected, 2 values), f (feature, 2 values).
inline DataSchema SmallSchema() {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("a", {"a0", "a1", "a2"}),
      AttributeSchema("b", {"b0", "b1"}),
      AttributeSchema("f", {"f0", "f1"}),
  };
  return DataSchema(std::move(attributes), {0, 1});
}

// Adds `count` copies of the row (a, b, f) with the given label.
inline void AddRows(Dataset& data, int count, int a, int b, int f,
                    int label) {
  for (int i = 0; i < count; ++i) data.AddRow({a, b, f}, label);
}

// A dataset whose (a, b) cells have hand-picked positive/negative counts:
// cells[a][b] = {positives, negatives}. The feature column mirrors the
// label so classifiers have signal.
inline Dataset GridDataset(
    const std::vector<std::vector<std::pair<int, int>>>& cells) {
  Dataset data(SmallSchema());
  for (size_t a = 0; a < cells.size(); ++a) {
    for (size_t b = 0; b < cells[a].size(); ++b) {
      AddRows(data, cells[a][b].first, static_cast<int>(a),
              static_cast<int>(b), 1, 1);
      AddRows(data, cells[a][b].second, static_cast<int>(a),
              static_cast<int>(b), 0, 0);
    }
  }
  return data;
}

}  // namespace remedy::testing

#endif  // REMEDY_TESTS_TEST_UTIL_H_
