#include "core/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/region_counter.h"

namespace remedy {
namespace {

using Entry = NodeTable::Entry;

std::vector<Entry> RandomEntries(Rng& rng, int n, uint64_t key_bits) {
  std::vector<Entry> entries;
  entries.reserve(n);
  const uint64_t mask =
      key_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << key_bits) - 1;
  for (int i = 0; i < n; ++i) {
    uint64_t key = 0;
    for (int b = 0; b < 64; b += 16) {
      key |= static_cast<uint64_t>(rng.UniformInt(1 << 16)) << b;
    }
    entries.push_back({key & mask,
                       RegionCounts{rng.UniformRange(0, 50),
                                    rng.UniformRange(0, 50)}});
  }
  return entries;
}

// The property the NodeTable constructor relies on: RadixSortByKey orders
// exactly like a stable comparison sort on the key, preserving each entry's
// counts. Sweeps sizes around the std::sort/radix threshold and key widths
// from one byte to the full 64 bits (exercising the pass-count early-out).
TEST(RadixSortTest, MatchesStableSortOnRandomInputs) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + rng.UniformInt(2000);
    const uint64_t key_bits = 1 + rng.UniformInt(64);
    std::vector<Entry> entries = RandomEntries(rng, n, key_bits);
    std::vector<Entry> expected = entries;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.first < b.first;
                     });
    RadixSortByKey(entries);
    ASSERT_EQ(entries.size(), expected.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].first, expected[i].first) << "at " << i;
      EXPECT_EQ(entries[i].second, expected[i].second) << "at " << i;
    }
  }
}

TEST(RadixSortTest, HandlesEdgeCases) {
  std::vector<Entry> empty;
  RadixSortByKey(empty);
  EXPECT_TRUE(empty.empty());

  std::vector<Entry> one = {{42, RegionCounts{1, 2}}};
  RadixSortByKey(one);
  EXPECT_EQ(one[0].first, 42u);

  // All keys zero: no counting pass runs at all.
  std::vector<Entry> zeros(100, Entry{0, RegionCounts{1, 0}});
  RadixSortByKey(zeros);
  for (const Entry& e : zeros) EXPECT_EQ(e.first, 0u);

  // Already sorted: the is_sorted fast path must keep it intact.
  std::vector<Entry> sorted;
  for (uint64_t k = 0; k < 1000; ++k) {
    sorted.push_back({k * 3, RegionCounts{static_cast<int64_t>(k), 1}});
  }
  std::vector<Entry> expected = sorted;
  RadixSortByKey(sorted);
  EXPECT_EQ(sorted, expected);
}

// The parallel overload must equal the serial sort — which equals
// std::stable_sort — for every thread count, input size (straddling the
// internal serial cutoff and the MSB-partition path), and key width
// (including widths where the top byte is constant and the partition
// degenerates to one bucket).
TEST(RadixSortTest, ParallelMatchesStableSortOnRandomInputs) {
  Rng rng(4321);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + rng.UniformInt(20000);
    const uint64_t key_bits = 1 + rng.UniformInt(64);
    const int threads = 2 + rng.UniformInt(3);  // 2..4
    std::vector<Entry> entries = RandomEntries(rng, n, key_bits);
    std::vector<Entry> expected = entries;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.first < b.first;
                     });
    RadixSortByKey(entries, threads);
    ASSERT_EQ(entries, expected)
        << "n=" << n << " key_bits=" << key_bits << " threads=" << threads;
  }
}

TEST(RadixSortTest, ParallelHandlesEdgeCases) {
  for (int threads : {0, 1, 2, 4}) {
    std::vector<Entry> empty;
    RadixSortByKey(empty, threads);
    EXPECT_TRUE(empty.empty());

    std::vector<Entry> one = {{42, RegionCounts{1, 2}}};
    RadixSortByKey(one, threads);
    EXPECT_EQ(one[0].first, 42u);

    // All keys equal: every bucket but one is empty.
    std::vector<Entry> same(10000, Entry{7, RegionCounts{1, 0}});
    RadixSortByKey(same, threads);
    for (const Entry& e : same) EXPECT_EQ(e.first, 7u);

    // Keys concentrated in the top byte only: the per-bucket low-byte LSD
    // phase has nothing to do.
    std::vector<Entry> top;
    Rng rng(5 + threads);
    for (int i = 0; i < 9000; ++i) {
      top.push_back({static_cast<uint64_t>(rng.UniformInt(256)) << 56,
                     RegionCounts{i, 0}});
    }
    std::vector<Entry> expected = top;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.first < b.first;
                     });
    RadixSortByKey(top, threads);
    EXPECT_EQ(top, expected);
  }
}

TEST(RadixSortTest, StableAcrossDuplicateKeys) {
  // Duplicate keys keep their arrival order (stability), which the
  // NodeTable duplicate-merge loop then collapses deterministically.
  std::vector<Entry> entries;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    entries.push_back({static_cast<uint64_t>(rng.UniformInt(7)),
                       RegionCounts{i, 0}});
  }
  std::vector<Entry> expected = entries;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.first < b.first;
                   });
  RadixSortByKey(entries);
  EXPECT_EQ(entries, expected);
}

TEST(RadixSortTest, NodeTableUsesSortedOrderWithMergedDuplicates) {
  // End to end through the NodeTable constructor, above the radix
  // threshold: shuffled duplicate-heavy entries come out ascending with
  // counts summed per key.
  Rng rng(77);
  std::vector<Entry> entries;
  const int kKeys = 700;
  for (int copy = 0; copy < 3; ++copy) {
    for (int k = 0; k < kKeys; ++k) {
      entries.push_back({static_cast<uint64_t>(k), RegionCounts{1, 2}});
    }
  }
  rng.Shuffle(entries);
  ASSERT_GE(entries.size(), kRadixSortMinEntries);
  NodeTable table(std::move(entries));
  ASSERT_EQ(table.size(), static_cast<size_t>(kKeys));
  uint64_t expected_key = 0;
  for (const auto& [key, counts] : table) {
    EXPECT_EQ(key, expected_key++);
    EXPECT_EQ(counts.positives, 3);
    EXPECT_EQ(counts.negatives, 6);
  }
}

}  // namespace
}  // namespace remedy
