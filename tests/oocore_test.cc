// Out-of-core shard store suite: spill/open round-trips, the central
// equivalence contract (counting off memory-mapped shard files is
// byte-identical to counting the in-memory store, for every backend and
// thread count), and the corruption paths (truncated or overwritten shard
// files surface a clean Status, never a crash).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/counting_backend.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/region_counter.h"
#include "data/columnar.h"
#include "data/shard_file.h"
#include "datagen/generator.h"
#include "datagen/random_spec.h"

namespace remedy {
namespace {

// TSan executes the same suite ~10x slower; fewer random trials keep the
// twin fast while every code path still runs.
#ifdef REMEDY_TSAN_BUILD
constexpr int kTrials = 3;
constexpr const char* kDirTag = "oocore_tsan_";
#else
constexpr int kTrials = 10;
constexpr const char* kDirTag = "oocore_";
#endif

// Per-test spill directory: the default and TSan twins share TempDir() and
// ctest may run their cases concurrently, so the tag keeps them disjoint.
std::string SpillDir(const std::string& name) {
  return ::testing::TempDir() + kDirTag + name;
}

SyntheticSpec SmallSpec(Rng& rng, int rows) {
  RandomSpecOptions options;
  options.min_attributes = 2;
  options.max_attributes = 5;
  options.max_cardinality = 6;
  options.max_protected = 4;
  options.num_rows = rows;
  return RandomSpec(rng, options);
}

// Order-sensitive digest of an identification result (the bench's
// acceptance metric): two runs agree iff their IBS outputs are identical
// region for region.
uint64_t IbsDigest(const std::vector<BiasedRegion>& ibs) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(ibs.size());
  for (const BiasedRegion& region : ibs) {
    for (int i = 0; i < region.pattern.Arity(); ++i) {
      mix(static_cast<uint64_t>(
          static_cast<int64_t>(region.pattern.Value(i))));
    }
    mix(static_cast<uint64_t>(region.counts.positives));
    mix(static_cast<uint64_t>(region.counts.negatives));
    mix(static_cast<uint64_t>(region.neighbor_counts.positives));
    mix(static_cast<uint64_t>(region.neighbor_counts.negatives));
  }
  return h;
}

TEST(OocoreTest, SpillRoundTripPreservesEveryRow) {
  Rng rng(81);
  for (int trial = 0; trial < kTrials; ++trial) {
    const SyntheticSpec spec = SmallSpec(rng, 500 + rng.UniformInt(3000));
    const int64_t shard_rows = 64 + rng.UniformInt(400);
    const std::string dir =
        SpillDir("roundtrip_" + std::to_string(trial));
    ColumnarShardStore in_memory =
        GenerateSyntheticStore(spec, 11 + trial, shard_rows);
    StatusOr<ColumnarShardStore> spilled =
        GenerateSyntheticSpilledStore(spec, 11 + trial, dir, shard_rows);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    const ColumnarShardStore& mapped = spilled.value();
    EXPECT_TRUE(mapped.mmap_backed());
    EXPECT_FALSE(in_memory.mmap_backed());
    ASSERT_EQ(mapped.NumRows(), in_memory.NumRows());
    ASSERT_EQ(mapped.NumShards(), in_memory.NumShards());
    EXPECT_EQ(mapped.PositiveCount(), in_memory.PositiveCount());
    EXPECT_EQ(mapped.NegativeCount(), in_memory.NegativeCount());
    EXPECT_GT(mapped.SpilledBytes(), 0);
    EXPECT_EQ(in_memory.SpilledBytes(), 0);
    // Every code and label of every shard must match the in-memory twin.
    for (int s = 0; s < mapped.NumShards(); ++s) {
      const ColumnarShardStore::ShardView a = mapped.View(s);
      const ColumnarShardStore::ShardView b = in_memory.View(s);
      ASSERT_EQ(a.num_rows, b.num_rows) << "shard " << s;
      ASSERT_EQ(a.columns.size(), b.columns.size());
      for (int64_t r = 0; r < a.num_rows; ++r) {
        for (size_t p = 0; p < a.columns.size(); ++p) {
          const uint32_t code_a = a.columns[p].wide != nullptr
                                      ? a.columns[p].wide[r]
                                      : a.columns[p].narrow[r];
          const uint32_t code_b = b.columns[p].wide != nullptr
                                      ? b.columns[p].wide[r]
                                      : b.columns[p].narrow[r];
          ASSERT_EQ(code_a, code_b)
              << "shard " << s << " row " << r << " column " << p;
        }
        ASSERT_EQ(a.labels[r], b.labels[r]) << "shard " << s << " row " << r;
      }
    }
  }
}

TEST(OocoreTest, EmptyStoreSpillsAndReopens) {
  Rng rng(5);
  const SyntheticSpec spec = SmallSpec(rng, 10);
  const std::string dir = SpillDir("empty");
  ColumnarShardStoreBuilder builder(spec.MakeSchema());
  ASSERT_TRUE(builder.EnableSpill(dir).ok());
  StatusOr<ColumnarShardStore> spilled = builder.FinishSpilled();
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(spilled.value().NumRows(), 0);
  EXPECT_EQ(spilled.value().NumShards(), 1);
  ASSERT_TRUE(spilled.value().EnsureMapped().ok());
  EXPECT_EQ(spilled.value().View(0).num_rows, 0);
}

// The central equivalence contract: node counts and the end-to-end IBS off
// the mmap-backed store are identical to the in-memory store for all three
// backends and every thread count.
TEST(OocoreTest, MmapMatchesInMemoryAcrossBackendsAndThreads) {
  Rng rng(4242);
  for (int trial = 0; trial < kTrials; ++trial) {
    const SyntheticSpec spec = SmallSpec(rng, 400 + rng.UniformInt(2500));
    const int64_t shard_rows = 64 + rng.UniformInt(300);
    const std::string dir = SpillDir("equiv_" + std::to_string(trial));
    ColumnarShardStore in_memory =
        GenerateSyntheticStore(spec, 900 + trial, shard_rows);
    StatusOr<ColumnarShardStore> spilled =
        GenerateSyntheticSpilledStore(spec, 900 + trial, dir, shard_rows);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    const ColumnarShardStore& mapped = spilled.value();

    RegionCounter counter(in_memory.schema());
    const uint32_t leaf_mask = (1u << counter.NumProtected()) - 1;
    CountingSource memory_source;
    memory_source.store = &in_memory;
    CountingSource mapped_source;
    mapped_source.store = &mapped;
    auto scalar = CountingBackend::Create(CountingBackendKind::kScalar);
    for (uint32_t mask = 1; mask <= leaf_mask; ++mask) {
      NodeTable reference =
          scalar->CountNode(memory_source, counter, mask, 1);
      for (CountingBackendKind kind :
           {CountingBackendKind::kScalar, CountingBackendKind::kSimd,
            CountingBackendKind::kSharded}) {
        auto backend = CountingBackend::Create(kind);
        for (int threads : {1, 2, 4, 0}) {
          EXPECT_EQ(backend->CountNode(mapped_source, counter, mask, threads),
                    reference)
              << CountingBackendName(kind) << " mask=" << mask
              << " threads=" << threads << " trial=" << trial;
          if (kind != CountingBackendKind::kSharded) break;  // thread-blind
        }
      }
    }

    IbsParams params;
    params.imbalance_threshold = 0.4;
    StatusOr<std::vector<BiasedRegion>> reference =
        IdentifyIbs(in_memory, params);
    ASSERT_TRUE(reference.ok());
    const uint64_t expected = IbsDigest(reference.value());
    for (CountingBackendKind kind :
         {CountingBackendKind::kScalar, CountingBackendKind::kSimd,
          CountingBackendKind::kSharded}) {
      for (int threads : {1, 2, 4, 0}) {
        IbsParams p = params;
        p.backend = kind;
        p.backend_threads = threads;
        StatusOr<std::vector<BiasedRegion>> got = IdentifyIbs(mapped, p);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(IbsDigest(got.value()), expected)
            << CountingBackendName(kind) << " threads=" << threads
            << " trial=" << trial;
        if (kind != CountingBackendKind::kSharded) break;
      }
    }
  }
}

void Truncate(const std::string& path, int64_t remove_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, remove_bytes);
  ASSERT_EQ(::truncate(path.c_str(), size - remove_bytes), 0);
}

TEST(OocoreTest, TruncatedShardFileIsCleanErrorAtOpen) {
  Rng rng(33);
  const SyntheticSpec spec = SmallSpec(rng, 1200);
  const std::string dir = SpillDir("truncated_open");
  StatusOr<ColumnarShardStore> spilled =
      GenerateSyntheticSpilledStore(spec, 2, dir, /*shard_rows=*/256);
  ASSERT_TRUE(spilled.ok());
  Truncate(dir + "/" + ShardFileName(0), 5);
  StatusOr<ColumnarShardStore> reopened =
      ColumnarShardStore::OpenSpilled(dir, spec.MakeSchema());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataCorruption)
      << reopened.status().ToString();
}

TEST(OocoreTest, TruncationAfterOpenSurfacesThroughIdentify) {
  // OpenSpilled validated the files, then the store shrank on disk before
  // the first count: the lazy map (reached via Hierarchy::PrepareCounting)
  // must re-check and return a clean error, not crash on a short mapping.
  Rng rng(34);
  const SyntheticSpec spec = SmallSpec(rng, 1500);
  const std::string dir = SpillDir("truncated_lazy");
  StatusOr<ColumnarShardStore> spilled =
      GenerateSyntheticSpilledStore(spec, 3, dir, /*shard_rows=*/256);
  ASSERT_TRUE(spilled.ok());
  StatusOr<ColumnarShardStore> reopened =
      ColumnarShardStore::OpenSpilled(dir, spec.MakeSchema());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Truncate(dir + "/" + ShardFileName(reopened.value().NumShards() - 1), 9);
  IbsParams params;
  params.imbalance_threshold = 0.4;
  StatusOr<std::vector<BiasedRegion>> ibs =
      IdentifyIbs(reopened.value(), params);
  ASSERT_FALSE(ibs.ok());
  EXPECT_EQ(ibs.status().code(), StatusCode::kDataCorruption)
      << ibs.status().ToString();
}

TEST(OocoreTest, CorruptedHeaderByteIsCleanError) {
  Rng rng(35);
  const SyntheticSpec spec = SmallSpec(rng, 800);
  const std::string dir = SpillDir("corrupt_header");
  StatusOr<ColumnarShardStore> spilled =
      GenerateSyntheticSpilledStore(spec, 4, dir, /*shard_rows=*/256);
  ASSERT_TRUE(spilled.ok());
  const std::string path = dir + "/" + ShardFileName(0);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 17, SEEK_SET), 0);  // inside num_rows
  const unsigned char garbage = 0xee;
  ASSERT_EQ(std::fwrite(&garbage, 1, 1, f), 1u);
  std::fclose(f);
  StatusOr<ColumnarShardStore> reopened =
      ColumnarShardStore::OpenSpilled(dir, spec.MakeSchema());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataCorruption)
      << reopened.status().ToString();
}

TEST(OocoreTest, WrongSchemaIsRejected) {
  Rng rng(36);
  const SyntheticSpec spec = SmallSpec(rng, 600);
  const std::string dir = SpillDir("wrong_schema");
  StatusOr<ColumnarShardStore> spilled =
      GenerateSyntheticSpilledStore(spec, 5, dir, /*shard_rows=*/256);
  ASSERT_TRUE(spilled.ok());
  SyntheticSpec other = SmallSpec(rng, 600);
  StatusOr<ColumnarShardStore> reopened =
      ColumnarShardStore::OpenSpilled(dir, other.MakeSchema());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument)
      << reopened.status().ToString();
}

TEST(OocoreTest, MissingDirectoryIsIoError) {
  Rng rng(37);
  const SyntheticSpec spec = SmallSpec(rng, 100);
  StatusOr<ColumnarShardStore> reopened = ColumnarShardStore::OpenSpilled(
      SpillDir("never_created"), spec.MakeSchema());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIoError)
      << reopened.status().ToString();
}

TEST(OocoreTest, ShardFileHeaderRoundTrip) {
  ShardFileHeader header;
  header.shard_index = 7;
  header.num_rows = 12345;
  header.num_positives = 678;
  header.schema_digest = 0xabcdef0123456789ull;
  header.column_widths = {1, 2, 1, 1, 2};
  header.payload_bytes = header.ComputedPayloadBytes();
  const std::vector<uint8_t> bytes = EncodeShardFileHeader(header);
  ASSERT_EQ(static_cast<int64_t>(bytes.size()), header.HeaderBytes());
  StatusOr<ShardFileHeader> decoded =
      DecodeShardFileHeader(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().shard_index, header.shard_index);
  EXPECT_EQ(decoded.value().num_rows, header.num_rows);
  EXPECT_EQ(decoded.value().num_positives, header.num_positives);
  EXPECT_EQ(decoded.value().schema_digest, header.schema_digest);
  EXPECT_EQ(decoded.value().column_widths, header.column_widths);
  EXPECT_EQ(decoded.value().payload_bytes, header.payload_bytes);
  // Any single flipped bit must break the header checksum.
  std::vector<uint8_t> bent = bytes;
  bent[9] ^= 0x10;
  EXPECT_FALSE(DecodeShardFileHeader(bent.data(), bent.size()).ok());
}

}  // namespace
}  // namespace remedy
