#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/hierarchy.h"
#include "datagen/compas.h"
#include "mining/fpgrowth.h"
#include "mining/region_miner.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::GridDataset;
using ::remedy::testing::SmallSchema;

// ---------------------------------------------------------------------------
// FpGrowthMiner on hand-checked transaction sets.
// ---------------------------------------------------------------------------

TEST(FpGrowthTest, TextbookExample) {
  // Transactions over items {0..4}; min support 3.
  std::vector<std::vector<int>> transactions = {
      {0, 1, 2}, {0, 1}, {0, 3}, {0, 1, 3}, {1, 4}, {0, 1, 4},
  };
  FpGrowthMiner miner(3);
  std::vector<FrequentItemset> result = miner.Mine(transactions);
  std::map<std::vector<int>, int64_t> support;
  for (const FrequentItemset& itemset : result) {
    support[itemset.items] = itemset.support;
  }
  EXPECT_EQ(support.at({0}), 5);
  EXPECT_EQ(support.at({1}), 5);
  EXPECT_EQ(support.at({0, 1}), 4);
  EXPECT_EQ(support.count({2}), 0u);     // support 1
  EXPECT_EQ(support.count({0, 3}), 0u);  // support 2
  EXPECT_EQ(support.count({}), 0u);      // empty set never reported
}

TEST(FpGrowthTest, SingleItemTransactions) {
  std::vector<std::vector<int>> transactions = {{7}, {7}, {7}, {9}};
  FpGrowthMiner miner(2);
  std::vector<FrequentItemset> result = miner.Mine(transactions);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].items, (std::vector<int>{7}));
  EXPECT_EQ(result[0].support, 3);
}

TEST(FpGrowthTest, DuplicateItemsCountOnce) {
  std::vector<std::vector<int>> transactions = {{1, 1, 1}, {1}};
  FpGrowthMiner miner(2);
  std::vector<FrequentItemset> result = miner.Mine(transactions);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].support, 2);
}

TEST(FpGrowthTest, MinSupportOneFindsEverything) {
  std::vector<std::vector<int>> transactions = {{0, 1}, {2}};
  FpGrowthMiner miner(1);
  std::vector<FrequentItemset> result = miner.Mine(transactions);
  // {0}, {1}, {0,1}, {2}
  EXPECT_EQ(result.size(), 4u);
}

TEST(FpGrowthTest, EmptyInput) {
  FpGrowthMiner miner(1);
  EXPECT_TRUE(miner.Mine({}).empty());
  EXPECT_TRUE(miner.Mine({{}, {}}).empty());
}

// Brute-force oracle: enumerate all itemsets over the (small) item universe
// and count supports directly.
std::map<std::vector<int>, int64_t> BruteForceFrequent(
    const std::vector<std::vector<int>>& transactions, int64_t min_support,
    int universe) {
  std::map<std::vector<int>, int64_t> result;
  for (int mask = 1; mask < (1 << universe); ++mask) {
    std::vector<int> items;
    for (int i = 0; i < universe; ++i) {
      if (mask & (1 << i)) items.push_back(i);
    }
    int64_t support = 0;
    for (const std::vector<int>& transaction : transactions) {
      std::set<int> have(transaction.begin(), transaction.end());
      bool all = true;
      for (int item : items) all &= have.count(item) > 0;
      support += all;
    }
    if (support >= min_support) result[items] = support;
  }
  return result;
}

class FpGrowthPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FpGrowthPropertyTest, MatchesBruteForceOracle) {
  Rng rng(GetParam());
  constexpr int kUniverse = 8;
  std::vector<std::vector<int>> transactions(40 + rng.UniformInt(40));
  for (auto& transaction : transactions) {
    int size = 1 + rng.UniformInt(5);
    for (int i = 0; i < size; ++i) {
      transaction.push_back(rng.UniformInt(kUniverse));
    }
  }
  int64_t min_support = 2 + rng.UniformInt(6);

  FpGrowthMiner miner(min_support);
  std::vector<FrequentItemset> mined = miner.Mine(transactions);
  std::map<std::vector<int>, int64_t> expected =
      BruteForceFrequent(transactions, min_support, kUniverse);

  ASSERT_EQ(mined.size(), expected.size()) << "seed " << GetParam();
  for (const FrequentItemset& itemset : mined) {
    auto it = expected.find(itemset.items);
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(itemset.support, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpGrowthPropertyTest,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Region mining over datasets.
// ---------------------------------------------------------------------------

TEST(RegionMinerTest, FindsAllLargeRegions) {
  Dataset data = GridDataset({{{40, 40}, {10, 10}},
                              {{25, 25}, {5, 5}},
                              {{0, 0}, {30, 30}}});
  std::vector<MinedRegion> regions = MineFrequentRegions(data, 30);
  // Leaf regions with >= 30 rows: (a0,b0)=80, (a1,b1)... wait (a1,b0)=50,
  // (a2,b1)=60; plus all level-1 regions with >= 30 rows.
  std::set<std::string> names;
  for (const MinedRegion& region : regions) {
    names.insert(region.pattern.ToString(data.schema()));
    // Mined support equals the actual region size.
    int64_t actual = 0;
    for (int r = 0; r < data.NumRows(); ++r) {
      actual += region.pattern.Matches(data, r);
    }
    EXPECT_EQ(region.size, actual);
  }
  EXPECT_TRUE(names.count("(a=a0, b=b0)"));
  EXPECT_TRUE(names.count("(a=a1, b=b0)"));
  EXPECT_TRUE(names.count("(a=a2, b=b1)"));
  EXPECT_FALSE(names.count("(a=a1, b=b1)"));  // only 10 rows
  EXPECT_TRUE(names.count("(a=a0)"));
  EXPECT_TRUE(names.count("(b=b1)"));
}

TEST(RegionMinerTest, MatchesLatticeEnumeration) {
  Dataset data = MakeCompas(2000, 77);
  const int64_t min_size = 30;
  std::vector<MinedRegion> mined = MineFrequentRegions(data, min_size);

  // Oracle: the hierarchy's node counts.
  Hierarchy hierarchy(data);
  std::set<std::string> expected;
  for (uint32_t mask : hierarchy.BottomUpMasks()) {
    for (const auto& [key, counts] : hierarchy.NodeCounts(mask)) {
      if (counts.Total() >= min_size) {
        expected.insert(
            hierarchy.counter().PatternFor(key, mask).ToString(
                data.schema()));
      }
    }
  }
  std::set<std::string> actual;
  for (const MinedRegion& region : mined) {
    actual.insert(region.pattern.ToString(data.schema()));
  }
  EXPECT_EQ(actual, expected);
}

class MinerIbsEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MinerIbsEquivalenceTest, IdentifyIbsWithMinerMatchesLattice) {
  Dataset data = MakeCompas(1500, 500 + GetParam());
  IbsParams params;
  params.imbalance_threshold = 0.15;
  std::vector<BiasedRegion> lattice = IdentifyIbs(data, params).value();
  std::vector<BiasedRegion> mined = IdentifyIbsWithMiner(data, params);
  ASSERT_EQ(lattice.size(), mined.size()) << "seed " << GetParam();
  for (size_t i = 0; i < lattice.size(); ++i) {
    EXPECT_EQ(lattice[i].pattern, mined[i].pattern);
    EXPECT_EQ(lattice[i].counts, mined[i].counts);
    EXPECT_EQ(lattice[i].neighbor_counts, mined[i].neighbor_counts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerIbsEquivalenceTest,
                         ::testing::Range(0, 5));

TEST(MinerIbsTest, RespectsScopes) {
  Dataset data = MakeCompas(3000, 9);
  IbsParams params;
  params.imbalance_threshold = 0.1;
  params.scope = IbsScope::kLeaf;
  for (const BiasedRegion& region : IdentifyIbsWithMiner(data, params)) {
    EXPECT_EQ(region.pattern.NumDeterministic(), 3);
  }
  params.scope = IbsScope::kTop;
  for (const BiasedRegion& region : IdentifyIbsWithMiner(data, params)) {
    EXPECT_EQ(region.pattern.NumDeterministic(), 1);
  }
}

}  // namespace
}  // namespace remedy
