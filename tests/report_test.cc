#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "fairness/report.h"
#include "ml/model_factory.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::GridDataset;

// Planted bias grid: (a0, b0) is heavily positive-skewed. The feature
// column is deliberately uninformative (constant) so classifiers fall back
// on region majorities — the mechanism behind Hypothesis 1.
Dataset Biased() {
  Dataset data(remedy::testing::SmallSchema());
  auto cell = [&](int a, int b, int positives, int negatives) {
    AddRows(data, positives, a, b, /*f=*/0, 1);
    AddRows(data, negatives, a, b, /*f=*/0, 0);
  };
  cell(0, 0, 240, 60);  // positive-skewed pocket
  cell(0, 1, 50, 70);   // everything else leans slightly negative
  cell(1, 0, 50, 70);
  cell(1, 1, 50, 70);
  cell(2, 0, 50, 70);
  cell(2, 1, 50, 70);
  return data;
}

struct Fixture {
  Dataset train;
  Dataset test;
  std::vector<int> predictions;
};

Fixture MakeFixture() {
  Rng rng(5);
  Dataset data = Biased();
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(train);
  return {train, test, model->PredictAll(test)};
}

TEST(AuditReportTest, ProducesSectionsPerStatistic) {
  Fixture fixture = MakeFixture();
  AuditOptions options;
  options.statistics = {Statistic::kFpr, Statistic::kFnr,
                        Statistic::kStatisticalParity};
  AuditReport report =
      RunAudit(fixture.train, fixture.test, fixture.predictions, options);
  ASSERT_EQ(report.sections.size(), 3u);
  EXPECT_EQ(report.sections[0].statistic, Statistic::kFpr);
  EXPECT_EQ(report.sections[2].statistic, Statistic::kStatisticalParity);
  EXPECT_EQ(report.test_rows, fixture.test.NumRows());
  EXPECT_GT(report.accuracy, 0.5);
  EXPECT_GT(report.ibs_size, 0u);
}

TEST(AuditReportTest, UnfairSubgroupsAlignWithIbs) {
  Fixture fixture = MakeFixture();
  AuditReport report =
      RunAudit(fixture.train, fixture.test, fixture.predictions);
  bool any_unfair = false;
  for (const auto& section : report.sections) {
    any_unfair |= !section.unfair.empty();
    ASSERT_EQ(section.unfair.size(), section.aligned_with_ibs.size());
  }
  EXPECT_TRUE(any_unfair);
  EXPECT_GT(report.AlignmentFraction(), 0.5);
}

TEST(AuditReportTest, MaxReportedSubgroupsCaps) {
  Fixture fixture = MakeFixture();
  AuditOptions options;
  options.max_reported_subgroups = 1;
  options.discrimination_threshold = 0.01;
  AuditReport report =
      RunAudit(fixture.train, fixture.test, fixture.predictions, options);
  for (const auto& section : report.sections) {
    EXPECT_LE(section.unfair.size(), 1u);
  }
}

TEST(AuditReportTest, AlignmentFractionIsOneWithoutUnfairness) {
  // Balanced data, perfect predictions: nothing unfair.
  Dataset data = GridDataset({{{60, 60}, {60, 60}},
                              {{60, 60}, {60, 60}},
                              {{60, 60}, {60, 60}}});
  Rng rng(6);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  std::vector<int> predictions(test.NumRows());
  for (int r = 0; r < test.NumRows(); ++r) predictions[r] = test.Label(r);
  AuditReport report = RunAudit(train, test, predictions);
  EXPECT_DOUBLE_EQ(report.AlignmentFraction(), 1.0);
  for (const auto& section : report.sections) {
    EXPECT_TRUE(section.unfair.empty());
    EXPECT_DOUBLE_EQ(section.fairness_index, 0.0);
  }
}

TEST(AuditReportTest, PrintsReadableReport) {
  Fixture fixture = MakeFixture();
  AuditReport report =
      RunAudit(fixture.train, fixture.test, fixture.predictions);
  std::ostringstream out;
  PrintAuditReport(report, fixture.test.schema(), out);
  std::string text = out.str();
  EXPECT_NE(text.find("Fairness audit"), std::string::npos);
  EXPECT_NE(text.find("[FPR]"), std::string::npos);
  EXPECT_NE(text.find("IBS alignment"), std::string::npos);
}

}  // namespace
}  // namespace remedy
