#include <gtest/gtest.h>

#include <cmath>

#include "fairness/significance.h"

namespace remedy {
namespace {

TEST(IncompleteBetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(IncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(2, 2) = x^2 (3 - 2x).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(IncompleteBeta(2.0, 2.0, x), x * x * (3 - 2 * x), 1e-10);
  }
  // I_x(1, b) = 1 - (1 - x)^b.
  EXPECT_NEAR(IncompleteBeta(1.0, 4.0, 0.3), 1 - std::pow(0.7, 4), 1e-10);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(IncompleteBeta(3.0, 5.0, 0.4),
              1.0 - IncompleteBeta(5.0, 3.0, 0.6), 1e-10);
}

TEST(StudentTTest, ReferencePValues) {
  // R: 2 * pt(-2.0, df = 10) = 0.07338803
  EXPECT_NEAR(StudentTTwoSidedPValue(2.0, 10.0), 0.0733880, 1e-6);
  // R: 2 * pt(-1.0, df = 30) = 0.3253086
  EXPECT_NEAR(StudentTTwoSidedPValue(1.0, 30.0), 0.3253086, 1e-6);
  // Large t is overwhelmingly significant.
  EXPECT_LT(StudentTTwoSidedPValue(10.0, 50.0), 1e-10);
  // t = 0 is perfectly insignificant.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10.0), 1.0, 1e-12);
}

TEST(StudentTTest, SymmetricInT) {
  EXPECT_DOUBLE_EQ(StudentTTwoSidedPValue(2.5, 12.0),
                   StudentTTwoSidedPValue(-2.5, 12.0));
}

TEST(WelchTTest, EqualSamplesAreInsignificant) {
  TTestResult result = WelchTTest(0.5, 0.25, 100, 0.5, 0.25, 100);
  EXPECT_NEAR(result.t, 0.0, 1e-12);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(WelchTTest, ClearlyDifferentMeansAreSignificant) {
  TTestResult result = WelchTTest(0.9, 0.09, 200, 0.1, 0.09, 200);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(std::fabs(result.t), 5.0);
}

TEST(WelchTTest, ReferenceValue) {
  // Means 5 vs 4, sample variances 2 vs 3, sizes 30 vs 40:
  //   t  = 1 / sqrt(2/30 + 3/40)           = 2.65684
  //   df = se^2 / (se1^2/29 + se2^2/39)    = 67.4632
  //   p  = 2 * P(T_df > t)                 = 0.0098365
  TTestResult result = WelchTTest(5.0, 2.0, 30, 4.0, 3.0, 40);
  EXPECT_NEAR(result.t, 2.65684, 1e-4);
  EXPECT_NEAR(result.degrees_of_freedom, 67.4632, 1e-3);
  EXPECT_NEAR(result.p_value, 0.0098365, 1e-6);
}

TEST(WelchTTest, TinySamplesAreNeverSignificant) {
  EXPECT_DOUBLE_EQ(WelchTTest(1.0, 0.0, 1, 0.0, 0.0, 100).p_value, 1.0);
  EXPECT_DOUBLE_EQ(WelchTTest(1.0, 0.0, 0, 0.0, 0.25, 100).p_value, 1.0);
}

TEST(WelchTTest, DegenerateVariances) {
  // Two constant samples with the same mean: not significant.
  EXPECT_DOUBLE_EQ(WelchTTest(0.3, 0.0, 50, 0.3, 0.0, 50).p_value, 1.0);
  // Two constant samples with different means: trivially significant.
  EXPECT_DOUBLE_EQ(WelchTTest(0.0, 0.0, 50, 1.0, 0.0, 50).p_value, 0.0);
}

TEST(WelchTTestBernoulli, MatchesManualComputation) {
  // 30/100 vs 10/100 successes.
  TTestResult bernoulli = WelchTTestBernoulli(30, 100, 10, 100);
  double p1 = 0.3, p2 = 0.1;
  double v1 = p1 * (1 - p1) * 100 / 99.0, v2 = p2 * (1 - p2) * 100 / 99.0;
  TTestResult manual = WelchTTest(p1, v1, 100, p2, v2, 100);
  EXPECT_DOUBLE_EQ(bernoulli.t, manual.t);
  EXPECT_DOUBLE_EQ(bernoulli.p_value, manual.p_value);
  EXPECT_LT(bernoulli.p_value, 0.01);
}

TEST(WelchTTestBernoulli, SameRatesInsignificant) {
  EXPECT_GT(WelchTTestBernoulli(20, 100, 200, 1000).p_value, 0.9);
}

TEST(WelchTTestBernoulli, ZeroSuccessesBothSides) {
  // Constant all-failure samples: equal means, never significant.
  EXPECT_DOUBLE_EQ(WelchTTestBernoulli(0, 50, 0, 500).p_value, 1.0);
  // One side all-failure, other side all-success: trivially significant.
  EXPECT_DOUBLE_EQ(WelchTTestBernoulli(0, 50, 500, 500).p_value, 0.0);
}

TEST(WelchTTestBernoulli, MoreEvidenceIsMoreSignificant) {
  // Same rates (0.3 vs 0.15), growing sample sizes: p must shrink.
  double previous = 1.0;
  for (int n : {40, 100, 400, 1600}) {
    double p = WelchTTestBernoulli(3 * n / 10, n, 3 * n / 20, n).p_value;
    EXPECT_LT(p, previous + 1e-12) << n;
    previous = p;
  }
  EXPECT_LT(previous, 0.001);
}

}  // namespace
}  // namespace remedy
