// Online remedy through the daemon (docs/REMEDY.md): SubmitRemedy plans
// against a pinned epoch and commits through the same WAL group-commit path
// as ingest. The suite pins the headline contracts:
//
//   parity     the post-remedy epoch's leaf census is digest-identical to
//              batch-rebuilding the remedy over the canonical
//              materialization of the pinned counts;
//   staleness  a plan pinned behind a later ingest commit is rejected
//              (kResourceExhausted), never blindly applied;
//   autonomy   the monitor-triggered auto-remedy loop commits a
//              deterministic, replayable sequence of plans and quiesces;
//   crash      a kill at ANY byte of a remedy commit recovers to the
//              pre-remedy or post-remedy digest — never between.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/hierarchy.h"
#include "core/remedy_backend.h"
#include "serve/daemon.h"
#include "test_util.h"

namespace remedy {
namespace {

using remedy::testing::SmallSchema;

std::string TempPath(const std::string& name) {
  // Keyed by pid so the plain/TSan/ASan twins never collide when ctest
  // schedules the same case from all three binaries concurrently.
  return ::testing::TempDir() + name + "_" + std::to_string(::getpid());
}

std::string FreshDir(const std::string& name) {
  static int counter = 0;
  const std::string dir =
      TempPath("remedy_" + name + "_" + std::to_string(counter++));
  std::remove((dir + "/" + ServeDaemon::kWalFileName).c_str());
  std::remove((dir + "/" + ServeDaemon::kCheckpointFileName).c_str());
  ::rmdir(dir.c_str());
  return dir;
}

std::vector<uint8_t> ReadBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (size > 0) ASSERT_EQ(std::fwrite(data, 1, size, f), size);
  std::fclose(f);
}

int64_t FileSize(const std::string& path) {
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) return -1;
  return static_cast<int64_t>(info.st_size);
}

// SmallSchema leaf keys: a (3 values) then b (2 values), key = a * 2 + b.
Hierarchy::LeafDelta Delta(int a, int b, int64_t dp, int64_t dn) {
  return {static_cast<uint64_t>(a * 2 + b), dp, dn};
}

// A skewed census: strong per-cell class imbalance so the epoch audit finds
// a non-empty IBS at the thresholds below.
std::vector<Hierarchy::LeafDelta> SkewedDeltas() {
  return {Delta(0, 0, 30, 2),  Delta(0, 1, 4, 28), Delta(1, 0, 16, 16),
          Delta(1, 1, 16, 16), Delta(2, 0, 2, 30), Delta(2, 1, 28, 4)};
}

ServeOptions RemedyOptions(const std::string& dir) {
  ServeOptions options;
  options.state_dir = dir;
  options.ibs.min_region_size = 5;
  options.ibs.imbalance_threshold = 0.2;
  options.enable_remedy = true;
  options.remedy.technique = RemedyTechnique::kMassaging;
  options.remedy.seed = 23;
  // Keep the remedy's own identification aligned with the monitor's (Start
  // copies options.ibs over options.remedy.ibs; mirror that for oracles).
  options.remedy.ibs = options.ibs;
  return options;
}

uint64_t SnapshotLeafDigest(const ServeDaemon& daemon) {
  std::shared_ptr<const EpochSnapshot> snapshot = daemon.Snapshot();
  EXPECT_NE(snapshot->leaf_counts, nullptr);
  return LeafCountsDigest(*snapshot->leaf_counts);
}

// Applies a delta plan to a copy of `base` (the parity oracle's left side).
NodeTable Applied(const NodeTable& base,
                  const std::vector<Hierarchy::LeafDelta>& deltas) {
  NodeTable out = base;
  for (const Hierarchy::LeafDelta& delta : deltas) {
    out.UpsertDelta(delta.leaf_key, delta.delta_positives,
                    delta.delta_negatives);
  }
  return out;
}

TEST(ServeRemedyTest, CommitMatchesBatchRebuildOnTheMaterializedCut) {
  const DataSchema schema = SmallSchema();
  auto daemon =
      ServeDaemon::Start(schema, RemedyOptions(FreshDir("parity")));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  ASSERT_TRUE(daemon.value()->Submit(SkewedDeltas()).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());

  std::shared_ptr<const EpochSnapshot> pinned = daemon.value()->Snapshot();
  ASSERT_NE(pinned->leaf_counts, nullptr);
  const NodeTable pre_counts = *pinned->leaf_counts;

  RemedyParams params = RemedyOptions("unused").remedy;
  StatusOr<RemedyCommitResult> result =
      daemon.value()->SubmitRemedy(params);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result.value().committed) << "skewed census planned nothing";
  EXPECT_EQ(result.value().planned_epoch, pinned->epoch);
  EXPECT_GT(result.value().applied_epoch, pinned->epoch);
  EXPECT_GT(result.value().deltas, 0u);
  EXPECT_EQ(daemon.value()->remedy_commits(), 1);

  // The remedy is visible at the new epoch and nowhere earlier.
  std::shared_ptr<const EpochSnapshot> post = daemon.value()->Snapshot();
  EXPECT_EQ(post->epoch, result.value().applied_epoch);

  // Golden-output parity: the daemon's post-remedy census must equal the
  // batch rebuild engine run over the canonical materialization of the
  // pinned counts — byte-identical, by FNV-1a digest.
  Dataset materialized = MaterializeLeafCounts(schema, pre_counts).value();
  RemedySource source;
  source.dataset = &materialized;
  StatusOr<Dataset> oracle =
      RemedyBackend::Create(RemedyBackendKind::kRebuild)
          ->Remedy(source, params);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_EQ(LeafCountsDigest(*post->leaf_counts),
            LeafCountsDigest(LeafCountsOf(oracle.value())))
      << "streaming commit diverged from the batch rebuild oracle";
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeRemedyTest, RequiresRemedyEnabledOptions) {
  const DataSchema schema = SmallSchema();
  ServeOptions options = RemedyOptions(FreshDir("disabled"));
  options.enable_remedy = false;
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok());
  // No leaf census rides the snapshots, and SubmitRemedy refuses.
  EXPECT_EQ(daemon.value()->Snapshot()->leaf_counts, nullptr);
  EXPECT_EQ(daemon.value()->SubmitRemedy(RemedyParams()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_NE(daemon.value()->HealthJson().find("\"remedy_backend\":\"disabled\""),
            std::string::npos);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeRemedyTest, PlanPinnedBehindIngestIsRejectedStale) {
  const DataSchema schema = SmallSchema();
  auto daemon = ServeDaemon::Start(schema, RemedyOptions(FreshDir("stale")));
  ASSERT_TRUE(daemon.ok());
  ASSERT_TRUE(daemon.value()->Submit(SkewedDeltas()).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  std::shared_ptr<const EpochSnapshot> old_cut = daemon.value()->Snapshot();

  // Ingest advances the committed sequence past the pin.
  ASSERT_TRUE(daemon.value()->Submit({Delta(1, 0, 3, 0)}).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  const uint64_t digest_before = SnapshotLeafDigest(*daemon.value());

  RemedyParams params = RemedyOptions("unused").remedy;
  StatusOr<RemedyCommitResult> result =
      daemon.value()->SubmitRemedy(params, old_cut);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("stale"), std::string::npos)
      << result.status();
  // The stale plan must not have leaked into the lattice.
  ASSERT_TRUE(daemon.value()->Flush().ok());
  EXPECT_EQ(SnapshotLeafDigest(*daemon.value()), digest_before);
  // Re-planning against the fresh cut succeeds — the documented retry.
  StatusOr<RemedyCommitResult> retried = daemon.value()->SubmitRemedy(params);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_TRUE(retried.value().committed);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeRemedyTest, AutoRemedyCommitsAReplayableSequenceAndQuiesces) {
  const DataSchema schema = SmallSchema();
  ServeOptions options = RemedyOptions(FreshDir("auto"));
  options.auto_remedy = true;
  options.auto_remedy_max_rounds = 8;
  auto daemon = ServeDaemon::Start(schema, options);
  ASSERT_TRUE(daemon.ok()) << daemon.status();

  std::shared_ptr<const EpochSnapshot> start = daemon.value()->Snapshot();
  ASSERT_NE(start->leaf_counts, nullptr);

  ASSERT_TRUE(daemon.value()->Submit(SkewedDeltas()).ok());
  ASSERT_TRUE(daemon.value()->Flush().ok());
  // One flushed ingest epoch: its census is the auto loop's starting cut.
  // (Capture before quiescing — the loop may already be committing.)
  NodeTable cut = Applied(*start->leaf_counts, SkewedDeltas());

  daemon.value()->WaitRemedyIdle();
  ASSERT_TRUE(daemon.value()->Flush().ok());
  const int64_t commits = daemon.value()->remedy_commits();
  ASSERT_GE(commits, 1) << "the monitor never triggered a remedy round";
  ASSERT_LE(commits, options.auto_remedy_max_rounds);

  // Replay the committed sequence offline: each round plans with the same
  // backend/params against the previous round's census. The daemon's final
  // census must match the replay digest-exactly, and every replayed round
  // must have had work to do (the daemon never commits an empty plan).
  RemedyParams params = options.remedy;
  auto backend = RemedyBackend::Create(options.remedy_backend);
  for (int64_t round = 0; round < commits; ++round) {
    RemedySource source;
    source.schema = &schema;
    source.leaf_counts = &cut;
    StatusOr<RemedyDeltaPlan> plan = backend->PlanDeltas(source, params);
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_FALSE(plan.value().deltas.empty())
        << "round " << round << " replayed empty; the daemon committed "
        << commits << " rounds";
    cut = Applied(cut, plan.value().deltas);
  }
  EXPECT_EQ(SnapshotLeafDigest(*daemon.value()), LeafCountsDigest(cut))
      << "auto-remedy diverged from its offline replay";

  // Quiesced means quiesced: no further commits sneak in.
  daemon.value()->WaitRemedyIdle();
  EXPECT_EQ(daemon.value()->remedy_commits(), commits);
  const std::string health = daemon.value()->HealthJson();
  EXPECT_NE(health.find("\"auto_remedy\":true"), std::string::npos);
  EXPECT_NE(health.find("\"remedy_backend\":\"streaming\""),
            std::string::npos);
  EXPECT_NE(health.find("\"counting_backend\":\"scalar\""),
            std::string::npos);
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

TEST(ServeRemedyTest, RemedySurvivesRestartLikeAnyCommittedBatch) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("durable");
  uint64_t post_digest = 0;
  {
    auto daemon = ServeDaemon::Start(schema, RemedyOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->Submit(SkewedDeltas()).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    StatusOr<RemedyCommitResult> result =
        daemon.value()->SubmitRemedy(RemedyOptions("unused").remedy);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result.value().committed);
    post_digest = daemon.value()->Snapshot()->counts_digest;
    // Kill: the failing shutdown checkpoint leaves the WAL for replay.
    FaultInjector injector;
    injector.FailAlways("wal/fsync");
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  auto daemon = ServeDaemon::Start(schema, RemedyOptions(dir));
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  EXPECT_EQ(daemon.value()->Snapshot()->counts_digest, post_digest)
      << "a WAL-committed remedy failed to replay";
  EXPECT_TRUE(daemon.value()->Stop().ok());
}

// The chaos half of the headline claim: simulate a kill at EVERY byte
// offset of the remedy's WAL record. Recovery must land on the pre-remedy
// digest (record torn away) or the post-remedy digest (record complete) —
// never on anything in between.
TEST(ServeRemedyTest, KillMidRemedyCommitRecoversToPreOrPostNeverBetween) {
  const DataSchema schema = SmallSchema();
  const std::string dir = FreshDir("chaos");
  const std::string wal_path =
      dir + "/" + std::string(ServeDaemon::kWalFileName);
  const std::string checkpoint_path =
      dir + "/" + std::string(ServeDaemon::kCheckpointFileName);

  uint64_t pre_digest = 0, post_digest = 0;
  int64_t record_begin = 0, record_end = 0;
  std::vector<uint8_t> wal_bytes;
  {
    auto daemon = ServeDaemon::Start(schema, RemedyOptions(dir));
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE(daemon.value()->Submit(SkewedDeltas()).ok());
    ASSERT_TRUE(daemon.value()->Flush().ok());
    pre_digest = daemon.value()->Snapshot()->counts_digest;
    record_begin = FileSize(wal_path);
    ASSERT_GT(record_begin, 0);

    StatusOr<RemedyCommitResult> result =
        daemon.value()->SubmitRemedy(RemedyOptions("unused").remedy);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result.value().committed);
    post_digest = daemon.value()->Snapshot()->counts_digest;
    record_end = FileSize(wal_path);
    ASSERT_GT(record_end, record_begin);
    wal_bytes = ReadBytes(wal_path);
    ASSERT_EQ(static_cast<int64_t>(wal_bytes.size()), record_end);
    // Kill the daemon (failed shutdown checkpoint leaves the WAL intact).
    FaultInjector injector;
    injector.FailAlways("wal/fsync");
    EXPECT_FALSE(daemon.value()->Stop().ok());
  }
  ASSERT_NE(pre_digest, post_digest) << "the remedy changed nothing";

#ifdef REMEDY_TSAN_BUILD
  const int64_t stride = 7;  // same sweep shape, ~10x cheaper under TSan
#else
  const int64_t stride = 1;
#endif
  std::vector<int64_t> cuts;
  for (int64_t cut = record_begin; cut < record_end; cut += stride) {
    cuts.push_back(cut);
  }
  cuts.push_back(record_end);
  for (int64_t cut : cuts) {
    std::remove(checkpoint_path.c_str());
    WriteBytes(wal_path, wal_bytes.data(), static_cast<size_t>(cut));
    auto daemon = ServeDaemon::Start(schema, RemedyOptions(dir));
    ASSERT_TRUE(daemon.ok()) << "cut at " << cut << ": " << daemon.status();
    const uint64_t digest = daemon.value()->Snapshot()->counts_digest;
    if (cut == record_end) {
      EXPECT_EQ(digest, post_digest) << "complete record lost at " << cut;
    } else {
      EXPECT_EQ(digest, pre_digest)
          << "torn remedy record partially applied at cut " << cut;
    }
    EXPECT_TRUE(daemon.value()->Stop().ok());
  }
}

}  // namespace
}  // namespace remedy
