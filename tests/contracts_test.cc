// Contract (death) tests: the library aborts with a diagnostic on
// programmer errors instead of corrupting state. These pin the REMEDY_CHECK
// preconditions of the public API.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/table_printer.h"
#include "core/region_counter.h"
#include "core/remedy.h"
#include "data/dataset.h"
#include "data/discretize.h"
#include "datagen/adult.h"
#include "ml/cost_sensitive.h"
#include "ml/model_factory.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::SmallSchema;

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, DatasetRejectsBadLabel) {
  Dataset data(SmallSchema());
  EXPECT_DEATH(data.AddRow({0, 0, 0}, 2), "label must be binary");
}

TEST(ContractsDeathTest, DatasetRejectsWrongWidth) {
  Dataset data(SmallSchema());
  EXPECT_DEATH(data.AddRow({0, 0}, 1), "row width");
}

TEST(ContractsDeathTest, DatasetRejectsNegativeWeight) {
  Dataset data(SmallSchema());
  data.AddRow({0, 0, 0}, 1);
  EXPECT_DEATH(data.SetWeight(0, -1.0), "weight");
}

TEST(ContractsDeathTest, SelectRejectsOutOfRangeRow) {
  Dataset data(SmallSchema());
  data.AddRow({0, 0, 0}, 1);
  EXPECT_DEATH(data.Select({5}), "");
}

TEST(ContractsDeathTest, SchemaRejectsDuplicateProtected) {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("a", {"x", "y"}),
  };
  EXPECT_DEATH(DataSchema(attributes, {0, 0}), "duplicate");
}

TEST(ContractsDeathTest, SchemaRejectsUnknownProtectedName) {
  DataSchema schema = SmallSchema();
  EXPECT_DEATH(schema.WithProtected({"no_such_attribute"}),
               "unknown attribute");
}

TEST(ContractsDeathTest, RngRejectsNonPositiveBound) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(0), "positive bound");
}

TEST(ContractsDeathTest, RngRejectsZeroWeights) {
  Rng rng(1);
  EXPECT_DEATH(rng.Categorical({0.0, 0.0}), "sum to zero");
}

TEST(ContractsDeathTest, BucketizerRejectsUnorderedCuts) {
  EXPECT_DEATH(Bucketizer("v", {3.0, 1.0}), "strictly increasing");
}

TEST(ContractsDeathTest, PredictBeforeFitDies) {
  Dataset data(SmallSchema());
  data.AddRow({0, 0, 0}, 1);
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  EXPECT_DEATH(model->PredictProba(data, 0), "Fit has not been called");
}

TEST(ContractsDeathTest, CostMatrixMustBePositive) {
  CostMatrix costs;
  costs.false_positive_cost = 0.0;
  EXPECT_DEATH(CostSensitiveClassifier(
                   MakeClassifier(ModelType::kNaiveBayes), costs),
               "");
}

TEST(ContractsDeathTest, RegionCounterNeedsProtectedAttributes) {
  std::vector<AttributeSchema> attributes = {
      AttributeSchema("a", {"x", "y"}),
  };
  DataSchema schema(attributes, {});
  EXPECT_DEATH(RegionCounter counter(schema), "protected");
}

TEST(ContractsDeathTest, TrainTestSplitRejectsDegenerateFraction) {
  Dataset data(SmallSchema());
  for (int i = 0; i < 10; ++i) data.AddRow({0, 0, 0}, i % 2);
  Rng rng(1);
  EXPECT_DEATH(data.TrainTestSplit(0.0, rng), "");
  EXPECT_DEATH(data.TrainTestSplit(1.0, rng), "");
}

// An empty dataset is now a recoverable boundary error, not an abort: the
// entry point reports kInvalidArgument and value() is what would die.
TEST(ContractsDeathTest, RemedyRejectsEmptyDataset) {
  Dataset data(SmallSchema());
  RemedyParams params;
  StatusOr<Dataset> remedied = RemedyDataset(data, params);
  ASSERT_FALSE(remedied.ok());
  EXPECT_EQ(remedied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_DEATH(RemedyDataset(data, params).value(), "INVALID_ARGUMENT");
}

TEST(ContractsDeathTest, TablePrinterRejectsRaggedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one-cell"}), "cells");
}

TEST(ContractsDeathTest, ScalabilityProtectedRejectsBadCount) {
  EXPECT_DEATH(AdultScalabilityProtected(9), "");
  EXPECT_DEATH(AdultScalabilityProtected(0), "");
}

TEST(ContractsDeathTest, AttributeRejectsEmptyDomain) {
  EXPECT_DEATH(AttributeSchema("empty", {}), "no values");
}

}  // namespace
}  // namespace remedy
