#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "core/ibs_identify.h"
#include "data/profile.h"
#include "datagen/generator.h"
#include "datagen/random_spec.h"
#include "mining/region_miner.h"
#include "test_util.h"

namespace remedy {
namespace {

using ::remedy::testing::AddRows;
using ::remedy::testing::SmallSchema;

// ---------------------------------------------------------------------------
// Dataset profiling.
// ---------------------------------------------------------------------------

TEST(CramersVTest, IndependentAttributeScoresNearZero) {
  Rng rng(1);
  Dataset data(SmallSchema());
  for (int i = 0; i < 4000; ++i) {
    data.AddRow({rng.UniformInt(3), rng.UniformInt(2), rng.UniformInt(2)},
                rng.UniformInt(2));
  }
  EXPECT_LT(CramersV(data, 0), 0.05);
  EXPECT_LT(CramersV(data, 2), 0.05);
}

TEST(CramersVTest, PerfectPredictorScoresOne) {
  Dataset data(SmallSchema());
  AddRows(data, 100, 0, 0, 1, 1);  // f = 1 <=> y = 1
  AddRows(data, 100, 1, 1, 0, 0);
  EXPECT_NEAR(CramersV(data, 2), 1.0, 1e-9);
}

TEST(CramersVTest, ConstantLabelOrAttributeIsZero) {
  Dataset data(SmallSchema());
  AddRows(data, 50, 0, 0, 0, 1);
  AddRows(data, 50, 1, 0, 1, 1);  // label constant 1
  EXPECT_DOUBLE_EQ(CramersV(data, 0), 0.0);
  Dataset mixed(SmallSchema());
  AddRows(mixed, 50, 0, 0, 0, 1);
  AddRows(mixed, 50, 0, 0, 0, 0);  // attribute b constant
  EXPECT_DOUBLE_EQ(CramersV(mixed, 1), 0.0);
}

TEST(ProfileTest, CountsAndRates) {
  Dataset data(SmallSchema());
  AddRows(data, 30, 0, 0, 1, 1);
  AddRows(data, 10, 0, 1, 0, 0);
  AddRows(data, 60, 2, 1, 0, 0);
  DatasetProfile profile = ProfileDataset(data);
  EXPECT_EQ(profile.rows, 100);
  EXPECT_DOUBLE_EQ(profile.positive_rate, 0.3);
  ASSERT_EQ(profile.attributes.size(), 3u);
  const AttributeProfile& a = profile.attributes[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_TRUE(a.is_protected);
  EXPECT_EQ(a.values[0].count, 40);  // a0
  EXPECT_DOUBLE_EQ(a.values[0].fraction, 0.4);
  EXPECT_DOUBLE_EQ(a.values[0].positive_rate, 0.75);  // 30 of 40
  EXPECT_EQ(a.values[1].count, 0);                    // a1 unused
  EXPECT_DOUBLE_EQ(a.values[2].positive_rate, 0.0);   // a2 all negative
  EXPECT_FALSE(profile.attributes[2].is_protected);
}

TEST(ProfileTest, PrintsReadableSummary) {
  // Only f predicts the label; a and b are balanced.
  Dataset data(SmallSchema());
  AddRows(data, 25, 0, 0, 1, 1);
  AddRows(data, 25, 1, 1, 1, 1);
  AddRows(data, 25, 0, 1, 0, 0);
  AddRows(data, 25, 1, 0, 0, 0);
  std::ostringstream out;
  PrintDatasetProfile(ProfileDataset(data), out);
  std::string text = out.str();
  EXPECT_NE(text.find("100 rows"), std::string::npos);
  EXPECT_NE(text.find("Cramer's V"), std::string::npos);
  // The perfect predictor f sorts first.
  EXPECT_LT(text.find("| f"), text.find("| b"));
}

// ---------------------------------------------------------------------------
// Random-spec fuzzing: core invariants across random schemas.
// ---------------------------------------------------------------------------

class RandomSpecFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSpecFuzzTest, GeneratesValidDatasets) {
  Rng rng(GetParam());
  SyntheticSpec spec = RandomSpec(rng);
  Dataset data = GenerateSynthetic(spec, GetParam() + 10);
  EXPECT_EQ(data.NumRows(), spec.num_rows);
  EXPECT_EQ(data.NumColumns(), static_cast<int>(spec.attributes.size()));
  EXPECT_GE(data.schema().NumProtected(), 1);
  // Profiling never chokes on arbitrary shapes.
  DatasetProfile profile = ProfileDataset(data);
  for (const AttributeProfile& attribute : profile.attributes) {
    EXPECT_GE(attribute.cramers_v, 0.0);
    EXPECT_LE(attribute.cramers_v, 1.0 + 1e-9);
  }
}

TEST_P(RandomSpecFuzzTest, NaiveAndOptimizedIdentificationAgree) {
  Rng rng(100 + GetParam());
  SyntheticSpec spec = RandomSpec(rng);
  Dataset data = GenerateSynthetic(spec, GetParam() + 20);
  IbsParams params;
  params.imbalance_threshold = 0.2;
  params.min_region_size = 15;
  params.algorithm = IbsAlgorithm::kNaive;
  std::vector<BiasedRegion> naive = IdentifyIbs(data, params).value();
  params.algorithm = IbsAlgorithm::kOptimized;
  std::vector<BiasedRegion> optimized = IdentifyIbs(data, params).value();
  ASSERT_EQ(naive.size(), optimized.size()) << "seed " << GetParam();
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive[i].pattern, optimized[i].pattern);
    EXPECT_EQ(naive[i].neighbor_counts, optimized[i].neighbor_counts);
  }
}

TEST_P(RandomSpecFuzzTest, MinerAndLatticeIdentificationAgree) {
  Rng rng(200 + GetParam());
  SyntheticSpec spec = RandomSpec(rng);
  Dataset data = GenerateSynthetic(spec, GetParam() + 30);
  IbsParams params;
  params.imbalance_threshold = 0.25;
  params.min_region_size = 20;
  std::vector<BiasedRegion> lattice = IdentifyIbs(data, params).value();
  std::vector<BiasedRegion> mined = IdentifyIbsWithMiner(data, params);
  ASSERT_EQ(lattice.size(), mined.size()) << "seed " << GetParam();
  for (size_t i = 0; i < lattice.size(); ++i) {
    EXPECT_EQ(lattice[i].pattern, mined[i].pattern);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpecFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace remedy
