// Law School tuning: choose the imbalance threshold tau_c on a validation
// split before deploying — the workflow a practitioner would follow to pick
// the fairness/accuracy operating point — using grid-searched classifiers.

#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/law_school.h"
#include "fairness/fairness_index.h"
#include "ml/grid_search.h"
#include "ml/metrics.h"

int main() {
  using namespace remedy;

  Dataset data = MakeLawSchool();
  Rng rng(29);
  // Three-way split: remedy+fit on train, pick tau_c on validation, report
  // the final operating point on the held-out test set.
  auto [development, test] = data.TrainTestSplit(0.8, rng);
  auto [train, validation] = development.TrainTestSplit(0.75, rng);
  std::printf("LawSchool: %d train / %d validation / %d test rows\n\n",
              train.NumRows(), validation.NumRows(), test.NumRows());

  TablePrinter table({"tau_c", "val fairness idx (FPR)", "val accuracy",
                      "combined objective"});
  double best_tau = -1.0, best_objective = -1e9;
  for (double tau_c : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    RemedyParams params;
    params.ibs.imbalance_threshold = tau_c;
    params.technique = RemedyTechnique::kPreferentialSampling;
    Dataset remedied = RemedyDataset(train, params).value();

    ClassifierPtr model =
        TunedClassifier(ModelType::kDecisionTree, remedied);
    std::vector<int> predictions = model->PredictAll(validation);
    double index =
        ComputeFairnessIndex(validation, predictions, Statistic::kFpr);
    double accuracy = Accuracy(validation, predictions);
    // A simple scalarization: accuracy minus the unfairness penalty.
    double objective = accuracy - 2.0 * index;
    table.AddRow({FormatDouble(tau_c, 2), FormatDouble(index, 4),
                  FormatDouble(accuracy, 4), FormatDouble(objective, 4)});
    if (objective > best_objective) {
      best_objective = objective;
      best_tau = tau_c;
    }
  }
  table.Print(std::cout);

  // Deploy the chosen operating point.
  RemedyParams params;
  params.ibs.imbalance_threshold = best_tau;
  params.technique = RemedyTechnique::kPreferentialSampling;
  Dataset remedied = RemedyDataset(development, params).value();
  ClassifierPtr model = TunedClassifier(ModelType::kDecisionTree, remedied);
  std::vector<int> predictions = model->PredictAll(test);
  std::printf(
      "\nchosen tau_c = %.2f  =>  test fairness index (FPR) %.4f, test "
      "accuracy %.4f\n",
      best_tau, ComputeFairnessIndex(test, predictions, Statistic::kFpr),
      Accuracy(test, predictions));
  return 0;
}
