// Adult pipeline: a production-shaped fairness pre-processing pipeline —
// compare all four remedy techniques and the reweighting baseline on the
// (simulated) AdultCensus dataset, then export the remedied training set to
// CSV so it can feed any external training stack.

#include <cstdio>
#include <iostream>

#include "baselines/reweighting.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "datagen/adult.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace {

using namespace remedy;

struct Outcome {
  double index_fpr;
  double index_fnr;
  double accuracy;
};

Outcome Evaluate(const Dataset& train, const Dataset& test) {
  ClassifierPtr model = MakeClassifier(ModelType::kLogisticRegression);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  return {ComputeFairnessIndex(test, predictions, Statistic::kFpr),
          ComputeFairnessIndex(test, predictions, Statistic::kFnr),
          Accuracy(test, predictions)};
}

}  // namespace

int main() {
  Dataset data = MakeAdult();
  Rng rng(11);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  std::printf("Adult: %d train rows, %d test rows, %d protected attrs\n\n",
              train.NumRows(), test.NumRows(),
              train.schema().NumProtected());

  TablePrinter table({"treatment", "fairness idx (FPR)",
                      "fairness idx (FNR)", "accuracy", "train rows"});
  auto add_row = [&](const std::string& name, const Dataset& treated) {
    Outcome outcome = Evaluate(treated, test);
    table.AddRow({name, FormatDouble(outcome.index_fpr, 4),
                  FormatDouble(outcome.index_fnr, 4),
                  FormatDouble(outcome.accuracy, 4),
                  std::to_string(treated.NumRows())});
  };

  add_row("Original", train);

  Dataset best_for_export(train.schema());
  for (RemedyTechnique technique :
       {RemedyTechnique::kPreferentialSampling,
        RemedyTechnique::kUndersample, RemedyTechnique::kOversample,
        RemedyTechnique::kMassaging}) {
    RemedyParams params;
    params.ibs.imbalance_threshold = 0.5;  // the paper's Adult setting
    params.technique = technique;
    Dataset remedied = RemedyDataset(train, params).value();
    if (technique == RemedyTechnique::kPreferentialSampling) {
      best_for_export = remedied;
    }
    add_row("Remedy/" + TechniqueName(technique), remedied);
  }

  add_row("Reweighting baseline", ApplyReweighting(train));
  table.Print(std::cout);

  // Export the preferential-sampling result for downstream consumers.
  const std::string path = "/tmp/adult_remedied.csv";
  Status written = WriteCsvFile(path, best_for_export.ToCsv());
  if (written.ok()) {
    std::printf("\nRemedied training set exported to %s\n", path.c_str());
  } else {
    std::printf("\nCSV export failed: %s\n", written.ToString().c_str());
  }
  return 0;
}
