// COMPAS audit: recreates the paper's running example end to end on the
// simulated ProPublica dataset — Example 1 (independent groups look fair,
// intersections don't), Example 2 / Case 1 (an unfair subgroup traced to a
// biased region), and the Fig. 3-style alignment between unfair subgroups
// and the IBS, for all four model families.

#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/ibs_identify.h"
#include "datagen/compas.h"
#include "fairness/bootstrap.h"
#include "fairness/divergence.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

namespace {

using namespace remedy;

// Example-1 style view: per-attribute groups vs intersections.
void IndependentVsIntersectional(const Dataset& test,
                                 const std::vector<int>& predictions) {
  SubgroupAnalysis analysis =
      AnalyzeSubgroups(test, predictions, Statistic::kFpr);
  std::printf("Overall FPR: %.3f\n\n", analysis.overall);

  TablePrinter independent({"single-attribute group", "FPR", "divergence"});
  TablePrinter intersectional(
      {"intersectional subgroup", "FPR", "divergence", "p-value"});
  for (const SubgroupReport& report : analysis.subgroups) {
    if (report.pattern.NumDeterministic() == 1) {
      independent.AddRow({report.pattern.ToString(test.schema()),
                          FormatDouble(report.statistic, 3),
                          FormatDouble(report.divergence, 3)});
    } else if (report.divergence > 0.1 && report.p_value < 0.05) {
      intersectional.AddRow({report.pattern.ToString(test.schema()),
                             FormatDouble(report.statistic, 3),
                             FormatDouble(report.divergence, 3),
                             FormatDouble(report.p_value, 4)});
    }
  }
  std::printf("Groups defined on one protected attribute (Example 1: these "
              "look close to the overall FPR):\n");
  independent.Print(std::cout);
  std::printf("\nSignificant unfair *intersectional* subgroups hiding "
              "underneath:\n");
  intersectional.Print(std::cout);
}

// Case-1 style view: tie each unfair subgroup back to the training data.
void TraceUnfairnessToIbs(const Dataset& train, const Dataset& test) {
  IbsParams params;
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, params).value();

  std::printf("\nImplicit Biased Set of the training data (tau_c = 0.1, "
              "T = 1): %zu regions\n", ibs.size());
  TablePrinter table({"region", "|r+|", "|r-|", "ratio_r", "ratio_rn"});
  for (size_t i = 0; i < ibs.size() && i < 10; ++i) {
    table.AddRow({ibs[i].pattern.ToString(train.schema()),
                  std::to_string(ibs[i].counts.positives),
                  std::to_string(ibs[i].counts.negatives),
                  FormatDouble(ibs[i].ratio, 2),
                  FormatDouble(ibs[i].neighbor_ratio, 2)});
  }
  table.Print(std::cout);

  std::printf("\nAlignment of unfair subgroups with the IBS, per model:\n");
  TablePrinter alignment({"model", "gamma", "unfair", "aligned with IBS"});
  for (ModelType type : StandardModels()) {
    ClassifierPtr model = MakeClassifier(type);
    model->Fit(train);
    std::vector<int> predictions = model->PredictAll(test);
    for (Statistic statistic : {Statistic::kFpr, Statistic::kFnr}) {
      SubgroupAnalysis analysis =
          AnalyzeSubgroups(test, predictions, statistic, 0.05);
      std::vector<SubgroupReport> unfair = FilterUnfair(analysis, 0.1);
      int aligned = 0;
      for (const SubgroupReport& report : unfair) {
        aligned += DominatesAnyBiasedRegion(report.pattern, ibs);
      }
      alignment.AddRow({ModelName(type), StatisticName(statistic),
                        std::to_string(unfair.size()),
                        std::to_string(aligned)});
    }
  }
  alignment.Print(std::cout);
}

}  // namespace

int main() {
  Dataset data = MakeCompas();
  Rng rng(7);
  auto [train, test] = data.TrainTestSplit(0.7, rng);

  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  IndependentVsIntersectional(test, predictions);
  TraceUnfairnessToIbs(train, test);

  // Uncertainty of the dataset-level index, by bootstrap.
  BootstrapInterval interval =
      BootstrapFairnessIndex(test, predictions, Statistic::kFpr);
  std::printf(
      "\nFairness index (FPR): %.4f, 95%% bootstrap CI [%.4f, %.4f] over "
      "%d replicates.\n",
      interval.point, interval.lower, interval.upper, interval.replicates);
  return 0;
}
