// remedy_cli: command-line front end for auditing and remedying CSV
// datasets — the adoption path for users with their own data.
//
//   remedy_cli audit  <csv> --protected race,gender [--label y]
//                     [--positive 1] [--tau-c 0.1] [--tau-d 0.1] [--T 1]
//   remedy_cli plan   <csv> --protected race,gender
//                     [--technique ps|us|os|massage] [--tau-c 0.1] [--T 1]
//   remedy_cli remedy <csv> --protected race,gender --out remedied.csv
//                     [--technique ps|us|os|massage] [--tau-c 0.1] [--T 1]
//                     [--remedy-backend rebuild|incremental|streaming]
//                     [--report] [--report-json[=file]]
//   remedy_cli identify <csv> --protected race,gender [--tau-c 0.1] [--T 1]
//                     [--store-dir dir [--mmap]]
//
// `identify` prints the biased regions counting from the columnar shard
// store. `--store-dir dir` spills the encoded store to per-shard files
// under `dir` and counts memory-mapped off those files (the out-of-core
// path: peak memory stays at one in-flight shard). `--mmap` re-opens a
// store already spilled to `--store-dir` instead of re-encoding the input
// (the input is still loaded for its schema); `--mmap` alone is a usage
// error.
//
// `<csv>` is a file path, or one of the built-in generators `@adult`,
// `@compas`, `@lawschool` (optionally `@adult:10000` for a row count).
// Generator input is serialized to CSV text and re-ingested through the
// regular loader, so the run exercises — and meters — the same pipeline a
// real file would. `--protected` defaults to the generator's protected set.
//
// Shared ingestion flags:
//   --on-bad-row fail|quarantine|drop   what to do with malformed records
//                                       (default: fail)
//   --max-quarantine-frac x             circuit breaker for quarantine mode
//                                       (default: 0.05)
//
// Counting engine (any command):
//   --backend scalar|simd|sharded   engine behind the leaf group-by scan;
//                                   output is byte-identical across all
//                                   three (default: scalar)
//   --threads n                     sharded-counting workers (0 = all CPUs)
//
// Remedy write path (remedy command; docs/REMEDY.md):
//   --remedy-backend rebuild|incremental|streaming
//       which RemedyBackend rewrites the dataset (default: incremental).
//       rebuild and incremental are row-faithful and byte-identical to
//       each other; streaming plans on the canonical materialization of
//       the leaf counts (the daemon's form) and writes canonical rows.
//       An unknown name exits 64. streaming does not support --report.
//
// Observability (any command):
//   --trace-out=file.json    record tracing spans, write Chrome trace JSON
//   --metrics                print the pipeline metrics table on exit
//   --metrics-json[=file]    dump the metrics snapshot as JSON (stdout when
//                            no file is given)
//
// Flags may appear anywhere and accept both `--flag value` and
// `--flag=value`.
//
// `audit` trains a decision tree on a 70/30 split, prints the fairness
// audit (unfair subgroups + IBS alignment), and exits non-zero if any
// significant unfair subgroup was found — handy as a CI data-quality gate.
// `plan` previews the biased regions and the updates the remedy would
// apply, without writing anything.
// `remedy` rewrites the full dataset's biased regions and writes the result;
// with --report it also prints the per-region before/after audit trail.
//
// Exit codes: 0 success; 1 usage error; 2 audit gate tripped; then one code
// per error class so scripts can react to the cause — 64 invalid argument,
// 65 corrupt data (incl. the quarantine circuit breaker), 70 internal,
// 74 I/O, 75 resource exhausted.

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/trace.h"
#include "core/counting_backend.h"
#include "core/ibs_identify.h"
#include "core/pipeline_report.h"
#include "core/remedy.h"
#include "core/remedy_backend.h"
#include "data/columnar.h"
#include "data/loader.h"
#include "data/profile.h"
#include "datagen/adult.h"
#include "datagen/compas.h"
#include "datagen/law_school.h"
#include "fairness/report.h"
#include "ml/model_factory.h"

namespace {

using namespace remedy;

// sysexits-flavored mapping so callers can distinguish "your flags are
// wrong" from "your data is rotten" from "the disk hiccuped".
int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 64;
    case StatusCode::kDataCorruption:
      return 65;
    case StatusCode::kIoError:
      return 74;
    case StatusCode::kResourceExhausted:
      return 75;
    case StatusCode::kInternal:
      return 70;
  }
  return 70;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return ExitCodeFor(status.code());
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot open " + path + " for writing");
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    return IoError("short write to " + path);
  }
  return OkStatus();
}

struct CliArgs {
  std::string command;
  std::string input;
  std::string output;
  LoaderOptions loader;
  double tau_c = 0.1;
  double tau_d = 0.1;
  double distance = 1.0;
  RemedyTechnique technique = RemedyTechnique::kPreferentialSampling;
  CountingBackendKind backend = CountingBackendKind::kScalar;
  int backend_threads = 0;
  // Raw --remedy-backend value; parsed in RunRemedyCommand so an unknown
  // name exits 64 (invalid argument) rather than 1 (usage).
  std::string remedy_backend_name;
  uint64_t seed = 23;
  std::string trace_out;
  bool metrics_table = false;
  bool metrics_json = false;
  std::string metrics_json_path;  // empty with metrics_json: stdout
  bool report = false;
  bool report_json = false;
  std::string report_json_path;  // empty with report_json: stdout
  bool protected_given = false;
  std::string store_dir;  // identify: spill here, count mmap-backed
  bool mmap_existing = false;  // identify: reuse an already-spilled store
  bool valid = false;
};

// --- interrupt flushing ----------------------------------------------
// A long audit/remedy killed mid-run used to take its observability
// outputs with it: the trace JSON, the metrics dump and the quarantine
// report all happen after RunCommand returns. SIGINT/SIGTERM are blocked
// in every thread and consumed by a watcher thread instead, which flushes
// whatever has accumulated so far and exits with the conventional
// 128+signo. The pointers are published/retired around the regions where
// the underlying objects are alive.
std::atomic<const CliArgs*> g_cli_args{nullptr};
std::atomic<TraceSink*> g_trace_sink{nullptr};
std::atomic<QuarantineReport*> g_quarantine{nullptr};
std::atomic<bool> g_work_done{false};

void FlushOnInterrupt(int sig) {
  std::fprintf(stderr, "\ninterrupted (signal %d): flushing outputs\n", sig);
  const CliArgs* args = g_cli_args.load();
  if (args != nullptr) {
    TraceSink* sink = g_trace_sink.load();
    if (sink != nullptr && !args->trace_out.empty()) {
      Status written = sink->WriteChromeJson(args->trace_out);
      std::fprintf(stderr, "  trace %s: %s\n", args->trace_out.c_str(),
                   written.ok() ? "written" : written.ToString().c_str());
    }
    if (args->metrics_json) {
      if (args->metrics_json_path.empty()) {
        std::printf(
            "%s\n", MetricsToJson(MetricsRegistry::Global().Snapshot()).c_str());
      } else {
        Status written = WriteMetricsJsonFile(args->metrics_json_path);
        std::fprintf(stderr, "  metrics %s: %s\n",
                     args->metrics_json_path.c_str(),
                     written.ok() ? "written" : written.ToString().c_str());
      }
    }
  }
  QuarantineReport* quarantine = g_quarantine.load();
  if (quarantine != nullptr && quarantine->rows_quarantined > 0) {
    std::fprintf(stderr, "  %lld record(s) in quarantine at interrupt:\n",
                 static_cast<long long>(quarantine->rows_quarantined));
    for (const CsvBadRow& row : quarantine->examples) {
      std::fprintf(stderr, "    line %d: %s\n", row.line, row.reason.c_str());
    }
  }
  std::fflush(nullptr);
  std::_Exit(128 + sig);
}

// Polls for a blocked SIGINT/SIGTERM until the run finishes naturally.
void WatchForInterrupt(sigset_t signals) {
  struct timespec tick = {0, 100 * 1000 * 1000};  // 100ms
  while (!g_work_done.load()) {
    const int sig = sigtimedwait(&signals, nullptr, &tick);
    if (sig == SIGINT || sig == SIGTERM) FlushOnInterrupt(sig);
  }
}

// Publishes the quarantine report to the interrupt flusher for as long as
// the referenced object is alive.
struct ScopedQuarantineExport {
  explicit ScopedQuarantineExport(QuarantineReport* quarantine) {
    g_quarantine.store(quarantine);
  }
  ~ScopedQuarantineExport() { g_quarantine.store(nullptr); }
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  remedy_cli audit  <csv> --protected a,b[,..] [--label col]\n"
      "             [--positive v] [--tau-c x] [--tau-d x] [--T x]\n"
      "  remedy_cli plan   <csv> --protected a,b[,..] [--label col]\n"
      "             [--positive v] [--tau-c x] [--T x]\n"
      "             [--technique ps|us|os|massage]\n"
      "  remedy_cli remedy <csv> --protected a,b[,..] --out file.csv\n"
      "             [--label col] [--positive v] [--tau-c x] [--T x]\n"
      "             [--technique ps|us|os|massage] [--seed n]\n"
      "             [--remedy-backend rebuild|incremental|streaming]\n"
      "             [--report] [--report-json[=file]]\n"
      "  remedy_cli identify <csv> --protected a,b[,..] [--label col]\n"
      "             [--positive v] [--tau-c x] [--T x]\n"
      "             [--store-dir dir [--mmap]]\n"
      "  <csv>:  a file path, or @adult | @compas | @lawschool\n"
      "          (append :N for N rows, e.g. @adult:10000)\n"
      "  shared: [--on-bad-row fail|quarantine|drop]\n"
      "          [--max-quarantine-frac x]\n"
      "          [--backend scalar|simd|sharded] [--threads n]\n"
      "          [--trace-out=file.json] [--metrics]\n"
      "          [--metrics-json[=file]]\n");
}

bool ParseTechnique(const std::string& name, RemedyTechnique* technique) {
  if (name == "ps") {
    *technique = RemedyTechnique::kPreferentialSampling;
  } else if (name == "us") {
    *technique = RemedyTechnique::kUndersample;
  } else if (name == "os") {
    *technique = RemedyTechnique::kOversample;
  } else if (name == "massage") {
    *technique = RemedyTechnique::kMassaging;
  } else {
    return false;
  }
  return true;
}

bool ParseBadRowPolicy(const std::string& name, BadRowPolicy* policy) {
  if (name == "fail") {
    *policy = BadRowPolicy::kFail;
  } else if (name == "quarantine") {
    *policy = BadRowPolicy::kQuarantine;
  } else if (name == "drop") {
    *policy = BadRowPolicy::kDrop;
  } else {
    return false;
  }
  return true;
}

CliArgs ParseArgs(int argc, char** argv) {
  CliArgs args;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      positional.push_back(std::move(flag));
      continue;
    }
    // Split --flag=value; flags without '=' read the next argv slot when
    // they require a value.
    std::optional<std::string> inline_value;
    const size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    }
    auto value_of = [&]() -> std::optional<std::string> {
      if (inline_value.has_value()) return inline_value;
      if (i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    std::optional<std::string> value;
    if (flag == "--protected" && (value = value_of())) {
      args.loader.protected_attributes = Split(*value, ',');
      args.protected_given = true;
    } else if (flag == "--label" && (value = value_of())) {
      args.loader.label_column = *value;
    } else if (flag == "--positive" && (value = value_of())) {
      args.loader.positive_label = *value;
    } else if (flag == "--out" && (value = value_of())) {
      args.output = *value;
    } else if (flag == "--tau-c" && (value = value_of())) {
      args.tau_c = std::atof(value->c_str());
    } else if (flag == "--tau-d" && (value = value_of())) {
      args.tau_d = std::atof(value->c_str());
    } else if (flag == "--T" && (value = value_of())) {
      args.distance = std::atof(value->c_str());
    } else if (flag == "--seed" && (value = value_of())) {
      args.seed = static_cast<uint64_t>(std::strtoull(value->c_str(), nullptr, 10));
    } else if (flag == "--technique" && (value = value_of())) {
      if (!ParseTechnique(*value, &args.technique)) return args;
    } else if (flag == "--remedy-backend" && (value = value_of())) {
      args.remedy_backend_name = *value;
    } else if (flag == "--backend" && (value = value_of())) {
      StatusOr<CountingBackendKind> parsed = ParseCountingBackend(*value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "--backend wants scalar|simd|sharded\n");
        return args;
      }
      args.backend = parsed.value();
    } else if (flag == "--threads" && (value = value_of())) {
      args.backend_threads = std::atoi(value->c_str());
    } else if (flag == "--on-bad-row" && (value = value_of())) {
      if (!ParseBadRowPolicy(*value, &args.loader.on_bad_row)) {
        std::fprintf(stderr, "--on-bad-row wants fail|quarantine|drop\n");
        return args;
      }
    } else if (flag == "--max-quarantine-frac" && (value = value_of())) {
      args.loader.max_quarantine_fraction = std::atof(value->c_str());
    } else if (flag == "--store-dir" && (value = value_of())) {
      args.store_dir = *value;
    } else if (flag == "--mmap") {
      args.mmap_existing = true;
    } else if (flag == "--trace-out" && (value = value_of())) {
      args.trace_out = *value;
    } else if (flag == "--metrics") {
      args.metrics_table = true;
    } else if (flag == "--metrics-json") {
      args.metrics_json = true;
      // Optional value: `--metrics-json=file`, or `--metrics-json file`
      // when the next slot is not a flag; bare means stdout.
      if (inline_value.has_value()) {
        args.metrics_json_path = *inline_value;
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.metrics_json_path = argv[++i];
      }
    } else if (flag == "--report") {
      args.report = true;
    } else if (flag == "--report-json") {
      args.report_json = true;
      if (inline_value.has_value()) {
        args.report_json_path = *inline_value;
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.report_json_path = argv[++i];
      }
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return args;
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr, "expected a command and an input\n");
    return args;
  }
  args.command = positional[0];
  args.input = positional[1];
  const bool generated = !args.input.empty() && args.input[0] == '@';
  if (!args.protected_given && !generated) {
    std::fprintf(stderr, "--protected is required for file input\n");
    return args;
  }
  if (args.command == "remedy" && args.output.empty()) {
    std::fprintf(stderr, "remedy needs --out\n");
    return args;
  }
  if (args.mmap_existing && args.store_dir.empty()) {
    std::fprintf(stderr, "--mmap needs --store-dir\n");
    return args;
  }
  if (!args.store_dir.empty() && args.command != "identify") {
    std::fprintf(stderr, "--store-dir is an identify flag\n");
    return args;
  }
  if (!args.remedy_backend_name.empty() && args.command != "remedy") {
    std::fprintf(stderr, "--remedy-backend is a remedy flag\n");
    return args;
  }
  args.valid = args.command == "audit" || args.command == "plan" ||
               args.command == "remedy" || args.command == "identify";
  return args;
}

// Expands an `@name[:rows]` input: generates the named synthetic dataset,
// serializes it to CSV text, and re-parses that text — so generator runs
// exercise (and meter) the same ingestion path as file runs.
StatusOr<CsvTable> GenerateInput(const std::string& input, CliArgs* args) {
  std::string name = input.substr(1);
  int rows = 0;  // 0: the generator's Table II default
  const size_t colon = name.find(':');
  if (colon != std::string::npos) {
    rows = std::atoi(name.c_str() + colon + 1);
    if (rows <= 0) {
      return InvalidArgumentError("bad row count in generator input '" +
                                  input + "'");
    }
    name = name.substr(0, colon);
  }
  Dataset generated;
  if (name == "adult") {
    generated = rows > 0 ? MakeAdult(rows) : MakeAdult();
  } else if (name == "compas") {
    generated = rows > 0 ? MakeCompas(rows) : MakeCompas();
  } else if (name == "lawschool") {
    generated = rows > 0 ? MakeLawSchool(rows) : MakeLawSchool();
  } else {
    return InvalidArgumentError("unknown generator '" + input +
                                "' (want @adult, @compas or @lawschool)");
  }
  if (!args->protected_given) {
    for (int index : generated.schema().protected_indices()) {
      args->loader.protected_attributes.push_back(
          generated.schema().attribute(index).name());
    }
  }
  CsvParseOptions parse;
  parse.has_header = true;
  parse.tolerate_bad_rows = args->loader.on_bad_row != BadRowPolicy::kFail;
  return ParseCsv(WriteCsv(generated.ToCsv()), parse);
}

int RunPlanCommand(const CliArgs& args, const Dataset& data) {
  RemedyParams params;
  params.ibs.imbalance_threshold = args.tau_c;
  params.ibs.distance_threshold = args.distance;
  params.ibs.backend = args.backend;
  params.ibs.backend_threads = args.backend_threads;
  params.technique = args.technique;
  params.seed = args.seed;
  StatusOr<std::vector<PlannedAction>> planned = PlanRemedy(data, params);
  if (!planned.ok()) return Fail("plan failed", planned.status());
  const std::vector<PlannedAction>& plan = planned.value();
  if (plan.empty()) {
    std::printf("no biased regions at tau_c = %g, T = %g\n", args.tau_c,
                args.distance);
    return 0;
  }
  TablePrinter table({"region", "|r+|", "|r-|", "ratio_r", "ratio_rn",
                      "planned update"});
  for (const PlannedAction& action : plan) {
    std::string update;
    if (!action.update.reachable) {
      update = "skip (unreachable target)";
    } else if (action.update.flips > 0) {
      update = "flip " + std::to_string(action.update.flips) + " labels";
    } else {
      if (action.update.delta_positives != 0) {
        update += (action.update.delta_positives > 0 ? "+" : "") +
                  std::to_string(action.update.delta_positives) + " pos ";
      }
      if (action.update.delta_negatives != 0) {
        update += (action.update.delta_negatives > 0 ? "+" : "") +
                  std::to_string(action.update.delta_negatives) + " neg";
      }
      if (update.empty()) update = "none (already matching)";
    }
    table.AddRow({action.region.pattern.ToString(data.schema()),
                  std::to_string(action.region.counts.positives),
                  std::to_string(action.region.counts.negatives),
                  FormatDouble(action.region.ratio, 2),
                  FormatDouble(action.region.neighbor_ratio, 2), update});
  }
  table.Print(std::cout);
  std::printf("%zu biased regions; re-run with `remedy --out` to apply.\n",
              plan.size());
  return 0;
}

// Biased regions counted from the columnar store. Default: in-memory
// encoding. --store-dir spills the encoding to per-shard files and counts
// memory-mapped off them; --mmap re-opens files a previous run spilled.
int RunIdentifyCommand(const CliArgs& args, const Dataset& data) {
  StatusOr<ColumnarShardStore> store = [&]() -> StatusOr<ColumnarShardStore> {
    if (args.store_dir.empty()) {
      return ColumnarShardStore::FromDataset(data);
    }
    if (args.mmap_existing) {
      return ColumnarShardStore::OpenSpilled(args.store_dir, data.schema());
    }
    ColumnarShardStoreBuilder builder(data.schema());
    RETURN_IF_ERROR(builder.EnableSpill(args.store_dir));
    builder.Append(data);
    return builder.FinishSpilled();
  }();
  if (!store.ok()) return Fail("store failed", store.status());

  IbsParams params;
  params.imbalance_threshold = args.tau_c;
  params.distance_threshold = args.distance;
  params.backend = args.backend;
  params.backend_threads = args.backend_threads;
  StatusOr<std::vector<BiasedRegion>> identified =
      IdentifyIbs(store.value(), params);
  if (!identified.ok()) return Fail("identify failed", identified.status());
  const std::vector<BiasedRegion>& ibs = identified.value();
  if (!args.store_dir.empty()) {
    std::printf("counted %s %lld-byte spilled store (%d shards) in %s\n",
                args.mmap_existing ? "existing" : "freshly written",
                static_cast<long long>(store.value().SpilledBytes()),
                store.value().NumShards(), args.store_dir.c_str());
  }
  if (ibs.empty()) {
    std::printf("no biased regions at tau_c = %g, T = %g\n", args.tau_c,
                args.distance);
    return 0;
  }
  TablePrinter table({"region", "|r+|", "|r-|", "ratio_r", "ratio_rn"});
  for (const BiasedRegion& region : ibs) {
    table.AddRow({region.pattern.ToString(data.schema()),
                  std::to_string(region.counts.positives),
                  std::to_string(region.counts.negatives),
                  FormatDouble(region.ratio, 2),
                  FormatDouble(region.neighbor_ratio, 2)});
  }
  table.Print(std::cout);
  std::printf("%zu biased regions\n", ibs.size());
  return 0;
}

int RunAuditCommand(const CliArgs& args, const Dataset& data) {
  // Where does the label concentrate? (context for the IBS findings)
  PrintDatasetProfile(ProfileDataset(data), std::cout);
  std::printf("\n");

  Rng rng(7);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(train);

  AuditOptions options;
  options.discrimination_threshold = args.tau_d;
  options.ibs.imbalance_threshold = args.tau_c;
  options.ibs.distance_threshold = args.distance;
  options.ibs.backend = args.backend;
  options.ibs.backend_threads = args.backend_threads;
  AuditReport report =
      RunAudit(train, test, model->PredictAll(test), options);
  PrintAuditReport(report, data.schema(), std::cout);

  for (const AuditStatisticSection& section : report.sections) {
    if (!section.unfair.empty()) return 2;  // data-quality gate tripped
  }
  return 0;
}

int RunRemedyCommand(const CliArgs& args, const Dataset& data) {
  RemedyParams params;
  params.ibs.imbalance_threshold = args.tau_c;
  params.ibs.distance_threshold = args.distance;
  params.ibs.backend = args.backend;
  params.ibs.backend_threads = args.backend_threads;
  params.technique = args.technique;
  params.seed = args.seed;

  // Resolve --remedy-backend here (not in ParseArgs) so an unknown name
  // exits 64 like every other invalid-argument error, with the suggestion
  // list from ParseRemedyBackend in the message.
  RemedyBackendKind backend_kind = RemedyBackendKind::kIncremental;
  if (!args.remedy_backend_name.empty()) {
    StatusOr<RemedyBackendKind> parsed =
        ParseRemedyBackend(args.remedy_backend_name);
    if (!parsed.ok()) return Fail("bad --remedy-backend", parsed.status());
    backend_kind = parsed.value();
  }
  if (backend_kind == RemedyBackendKind::kStreaming &&
      (args.report || args.report_json)) {
    return Fail("bad --remedy-backend",
                InvalidArgumentError(
                    "the streaming backend plans on leaf counts and cannot "
                    "produce an audited before/after report; use "
                    "--remedy-backend rebuild or incremental with --report"));
  }
  params.engine = backend_kind == RemedyBackendKind::kRebuild
                      ? RemedyEngine::kRebuild
                      : RemedyEngine::kIncremental;

  Dataset remedied;
  RemedyStats stats;
  if (args.report || args.report_json) {
    StatusOr<PipelineReport> audited =
        RunAuditedRemedy(data, params, &remedied);
    if (!audited.ok()) return Fail("remedy failed", audited.status());
    const PipelineReport& report = audited.value();
    stats = report.stats;
    if (args.report) PrintPipelineReport(report, std::cout);
    if (args.report_json) {
      const std::string json = report.ToJson();
      if (args.report_json_path.empty()) {
        std::printf("%s\n", json.c_str());
      } else {
        Status written = WriteTextFile(args.report_json_path, json);
        if (!written.ok()) return Fail("report write failed", written);
        std::printf("wrote report %s\n", args.report_json_path.c_str());
      }
    }
  } else {
    std::unique_ptr<RemedyBackend> backend = RemedyBackend::Create(backend_kind);
    RemedySource source;
    source.dataset = &data;
    StatusOr<Dataset> result = backend->Remedy(source, params, &stats);
    if (!result.ok()) return Fail("remedy failed", result.status());
    remedied = std::move(result).value();
  }
  std::printf(
      "remedied %d regions (skipped %d) via the %s backend: +%lld / -%lld "
      "instances, %lld labels flipped; %d -> %d rows\n",
      stats.regions_processed, stats.regions_skipped,
      RemedyBackendName(backend_kind),
      static_cast<long long>(stats.instances_added),
      static_cast<long long>(stats.instances_removed),
      static_cast<long long>(stats.labels_flipped), data.NumRows(),
      remedied.NumRows());
  Status written = WriteCsvFile(args.output, remedied.ToCsv());
  if (!written.ok()) return Fail("write failed", written);
  std::printf("wrote %s\n", args.output.c_str());
  return 0;
}

int RunCommand(CliArgs& args) {
  LoaderReport report;
  QuarantineReport quarantine;
  ScopedQuarantineExport exported(&quarantine);
  StatusOr<Dataset> loaded = [&]() -> StatusOr<Dataset> {
    if (!args.input.empty() && args.input[0] == '@') {
      ASSIGN_OR_RETURN(CsvTable table, GenerateInput(args.input, &args));
      return BuildDataset(table, args.loader, &report, &quarantine);
    }
    return LoadCsvDataset(args.input, args.loader, &report, &quarantine);
  }();
  if (!loaded.ok()) return Fail("load failed", loaded.status());
  const Dataset& data = loaded.value();
  std::printf(
      "loaded %d rows (%d dropped for missing values), %d categorical + %d "
      "bucketized numeric attributes, %d protected\n",
      report.rows_loaded, report.rows_dropped_missing,
      report.categorical_columns, report.numeric_columns,
      data.schema().NumProtected());
  if (quarantine.rows_quarantined > 0) {
    std::printf("quarantined %lld malformed record(s) (%.2f%% of the file, "
                "policy %s):\n",
                static_cast<long long>(quarantine.rows_quarantined),
                100.0 * quarantine.fraction,
                args.loader.on_bad_row == BadRowPolicy::kDrop ? "drop"
                                                              : "quarantine");
    for (const CsvBadRow& row : quarantine.examples) {
      std::printf("  line %d: %s\n", row.line, row.reason.c_str());
    }
    if (quarantine.rows_quarantined >
        static_cast<int64_t>(quarantine.examples.size())) {
      std::printf("  ... and %lld more\n",
                  static_cast<long long>(quarantine.rows_quarantined -
                                         quarantine.examples.size()));
    }
  }
  std::printf("\n");

  if (args.command == "audit") return RunAuditCommand(args, data);
  if (args.command == "plan") return RunPlanCommand(args, data);
  if (args.command == "identify") return RunIdentifyCommand(args, data);
  return RunRemedyCommand(args, data);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args = ParseArgs(argc, argv);
  if (!args.valid) {
    PrintUsage();
    return 1;
  }

  // Blocked here (and inherited by every thread the run spawns), consumed
  // by the watcher: an interrupt flushes trace/metrics/quarantine instead
  // of silently dropping them.
  g_cli_args.store(&args);
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  std::thread watcher(WatchForInterrupt, signals);

  int rc;
  {
    // The sink brackets the whole run, so loader spans are captured too.
    std::unique_ptr<TraceSink> sink;
    if (!args.trace_out.empty()) sink = std::make_unique<TraceSink>();
    g_trace_sink.store(sink.get());
    rc = RunCommand(args);
    g_trace_sink.store(nullptr);  // main owns the final trace write below
    if (sink != nullptr) {
      Status written = sink->WriteChromeJson(args.trace_out);
      if (!written.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     written.ToString().c_str());
        if (rc == 0) rc = ExitCodeFor(written.code());
      } else {
        std::printf("wrote trace %s (%zu spans)\n", args.trace_out.c_str(),
                    sink->Events().size());
      }
    }
  }

  if (args.metrics_table) {
    PrintMetricsTable(MetricsRegistry::Global().Snapshot(), std::cout);
  }
  if (args.metrics_json) {
    if (args.metrics_json_path.empty()) {
      std::printf("%s\n",
                  MetricsToJson(MetricsRegistry::Global().Snapshot()).c_str());
    } else {
      Status written = WriteMetricsJsonFile(args.metrics_json_path);
      if (!written.ok()) {
        std::fprintf(stderr, "metrics write failed: %s\n",
                     written.ToString().c_str());
        if (rc == 0) rc = ExitCodeFor(written.code());
      } else {
        std::printf("wrote metrics %s\n", args.metrics_json_path.c_str());
      }
    }
  }
  g_work_done.store(true);
  watcher.join();
  return rc;
}
