// remedy_cli: command-line front end for auditing and remedying CSV
// datasets — the adoption path for users with their own data.
//
//   remedy_cli audit  <csv> --protected race,gender [--label y]
//                     [--positive 1] [--tau-c 0.1] [--tau-d 0.1] [--T 1]
//   remedy_cli plan   <csv> --protected race,gender
//                     [--technique ps|us|os|massage] [--tau-c 0.1] [--T 1]
//   remedy_cli remedy <csv> --protected race,gender --out remedied.csv
//                     [--technique ps|us|os|massage] [--tau-c 0.1] [--T 1]
//
// Shared ingestion flags:
//   --on-bad-row fail|quarantine|drop   what to do with malformed records
//                                       (default: fail)
//   --max-quarantine-frac x             circuit breaker for quarantine mode
//                                       (default: 0.05)
//
// `audit` trains a decision tree on a 70/30 split, prints the fairness
// audit (unfair subgroups + IBS alignment), and exits non-zero if any
// significant unfair subgroup was found — handy as a CI data-quality gate.
// `plan` previews the biased regions and the updates the remedy would
// apply, without writing anything.
// `remedy` rewrites the full dataset's biased regions and writes the result.
//
// Exit codes: 0 success; 1 usage error; 2 audit gate tripped; then one code
// per error class so scripts can react to the cause — 64 invalid argument,
// 65 corrupt data (incl. the quarantine circuit breaker), 70 internal,
// 74 I/O, 75 resource exhausted.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/remedy.h"
#include "data/loader.h"
#include "data/profile.h"
#include "fairness/report.h"
#include "ml/model_factory.h"

namespace {

using namespace remedy;

// sysexits-flavored mapping so callers can distinguish "your flags are
// wrong" from "your data is rotten" from "the disk hiccuped".
int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 64;
    case StatusCode::kDataCorruption:
      return 65;
    case StatusCode::kIoError:
      return 74;
    case StatusCode::kResourceExhausted:
      return 75;
    case StatusCode::kInternal:
      return 70;
  }
  return 70;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return ExitCodeFor(status.code());
}

struct CliArgs {
  std::string command;
  std::string input;
  std::string output;
  LoaderOptions loader;
  double tau_c = 0.1;
  double tau_d = 0.1;
  double distance = 1.0;
  RemedyTechnique technique = RemedyTechnique::kPreferentialSampling;
  bool valid = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  remedy_cli audit  <csv> --protected a,b[,..] [--label col]\n"
      "             [--positive v] [--tau-c x] [--tau-d x] [--T x]\n"
      "  remedy_cli plan   <csv> --protected a,b[,..] [--label col]\n"
      "             [--positive v] [--tau-c x] [--T x]\n"
      "             [--technique ps|us|os|massage]\n"
      "  remedy_cli remedy <csv> --protected a,b[,..] --out file.csv\n"
      "             [--label col] [--positive v] [--tau-c x] [--T x]\n"
      "             [--technique ps|us|os|massage]\n"
      "  shared: [--on-bad-row fail|quarantine|drop]\n"
      "          [--max-quarantine-frac x]\n");
}

bool ParseTechnique(const std::string& name, RemedyTechnique* technique) {
  if (name == "ps") {
    *technique = RemedyTechnique::kPreferentialSampling;
  } else if (name == "us") {
    *technique = RemedyTechnique::kUndersample;
  } else if (name == "os") {
    *technique = RemedyTechnique::kOversample;
  } else if (name == "massage") {
    *technique = RemedyTechnique::kMassaging;
  } else {
    return false;
  }
  return true;
}

bool ParseBadRowPolicy(const std::string& name, BadRowPolicy* policy) {
  if (name == "fail") {
    *policy = BadRowPolicy::kFail;
  } else if (name == "quarantine") {
    *policy = BadRowPolicy::kQuarantine;
  } else if (name == "drop") {
    *policy = BadRowPolicy::kDrop;
  } else {
    return false;
  }
  return true;
}

CliArgs ParseArgs(int argc, char** argv) {
  CliArgs args;
  if (argc < 3) return args;
  args.command = argv[1];
  args.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--protected" && (value = next())) {
      args.loader.protected_attributes = Split(value, ',');
    } else if (flag == "--label" && (value = next())) {
      args.loader.label_column = value;
    } else if (flag == "--positive" && (value = next())) {
      args.loader.positive_label = value;
    } else if (flag == "--out" && (value = next())) {
      args.output = value;
    } else if (flag == "--tau-c" && (value = next())) {
      args.tau_c = std::atof(value);
    } else if (flag == "--tau-d" && (value = next())) {
      args.tau_d = std::atof(value);
    } else if (flag == "--T" && (value = next())) {
      args.distance = std::atof(value);
    } else if (flag == "--technique" && (value = next())) {
      if (!ParseTechnique(value, &args.technique)) return args;
    } else if (flag == "--on-bad-row" && (value = next())) {
      if (!ParseBadRowPolicy(value, &args.loader.on_bad_row)) {
        std::fprintf(stderr, "--on-bad-row wants fail|quarantine|drop\n");
        return args;
      }
    } else if (flag == "--max-quarantine-frac" && (value = next())) {
      args.loader.max_quarantine_fraction = std::atof(value);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", flag.c_str());
      return args;
    }
  }
  if (args.loader.protected_attributes.empty()) {
    std::fprintf(stderr, "--protected is required\n");
    return args;
  }
  if (args.command == "remedy" && args.output.empty()) {
    std::fprintf(stderr, "remedy needs --out\n");
    return args;
  }
  args.valid = args.command == "audit" || args.command == "plan" ||
               args.command == "remedy";
  return args;
}

int RunPlanCommand(const CliArgs& args, const Dataset& data) {
  RemedyParams params;
  params.ibs.imbalance_threshold = args.tau_c;
  params.ibs.distance_threshold = args.distance;
  params.technique = args.technique;
  StatusOr<std::vector<PlannedAction>> planned = PlanRemedy(data, params);
  if (!planned.ok()) return Fail("plan failed", planned.status());
  const std::vector<PlannedAction>& plan = planned.value();
  if (plan.empty()) {
    std::printf("no biased regions at tau_c = %g, T = %g\n", args.tau_c,
                args.distance);
    return 0;
  }
  TablePrinter table({"region", "|r+|", "|r-|", "ratio_r", "ratio_rn",
                      "planned update"});
  for (const PlannedAction& action : plan) {
    std::string update;
    if (!action.update.reachable) {
      update = "skip (unreachable target)";
    } else if (action.update.flips > 0) {
      update = "flip " + std::to_string(action.update.flips) + " labels";
    } else {
      if (action.update.delta_positives != 0) {
        update += (action.update.delta_positives > 0 ? "+" : "") +
                  std::to_string(action.update.delta_positives) + " pos ";
      }
      if (action.update.delta_negatives != 0) {
        update += (action.update.delta_negatives > 0 ? "+" : "") +
                  std::to_string(action.update.delta_negatives) + " neg";
      }
      if (update.empty()) update = "none (already matching)";
    }
    table.AddRow({action.region.pattern.ToString(data.schema()),
                  std::to_string(action.region.counts.positives),
                  std::to_string(action.region.counts.negatives),
                  FormatDouble(action.region.ratio, 2),
                  FormatDouble(action.region.neighbor_ratio, 2), update});
  }
  table.Print(std::cout);
  std::printf("%zu biased regions; re-run with `remedy --out` to apply.\n",
              plan.size());
  return 0;
}

int RunAuditCommand(const CliArgs& args, const Dataset& data) {
  // Where does the label concentrate? (context for the IBS findings)
  PrintDatasetProfile(ProfileDataset(data), std::cout);
  std::printf("\n");

  Rng rng(7);
  auto [train, test] = data.TrainTestSplit(0.7, rng);
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(train);

  AuditOptions options;
  options.discrimination_threshold = args.tau_d;
  options.ibs.imbalance_threshold = args.tau_c;
  options.ibs.distance_threshold = args.distance;
  AuditReport report =
      RunAudit(train, test, model->PredictAll(test), options);
  PrintAuditReport(report, data.schema(), std::cout);

  for (const AuditStatisticSection& section : report.sections) {
    if (!section.unfair.empty()) return 2;  // data-quality gate tripped
  }
  return 0;
}

int RunRemedyCommand(const CliArgs& args, const Dataset& data) {
  RemedyParams params;
  params.ibs.imbalance_threshold = args.tau_c;
  params.ibs.distance_threshold = args.distance;
  params.technique = args.technique;
  RemedyStats stats;
  StatusOr<Dataset> remedied = RemedyDataset(data, params, &stats);
  if (!remedied.ok()) return Fail("remedy failed", remedied.status());
  std::printf(
      "remedied %d regions (skipped %d): +%lld / -%lld instances, %lld "
      "labels flipped; %d -> %d rows\n",
      stats.regions_processed, stats.regions_skipped,
      static_cast<long long>(stats.instances_added),
      static_cast<long long>(stats.instances_removed),
      static_cast<long long>(stats.labels_flipped), data.NumRows(),
      remedied.value().NumRows());
  Status written = WriteCsvFile(args.output, remedied.value().ToCsv());
  if (!written.ok()) return Fail("write failed", written);
  std::printf("wrote %s\n", args.output.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args = ParseArgs(argc, argv);
  if (!args.valid) {
    PrintUsage();
    return 1;
  }

  LoaderReport report;
  QuarantineReport quarantine;
  StatusOr<Dataset> loaded =
      LoadCsvDataset(args.input, args.loader, &report, &quarantine);
  if (!loaded.ok()) return Fail("load failed", loaded.status());
  const Dataset& data = loaded.value();
  std::printf(
      "loaded %d rows (%d dropped for missing values), %d categorical + %d "
      "bucketized numeric attributes, %d protected\n",
      report.rows_loaded, report.rows_dropped_missing,
      report.categorical_columns, report.numeric_columns,
      data.schema().NumProtected());
  if (quarantine.rows_quarantined > 0) {
    std::printf("quarantined %lld malformed record(s) (%.2f%% of the file, "
                "policy %s):\n",
                static_cast<long long>(quarantine.rows_quarantined),
                100.0 * quarantine.fraction,
                args.loader.on_bad_row == BadRowPolicy::kDrop ? "drop"
                                                              : "quarantine");
    for (const CsvBadRow& row : quarantine.examples) {
      std::printf("  line %d: %s\n", row.line, row.reason.c_str());
    }
    if (quarantine.rows_quarantined >
        static_cast<int64_t>(quarantine.examples.size())) {
      std::printf("  ... and %lld more\n",
                  static_cast<long long>(quarantine.rows_quarantined -
                                         quarantine.examples.size()));
    }
  }
  std::printf("\n");

  if (args.command == "audit") return RunAuditCommand(args, data);
  if (args.command == "plan") return RunPlanCommand(args, data);
  return RunRemedyCommand(args, data);
}
