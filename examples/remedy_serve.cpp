// remedy_serve: the crash-safe streaming fairness daemon front end
// (docs/SERVICE.md).
//
//   remedy_serve <schema> --state-dir DIR [flags]
//
// `<schema>` fixes the protected-attribute universe the daemon counts
// over: a built-in generator (`@adult`, `@compas`, `@lawschool`,
// optionally `@adult:10000`) or a CSV file with `--protected a,b,...`
// (`--label` defaults to the last column). The daemon recovers whatever
// durable state `--state-dir` already holds (checkpoint + WAL tail),
// then ingests and serves.
//
// Ingest flags:
//   --seed             submit the schema dataset's own rows as the first
//                      batch (cold starts only make sense with data)
//   --batch FILE       ingest one CSV delta batch (repeatable; see
//                      docs/SERVICE.md for the batch format). Backpressure
//                      rejections are retried after the daemon's hint.
//   --demo N           synthesize N small delta batches against the schema
//                      dataset's leaves and ingest them (self-contained
//                      smoke workload, no files needed)
//   --kill-after N     after N applied demo/batch ingests, exit WITHOUT
//                      checkpointing (simulates a crash; the next start
//                      must replay the WAL). Testing hook.
//
// Remedy flags (docs/REMEDY.md):
//   --remedy TECH      after ingest drains, plan + commit one remedy
//                      round through the configured backend (TECH is
//                      ps|us|os|massage)
//   --auto-remedy      monitor policy hook: every identify epoch with a
//                      non-empty IBS triggers a remedy round on a
//                      dedicated thread, up to --remedy-rounds per quiet
//                      period (ingest refills the budget)
//   --remedy-backend B rebuild|incremental|streaming (default streaming)
//   --remedy-seed N    RNG seed of the remedy planner (default 23)
//   --remedy-rounds N  auto-remedy round budget (default 4)
//   --kill-after-remedy  exit WITHOUT checkpointing once the remedy phase
//                      is done (crash simulation: recovery must replay the
//                      remedy records). Testing hook.
//
// Daemon tuning: --queue-capacity N, --retry-after-ms MS, --watchdog N,
// --checkpoint-every N, --identify-every N, --identify-mode MODE
// (full|incremental, default incremental — see docs/SERVICE.md),
// --threads N; audit params --tau-c X, --T X, --min-region N.
//
// Lifecycle: without --serve the daemon ingests the requested batches,
// prints health, drains + checkpoints and exits. With --serve it then
// stays up until SIGINT/SIGTERM, which drains the queue, checkpoints,
// resets the WAL and exits 0 (the signal path is the graceful one; only
// SIGKILL loses the checkpoint, and then recovery replays the WAL).
// --health-out FILE additionally writes the final health JSON to a file.
//
// Exit codes match remedy_cli: 0 success, 1 usage, 64 invalid argument,
// 65 corrupt state, 70 internal, 74 I/O, 75 resource exhausted.

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/remedy_backend.h"
#include "common/status.h"
#include "common/string_util.h"
#include "core/hierarchy.h"
#include "data/loader.h"
#include "datagen/adult.h"
#include "datagen/compas.h"
#include "datagen/law_school.h"
#include "serve/daemon.h"

namespace {

using namespace remedy;

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 64;
    case StatusCode::kDataCorruption:
      return 65;
    case StatusCode::kIoError:
      return 74;
    case StatusCode::kResourceExhausted:
      return 75;
    case StatusCode::kInternal:
      return 70;
  }
  return 70;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return ExitCodeFor(status.code());
}

struct ServeArgs {
  bool valid = false;
  std::string input;
  std::string state_dir;
  std::vector<std::string> batch_files;
  bool seed = false;
  int demo_batches = 0;
  int kill_after = 0;
  bool serve = false;
  std::string health_out;
  bool remedy_once = false;
  bool kill_after_remedy = false;
  std::string remedy_backend_name;  // parsed in Run: bad names exit 64
  std::string identify_mode_name;   // parsed in Run: bad names exit 64
  ServeOptions options;
  LoaderOptions loader;
  bool protected_given = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: remedy_serve <@adult[:N]|@compas[:N]|@lawschool[:N]|schema.csv>"
      " --state-dir DIR\n"
      "  [--protected a,b,...] [--label col] [--seed] [--batch file]...\n"
      "  [--demo N] [--kill-after N] [--serve] [--health-out file]\n"
      "  [--remedy ps|us|os|massage] [--auto-remedy]\n"
      "  [--remedy-backend rebuild|incremental|streaming]\n"
      "  [--remedy-seed N] [--remedy-rounds N] [--kill-after-remedy]\n"
      "  [--queue-capacity N] [--retry-after-ms MS] [--watchdog N]\n"
      "  [--checkpoint-every N] [--identify-every N]\n"
      "  [--identify-mode full|incremental] [--threads N]\n"
      "  [--tau-c X] [--T X] [--min-region N]\n");
}

ServeArgs ParseArgs(int argc, char** argv) {
  ServeArgs args;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto value_of = [&]() -> std::string {
      if (has_value) return value;
      if (i + 1 < argc) return argv[++i];
      std::fprintf(stderr, "%s needs a value\n", arg.c_str());
      return "";
    };
    if (arg == "--state-dir") {
      args.state_dir = value_of();
    } else if (arg == "--protected") {
      for (const std::string& name : Split(value_of(), ',')) {
        args.loader.protected_attributes.push_back(name);
      }
      args.protected_given = true;
    } else if (arg == "--label") {
      args.loader.label_column = value_of();
    } else if (arg == "--seed") {
      args.seed = true;
    } else if (arg == "--batch") {
      args.batch_files.push_back(value_of());
    } else if (arg == "--demo") {
      args.demo_batches = std::atoi(value_of().c_str());
    } else if (arg == "--kill-after") {
      args.kill_after = std::atoi(value_of().c_str());
    } else if (arg == "--serve") {
      args.serve = true;
    } else if (arg == "--health-out") {
      args.health_out = value_of();
    } else if (arg == "--remedy") {
      const std::string technique = value_of();
      if (technique == "ps") {
        args.options.remedy.technique =
            RemedyTechnique::kPreferentialSampling;
      } else if (technique == "us") {
        args.options.remedy.technique = RemedyTechnique::kUndersample;
      } else if (technique == "os") {
        args.options.remedy.technique = RemedyTechnique::kOversample;
      } else if (technique == "massage") {
        args.options.remedy.technique = RemedyTechnique::kMassaging;
      } else {
        std::fprintf(stderr, "--remedy wants ps|us|os|massage\n");
        return args;
      }
      args.remedy_once = true;
    } else if (arg == "--auto-remedy") {
      args.options.auto_remedy = true;
    } else if (arg == "--remedy-backend") {
      args.remedy_backend_name = value_of();
    } else if (arg == "--remedy-seed") {
      args.options.remedy.seed =
          static_cast<uint64_t>(std::atoll(value_of().c_str()));
    } else if (arg == "--remedy-rounds") {
      args.options.auto_remedy_max_rounds = std::atoi(value_of().c_str());
    } else if (arg == "--kill-after-remedy") {
      args.kill_after_remedy = true;
    } else if (arg == "--queue-capacity") {
      args.options.queue_capacity =
          static_cast<size_t>(std::atoll(value_of().c_str()));
    } else if (arg == "--retry-after-ms") {
      args.options.retry_after_ms = std::atoi(value_of().c_str());
    } else if (arg == "--watchdog") {
      args.options.watchdog_trip_threshold = std::atoi(value_of().c_str());
    } else if (arg == "--checkpoint-every") {
      args.options.checkpoint_every_batches = std::atoll(value_of().c_str());
    } else if (arg == "--identify-every") {
      args.options.identify_every_epochs = std::atoi(value_of().c_str());
    } else if (arg == "--identify-mode") {
      args.identify_mode_name = value_of();
    } else if (arg == "--threads") {
      args.options.build_threads = std::atoi(value_of().c_str());
    } else if (arg == "--tau-c") {
      args.options.ibs.imbalance_threshold = std::atof(value_of().c_str());
    } else if (arg == "--T") {
      args.options.ibs.distance_threshold = std::atof(value_of().c_str());
    } else if (arg == "--min-region") {
      args.options.ibs.min_region_size = std::atoi(value_of().c_str());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return args;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::fprintf(stderr, "exactly one schema input is required\n");
    return args;
  }
  args.input = positional[0];
  if (args.state_dir.empty()) {
    std::fprintf(stderr, "--state-dir is required\n");
    return args;
  }
  const bool generated = args.input[0] == '@';
  if (!args.protected_given && !generated) {
    std::fprintf(stderr, "--protected is required for file input\n");
    return args;
  }
  if (args.kill_after_remedy && !args.remedy_once &&
      !args.options.auto_remedy) {
    std::fprintf(stderr,
                 "--kill-after-remedy needs --remedy or --auto-remedy\n");
    return args;
  }
  if (args.remedy_once || args.options.auto_remedy ||
      !args.remedy_backend_name.empty()) {
    args.options.enable_remedy = true;
  }
  args.options.state_dir = args.state_dir;
  args.valid = true;
  return args;
}

// Loads the schema dataset: a generator name or a CSV file, through the
// same loader remedy_cli uses.
StatusOr<Dataset> LoadSchemaDataset(ServeArgs* args) {
  if (args->input[0] != '@') {
    LoaderReport report;
    return LoadCsvDataset(args->input, args->loader, &report, nullptr);
  }
  std::string name = args->input.substr(1);
  int rows = 0;
  const size_t colon = name.find(':');
  if (colon != std::string::npos) {
    rows = std::atoi(name.c_str() + colon + 1);
    if (rows <= 0) {
      return InvalidArgumentError("bad row count in generator input '" +
                                  args->input + "'");
    }
    name = name.substr(0, colon);
  }
  if (name == "adult") return rows > 0 ? MakeAdult(rows) : MakeAdult();
  if (name == "compas") return rows > 0 ? MakeCompas(rows) : MakeCompas();
  if (name == "lawschool") {
    return rows > 0 ? MakeLawSchool(rows) : MakeLawSchool();
  }
  return InvalidArgumentError("unknown generator '" + args->input +
                              "' (want @adult, @compas or @lawschool)");
}

// Submits pre-aggregated deltas, waiting out backpressure: a
// kResourceExhausted rejection is retried after the daemon's retry-after
// hint. Any other rejection is final.
Status SubmitWithBackpressure(ServeDaemon& daemon,
                              std::vector<Hierarchy::LeafDelta> deltas,
                              int retry_after_ms) {
  for (;;) {
    Status s = daemon.Submit(deltas);
    if (s.code() != StatusCode::kResourceExhausted) return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_after_ms));
  }
}

// The schema dataset's full leaf census as one batch of insertions.
std::vector<Hierarchy::LeafDelta> SeedDeltas(const Dataset& data) {
  Hierarchy hierarchy(data);
  const NodeTable& leaves = hierarchy.NodeCounts(hierarchy.LeafMask());
  std::vector<Hierarchy::LeafDelta> deltas;
  deltas.reserve(leaves.size());
  for (const auto& [key, counts] : leaves) {
    deltas.push_back({key, counts.positives, counts.negatives});
  }
  return deltas;
}

// One synthetic demo batch: a handful of insertions over the schema's
// observed leaves, deterministic in `round` so reruns are reproducible.
std::vector<Hierarchy::LeafDelta> DemoBatch(
    const std::vector<uint64_t>& leaf_keys, int round) {
  Rng rng(0x5eedULL + static_cast<uint64_t>(round));
  std::vector<Hierarchy::LeafDelta> deltas;
  const int touched = rng.UniformRange(1, 4);
  for (int i = 0; i < touched; ++i) {
    const uint64_t key =
        leaf_keys[rng.UniformInt(static_cast<int>(leaf_keys.size()))];
    deltas.push_back({key, rng.UniformInt(4), rng.UniformInt(4)});
  }
  return deltas;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot open " + path);
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (n != text.size() || rc != 0) return IoError("write failed: " + path);
  return OkStatus();
}

void PrintSnapshot(const ServeDaemon& daemon) {
  std::shared_ptr<const EpochSnapshot> snap = daemon.Snapshot();
  std::printf("epoch %llu: %lld+ / %lld- instances, %zu biased region(s)%s\n",
              static_cast<unsigned long long>(snap->epoch),
              static_cast<long long>(snap->totals.positives),
              static_cast<long long>(snap->totals.negatives),
              snap->ibs.size(), snap->read_only ? " [read-only]" : "");
}

// True when a blocked SIGINT/SIGTERM is already pending (non-blocking
// probe, used between batches so a Ctrl-C mid-ingest still drains).
bool SignalPending(const sigset_t& set) {
  struct timespec zero = {0, 0};
  return sigtimedwait(&set, nullptr, &zero) > 0;
}

int Run(ServeArgs& args, const sigset_t& signals) {
  if (!args.remedy_backend_name.empty()) {
    StatusOr<RemedyBackendKind> parsed =
        ParseRemedyBackend(args.remedy_backend_name);
    if (!parsed.ok()) return Fail("bad --remedy-backend", parsed.status());
    args.options.remedy_backend = parsed.value();
  }
  if (!args.identify_mode_name.empty()) {
    if (args.identify_mode_name == "full") {
      args.options.identify_mode = IdentifyMode::kFull;
    } else if (args.identify_mode_name == "incremental") {
      args.options.identify_mode = IdentifyMode::kIncremental;
    } else {
      return Fail("bad --identify-mode",
                  InvalidArgumentError("'" + args.identify_mode_name +
                                       "' is not a mode; the modes are "
                                       "full|incremental"));
    }
  }
  StatusOr<Dataset> schema_data = LoadSchemaDataset(&args);
  if (!schema_data.ok()) return Fail("schema load failed", schema_data.status());
  const Dataset& data = schema_data.value();
  std::printf("schema: %d attributes, %d protected; state dir %s\n",
              data.schema().NumAttributes(), data.schema().NumProtected(),
              args.state_dir.c_str());

  StatusOr<std::unique_ptr<ServeDaemon>> started =
      ServeDaemon::Start(data.schema(), args.options);
  if (!started.ok()) return Fail("daemon start failed", started.status());
  ServeDaemon& daemon = *started.value();
  std::printf("recovered: %s\n", daemon.HealthJson().c_str());

  int applied_ingests = 0;
  bool killed = false;
  auto after_ingest = [&]() -> bool {  // returns "keep going"
    ++applied_ingests;
    if (args.kill_after > 0 && applied_ingests >= args.kill_after) {
      killed = true;
      return false;
    }
    return !SignalPending(signals);
  };

  if (args.seed) {
    Status s = SubmitWithBackpressure(daemon, SeedDeltas(data),
                                      args.options.retry_after_ms);
    if (!s.ok()) return Fail("seed batch rejected", s);
    std::printf("seeded %d rows\n", data.NumRows());
    after_ingest();
  }
  bool interrupted_ingest = false;
  for (const std::string& file : args.batch_files) {
    if (interrupted_ingest || killed) break;
    Status s = daemon.IngestCsvFile(file);
    if (s.code() == StatusCode::kResourceExhausted) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(args.options.retry_after_ms));
      s = daemon.IngestCsvFile(file);
    }
    if (!s.ok()) return Fail(("batch " + file + " rejected").c_str(), s);
    std::printf("ingested batch %s\n", file.c_str());
    interrupted_ingest = !after_ingest();
  }
  if (args.demo_batches > 0 && !interrupted_ingest && !killed) {
    std::vector<uint64_t> leaf_keys;
    for (const Hierarchy::LeafDelta& d : SeedDeltas(data)) {
      leaf_keys.push_back(d.leaf_key);
    }
    if (leaf_keys.empty()) {
      return Fail("demo needs a non-empty schema dataset",
                  InvalidArgumentError("no leaves"));
    }
    int ingested = 0;
    for (int round = 0; round < args.demo_batches; ++round) {
      Status s = SubmitWithBackpressure(daemon, DemoBatch(leaf_keys, round),
                                        args.options.retry_after_ms);
      if (!s.ok()) return Fail("demo batch rejected", s);
      ++ingested;
      if (!after_ingest()) {
        interrupted_ingest = true;
        break;
      }
    }
    std::printf("ingested %d demo batch(es)\n", ingested);
  }

  if (killed) {
    // Crash simulation: leave the WAL as-is — no drain, no checkpoint.
    // The next start must replay to these exact counts.
    Status flushed = daemon.Flush();
    PrintSnapshot(daemon);
    std::printf("kill-after: exiting without checkpoint (wal retains %s)\n",
                flushed.ok() ? "all applied batches" : "the durable prefix");
    std::printf("final: %s\n", daemon.HealthJson().c_str());
    std::_Exit(0);  // ~ServeDaemon would checkpoint; a crash doesn't.
  }

  Status flushed = daemon.Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "degraded: %s\n", flushed.ToString().c_str());
  }
  PrintSnapshot(daemon);

  // --- remedy phase: after ingest has drained (docs/REMEDY.md) --------
  if (args.remedy_once && !daemon.read_only()) {
    RemedyParams params = args.options.remedy;
    params.ibs = args.options.ibs;
    // A concurrent auto-remedy round can make this plan stale; re-plan.
    StatusOr<RemedyCommitResult> remedied = daemon.SubmitRemedy(params);
    for (int attempt = 0;
         !remedied.ok() &&
         remedied.status().code() == StatusCode::kResourceExhausted &&
         attempt < 3;
         ++attempt) {
      remedied = daemon.SubmitRemedy(params);
    }
    if (!remedied.ok()) return Fail("remedy failed", remedied.status());
    const RemedyCommitResult& r = remedied.value();
    if (r.committed) {
      std::printf(
          "remedy committed: %zu leaf delta(s), epoch %llu -> %llu "
          "(+%lld/-%lld instances, %lld flips)\n",
          r.deltas, static_cast<unsigned long long>(r.planned_epoch),
          static_cast<unsigned long long>(r.applied_epoch),
          static_cast<long long>(r.stats.instances_added),
          static_cast<long long>(r.stats.instances_removed),
          static_cast<long long>(r.stats.labels_flipped));
    } else {
      std::printf("remedy: nothing to do at epoch %llu\n",
                  static_cast<unsigned long long>(r.planned_epoch));
    }
  }
  if (args.options.auto_remedy) {
    daemon.WaitRemedyIdle();
    Status drained = daemon.Flush();
    if (!drained.ok()) {
      std::fprintf(stderr, "degraded: %s\n", drained.ToString().c_str());
    }
    std::printf("auto-remedy quiesced: %lld remedy commit(s)\n",
                static_cast<long long>(daemon.remedy_commits()));
  }
  if (args.remedy_once || args.options.auto_remedy) PrintSnapshot(daemon);
  if (args.kill_after_remedy) {
    // Crash simulation mirroring --kill-after: the remedy records are
    // durable in the WAL but no checkpoint covers them; the next start
    // must replay to the post-remedy counts.
    const std::string health = daemon.HealthJson();
    std::printf("kill-after-remedy: exiting without checkpoint\n");
    std::printf("final: %s\n", health.c_str());
    if (!args.health_out.empty()) {
      Status written = WriteTextFile(args.health_out, health + "\n");
      if (!written.ok()) return Fail("health write failed", written);
    }
    std::_Exit(0);
  }

  if (args.serve && !interrupted_ingest) {
    std::printf("serving; SIGINT/SIGTERM drains and checkpoints\n");
    std::fflush(stdout);
    int sig = 0;
    sigwait(&signals, &sig);
    std::printf("signal %d: draining\n", sig);
  } else if (interrupted_ingest) {
    std::printf("interrupted: draining\n");
  }

  Status stopped = daemon.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "shutdown degraded: %s\n", stopped.ToString().c_str());
  }
  const std::string health = daemon.HealthJson();
  std::printf("final: %s\n", health.c_str());
  if (!args.health_out.empty()) {
    Status written = WriteTextFile(args.health_out, health + "\n");
    if (!written.ok()) return Fail("health write failed", written);
    std::printf("wrote %s\n", args.health_out.c_str());
  }
  // A degraded-but-drained shutdown still served; only report hard errors.
  if (!stopped.ok() && !daemon.needs_recovery()) {
    return ExitCodeFor(stopped.code());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args = ParseArgs(argc, argv);
  if (!args.valid) {
    PrintUsage();
    return 1;
  }
  // Block SIGINT/SIGTERM in every thread (the apply thread inherits this
  // mask), then consume them synchronously: sigwait in --serve mode, a
  // non-blocking pending probe between ingests otherwise. Either way the
  // daemon drains and checkpoints instead of dying mid-commit.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  return Run(args, signals);
}
