// Quickstart: the complete libremedy workflow in ~60 lines.
//
//   1. Load (here: simulate) a tabular dataset with protected attributes.
//   2. Train a classifier and audit its subgroup fairness.
//   3. Identify the Implicit Biased Set (IBS) in the training data.
//   4. Remedy the training data and retrain.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "datagen/compas.h"
#include "fairness/fairness_index.h"
#include "ml/metrics.h"
#include "ml/model_factory.h"

int main() {
  using namespace remedy;

  // 1. A COMPAS-like dataset: 6,172 defendants, protected X = {age, race,
  //    sex}. Replace with Dataset::FromCsv for your own data.
  Dataset data = MakeCompas();
  Rng rng(7);
  auto [train, test] = data.TrainTestSplit(0.7, rng);

  // 2. Train a decision tree and audit subgroup fairness on the test set.
  ClassifierPtr model = MakeClassifier(ModelType::kDecisionTree);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  double accuracy_before = Accuracy(test, predictions);
  double index_before =
      ComputeFairnessIndex(test, predictions, Statistic::kFpr);

  SubgroupAnalysis analysis =
      AnalyzeSubgroups(test, predictions, Statistic::kFpr);
  std::vector<SubgroupReport> unfair = FilterUnfair(analysis, /*tau_d=*/0.1);
  std::printf("Overall FPR %.3f; %zu significant unfair subgroups, e.g.:\n",
              analysis.overall, unfair.size());
  for (size_t i = 0; i < unfair.size() && i < 3; ++i) {
    std::printf("  %-40s FPR %.3f (divergence %.3f)\n",
                unfair[i].pattern.ToString(test.schema()).c_str(),
                unfair[i].statistic, unfair[i].divergence);
  }

  // 3. Identify the biased regions behind that unfairness.
  IbsParams ibs_params;  // tau_c = 0.1, T = 1, k = 30
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, ibs_params).value();
  std::printf("\nIBS: %zu regions with skewed class ratios, e.g.:\n",
              ibs.size());
  for (size_t i = 0; i < ibs.size() && i < 3; ++i) {
    std::printf("  %-40s ratio %.2f vs neighborhood %.2f\n",
                ibs[i].pattern.ToString(train.schema()).c_str(),
                ibs[i].ratio, ibs[i].neighbor_ratio);
  }

  // 4. Remedy the training data (preferential sampling) and retrain.
  RemedyParams remedy_params;
  remedy_params.ibs = ibs_params;
  remedy_params.technique = RemedyTechnique::kPreferentialSampling;
  RemedyStats stats;
  Dataset remedied = RemedyDataset(train, remedy_params, &stats).value();
  std::printf("\nRemedied %d regions (%lld moved instances).\n",
              stats.regions_processed,
              static_cast<long long>(stats.instances_added +
                                     stats.instances_removed));

  ClassifierPtr treated = MakeClassifier(ModelType::kDecisionTree);
  treated->Fit(remedied);
  std::vector<int> treated_predictions = treated->PredictAll(test);
  std::printf(
      "\nfairness index (FPR): %.4f -> %.4f\naccuracy:             %.4f -> "
      "%.4f\n",
      index_before,
      ComputeFairnessIndex(test, treated_predictions, Statistic::kFpr),
      accuracy_before, Accuracy(test, treated_predictions));
  return 0;
}
