// Custom dataset: building your own synthetic population with the datagen
// API — a hiring scenario modeled on the paper's Sec. VI statistical-parity
// example, where green females and purple males are accepted at 50% while
// green males and purple females are accepted at 0%: each single attribute
// looks fair, only the intersections reveal the bias.

#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/ibs_identify.h"
#include "core/remedy.h"
#include "datagen/generator.h"
#include "fairness/divergence.h"
#include "ml/model_factory.h"

int main() {
  using namespace remedy;

  // --- Describe the population ------------------------------------------
  SyntheticSpec spec;
  spec.name = "hiring";
  spec.num_rows = 8000;
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("color", {"green", "purple"}), {0.5, 0.5}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("gender", {"male", "female"}), {0.5, 0.5}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("experience", {"junior", "mid", "senior"}),
      {0.4, 0.4, 0.2}));
  spec.protected_indices = {0, 1};

  // Honest signal: seniority helps.
  spec.base_logit = -1.2;
  spec.label_terms = {{2, 1, 0.7}, {2, 2, 1.4}};

  // The paper's XOR-like historical bias: (green, male) and
  // (purple, female) were (almost) never hired.
  spec.injections = {
      {{0, 0, -1}, -2.5},  // green males
      {{1, 1, -1}, -2.5},  // purple females
      {{0, 1, -1}, 1.5},   // green females
      {{1, 0, -1}, 1.5},   // purple males
  };
  spec.Validate();

  Dataset data = GenerateSynthetic(spec, 99);
  Rng rng(1);
  auto [train, test] = data.TrainTestSplit(0.7, rng);

  // --- Single attributes look fair, intersections do not ----------------
  ClassifierPtr model = MakeClassifier(ModelType::kGradientBoosting);
  model->Fit(train);
  std::vector<int> predictions = model->PredictAll(test);
  SubgroupAnalysis analysis = AnalyzeSubgroups(
      test, predictions, Statistic::kStatisticalParity);
  std::printf("Overall acceptance rate: %.3f\n\n", analysis.overall);
  TablePrinter table({"group", "level", "acceptance", "divergence"});
  for (const SubgroupReport& report : analysis.subgroups) {
    table.AddRow({report.pattern.ToString(data.schema()),
                  std::to_string(report.pattern.NumDeterministic()),
                  FormatDouble(report.statistic, 3),
                  FormatDouble(report.divergence, 3)});
  }
  table.Print(std::cout);

  // --- The IBS pins the cause, the remedy removes it --------------------
  IbsParams ibs_params;
  std::vector<BiasedRegion> ibs = IdentifyIbs(train, ibs_params).value();
  std::printf("\nIBS: %zu biased regions (the four color x gender cells "
              "dominate).\n", ibs.size());

  RemedyParams remedy_params;
  remedy_params.ibs = ibs_params;
  remedy_params.technique = RemedyTechnique::kMassaging;
  Dataset remedied = RemedyDataset(train, remedy_params).value();
  ClassifierPtr fair_model = MakeClassifier(ModelType::kGradientBoosting);
  fair_model->Fit(remedied);
  SubgroupAnalysis fixed = AnalyzeSubgroups(
      test, fair_model->PredictAll(test), Statistic::kStatisticalParity);
  double worst_before = 0.0, worst_after = 0.0;
  for (const SubgroupReport& report : analysis.subgroups) {
    worst_before = std::max(worst_before, report.divergence);
  }
  for (const SubgroupReport& report : fixed.subgroups) {
    worst_after = std::max(worst_after, report.divergence);
  }
  std::printf(
      "worst statistical-parity divergence: %.3f -> %.3f after massaging "
      "the biased regions.\n",
      worst_before, worst_after);
  return 0;
}
