#include "common/pipeline_metrics.h"

namespace remedy {

const PipelineMetrics& PipelineMetrics::Get() {
  static const PipelineMetrics* instance = [] {
    auto* m = new PipelineMetrics();
    MetricsRegistry& reg = MetricsRegistry::Global();
#define REMEDY_REGISTER_COUNTER(field, name, unit, help) \
  m->field = reg.GetCounter(name, unit, help);
    REMEDY_PIPELINE_COUNTERS(REMEDY_REGISTER_COUNTER)
#undef REMEDY_REGISTER_COUNTER

#define REMEDY_REGISTER_GAUGE(field, name, unit, help) \
  m->field = reg.GetGauge(name, unit, help);
    REMEDY_PIPELINE_GAUGES(REMEDY_REGISTER_GAUGE)
#undef REMEDY_REGISTER_GAUGE

#define REMEDY_REGISTER_HISTOGRAM(field, name, unit, help) \
  m->field = reg.GetHistogram(name, unit, help);
    REMEDY_PIPELINE_HISTOGRAMS(REMEDY_REGISTER_HISTOGRAM)
#undef REMEDY_REGISTER_HISTOGRAM
    return m;
  }();
  return *instance;
}

}  // namespace remedy
