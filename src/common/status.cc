#include "common/status.h"

namespace remedy {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDataCorruption:
      return "DATA_CORRUPTION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status DataCorruptionError(std::string message) {
  return Status(StatusCode::kDataCorruption, std::move(message));
}

Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}

Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace remedy
