#ifndef REMEDY_COMMON_FAULT_INJECTION_H_
#define REMEDY_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace remedy {

// Deterministic fault-injection harness for the recoverable error paths.
//
// The library marks its failure-prone boundaries with named injection
// points:
//
//   Status ReadFileOnce(...) {
//     REMEDY_FAULT_POINT("csv/read");
//     ...
//   }
//
// With no injector installed the macro costs one relaxed atomic load and a
// never-taken branch — safe on warm paths. A test installs a scoped
// FaultInjector and arms points to fail on their Nth hit, on every hit, or
// with probability p under a seeded RNG; the armed point then returns an
// error Status from the enclosing function exactly as a real failure would,
// which is how the fault-injection suite proves every failure surfaces as a
// clean Status instead of an abort.
//
//   FaultInjector injector;
//   injector.FailNth("csv/read", 1);               // first read attempt fails
//   StatusOr<CsvTable> t = ReadCsvFile(path);      // retried, then succeeds
//
// At most one injector may be active at a time, and arming/reading is
// mutex-guarded so points hit from thread-pool workers are safe.
class FaultInjector {
 public:
  FaultInjector();
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `point` to fail exactly its `nth` hit (1-based), once.
  void FailNth(const std::string& point, int64_t nth,
               StatusCode code = StatusCode::kIoError);

  // Arms `point` to fail every hit.
  void FailAlways(const std::string& point,
                  StatusCode code = StatusCode::kIoError);

  // Arms `point` to fail each hit independently with probability `p`,
  // drawn from a SplitMix64 stream seeded with `seed` (deterministic:
  // the k-th hit's outcome depends only on seed and k).
  void FailWithProbability(const std::string& point, double p, uint64_t seed,
                           StatusCode code = StatusCode::kIoError);

  // Removes the arming of `point`; its hits keep being counted.
  void Disarm(const std::string& point);

  // Times `point` was crossed (armed or not) since this injector went live.
  int64_t HitCount(const std::string& point) const;

  // The active injector, or nullptr. Used by the REMEDY_FAULT_POINT macro.
  static FaultInjector* Active();

  // Called by the macro on every crossing while an injector is active.
  Status Hit(const char* point);

 private:
  enum class Mode { kNth, kAlways, kProbability };

  struct Arming {
    Mode mode = Mode::kAlways;
    StatusCode code = StatusCode::kIoError;
    int64_t nth = 0;        // kNth
    double probability = 0;  // kProbability
    uint64_t rng_state = 0;  // kProbability
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Arming> armed_;
  std::unordered_map<std::string, int64_t> hits_;
};

// True while a FaultInjector is installed. Single atomic load.
bool FaultInjectionActive();

// Canonical names of every fault point wired into the library, so the test
// suite can arm each one and assert the armed failure surfaces cleanly.
const std::vector<std::string>& RegisteredFaultPoints();

}  // namespace remedy

// Declares a named injection point. Must appear in a function returning
// Status or StatusOr<T>; when the active injector arms `point`, the macro
// returns the injected error from the enclosing function.
#define REMEDY_FAULT_POINT(point)                                     \
  do {                                                                \
    if (::remedy::FaultInjectionActive()) {                           \
      ::remedy::Status remedy_fault_status_ =                         \
          ::remedy::FaultInjector::Active()->Hit(point);              \
      if (!remedy_fault_status_.ok()) {                               \
        return remedy_fault_status_;                                  \
      }                                                               \
    }                                                                 \
  } while (0)

#endif  // REMEDY_COMMON_FAULT_INJECTION_H_
