#ifndef REMEDY_COMMON_PIPELINE_METRICS_H_
#define REMEDY_COMMON_PIPELINE_METRICS_H_

#include "common/metrics.h"

namespace remedy {

// The canonical instrument set of the remedy pipeline, declared in one
// place as X-macro tables. Every metric the library emits is named here —
// instrumented code pulls its instrument from PipelineMetrics::Get()
// instead of calling MetricsRegistry::GetCounter with an ad-hoc string.
//
// This centralization is load-bearing for CI: tools/docs_check.sh greps
// the quoted names out of THESE tables and diffs them against the table in
// docs/METRICS.md, failing the docs-check test on drift. When you add a
// metric: add a row to the matching table below, document it in
// docs/METRICS.md, and use it via PipelineMetrics::Get().<field>.
//
// Naming convention: "<family>/<event>", lower_snake within segments.
// Families: lattice (hierarchy construction), ibs (subgroup
// identification), remedy (dataset repair), remedy_backend (the pluggable
// remedy write path, including the daemon's streaming commits), loader +
// csv (ingestion), threadpool, fault (fault injection), ml (model
// training / tuning), fairness (bootstrap confidence intervals), wal (the
// streaming service's write-ahead delta log), serve (the streaming
// fairness daemon).

// REMEDY_PIPELINE_COUNTERS(X): X(field, "name", "unit", "help")
#define REMEDY_PIPELINE_COUNTERS(X)                                           \
  X(lattice_nodes_built, "lattice/nodes_built", "nodes",                      \
    "lattice nodes materialized by Hierarchy::EagerBuild")                    \
  X(lattice_leaf_scans, "lattice/leaf_scans", "nodes",                        \
    "level-L nodes counted by direct dataset scan")                           \
  X(lattice_rollups, "lattice/rollups", "nodes",                              \
    "nodes derived by bottom-up rollup instead of a scan")                    \
  X(lattice_delta_rows, "lattice/delta_rows", "rows",                         \
    "row deltas applied to the lattice by the incremental engine")            \
  X(lattice_shard_rows, "lattice/shard_rows", "rows",                         \
    "rows counted through the columnar shard path (simd + sharded "           \
    "backends)")                                                              \
  X(lattice_shard_tallies, "lattice/shard_tallies", "shards",                 \
    "shard-local leaf tallies computed by the sharded backend")               \
  X(lattice_shard_merges, "lattice/shard_merges", "shards",                   \
    "shard-local tables merged (in ascending shard order) into one "          \
    "NodeTable")                                                              \
  X(lattice_radix_sort_keys, "lattice/radix_sort_keys", "keys",               \
    "NodeTable entries ordered by the LSD radix sort instead of a "           \
    "comparison sort")                                                        \
  X(lattice_radix_sort_passes, "lattice/radix_sort_passes", "passes",         \
    "counting passes executed by the radix sort (one per significant "        \
    "key byte)")                                                              \
  X(lattice_spill_shards, "lattice/spill_shards", "shards",                   \
    "completed shards written to disk by the spill-mode store builder")       \
  X(lattice_spill_bytes, "lattice/spill_bytes", "bytes",                      \
    "shard-file bytes written by the spill-mode store builder")               \
  X(lattice_mmap_shards, "lattice/mmap_shards", "shards",                     \
    "shard files memory-mapped by the out-of-core store")                     \
  X(lattice_mmap_bytes, "lattice/mmap_bytes", "bytes",                        \
    "shard-file bytes memory-mapped by the out-of-core store")                \
  X(lattice_mmap_releases, "lattice/mmap_releases", "shards",                 \
    "MADV_DONTNEED page releases after per-shard tally passes")               \
  X(ibs_nodes_visited, "ibs/nodes_visited", "nodes",                          \
    "lattice nodes examined by IdentifyIbs")                                  \
  X(ibs_hits, "ibs/hits", "nodes",                                            \
    "nodes flagged as imbalanced subgroups")                                  \
  X(ibs_neighbor_reuse, "ibs/neighbor_reuse", "nodes",                        \
    "neighbor-count evaluations served by the dominating-region "             \
    "optimization instead of a naive rescan")                                 \
  X(ibs_neighbor_naive, "ibs/neighbor_naive", "nodes",                        \
    "neighbor-count evaluations that fell back to the naive scan")            \
  X(ibs_incr_dirty_leaves, "ibs_incr/dirty_leaves", "keys",                   \
    "leaf region keys consumed from the dirty set per incremental "           \
    "identify pass")                                                          \
  X(ibs_incr_rescored_regions, "ibs_incr/rescored_regions", "regions",        \
    "regions re-scored by the incremental identify path (dirty keys plus "    \
    "their neighborhood frontier)")                                           \
  X(ibs_incr_neighborhood_expansions, "ibs_incr/neighborhood_expansions",     \
    "regions",                                                                \
    "frontier keys added to the re-evaluation set because a region within "   \
    "distance T of them changed")                                             \
  X(ibs_incr_cache_hits, "ibs_incr/cache_hits", "regions",                    \
    "biased verdicts reused from the previous pass's cache instead of "       \
    "being re-scored")                                                        \
  X(ibs_incr_full_fallbacks, "ibs_incr/full_fallbacks", "passes",             \
    "incremental identify passes that fell back to a full lattice sweep "     \
    "(cold cache, recovery, rebuild, or params change)")                      \
  X(remedy_regions_planned, "remedy/regions_planned", "regions",              \
    "imbalanced regions a remedy plan was computed for")                      \
  X(remedy_oversample_rows_added, "remedy/oversample/rows_added", "rows",     \
    "rows duplicated by the oversampling technique")                          \
  X(remedy_undersample_rows_removed, "remedy/undersample/rows_removed",       \
    "rows", "rows removed by the undersampling technique")                    \
  X(remedy_preferential_rows_added, "remedy/preferential/rows_added",         \
    "rows", "rows added by preferential sampling")                            \
  X(remedy_preferential_rows_removed, "remedy/preferential/rows_removed",     \
    "rows", "rows removed by preferential sampling")                          \
  X(remedy_massaging_labels_flipped, "remedy/massaging/labels_flipped",       \
    "rows", "labels flipped by the massaging technique")                      \
  X(remedy_incremental_passes, "remedy/incremental_passes", "passes",         \
    "remedy passes served by the incremental (delta-maintained) engine")      \
  X(remedy_rebuild_passes, "remedy/rebuild_passes", "passes",                 \
    "remedy passes that fell back to a full lattice rebuild")                 \
  X(remedy_backend_plans, "remedy_backend/plans", "plans",                    \
    "delta plans computed by RemedyBackend::PlanDeltas")                      \
  X(remedy_backend_deltas_planned, "remedy_backend/deltas_planned",           \
    "deltas", "net leaf-count deltas emitted across all remedy plans")        \
  X(remedy_backend_streaming_commits, "remedy_backend/streaming_commits",     \
    "commits",                                                                \
    "remedy plans WAL-committed through the daemon's group-commit path")      \
  X(remedy_backend_stale_plans, "remedy_backend/stale_plans", "plans",        \
    "remedy plans rejected at commit because ingest advanced past the "       \
    "pinned sequence")                                                        \
  X(remedy_backend_auto_triggers, "remedy_backend/auto_triggers",             \
    "triggers", "auto-remedy rounds started by the monitor policy hook")      \
  X(loader_files, "loader/files", "files",                                    \
    "CSV files ingested by LoadCsvDataset")                                   \
  X(loader_rows_loaded, "loader/rows_loaded", "rows",                         \
    "rows accepted into a Dataset")                                           \
  X(loader_rows_dropped_missing, "loader/rows_dropped_missing", "rows",       \
    "rows dropped for missing values under DropRow policy")                   \
  X(loader_rows_quarantined, "loader/rows_quarantined", "rows",               \
    "malformed rows diverted to the quarantine file")                         \
  X(csv_records, "csv/records", "records",                                    \
    "CSV records parsed (including later-dropped ones)")                      \
  X(csv_bad_records, "csv/bad_records", "records",                           \
    "CSV records rejected by the parser as structurally malformed")           \
  X(csv_read_retries, "csv/read_retries", "attempts",                         \
    "extra read attempts taken by ReadCsvFile after transient I/O faults")    \
  X(store_shard_read_retries, "store/shard_read_retries", "attempts",         \
    "extra attempts taken opening or mapping spilled shard files after "      \
    "transient I/O faults")                                                   \
  X(wal_records_appended, "wal/records_appended", "records",                  \
    "delta batches framed into the write-ahead log")                          \
  X(wal_bytes_appended, "wal/bytes_appended", "bytes",                        \
    "bytes written to the write-ahead log (frames + payloads)")               \
  X(wal_syncs, "wal/syncs", "syncs",                                          \
    "group commits fsync'd to the write-ahead log")                           \
  X(wal_records_replayed, "wal/records_replayed", "records",                  \
    "committed records re-applied from the log during recovery")              \
  X(wal_torn_tails_repaired, "wal/torn_tails_repaired", "repairs",            \
    "incomplete log tails truncated away by recovery")                        \
  X(wal_checkpoints, "wal/checkpoints", "checkpoints",                        \
    "leaf-count checkpoints committed (tmp + rename) and the log reset")      \
  X(serve_batches_ingested, "serve/batches_ingested", "batches",              \
    "delta batches accepted into the daemon's ingest queue")                  \
  X(serve_rows_ingested, "serve/rows_ingested", "rows",                       \
    "row deltas accepted into the daemon's ingest queue")                     \
  X(serve_batches_rejected, "serve/batches_rejected", "batches",              \
    "delta batches rejected by backpressure (queue full) or read-only "       \
    "mode")                                                                   \
  X(serve_batches_applied, "serve/batches_applied", "batches",                \
    "WAL-committed batches applied to the daemon's lattice")                  \
  X(serve_apply_failures, "serve/apply_failures", "batches",                  \
    "batches whose WAL append, sync, or lattice apply failed")                \
  X(serve_epochs_published, "serve/epochs_published", "epochs",               \
    "immutable query snapshots published by the apply thread")                \
  X(serve_queries_served, "serve/queries_served", "queries",                  \
    "identify/audit queries answered from an epoch snapshot")                 \
  X(serve_monitor_alerts, "serve/monitor_alerts", "alerts",                   \
    "epoch-over-epoch subgroup changes flagged by the online monitor")        \
  X(serve_read_only_trips, "serve/read_only_trips", "trips",                  \
    "times the watchdog switched the daemon into read-only mode")             \
  X(threadpool_tasks_submitted, "threadpool/tasks_submitted", "tasks",        \
    "tasks enqueued on any ThreadPool")                                       \
  X(fault_points_crossed, "fault/points_crossed", "events",                   \
    "REMEDY_FAULT_POINT sites evaluated while an injector was active")        \
  X(fault_faults_fired, "fault/faults_fired", "events",                       \
    "fault-injection sites that actually fired a fault")                      \
  X(ml_fits, "ml/fits", "models",                                             \
    "classifier Fit calls completed (any model type)")                        \
  X(ml_trees_trained, "ml/trees_trained", "trees",                            \
    "decision trees grown inside RandomForest::Fit")                          \
  X(ml_epochs, "ml/epochs", "epochs",                                         \
    "gradient epochs run by logistic regression and the neural network")      \
  X(ml_encoded_matrices, "ml/encoded_matrices", "matrices",                   \
    "EncodedMatrix caches built from a Dataset")                              \
  X(ml_grid_candidates, "ml/grid_candidates", "candidates",                   \
    "candidate configurations evaluated by GridSearch")                       \
  X(fairness_bootstrap_replicates, "fairness/bootstrap_replicates",           \
    "replicates", "bootstrap resamples evaluated by BootstrapFairnessIndex")

// REMEDY_PIPELINE_GAUGES(X): X(field, "name", "unit", "help")
#define REMEDY_PIPELINE_GAUGES(X)                                  \
  X(threadpool_queue_depth, "threadpool/queue_depth", "tasks",     \
    "tasks waiting in ThreadPool queues (max = high-water mark)")  \
  X(serve_queue_depth, "serve/queue_depth", "batches",             \
    "batches waiting in the daemon's ingest queue (max = high-water mark)")

// REMEDY_PIPELINE_HISTOGRAMS(X): X(field, "name", "unit", "help")
#define REMEDY_PIPELINE_HISTOGRAMS(X)                              \
  X(threadpool_task_latency_ns, "threadpool/task_latency_ns", "ns", \
    "per-task wall time from dequeue to completion")                \
  X(threadpool_queue_wait_ns, "threadpool/queue_wait_ns", "ns",     \
    "per-task wall time from enqueue to dequeue")                   \
  X(ml_fit_ns, "ml/fit_ns", "ns",                                   \
    "wall time of each classifier Fit call")                        \
  X(serve_apply_ns, "serve/apply_ns", "ns",                         \
    "per-batch wall time from dequeue through WAL commit, lattice " \
    "apply, and snapshot publish")                                  \
  X(ibs_incr_identify_ns, "ibs_incr/identify_ns", "ns",             \
    "wall time of each incremental identify pass (full fallbacks "  \
    "not included)")                                                \
  X(remedy_backend_plan_ns, "remedy_backend/plan_ns", "ns",         \
    "wall time of RemedyBackend::PlanDeltas (materialize, plan, "   \
    "and diff)")

// All pipeline instruments, registered once on first use. Call sites do
//   PipelineMetrics::Get().ibs_nodes_visited->Increment(n);
struct PipelineMetrics {
#define REMEDY_DECLARE_COUNTER(field, name, unit, help) Counter* field;
  REMEDY_PIPELINE_COUNTERS(REMEDY_DECLARE_COUNTER)
#undef REMEDY_DECLARE_COUNTER

#define REMEDY_DECLARE_GAUGE(field, name, unit, help) Gauge* field;
  REMEDY_PIPELINE_GAUGES(REMEDY_DECLARE_GAUGE)
#undef REMEDY_DECLARE_GAUGE

#define REMEDY_DECLARE_HISTOGRAM(field, name, unit, help) Histogram* field;
  REMEDY_PIPELINE_HISTOGRAMS(REMEDY_DECLARE_HISTOGRAM)
#undef REMEDY_DECLARE_HISTOGRAM

  // The process-wide instance (instruments registered in the global
  // MetricsRegistry; the returned reference never moves).
  static const PipelineMetrics& Get();
};

}  // namespace remedy

#endif  // REMEDY_COMMON_PIPELINE_METRICS_H_
