#ifndef REMEDY_COMMON_METRICS_H_
#define REMEDY_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace remedy {

// Pipeline metrics: counters, gauges, and log-scale histograms behind a
// process-global registry.
//
// Design goals, in order: (1) a hot-path write must never take a lock or
// contend a shared cache line — counters and histograms are sharded into
// cache-line-padded per-thread slots updated with relaxed atomics, and a
// snapshot aggregates the shards; (2) instruments are registered once and
// live for the process, so call sites cache a reference and pay only the
// atomic add afterwards; (3) everything is readable at any time — Snapshot()
// is linearizable enough for reporting (each shard is read atomically, the
// sum may miss in-flight increments, never double-counts).
//
// The canonical instrument set of the library lives in
// common/pipeline_metrics.h; docs/METRICS.md documents every name and the
// docs-check CI target holds the two in sync.

enum class MetricType { kCounter, kGauge, kHistogram };

namespace metrics_internal {

// Shard count: power of two, enough that 8-16 worker threads rarely share a
// slot. Threads hash onto shards by a thread-local id, so a thread's
// increments always land on the same cache line.
inline constexpr int kShards = 16;

// Index of the calling thread's shard (stable per thread).
int ShardIndex();

struct alignas(64) PaddedCount {
  std::atomic<int64_t> value{0};
};

}  // namespace metrics_internal

// Monotonically increasing count (events, rows, nodes). Lock-free sharded
// fast path; Value() sums the shards.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    shards_[metrics_internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  int64_t Value() const;

  // Test-only: zeroes every shard. Not atomic with concurrent increments.
  void Reset();

 private:
  std::array<metrics_internal::PaddedCount, metrics_internal::kShards>
      shards_;
};

// Instantaneous level (queue depth, working-set rows) with a high-water
// mark. Set/Add are single relaxed atomics plus a CAS loop for the
// watermark (contended only while the gauge is actually rising).
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  void RaiseMax(int64_t candidate);

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Distribution of a non-negative integer quantity (latencies in ns, sizes)
// over fixed base-2 log-scale buckets: bucket 0 holds values <= 1, bucket i
// holds (2^(i-1), 2^i], the last bucket is open-ended. Sharded like Counter;
// Observe is two relaxed adds and one bucket add.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;  // covers up to ~2^43 ns ≈ 2.4h

  void Observe(int64_t value);

  int64_t Count() const;
  int64_t Sum() const;
  std::array<int64_t, kNumBuckets> BucketCounts() const;

  // Inclusive upper bound of bucket `b` (1, 2, 4, ...; INT64_MAX for the
  // open-ended last bucket).
  static int64_t BucketUpperBound(int b);
  // The bucket a value lands in.
  static int BucketFor(int64_t value);

  // Approximate quantile (0 <= q <= 1) from the bucket histogram: the upper
  // bound of the bucket holding the q-th observation. 0 when empty.
  int64_t ApproxQuantile(double q) const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
  };
  std::array<Shard, metrics_internal::kShards> shards_;
};

// One instrument's aggregated state at snapshot time.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string unit;
  std::string help;
  int64_t value = 0;  // counter total / gauge current
  int64_t max = 0;    // gauge high-water mark
  // Histogram only.
  int64_t count = 0;
  int64_t sum = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
  // (inclusive upper bound, count) for non-empty buckets, ascending.
  std::vector<std::pair<int64_t, int64_t>> buckets;
};

// Process-global instrument registry. Get* registers on first use (name ->
// stable instrument pointer, so call sites cache the reference); re-getting
// an existing name returns the same instrument and CHECKs the type matches.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view unit,
                      std::string_view help);
  Gauge* GetGauge(std::string_view name, std::string_view unit,
                  std::string_view help);
  Histogram* GetHistogram(std::string_view name, std::string_view unit,
                          std::string_view help);

  // Aggregated state of every registered instrument, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  // Registered names, sorted.
  std::vector<std::string> Names() const;

  // Test/CLI support: zero every instrument (registrations are kept).
  // Not atomic with concurrent writers.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  struct Entry {
    MetricType type;
    std::string unit;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> instruments_;
};

// Serializes snapshots as one JSON object keyed by metric name, e.g.
//   {"lattice/nodes_built": {"type": "counter", "unit": "nodes",
//    "value": 254}, ...}
// Histograms carry count/sum/p50/p99 and a buckets array of [le, n] pairs.
std::string MetricsToJson(const std::vector<MetricSnapshot>& snapshots);

// Human-readable table (name, type, value columns) via TablePrinter.
void PrintMetricsTable(const std::vector<MetricSnapshot>& snapshots,
                       std::ostream& out);

// Snapshot the global registry and write MetricsToJson to `path`.
Status WriteMetricsJsonFile(const std::string& path);

}  // namespace remedy

#endif  // REMEDY_COMMON_METRICS_H_
