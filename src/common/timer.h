#ifndef REMEDY_COMMON_TIMER_H_
#define REMEDY_COMMON_TIMER_H_

#include <cstdint>

#include "common/clock.h"

namespace remedy {

// Wall-clock stopwatch for the runtime experiments (Fig. 9, Table III).
// Reads MonotonicNanos() — the same clock TraceSpan stamps spans with — so
// bench timings and trace durations of the same phase agree.
class WallTimer {
 public:
  WallTimer() : start_ns_(MonotonicNanos()) {}

  void Restart() { start_ns_ = MonotonicNanos(); }

  // Elapsed since construction or the last Restart().
  int64_t Nanos() const { return MonotonicNanos() - start_ns_; }
  double Seconds() const { return static_cast<double>(Nanos()) * 1e-9; }
  double Millis() const { return static_cast<double>(Nanos()) * 1e-6; }

 private:
  int64_t start_ns_;
};

}  // namespace remedy

#endif  // REMEDY_COMMON_TIMER_H_
