#ifndef REMEDY_COMMON_TIMER_H_
#define REMEDY_COMMON_TIMER_H_

#include <chrono>

namespace remedy {

// Wall-clock stopwatch for the runtime experiments (Fig. 9, Table III).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace remedy

#endif  // REMEDY_COMMON_TIMER_H_
