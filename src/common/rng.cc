#include "common/rng.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace remedy {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t StreamSeed(uint64_t seed, uint64_t index) {
  // Advance by the golden gamma per stream, then finalize: the standard
  // SplitMix64 sequence starting at `seed`, sampled at position `index`.
  return SplitMix64(seed + 0x9e3779b97f4a7c15ull * index);
}

int Rng::UniformInt(int n) {
  REMEDY_CHECK(n > 0) << "UniformInt needs a positive bound, got " << n;
  std::uniform_int_distribution<int> dist(0, n - 1);
  return dist(engine_);
}

int Rng::UniformRange(int lo, int hi) {
  REMEDY_CHECK(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Normal() { return Normal(0.0, 1.0); }

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return Uniform() < p;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    REMEDY_CHECK(w >= 0.0) << "negative categorical weight " << w;
    total += w;
  }
  REMEDY_CHECK(total > 0.0) << "categorical weights sum to zero";
  double draw = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) return static_cast<int>(i);
  }
  // Floating-point slack: fall back to the last positive weight.
  for (int i = static_cast<int>(weights.size()) - 1; i >= 0; --i) {
    if (weights[i] > 0.0) return i;
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  REMEDY_CHECK(k >= 0 && k <= n)
      << "cannot sample " << k << " of " << n << " without replacement";
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  // Partial Fisher-Yates: after i swaps the first i entries are the sample.
  for (int i = 0; i < k; ++i) {
    std::swap(indices[i], indices[UniformRange(i, n - 1)]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() {
  // SplitMix64 scramble of a fresh draw decorrelates parent and child
  // (bit-identical to the historical inline mix).
  return Rng(SplitMix64(engine_()));
}

}  // namespace remedy
