#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "common/table_printer.h"

namespace remedy {

namespace metrics_internal {

int ShardIndex() {
  // One shard per thread, assigned round-robin on first use. Wraps past
  // kShards, so long-lived pools (the common case) get distinct shards and
  // thread churn degrades to sharing, never to unbounded growth.
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace metrics_internal

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Set(int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  RaiseMax(value);
}

void Gauge::Add(int64_t delta) {
  const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) +
                      delta;
  if (delta > 0) RaiseMax(now);
}

void Gauge::RaiseMax(int64_t candidate) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 1) return 0;
  // Bucket i holds (2^(i-1), 2^i]: bit_width(value - 1) for value >= 2.
  int bits = 0;
  for (uint64_t v = static_cast<uint64_t>(value - 1); v != 0; v >>= 1) {
    ++bits;
  }
  return std::min(bits, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int b) {
  REMEDY_CHECK(b >= 0 && b < kNumBuckets);
  if (b == kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return int64_t{1} << b;
}

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  Shard& shard = shards_[metrics_internal::ShardIndex()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<int64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<int64_t, kNumBuckets> totals{};
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      totals[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

int64_t Histogram::ApproxQuantile(double q) const {
  const std::array<int64_t, kNumBuckets> totals = BucketCounts();
  int64_t count = 0;
  for (int64_t n : totals) count += n;
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(count) + 0.5));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += totals[b];
    if (seen >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view unit,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = instruments_.try_emplace(std::string(name));
  if (inserted) {
    it->second.type = MetricType::kCounter;
    it->second.unit = std::string(unit);
    it->second.help = std::string(help);
    it->second.counter = std::make_unique<Counter>();
  }
  REMEDY_CHECK(it->second.type == MetricType::kCounter)
      << "metric '" << it->first << "' re-registered with a different type";
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view unit,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = instruments_.try_emplace(std::string(name));
  if (inserted) {
    it->second.type = MetricType::kGauge;
    it->second.unit = std::string(unit);
    it->second.help = std::string(help);
    it->second.gauge = std::make_unique<Gauge>();
  }
  REMEDY_CHECK(it->second.type == MetricType::kGauge)
      << "metric '" << it->first << "' re-registered with a different type";
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view unit,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = instruments_.try_emplace(std::string(name));
  if (inserted) {
    it->second.type = MetricType::kHistogram;
    it->second.unit = std::string(unit);
    it->second.help = std::string(help);
    it->second.histogram = std::make_unique<Histogram>();
  }
  REMEDY_CHECK(it->second.type == MetricType::kHistogram)
      << "metric '" << it->first << "' re-registered with a different type";
  return it->second.histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> snapshots;
  snapshots.reserve(instruments_.size());
  for (const auto& [name, entry] : instruments_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.type = entry.type;
    snap.unit = entry.unit;
    snap.help = entry.help;
    switch (entry.type) {
      case MetricType::kCounter:
        snap.value = entry.counter->Value();
        break;
      case MetricType::kGauge:
        snap.value = entry.gauge->Value();
        snap.max = entry.gauge->Max();
        break;
      case MetricType::kHistogram: {
        snap.count = entry.histogram->Count();
        snap.sum = entry.histogram->Sum();
        snap.p50 = entry.histogram->ApproxQuantile(0.5);
        snap.p99 = entry.histogram->ApproxQuantile(0.99);
        const auto buckets = entry.histogram->BucketCounts();
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          if (buckets[b] > 0) {
            snap.buckets.emplace_back(Histogram::BucketUpperBound(b),
                                      buckets[b]);
          }
        }
        break;
      }
    }
    snapshots.push_back(std::move(snap));
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snapshots;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(instruments_.size());
  for (const auto& [name, entry] : instruments_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : instruments_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

namespace {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string MetricsToJson(const std::vector<MetricSnapshot>& snapshots) {
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& snap : snapshots) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  ");
    AppendJsonString(snap.name, &out);
    out.append(": {\"type\": ");
    AppendJsonString(TypeName(snap.type), &out);
    out.append(", \"unit\": ");
    AppendJsonString(snap.unit, &out);
    switch (snap.type) {
      case MetricType::kCounter:
        out.append(", \"value\": " + std::to_string(snap.value));
        break;
      case MetricType::kGauge:
        out.append(", \"value\": " + std::to_string(snap.value) +
                   ", \"max\": " + std::to_string(snap.max));
        break;
      case MetricType::kHistogram: {
        out.append(", \"count\": " + std::to_string(snap.count) +
                   ", \"sum\": " + std::to_string(snap.sum) +
                   ", \"p50\": " + std::to_string(snap.p50) +
                   ", \"p99\": " + std::to_string(snap.p99) +
                   ", \"buckets\": [");
        bool first_bucket = true;
        for (const auto& [le, n] : snap.buckets) {
          if (!first_bucket) out.append(", ");
          first_bucket = false;
          out.append("[" + std::to_string(le) + ", " + std::to_string(n) +
                     "]");
        }
        out.push_back(']');
        break;
      }
    }
    out.push_back('}');
  }
  out.append("\n}\n");
  return out;
}

void PrintMetricsTable(const std::vector<MetricSnapshot>& snapshots,
                       std::ostream& out) {
  TablePrinter table({"metric", "type", "unit", "value"});
  for (const MetricSnapshot& snap : snapshots) {
    std::string value;
    switch (snap.type) {
      case MetricType::kCounter:
        value = std::to_string(snap.value);
        break;
      case MetricType::kGauge:
        value = std::to_string(snap.value) + " (max " +
                std::to_string(snap.max) + ")";
        break;
      case MetricType::kHistogram:
        value = "n=" + std::to_string(snap.count) +
                " p50<=" + std::to_string(snap.p50) +
                " p99<=" + std::to_string(snap.p99);
        break;
    }
    table.AddRow({snap.name, TypeName(snap.type), snap.unit, value});
  }
  table.Print(out);
}

Status WriteMetricsJsonFile(const std::string& path) {
  const std::string json =
      MetricsToJson(MetricsRegistry::Global().Snapshot());
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return IoError("cannot open " + path + " for metrics export");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool failed = written != json.size() || std::fclose(file) != 0;
  if (failed) return IoError("write of metrics JSON to " + path + " failed");
  return OkStatus();
}

}  // namespace remedy
