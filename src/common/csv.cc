#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace remedy {
namespace {

// Parses one logical CSV record starting at *pos; advances *pos past the
// record terminator. Returns false on unterminated quotes.
bool ParseRecord(const std::string& text, size_t* pos,
                 std::vector<std::string>* fields, std::string* error) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"') {
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\n' || c == '\r') {
      ++i;
      if (c == '\r' && i < n && text[i] == '\n') ++i;
      break;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    *error = "unterminated quoted field";
    return false;
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

bool ParseCsv(const std::string& text, bool has_header, CsvTable* table,
              std::string* error) {
  table->header.clear();
  table->rows.clear();
  size_t pos = 0;
  bool first = true;
  size_t expected_width = 0;
  while (pos < text.size()) {
    std::vector<std::string> fields;
    if (!ParseRecord(text, &pos, &fields, error)) return false;
    // Skip completely blank trailing lines.
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (first) {
      expected_width = fields.size();
      first = false;
      if (has_header) {
        table->header = std::move(fields);
        continue;
      }
    }
    if (fields.size() != expected_width) {
      std::ostringstream msg;
      msg << "row " << table->rows.size() + 1 << " has " << fields.size()
          << " fields, expected " << expected_width;
      *error = msg.str();
      return false;
    }
    table->rows.push_back(std::move(fields));
  }
  return true;
}

bool ReadCsvFile(const std::string& path, bool has_header, CsvTable* table,
                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), has_header, table, error);
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  auto write_record = [&out](const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(fields[i], &out);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) write_record(table.header);
  for (const auto& row : table.rows) write_record(row);
  return out;
}

bool WriteCsvFile(const std::string& path, const CsvTable& table,
                  std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  out << WriteCsv(table);
  if (!out) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace remedy
