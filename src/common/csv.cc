#include "common/csv.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/fault_injection.h"
#include "common/pipeline_metrics.h"

namespace remedy {
namespace {

constexpr char kUtf8Bom[] = "\xEF\xBB\xBF";

// Parses one logical CSV record starting at *pos; advances *pos past the
// record terminator and *line past the consumed newlines. Quoted fields may
// contain separators, quotes ("" escapes) and newlines. On a malformed
// record (unterminated quote) returns false with *reason set;
// *resync_pos/*resync_line then name the first line boundary inside the
// record, where a tolerant caller can resume parsing.
bool ParseRecord(const std::string& text, size_t* pos, int* line,
                 std::vector<std::string>* fields, std::string* reason,
                 size_t* resync_pos, int* resync_line) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  int newlines = 0;
  *resync_pos = std::string::npos;
  auto note_line_boundary = [&](size_t after) {
    ++newlines;
    if (*resync_pos == std::string::npos) {
      *resync_pos = after;
      *resync_line = *line + newlines;
    }
  };
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') note_line_boundary(i + 1);
        field.push_back(c);
        ++i;
      }
    } else if (c == '"') {
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields->push_back(std::move(field));
      field.clear();
      ++i;
    } else if (c == '\n' || c == '\r') {
      ++i;
      if (c == '\r' && i < n && text[i] == '\n') ++i;
      note_line_boundary(i);
      break;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  *pos = i;
  *line += newlines;
  if (in_quotes) {
    *reason = "unterminated quoted field";
    return false;
  }
  fields->push_back(std::move(field));
  return true;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

// One read attempt. *retryable distinguishes transient failures (worth a
// backed-off retry) from definitive ones like a missing file.
Status ReadFileOnce(const std::string& path, std::string* contents,
                    bool* retryable) {
  *retryable = true;
  REMEDY_FAULT_POINT("csv/read");
  errno = 0;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    *retryable = errno != ENOENT;
    return IoError("cannot open " + path + ": " + std::strerror(errno));
  }
  contents->clear();
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents->append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return IoError("read of " + path + " failed");
  return OkStatus();
}

}  // namespace

StatusOr<CsvTable> ParseCsv(const std::string& text,
                            const CsvParseOptions& options) {
  CsvTable table;
  size_t pos = 0;
  if (text.compare(0, 3, kUtf8Bom, 3) == 0) pos = 3;  // BOM before header
  int line = 1;
  bool first = true;
  size_t expected_width = 0;
  while (pos < text.size()) {
    const int record_line = line;
    std::vector<std::string> fields;
    std::string reason;
    size_t resync_pos = std::string::npos;
    int resync_line = line;
    if (!ParseRecord(text, &pos, &line, &fields, &reason, &resync_pos,
                     &resync_line)) {
      if (!options.tolerate_bad_rows) {
        return DataCorruptionError("line " + std::to_string(record_line) +
                                   ": " + reason);
      }
      table.bad_rows.push_back({record_line, reason});
      // The malformed record consumed everything to EOF (unterminated
      // quote); give the lines after its first boundary a chance instead of
      // discarding the rest of the file with it.
      if (resync_pos == std::string::npos || resync_pos >= text.size()) break;
      pos = resync_pos;
      line = resync_line;
      continue;
    }
    // Skip blank lines (including the one a trailing newline implies).
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (first) {
      expected_width = fields.size();
      first = false;
      if (options.has_header) {
        table.header = std::move(fields);
        continue;
      }
    }
    if (fields.size() != expected_width) {
      std::string mismatch = "has " + std::to_string(fields.size()) +
                             " fields, expected " +
                             std::to_string(expected_width);
      if (!options.tolerate_bad_rows) {
        return DataCorruptionError("line " + std::to_string(record_line) +
                                   ": " + mismatch);
      }
      table.bad_rows.push_back({record_line, std::move(mismatch)});
      continue;
    }
    table.rows.push_back(std::move(fields));
  }
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.csv_records->Increment(static_cast<int64_t>(table.rows.size()) +
                                 static_cast<int64_t>(table.bad_rows.size()));
  metrics.csv_bad_records->Increment(
      static_cast<int64_t>(table.bad_rows.size()));
  return table;
}

StatusOr<CsvTable> ReadCsvFile(const std::string& path,
                               const CsvReadOptions& options) {
  const int max_attempts = std::max(1, options.max_attempts);
  int backoff_ms = std::max(0, options.initial_backoff_ms);
  std::string contents;
  Status last = OkStatus();
  int attempts = 0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    bool retryable = true;
    ++attempts;
    if (attempt > 1) PipelineMetrics::Get().csv_read_retries->Increment();
    last = ReadFileOnce(path, &contents, &retryable);
    if (last.ok()) {
      StatusOr<CsvTable> parsed = ParseCsv(contents, options.parse);
      if (!parsed.ok()) return parsed.status().WithContext(path);
      return parsed;
    }
    if (!retryable) break;
  }
  return last.WithContext("reading " + path + " failed after " +
                          std::to_string(attempts) + " attempt(s)");
}

std::string WriteCsv(const CsvTable& table) {
  std::string out;
  auto write_record = [&out](const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(fields[i], &out);
    }
    out.push_back('\n');
  };
  if (!table.header.empty()) write_record(table.header);
  for (const auto& row : table.rows) write_record(row);
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  REMEDY_FAULT_POINT("csv/write");
  std::ofstream out(path, std::ios::binary);
  if (!out) return IoError("cannot open " + path + " for writing");
  out << WriteCsv(table);
  out.flush();
  if (!out) return IoError("write to " + path + " failed");
  return OkStatus();
}

}  // namespace remedy
