#include "common/fault_injection.h"

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/rng.h"

namespace remedy {
namespace {

// The active injector. The injector must outlive every operation it drives
// (it is meant to be scoped around the calls under test), so the
// check-then-use in REMEDY_FAULT_POINT needs no further synchronization.
std::atomic<FaultInjector*> g_active{nullptr};

}  // namespace

bool FaultInjectionActive() {
  return g_active.load(std::memory_order_acquire) != nullptr;
}

const std::vector<std::string>& RegisteredFaultPoints() {
  // Keep in sync with the REMEDY_FAULT_POINT sites; fault_injection_test
  // arms each name and drives the code path that crosses it.
  static const std::vector<std::string>* const kPoints =
      new std::vector<std::string>{
          "csv/read",             // per read attempt in ReadCsvFile
          "csv/write",            // WriteCsvFile
          "loader/build",         // BuildDataset / LoadCsvDataset
          "threadpool/dispatch",  // ThreadPool::ParallelFor fan-out
          "remedy/apply",         // RemedyDataset entry
          "store/spill_write",    // per shard file written by the spill mode
          "store/mmap_map",       // per shard file mapped by EnsureMapped
          "store/shard_read",     // per spilled shard header read / map
                                  // attempt (retried with backoff)
          "wal/append",           // per record framed into the delta WAL
          "wal/fsync",            // per WAL group-commit / checkpoint sync
          "wal/replay",           // per record decoded during WAL recovery
          "serve/ingest",         // per batch parsed by the serve daemon
          "serve/apply",          // per committed batch applied to the
                                  // daemon's lattice
      };
  return *kPoints;
}

FaultInjector::FaultInjector() {
  FaultInjector* expected = nullptr;
  REMEDY_CHECK(g_active.compare_exchange_strong(expected, this,
                                                std::memory_order_acq_rel))
      << "another FaultInjector is already active";
}

FaultInjector::~FaultInjector() {
  g_active.store(nullptr, std::memory_order_release);
}

FaultInjector* FaultInjector::Active() {
  return g_active.load(std::memory_order_acquire);
}

void FaultInjector::FailNth(const std::string& point, int64_t nth,
                            StatusCode code) {
  REMEDY_CHECK(nth >= 1) << "hit numbering is 1-based";
  std::lock_guard<std::mutex> lock(mu_);
  Arming arming;
  arming.mode = Mode::kNth;
  arming.nth = nth;
  arming.code = code;
  armed_[point] = arming;
}

void FaultInjector::FailAlways(const std::string& point, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Arming arming;
  arming.mode = Mode::kAlways;
  arming.code = code;
  armed_[point] = arming;
}

void FaultInjector::FailWithProbability(const std::string& point, double p,
                                        uint64_t seed, StatusCode code) {
  REMEDY_CHECK(p >= 0.0 && p <= 1.0) << "probability out of range";
  std::lock_guard<std::mutex> lock(mu_);
  Arming arming;
  arming.mode = Mode::kProbability;
  arming.probability = p;
  arming.rng_state = seed;
  arming.code = code;
  armed_[point] = arming;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(point);
}

int64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

Status FaultInjector::Hit(const char* point) {
  PipelineMetrics::Get().fault_points_crossed->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t hit = ++hits_[point];
  auto it = armed_.find(point);
  if (it == armed_.end()) return OkStatus();
  Arming& arming = it->second;
  bool fire = false;
  switch (arming.mode) {
    case Mode::kNth:
      fire = hit == arming.nth;
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kProbability: {
      arming.rng_state = SplitMix64(arming.rng_state);
      const double draw =
          static_cast<double>(arming.rng_state >> 11) * 0x1.0p-53;
      fire = draw < arming.probability;
      break;
    }
  }
  if (!fire) return OkStatus();
  PipelineMetrics::Get().fault_faults_fired->Increment();
  return Status(arming.code, std::string("injected fault at ") + point +
                                 " (hit " + std::to_string(hit) + ")");
}

}  // namespace remedy
