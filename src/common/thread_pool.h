#ifndef REMEDY_COMMON_THREAD_POOL_H_
#define REMEDY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace remedy {

// Small reusable worker pool for data-parallel phases (e.g. the hierarchy's
// EagerBuild, which evaluates all lattice nodes of one level concurrently).
//
// Tasks are plain std::function<void()> drained FIFO by `num_threads` worker
// threads. The pool is intentionally minimal: no futures, no task stealing —
// callers that need a barrier use Wait() or the blocking ParallelFor().
//
// Failure model: a task that throws no longer takes the process down via
// std::terminate. The first exception (per barrier) is captured into a
// kInternal Status and surfaced at the next Wait() / by the ParallelFor()
// return value; subsequent tasks still run (ParallelFor stops claiming new
// indices once one has failed).
class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Joins the workers after draining already-submitted tasks.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Drains already-submitted tasks and joins the workers. Idempotent; the
  // destructor calls it. Further Submit()/ParallelFor() calls fail with a
  // Status instead of aborting.
  void Shutdown();

  // Enqueues one task. Fails with kInternal after Shutdown().
  Status Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then reports (and
  // clears) the first failure captured from a throwing task since the last
  // Wait(). OK when every task returned normally.
  Status Wait();

  // Runs fn(i) for every i in [0, count) across the pool and blocks until
  // all calls have returned. Work is claimed one index at a time off a
  // shared counter, so uneven per-index costs balance automatically. If an
  // fn(i) throws, no further indices are claimed and the first exception
  // comes back as kInternal; indices already claimed still complete. The
  // sweep enqueues atomically with respect to Shutdown(): it either fails
  // cleanly with no index run, or every index completes.
  Status ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  // CPUs actually usable by this process: hardware_concurrency(), further
  // restricted by the scheduling affinity mask and (on Linux) the cgroup v2
  // cpu quota, with a floor of 1. Containers routinely pin far fewer CPUs
  // than the host exposes; sizing pools by the raw core count there just
  // buys contention.
  static int DefaultThreads();

 private:
  void WorkerLoop();
  void RecordFailure(Status status);  // keeps the first failure only
  // Enqueues every task or none (all-or-nothing against Shutdown); the
  // atomic dispatch behind ParallelFor's shutdown guarantee.
  Status SubmitAll(std::vector<std::function<void()>> tasks);

  // Queued task plus its enqueue timestamp, so the dequeueing worker can
  // charge the queue-wait histogram.
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_ns;
  };

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task queued / stop
  std::condition_variable idle_cv_;  // signals Wait(): pending_ hit zero
  int64_t pending_ = 0;              // queued + currently running tasks
  bool stop_ = false;
  Status first_failure_;  // first throwing Submit() task since last Wait()
};

// Worker count denoted by a `threads` knob as used across the library:
// values <= 0 mean "every usable CPU" (ThreadPool::DefaultThreads());
// positive values are taken literally, so 1 = serial.
inline int ResolveThreadCount(int threads) {
  return threads <= 0 ? ThreadPool::DefaultThreads() : threads;
}

}  // namespace remedy

#endif  // REMEDY_COMMON_THREAD_POOL_H_
