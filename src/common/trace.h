#ifndef REMEDY_COMMON_TRACE_H_
#define REMEDY_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace remedy {

// Low-overhead tracing spans with Chrome trace_event JSON export.
//
// The library marks its coarse phase boundaries with RAII spans:
//
//   Status Hierarchy::EagerBuild(int threads) {
//     REMEDY_TRACE_SPAN("hierarchy/eager_build");
//     ...
//   }
//
// With no TraceSink installed (the common case) a span costs one relaxed
// atomic load and a never-taken branch — no clock read, no allocation. A
// tool that wants a trace installs a scoped TraceSink, runs the pipeline,
// and writes the collected spans as Chrome trace JSON (chrome://tracing /
// Perfetto loadable):
//
//   TraceSink sink;
//   RemedyDataset(train, params).value();
//   sink.WriteChromeJson("trace.json");
//
// Nesting: each thread keeps a span stack, so spans opened on the same
// thread record their parent span and depth. Spans opened inside a
// thread-pool task are roots of that worker thread (the pool does not
// propagate the submitting thread's context — a deliberate choice: the
// trace shows which worker ran what, and the enclosing phase span brackets
// the pool barrier anyway).
//
// Span names must be string literals (or otherwise outlive the sink); the
// span stores the pointer, not a copy.
//
// Compile-time kill switch: building with -DREMEDY_TRACE_DISABLED (CMake
// -DREMEDY_ENABLE_TRACING=OFF, or the `trace-off` preset) turns the
// REMEDY_TRACE_SPAN* macros into no-ops — zero code at every instrumented
// boundary. The TraceSpan/TraceSink types stay defined so tools still link.

// One completed span.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;     // MonotonicNanos at span open
  int64_t duration_ns = 0;  // close - open
  uint64_t id = 0;          // 1-based, in open order per sink
  uint64_t parent_id = 0;   // 0 = root of its thread
  int depth = 0;            // 0 = root
  uint32_t tid = 0;         // small per-process thread number
  int64_t arg = 0;          // optional payload (level, node mask, ...)
  bool has_arg = false;
};

// Thread-safe span collector. At most one sink is active at a time; the
// constructor installs it process-wide, the destructor uninstalls it.
// Spans record into the sink that was active when they *opened*; a span
// that outlives the sink drops its event instead of touching freed memory.
class TraceSink {
 public:
  TraceSink();
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // The active sink, or nullptr.
  static TraceSink* Active();

  // Completed spans in close order (a parent closes after its children).
  std::vector<TraceEvent> Events() const;

  // Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  // Timestamps are microseconds relative to the first span opened.
  std::string ToChromeJson() const;

  // Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

  // Used by TraceSpan.
  void Record(const TraceEvent& event);
  uint64_t NextId();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> next_id_{1};
};

// True while a TraceSink is installed. Single relaxed atomic load — the
// whole cost of a disarmed span.
bool TracingActive();

// RAII span: opens on construction, records into the active sink on
// destruction. Inert (no clock read) when no sink is active.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, int64_t arg);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Open(const char* name);

  TraceSink* sink_ = nullptr;  // the sink this span opened under
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  int64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace remedy

// Scoped span macros. The variable name folds in the line number so two
// spans can share a scope.
#if defined(REMEDY_TRACE_DISABLED)
#define REMEDY_TRACE_SPAN(name)
#define REMEDY_TRACE_SPAN_ARG(name, arg)
#else
#define REMEDY_TRACE_CONCAT_INNER(a, b) a##b
#define REMEDY_TRACE_CONCAT(a, b) REMEDY_TRACE_CONCAT_INNER(a, b)
#define REMEDY_TRACE_SPAN(name) \
  ::remedy::TraceSpan REMEDY_TRACE_CONCAT(remedy_trace_span_, __LINE__)(name)
#define REMEDY_TRACE_SPAN_ARG(name, arg)                                 \
  ::remedy::TraceSpan REMEDY_TRACE_CONCAT(remedy_trace_span_, __LINE__)( \
      name, static_cast<int64_t>(arg))
#endif

#endif  // REMEDY_COMMON_TRACE_H_
