#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace remedy {
namespace {

// Process-global active sink, installed/uninstalled by TraceSink's
// ctor/dtor (same shape as FaultInjector's global registration).
std::atomic<TraceSink*> g_active_sink{nullptr};

// Small per-process thread numbers for trace rows: the first thread that
// opens a span becomes tid 1, the next tid 2, ...
uint32_t ThisThreadTid() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local const uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Per-thread open-span context for parent/child nesting.
struct ThreadSpanContext {
  uint64_t current_parent = 0;
  int depth = 0;
};

ThreadSpanContext& ThisThreadContext() {
  thread_local ThreadSpanContext ctx;
  return ctx;
}

// JSON string escaping for span names (quotes, backslashes, control
// characters). Names are normally plain literals, but the exporter must not
// produce invalid JSON for any input.
std::string JsonEscape(const char* text) {
  std::string out;
  if (text == nullptr) return out;
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

TraceSink::TraceSink() {
  TraceSink* expected = nullptr;
  bool installed = g_active_sink.compare_exchange_strong(
      expected, this, std::memory_order_acq_rel);
  REMEDY_CHECK(installed) << "TraceSink: another sink is already active";
}

TraceSink::~TraceSink() {
  TraceSink* expected = this;
  g_active_sink.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel);
}

TraceSink* TraceSink::Active() {
  return g_active_sink.load(std::memory_order_acquire);
}

bool TracingActive() {
  return g_active_sink.load(std::memory_order_relaxed) != nullptr;
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceSink::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

uint64_t TraceSink::NextId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::string TraceSink::ToChromeJson() const {
  std::vector<TraceEvent> events = Events();
  // Normalize timestamps to the earliest span so the viewer opens at t=0.
  int64_t base_ns = 0;
  if (!events.empty()) {
    base_ns = std::min_element(events.begin(), events.end(),
                               [](const TraceEvent& a, const TraceEvent& b) {
                                 return a.start_ns < b.start_ns;
                               })
                  ->start_ns;
  }
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ", ";
    // Complete ("X") events; Chrome expects microseconds. Durations round
    // up so sub-microsecond spans stay visible.
    int64_t ts_us = (e.start_ns - base_ns) / 1000;
    int64_t dur_us = (e.duration_ns + 999) / 1000;
    out << "{\"name\": \"" << JsonEscape(e.name)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << ts_us << ", \"dur\": " << dur_us
        << ", \"args\": {\"id\": " << e.id << ", \"parent\": " << e.parent_id
        << ", \"depth\": " << e.depth;
    if (e.has_arg) out << ", \"arg\": " << e.arg;
    out << "}}";
  }
  out << "]}";
  return out.str();
}

Status TraceSink::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("trace: cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return IoError("trace: short write to '" + path + "'");
  }
  return OkStatus();
}

TraceSpan::TraceSpan(const char* name) { Open(name); }

TraceSpan::TraceSpan(const char* name, int64_t arg) {
  Open(name);
  if (sink_ != nullptr) {
    arg_ = arg;
    has_arg_ = true;
  }
}

void TraceSpan::Open(const char* name) {
  if (!TracingActive()) return;  // disarmed: one relaxed load, no clock read
  TraceSink* sink = TraceSink::Active();
  if (sink == nullptr) return;  // sink uninstalled between the two loads
  sink_ = sink;
  name_ = name;
  id_ = sink->NextId();
  ThreadSpanContext& ctx = ThisThreadContext();
  parent_id_ = ctx.current_parent;
  depth_ = ctx.depth;
  ctx.current_parent = id_;
  ++ctx.depth;
  start_ns_ = MonotonicNanos();
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  const int64_t end_ns = MonotonicNanos();
  ThreadSpanContext& ctx = ThisThreadContext();
  ctx.current_parent = parent_id_;
  --ctx.depth;
  // Record only if the sink this span opened under is still installed; a
  // span that outlives its sink drops the event rather than touch freed
  // memory.
  if (TraceSink::Active() != sink_) return;
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns - start_ns_;
  event.id = id_;
  event.parent_id = parent_id_;
  event.depth = depth_;
  event.tid = ThisThreadTid();
  event.arg = arg_;
  event.has_arg = has_arg_;
  sink_->Record(event);
}

}  // namespace remedy
