#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "common/check.h"

namespace remedy {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  REMEDY_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    REMEDY_CHECK(!stop_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (num_threads() == 1 || count == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Per-call completion state so concurrent ParallelFor / Submit callers
  // cannot observe each other through Wait().
  struct State {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    int64_t running = 0;
  };
  auto state = std::make_shared<State>();
  const int64_t tasks =
      std::min<int64_t>(count, static_cast<int64_t>(num_threads()));
  state->running = tasks;
  for (int64_t t = 0; t < tasks; ++t) {
    // `fn` outlives the call because we block below.
    Submit([state, count, &fn] {
      for (int64_t i = state->next.fetch_add(1); i < count;
           i = state->next.fetch_add(1)) {
        fn(i);
      }
      std::unique_lock<std::mutex> lock(state->mu);
      if (--state->running == 0) state->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->running == 0; });
}

int ThreadPool::DefaultThreads() {
  unsigned int n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace remedy
