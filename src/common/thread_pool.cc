#include "common/thread_pool.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/check.h"
#include "common/clock.h"
#include "common/fault_injection.h"
#include "common/pipeline_metrics.h"

namespace remedy {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Status ThreadPool::Submit(std::function<void()> task) {
  REMEDY_CHECK(task != nullptr);
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return InternalError("Submit after ThreadPool shutdown");
    queue_.push_back(QueuedTask{std::move(task), MonotonicNanos()});
    ++pending_;
  }
  metrics.threadpool_tasks_submitted->Increment();
  metrics.threadpool_queue_depth->Add(1);
  work_cv_.notify_one();
  return OkStatus();
}

Status ThreadPool::SubmitAll(std::vector<std::function<void()>> tasks) {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  const int64_t n = static_cast<int64_t>(tasks.size());
  if (n == 0) return OkStatus();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return InternalError("Submit after ThreadPool shutdown");
    const int64_t now = MonotonicNanos();
    for (std::function<void()>& task : tasks) {
      REMEDY_CHECK(task != nullptr);
      queue_.push_back(QueuedTask{std::move(task), now});
    }
    pending_ += n;
  }
  metrics.threadpool_tasks_submitted->Increment(n);
  metrics.threadpool_queue_depth->Add(n);
  work_cv_.notify_all();
  return OkStatus();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  return std::exchange(first_failure_, OkStatus());
}

void ThreadPool::RecordFailure(Status status) {
  std::unique_lock<std::mutex> lock(mu_);
  if (first_failure_.ok()) first_failure_ = std::move(status);
}

void ThreadPool::WorkerLoop() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const int64_t dequeue_ns = MonotonicNanos();
    metrics.threadpool_queue_depth->Add(-1);
    metrics.threadpool_queue_wait_ns->Observe(dequeue_ns - task.enqueue_ns);
    // A throwing task must not unwind into the worker thread (that is
    // std::terminate); capture the first failure for the next Wait().
    try {
      task.fn();
    } catch (const std::exception& e) {
      RecordFailure(InternalError(std::string("task threw: ") + e.what()));
    } catch (...) {
      RecordFailure(InternalError("task threw a non-std exception"));
    }
    metrics.threadpool_task_latency_ns->Observe(MonotonicNanos() -
                                                dequeue_ns);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(int64_t count,
                               const std::function<void(int64_t)>& fn) {
  REMEDY_FAULT_POINT("threadpool/dispatch");
  if (count <= 0) return OkStatus();
  if (num_threads() == 1 || count == 1) {
    for (int64_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (const std::exception& e) {
        return InternalError(std::string("ParallelFor task threw: ") +
                             e.what());
      } catch (...) {
        return InternalError("ParallelFor task threw a non-std exception");
      }
    }
    return OkStatus();
  }

  // Per-call completion state so concurrent ParallelFor / Submit callers
  // cannot observe each other through Wait().
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done;
    int64_t running = 0;
    Status status;  // first failure, guarded by mu
  };
  auto state = std::make_shared<State>();
  auto record = [](State& s, Status status) {
    s.failed.store(true, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(s.mu);
    if (s.status.ok()) s.status = std::move(status);
  };
  const int64_t tasks =
      std::min<int64_t>(count, static_cast<int64_t>(num_threads()));
  state->running = tasks;
  // `fn` outlives the chunk tasks because we block below.
  auto chunk = [state, count, &fn, &record] {
    for (int64_t i = state->next.fetch_add(1); i < count;
         i = state->next.fetch_add(1)) {
      if (state->failed.load(std::memory_order_relaxed)) break;
      try {
        fn(i);
      } catch (const std::exception& e) {
        record(*state,
               InternalError(std::string("ParallelFor task threw: ") +
                             e.what()));
      } catch (...) {
        record(*state,
               InternalError("ParallelFor task threw a non-std exception"));
      }
    }
    std::unique_lock<std::mutex> lock(state->mu);
    if (--state->running == 0) state->done.notify_all();
  };
  // The whole sweep enqueues under one lock acquisition: a racing
  // Shutdown() either sees none of it (clean failure, no index ran) or all
  // of it (the drain-before-join guarantee then finishes every index).
  // Per-task dispatch had a window where a shutdown between submits
  // stranded a started sweep with part of its chunks rejected.
  std::vector<std::function<void()>> chunks(static_cast<size_t>(tasks),
                                            chunk);
  Status submitted = SubmitAll(std::move(chunks));
  if (!submitted.ok()) return submitted;
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->running == 0; });
  return state->status;
}

namespace {

#if defined(__linux__)
// CPUs this process may actually run on. hardware_concurrency() reports the
// machine, not the container: under a CPU affinity mask or a cgroup quota
// (the common container setup) it over-counts, and a pool sized to it only
// adds scheduling overhead. Returns 0 when a limit cannot be read.
int AffinityCpuCount() {
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return 0;
  const int count = CPU_COUNT(&set);
  return count > 0 ? count : 0;
}

// cgroup v2 CPU quota, rounded up (e.g. "150000 100000" -> 2 CPUs);
// 0 when unlimited ("max") or unreadable.
int CgroupCpuLimit() {
  std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r");
  if (f == nullptr) return 0;
  long long quota = 0, period = 0;
  const int fields = std::fscanf(f, "%lld %lld", &quota, &period);
  std::fclose(f);
  if (fields != 2 || quota <= 0 || period <= 0) return 0;
  return static_cast<int>((quota + period - 1) / period);
}
#endif

}  // namespace

int ThreadPool::DefaultThreads() {
  int n = static_cast<int>(std::thread::hardware_concurrency());
#if defined(__linux__)
  const int affinity = AffinityCpuCount();
  if (affinity > 0 && (n == 0 || affinity < n)) n = affinity;
  const int cgroup = CgroupCpuLimit();
  if (cgroup > 0 && (n == 0 || cgroup < n)) n = cgroup;
#endif
  return n > 0 ? n : 1;
}

}  // namespace remedy
