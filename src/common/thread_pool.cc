#include "common/thread_pool.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/check.h"

namespace remedy {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  REMEDY_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    REMEDY_CHECK(!stop_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (num_threads() == 1 || count == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Per-call completion state so concurrent ParallelFor / Submit callers
  // cannot observe each other through Wait().
  struct State {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    int64_t running = 0;
  };
  auto state = std::make_shared<State>();
  const int64_t tasks =
      std::min<int64_t>(count, static_cast<int64_t>(num_threads()));
  state->running = tasks;
  for (int64_t t = 0; t < tasks; ++t) {
    // `fn` outlives the call because we block below.
    Submit([state, count, &fn] {
      for (int64_t i = state->next.fetch_add(1); i < count;
           i = state->next.fetch_add(1)) {
        fn(i);
      }
      std::unique_lock<std::mutex> lock(state->mu);
      if (--state->running == 0) state->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->running == 0; });
}

namespace {

#if defined(__linux__)
// CPUs this process may actually run on. hardware_concurrency() reports the
// machine, not the container: under a CPU affinity mask or a cgroup quota
// (the common container setup) it over-counts, and a pool sized to it only
// adds scheduling overhead. Returns 0 when a limit cannot be read.
int AffinityCpuCount() {
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return 0;
  const int count = CPU_COUNT(&set);
  return count > 0 ? count : 0;
}

// cgroup v2 CPU quota, rounded up (e.g. "150000 100000" -> 2 CPUs);
// 0 when unlimited ("max") or unreadable.
int CgroupCpuLimit() {
  std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r");
  if (f == nullptr) return 0;
  long long quota = 0, period = 0;
  const int fields = std::fscanf(f, "%lld %lld", &quota, &period);
  std::fclose(f);
  if (fields != 2 || quota <= 0 || period <= 0) return 0;
  return static_cast<int>((quota + period - 1) / period);
}
#endif

}  // namespace

int ThreadPool::DefaultThreads() {
  int n = static_cast<int>(std::thread::hardware_concurrency());
#if defined(__linux__)
  const int affinity = AffinityCpuCount();
  if (affinity > 0 && (n == 0 || affinity < n)) n = affinity;
  const int cgroup = CgroupCpuLimit();
  if (cgroup > 0 && (n == 0 || cgroup < n)) n = cgroup;
#endif
  return n > 0 ? n : 1;
}

}  // namespace remedy
