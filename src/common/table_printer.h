#ifndef REMEDY_COMMON_TABLE_PRINTER_H_
#define REMEDY_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace remedy {

// Aligned console table used by the benchmark harnesses to print the rows /
// series each paper table and figure reports.
//
//   TablePrinter table({"model", "fairness index", "accuracy"});
//   table.AddRow({"DT", "0.052", "0.671"});
//   table.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision, strings verbatim.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  void Print(std::ostream& out) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace remedy

#endif  // REMEDY_COMMON_TABLE_PRINTER_H_
