#ifndef REMEDY_COMMON_STRING_UTIL_H_
#define REMEDY_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace remedy {

// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace remedy

#endif  // REMEDY_COMMON_STRING_UTIL_H_
