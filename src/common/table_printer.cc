#include "common/table_printer.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"

namespace remedy {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  REMEDY_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  REMEDY_CHECK(cells.size() == header_.size())
      << "row has " << cells.size() << " cells, header has "
      << header_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c];
      out << std::string(widths[c] - row[c].size() + 1, ' ') << "|";
    }
    out << "\n";
  };

  auto print_rule = [&] {
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace remedy
