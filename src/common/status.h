#ifndef REMEDY_COMMON_STATUS_H_
#define REMEDY_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/check.h"

namespace remedy {

// Recoverable error model for the library's boundary APIs (ingestion, file
// I/O, engine entry points). Precondition violations on hot paths stay
// REMEDY_CHECK programmer errors; everything reachable from user input —
// malformed CSV bytes, bad flags, failing disks — reports a Status instead
// of aborting the process.
//
//   StatusOr<CsvTable> table = ReadCsvFile(path);
//   if (!table.ok()) return table.status().WithContext("loading " + path);
//
// Inside Status-returning functions, use the propagation macros:
//
//   RETURN_IF_ERROR(WriteCsvFile(path, table));
//   ASSIGN_OR_RETURN(Dataset data, LoadCsvDataset(path, options));

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller handed in something unusable (bad flag, name)
  kDataCorruption,     // the bytes themselves are wrong (malformed CSV)
  kIoError,            // the environment failed us (open/read/write)
  kResourceExhausted,  // a budget or capacity limit was hit
  kInternal,           // invariant broke in a recoverable context
};

// Stable upper-case token for logs and CLI diagnostics, e.g. "IO_ERROR".
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // OK (the default).
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    REMEDY_CHECK(code != StatusCode::kOk)
        << "explicit Status must carry an error code";
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Context chaining for propagation across layers: keeps the code, prefixes
  // the message, so the surfaced error reads outermost-context-first, e.g.
  // "loading adult.csv: cannot open adult.csv: No such file". No-op on OK.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  // "IO_ERROR: cannot open adult.csv" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status DataCorruptionError(std::string message);
Status IoError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);

// Status + value union. Implicitly constructible from either side so
// Status-returning helpers and `return value;` both work. `value()` asserts
// ok() — trusted callers whose inputs are validated upstream may use it as
// the moral equivalent of the old abort-on-precondition behaviour.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {
    REMEDY_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    REMEDY_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    REMEDY_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  // By value, not T&&: `for (auto& x : Fn().value())` must not dangle when
  // the temporary StatusOr dies at the end of the full-expression.
  T value() && {
    REMEDY_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace remedy

// Evaluates a Status expression and early-returns it on error. Usable in any
// function returning Status or StatusOr<T>.
#define RETURN_IF_ERROR(expr)                          \
  do {                                                 \
    ::remedy::Status remedy_return_if_error_ = (expr); \
    if (!remedy_return_if_error_.ok()) {               \
      return remedy_return_if_error_;                  \
    }                                                  \
  } while (0)

#define REMEDY_STATUS_CONCAT_INNER_(a, b) a##b
#define REMEDY_STATUS_CONCAT_(a, b) REMEDY_STATUS_CONCAT_INNER_(a, b)

// ASSIGN_OR_RETURN(lhs, rexpr): evaluates the StatusOr expression `rexpr`,
// early-returns its Status on error, otherwise moves the value into `lhs`
// (which may be a declaration, e.g. `ASSIGN_OR_RETURN(Dataset d, Load())`).
#define ASSIGN_OR_RETURN(lhs, rexpr)                                       \
  REMEDY_ASSIGN_OR_RETURN_IMPL_(                                           \
      REMEDY_STATUS_CONCAT_(remedy_status_or_, __LINE__), lhs, rexpr)

#define REMEDY_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                  \
  if (!statusor.ok()) {                                     \
    return statusor.status();                               \
  }                                                         \
  lhs = std::move(statusor).value()

#endif  // REMEDY_COMMON_STATUS_H_
