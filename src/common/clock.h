#ifndef REMEDY_COMMON_CLOCK_H_
#define REMEDY_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace remedy {

// The one monotonic time source of the library. WallTimer, TraceSpan, the
// thread-pool latency histogram, and the bench harness all read this clock,
// so a bench timing and the trace span covering the same work agree to the
// clock's resolution instead of drifting across clock domains.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace remedy

#endif  // REMEDY_COMMON_CLOCK_H_
