#ifndef REMEDY_COMMON_CHECK_H_
#define REMEDY_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

// Lightweight runtime-assertion macros in the spirit of glog's CHECK.
//
// The library does not use exceptions; precondition violations are programmer
// errors and abort with a source location and message. Use the streaming form
// to attach context:
//
//   REMEDY_CHECK(row < dataset.NumRows()) << "row " << row << " out of range";
//
// REMEDY_DCHECK compiles away in NDEBUG builds and is meant for hot paths.

namespace remedy::internal {

// Collects a failure message and aborts the process when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " CHECK failed: " << expr << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns the streamed CheckFailure expression into void so the ternary in
// REMEDY_CHECK type-checks. `&` binds looser than `<<`, so streamed context
// is collected before voidification.
struct Voidify {
  // Bare CheckFailure temporaries are rvalues; streamed ones come back as
  // lvalue references from operator<<. Accept both.
  void operator&(CheckFailure&&) {}
  void operator&(CheckFailure&) {}
};

}  // namespace remedy::internal

#define REMEDY_CHECK(expr)                             \
  (expr) ? (void)0                                     \
         : ::remedy::internal::Voidify() &             \
               ::remedy::internal::CheckFailure(__FILE__, __LINE__, #expr)

#ifdef NDEBUG
#define REMEDY_DCHECK(expr) REMEDY_CHECK(true)
#else
#define REMEDY_DCHECK(expr) REMEDY_CHECK(expr)
#endif

#endif  // REMEDY_COMMON_CHECK_H_
