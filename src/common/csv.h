#ifndef REMEDY_COMMON_CSV_H_
#define REMEDY_COMMON_CSV_H_

#include <string>
#include <vector>

namespace remedy {

// Minimal CSV support for importing and exporting tabular datasets.
//
// Handles the common case used by fairness datasets: comma separation,
// optional double-quote quoting with "" escapes, one record per line.
// Parsing failures are reported through the boolean return value rather than
// exceptions, with a human-readable message in `*error`.

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

// Parses CSV text. When `has_header` is true the first record becomes
// `table->header`. Returns false (and sets *error) on malformed input or on
// rows whose width differs from the header.
bool ParseCsv(const std::string& text, bool has_header, CsvTable* table,
              std::string* error);

// Reads and parses the file at `path`.
bool ReadCsvFile(const std::string& path, bool has_header, CsvTable* table,
                 std::string* error);

// Serializes a table; fields containing separators or quotes are quoted.
std::string WriteCsv(const CsvTable& table);

// Writes the serialized table to `path`. Returns false on I/O failure.
bool WriteCsvFile(const std::string& path, const CsvTable& table,
                  std::string* error);

}  // namespace remedy

#endif  // REMEDY_COMMON_CSV_H_
