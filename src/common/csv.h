#ifndef REMEDY_COMMON_CSV_H_
#define REMEDY_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace remedy {

// Minimal CSV support for importing and exporting tabular datasets.
//
// Handles the common case used by fairness datasets: comma separation,
// optional double-quote quoting with "" escapes (quoted fields may span
// lines), LF or CRLF record terminators, an optional UTF-8 BOM before the
// header, and a trailing newline that does not produce a phantom row.
// Failures are reported as Status (kDataCorruption for malformed bytes,
// kIoError for file problems); nothing here aborts on bad input.

// One record the tolerant parser refused, with where and why — the raw
// material of the loader's quarantine report.
struct CsvBadRow {
  int line = 0;  // 1-based line the record started on
  std::string reason;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  // Structurally malformed records diverted by `tolerate_bad_rows`; empty
  // in strict mode (the parse fails instead).
  std::vector<CsvBadRow> bad_rows;
};

struct CsvParseOptions {
  // When true the first record becomes `table.header` and defines the
  // expected field count.
  bool has_header = true;
  // Strict mode (false): the first malformed record fails the whole parse
  // with kDataCorruption. Tolerant mode (true): malformed records
  // (field-count mismatch, unterminated quote) are diverted to
  // CsvTable::bad_rows and parsing resynchronizes at the next line.
  bool tolerate_bad_rows = false;
};

// Parses CSV text.
StatusOr<CsvTable> ParseCsv(const std::string& text,
                            const CsvParseOptions& options = {});

struct CsvReadOptions {
  CsvParseOptions parse;
  // Bounded retry with doubling backoff for transient file I/O. A missing
  // file (ENOENT) is not transient and fails immediately; other open and
  // read failures are retried up to `max_attempts` total attempts.
  int max_attempts = 3;
  int initial_backoff_ms = 1;
};

// Reads and parses the file at `path`.
StatusOr<CsvTable> ReadCsvFile(const std::string& path,
                               const CsvReadOptions& options = {});

// Serializes a table; fields containing separators or quotes are quoted.
std::string WriteCsv(const CsvTable& table);

// Writes the serialized table to `path`.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace remedy

#endif  // REMEDY_COMMON_CSV_H_
