#ifndef REMEDY_COMMON_RNG_H_
#define REMEDY_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace remedy {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. The
// library's standard way of deriving decorrelated seeds from a base seed
// plus a key (region, tree, replicate, ...) without sharing RNG state.
uint64_t SplitMix64(uint64_t x);

// Seed of the `index`-th parallel stream derived from `seed`. Deterministic
// parallel phases (random-forest bagging, bootstrap replicates, the remedy
// planner) give every task its own stream keyed by a stable task index, so
// the drawn sequences are independent of scheduling and thread count.
uint64_t StreamSeed(uint64_t seed, uint64_t index);

// Deterministic random number generator used across the library.
//
// Every stochastic component (dataset generators, samplers, classifiers,
// baselines) takes an explicit seed so experiments are reproducible
// run-to-run. Rng wraps a Mersenne Twister with convenience draws for the
// patterns the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  // Uniform integer in [lo, hi].
  int UniformRange(int lo, int hi);

  // Uniform real in [0, 1).
  double Uniform();

  // Standard normal draw.
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Index drawn from the (unnormalized, non-negative) weights.
  // Requires at least one strictly positive weight.
  int Categorical(const std::vector<double>& weights);

  // k distinct indices sampled uniformly without replacement from [0, n).
  // Requires 0 <= k <= n. The result order is random.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (int i = static_cast<int>(values.size()) - 1; i > 0; --i) {
      std::swap(values[i], values[UniformInt(i + 1)]);
    }
  }

  // Forks a child generator with a decorrelated seed; used to hand
  // independent randomness to sub-components without sharing state.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace remedy

#endif  // REMEDY_COMMON_RNG_H_
