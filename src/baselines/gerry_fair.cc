#include "baselines/gerry_fair.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fairness/fairness_violation.h"

namespace remedy {

GerryFair::GerryFair(GerryFairParams params) : params_(params) {
  REMEDY_CHECK(params_.iterations > 0);
  REMEDY_CHECK(params_.learning_rate > 0.0);
}

void GerryFair::Fit(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  REMEDY_CHECK(train.schema().NumProtected() > 0)
      << "GerryFair audits subgroups of the protected attributes";
  REMEDY_CHECK(params_.statistic == Statistic::kFpr ||
               params_.statistic == Statistic::kFnr)
      << "GerryFair audits FPR or FNR constraints";
  models_.clear();
  violations_.clear();
  // The instances whose weight the auditor adjusts: the conditioning class
  // of the statistic (negatives for FPR, positives for FNR).
  const int audited_label = params_.statistic == Statistic::kFpr ? 0 : 1;

  Dataset weighted = train;
  for (int round = 0; round < params_.iterations; ++round) {
    // Learner best response.
    LogisticRegression model(params_.learner);
    model.Fit(weighted);
    std::vector<int> predictions = model.PredictAll(train);
    models_.push_back(std::move(model));

    // Auditor: most-violated subgroup under the audited statistic.
    SubgroupAnalysis analysis =
        AnalyzeSubgroups(train, predictions, params_.statistic,
                         /*min_support=*/0.0, params_.min_group_size);
    const SubgroupReport* worst = nullptr;
    double worst_violation = 0.0;
    for (const SubgroupReport& report : analysis.subgroups) {
      double violation = report.support * report.divergence;
      if (violation > worst_violation) {
        worst_violation = violation;
        worst = &report;
      }
    }
    violations_.push_back(worst_violation);
    if (worst == nullptr || worst_violation <= params_.gamma) break;

    // Auditor response: re-weight the violated group's audited-class
    // instances. Rate too high => up-weight them (misclassifying them gets
    // costlier); too low => down-weight.
    const bool too_high = worst->statistic > analysis.overall;
    const double factor =
        std::exp(params_.learning_rate * worst_violation *
                 (too_high ? 1.0 : -1.0));
    for (int r = 0; r < train.NumRows(); ++r) {
      if (train.Label(r) != audited_label) continue;
      if (!worst->pattern.Matches(train, r)) continue;
      weighted.SetWeight(r, weighted.Weight(r) * factor);
    }
  }
}

double GerryFair::PredictProba(const Dataset& data, int row) const {
  REMEDY_CHECK(!models_.empty()) << "GerryFair::Fit has not been called";
  // Randomized classifier: uniform mixture over the rounds' models.
  double sum = 0.0;
  for (const LogisticRegression& model : models_) {
    sum += model.PredictProba(data, row);
  }
  return sum / models_.size();
}

}  // namespace remedy
