#include "baselines/coverage.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/region_counter.h"

namespace remedy {

Dataset ApplyCoverage(const Dataset& train, const CoverageParams& params,
                      CoverageStats* stats_out) {
  REMEDY_CHECK(train.NumRows() > 0);
  REMEDY_CHECK(params.threshold > 0);

  RegionCounter counter(train.schema());
  uint32_t leaf_mask = (1u << counter.NumProtected()) - 1u;
  std::unordered_map<uint64_t, std::vector<int>> rows_by_group =
      counter.CollectRows(train, leaf_mask);

  // Count the value combinations that never occur at all.
  uint64_t total_combinations = 1;
  for (int i = 0; i < counter.NumProtected(); ++i) {
    total_combinations *= static_cast<uint64_t>(counter.Cardinality(i));
  }

  CoverageStats stats;
  stats.empty_groups = static_cast<int>(
      total_combinations - static_cast<uint64_t>(rows_by_group.size()));

  // Deterministic group order.
  std::vector<uint64_t> keys;
  keys.reserve(rows_by_group.size());
  for (const auto& [key, rows] : rows_by_group) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  Dataset result = train;
  Rng rng(params.seed);
  for (uint64_t key : keys) {
    const std::vector<int>& rows = rows_by_group.at(key);
    int deficit = params.threshold - static_cast<int>(rows.size());
    if (deficit <= 0) continue;
    ++stats.uncovered_groups;
    for (int i = 0; i < deficit; ++i) {
      result.AppendRowFrom(train,
                           rows[rng.UniformInt(static_cast<int>(rows.size()))]);
    }
    stats.instances_added += deficit;
  }

  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace remedy
