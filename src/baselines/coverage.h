#ifndef REMEDY_BASELINES_COVERAGE_H_
#define REMEDY_BASELINES_COVERAGE_H_

#include <cstdint>

#include "data/dataset.h"

namespace remedy {

// Coverage baseline (Asudeh, Jin & Jagadish [4]): finds intersectional
// subgroups of the protected attributes that lack sufficient representation
// (fewer than `threshold` instances) and augments them — here, as in the
// paper's evaluation, by duplicating uniformly sampled tuples from the
// subgroup until the threshold is met. Empty combinations cannot be
// augmented (there is nothing to sample) and are reported in the stats.
//
// Coverage targets representation *quantity*, not class balance, which is
// why Table III shows it improving accuracy but not subgroup fairness.

struct CoverageParams {
  int threshold = 50;
  uint64_t seed = 31;
};

struct CoverageStats {
  int uncovered_groups = 0;  // 0 < count < threshold, augmented
  int empty_groups = 0;      // count == 0, not augmentable
  int64_t instances_added = 0;
};

Dataset ApplyCoverage(const Dataset& train, const CoverageParams& params = {},
                      CoverageStats* stats = nullptr);

}  // namespace remedy

#endif  // REMEDY_BASELINES_COVERAGE_H_
