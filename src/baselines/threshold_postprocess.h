#ifndef REMEDY_BASELINES_THRESHOLD_POSTPROCESS_H_
#define REMEDY_BASELINES_THRESHOLD_POSTPROCESS_H_

#include <cstdint>
#include <unordered_map>

#include "fairness/divergence.h"
#include "ml/classifier.h"

namespace remedy {

// Post-processing baseline in the spirit of Hardt, Price & Srebro [15]:
// after fitting the base model, each leaf-level intersectional subgroup
// gets its own decision threshold, chosen on the training data so the
// subgroup's FPR (or FNR) matches the model's overall rate at 0.5.
//
// The paper's taxonomy (Sec. I / VII) contrasts this family with its
// pre-processing approach: post-processing manipulates predictions, needs
// access to them at decision time, and leaves the biased training data in
// place. The extension bench puts the two side by side.

struct ThresholdPostprocessParams {
  Statistic statistic = Statistic::kFpr;  // kFpr or kFnr
  int64_t min_group_size = 30;  // smaller groups keep the 0.5 threshold
};

class ThresholdPostprocessor : public Classifier {
 public:
  // Takes ownership of the base model.
  ThresholdPostprocessor(ClassifierPtr base,
                         ThresholdPostprocessParams params = {});

  // Fits the base model on `train`, then calibrates per-subgroup
  // thresholds on the same data.
  void Fit(const Dataset& train) override;

  double PredictProba(const Dataset& data, int row) const override;
  // Applies the row's subgroup threshold (0.5 for unseen subgroups).
  int Predict(const Dataset& data, int row) const override;

  // Threshold calibrated for the subgroup of `row`, for inspection.
  double ThresholdFor(const Dataset& data, int row) const;

 private:
  ClassifierPtr base_;
  ThresholdPostprocessParams params_;
  // Leaf-subgroup key (RegionCounter::RowKey) -> threshold.
  std::unordered_map<uint64_t, double> thresholds_;
  std::vector<int> protected_cols_;
  std::vector<int> cardinalities_;
  bool fitted_ = false;
};

}  // namespace remedy

#endif  // REMEDY_BASELINES_THRESHOLD_POSTPROCESS_H_
