#include "baselines/fair_smote.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/region_counter.h"

namespace remedy {
namespace {

int HammingDistance(const Dataset& data, int row_a, int row_b) {
  int distance = 0;
  for (int c = 0; c < data.NumColumns(); ++c) {
    distance += data.Value(row_a, c) != data.Value(row_b, c);
  }
  return distance;
}

// The k nearest same-class rows to `parent` among `pool` (excluding parent).
std::vector<int> NearestNeighbors(const Dataset& data, int parent,
                                  const std::vector<int>& pool, int k) {
  std::vector<std::pair<int, int>> scored;  // (distance, row)
  scored.reserve(pool.size());
  for (int row : pool) {
    if (row == parent) continue;
    scored.emplace_back(HammingDistance(data, parent, row), row);
  }
  int keep = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end());
  std::vector<int> neighbors;
  neighbors.reserve(keep);
  for (int i = 0; i < keep; ++i) neighbors.push_back(scored[i].second);
  return neighbors;
}

}  // namespace

Dataset ApplyFairSmote(const Dataset& train, const FairSmoteParams& params,
                       FairSmoteStats* stats_out) {
  REMEDY_CHECK(train.NumRows() > 0);
  REMEDY_CHECK(params.k_neighbors >= 1);
  REMEDY_CHECK(params.crossover >= 0.0 && params.crossover <= 1.0);

  RegionCounter counter(train.schema());
  uint32_t leaf_mask = (1u << counter.NumProtected()) - 1u;
  std::unordered_map<uint64_t, std::vector<int>> rows_by_group =
      counter.CollectRows(train, leaf_mask);

  std::vector<uint64_t> keys;
  keys.reserve(rows_by_group.size());
  for (const auto& [key, rows] : rows_by_group) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  Dataset result = train;
  Rng rng(params.seed);
  FairSmoteStats stats;
  for (uint64_t key : keys) {
    const std::vector<int>& rows = rows_by_group.at(key);
    std::vector<int> by_class[2];
    for (int row : rows) by_class[train.Label(row)].push_back(row);
    int minority = by_class[0].size() <= by_class[1].size() ? 0 : 1;
    const std::vector<int>& pool = by_class[minority];
    int64_t deficit = static_cast<int64_t>(by_class[1 - minority].size()) -
                      static_cast<int64_t>(pool.size());
    if (deficit <= 0 || pool.empty()) continue;
    ++stats.groups_balanced;

    for (int64_t i = 0; i < deficit; ++i) {
      int parent = pool[rng.UniformInt(static_cast<int>(pool.size()))];
      // Candidate pool for the kNN scan, optionally subsampled.
      std::vector<int> candidates;
      if (params.max_candidates > 0 &&
          static_cast<int>(pool.size()) > params.max_candidates) {
        std::vector<int> picked = rng.SampleWithoutReplacement(
            static_cast<int>(pool.size()), params.max_candidates);
        candidates.reserve(picked.size());
        for (int index : picked) candidates.push_back(pool[index]);
      } else {
        candidates = pool;
      }
      std::vector<int> neighbors =
          NearestNeighbors(train, parent, candidates, params.k_neighbors);

      std::vector<int> child = train.Row(parent);
      if (!neighbors.empty()) {
        int mate =
            neighbors[rng.UniformInt(static_cast<int>(neighbors.size()))];
        for (int c = 0; c < train.NumColumns(); ++c) {
          if (!rng.Bernoulli(params.crossover)) {
            child[c] = train.Value(mate, c);
          }
        }
        // Synthetic instances stay in their subgroup: protected attributes
        // are identical across the pool, so crossover cannot move them.
      }
      result.AddRow(child, minority);
      ++stats.instances_added;
    }
  }

  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace remedy
