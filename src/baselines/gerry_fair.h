#ifndef REMEDY_BASELINES_GERRY_FAIR_H_
#define REMEDY_BASELINES_GERRY_FAIR_H_

#include <vector>

#include "fairness/divergence.h"
#include "ml/classifier.h"
#include "ml/logistic_regression.h"

namespace remedy {

// GerryFair baseline (Kearns, Neel, Roth & Wu [21]): in-processing subgroup
// fairness via a two-player zero-sum game between a Learner and an Auditor.
//
// Each round, the Learner best-responds by training a (linear, as in the
// original's regression oracle) classifier on the current instance weights;
// the Auditor finds the subgroup with the largest fairness violation
// (support * |FPR_g - FPR_D|) among the enumerable pattern subgroups of the
// protected attributes — with categorical protected attributes this class
// contains the violated groups the original's linear auditor would find —
// and re-weights the violated group's negative instances so the next
// Learner round is pushed toward parity. The final classifier is the
// randomized uniform mixture of the per-round models, as in the original.
//
// The repeated full retraining is what makes GerryFair orders of magnitude
// slower than the pre-processing methods in Table III.

struct GerryFairParams {
  int iterations = 20;
  double learning_rate = 8.0;   // multiplicative-weights step on violations
  double gamma = 0.002;         // violation tolerance for early stop
  int64_t min_group_size = 30;  // auditor ignores smaller groups
  // Which subgroup statistic the auditor enforces; the original supports
  // false-positive and false-negative constraints. Must be kFpr or kFnr.
  Statistic statistic = Statistic::kFpr;
  LogisticRegressionParams learner;
};

class GerryFair : public Classifier {
 public:
  explicit GerryFair(GerryFairParams params = {});

  void Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, int row) const override;

  // Audit trail: the violation found at each round (useful for convergence
  // tests and the ablation bench).
  const std::vector<double>& violations() const { return violations_; }

 private:
  GerryFairParams params_;
  std::vector<LogisticRegression> models_;
  std::vector<double> violations_;
};

}  // namespace remedy

#endif  // REMEDY_BASELINES_GERRY_FAIR_H_
