#ifndef REMEDY_BASELINES_FAIR_SMOTE_H_
#define REMEDY_BASELINES_FAIR_SMOTE_H_

#include <cstdint>

#include "data/dataset.h"

namespace remedy {

// Fair-SMOTE baseline (Chakraborty, Majumder & Menzies [8]): within every
// leaf-level intersectional subgroup of the protected attributes, the
// minority class is oversampled to parity with synthetic instances. Each
// synthetic instance is bred from a random minority parent and one of its
// k nearest same-class, same-subgroup neighbors (Hamming distance over all
// attributes); each attribute value is inherited from the parent with
// probability `crossover`, otherwise from the neighbor — the categorical
// variant of SMOTE interpolation used by the reference implementation.
//
// The kNN search dominates the cost (the paper measures Fair-SMOTE at
// ~1000s on Adult); `max_candidates` bounds the per-parent scan so the
// harness stays runnable, at a documented loss of neighbor exactness.

struct FairSmoteParams {
  int k_neighbors = 5;
  double crossover = 0.8;
  int max_candidates = 500;  // candidate pool per parent; <=0 means all
  uint64_t seed = 47;
};

struct FairSmoteStats {
  int groups_balanced = 0;
  int64_t instances_added = 0;
};

Dataset ApplyFairSmote(const Dataset& train,
                       const FairSmoteParams& params = {},
                       FairSmoteStats* stats = nullptr);

}  // namespace remedy

#endif  // REMEDY_BASELINES_FAIR_SMOTE_H_
