#ifndef REMEDY_BASELINES_FAIR_BALANCE_H_
#define REMEDY_BASELINES_FAIR_BALANCE_H_

#include "data/dataset.h"

namespace remedy {

// FairBalance baseline (Yu, Chakraborty & Menzies [35]): reweighting that
// makes the class distribution within every intersectional subgroup not just
// equal across subgroups but *balanced* (1:1), targeting equalized odds:
//
//     w(g, y) = |g| / (2 * |g ∩ y|)
//
// On imbalanced real-world data this pulls the training distribution far
// from the test distribution, which is why Table III shows it trading a lot
// of accuracy for its fairness gain.
//
// Returns a copy of `train` with the weights set.
Dataset ApplyFairBalance(const Dataset& train);

}  // namespace remedy

#endif  // REMEDY_BASELINES_FAIR_BALANCE_H_
