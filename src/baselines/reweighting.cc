#include "baselines/reweighting.h"

#include "common/check.h"
#include "core/region_counter.h"

namespace remedy {

Dataset ApplyReweighting(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  RegionCounter counter(train.schema());
  uint32_t leaf_mask = (1u << counter.NumProtected()) - 1u;
  NodeTable groups = counter.CountNode(train, leaf_mask);

  const double n = train.NumRows();
  const double positives = train.PositiveCount();
  const double negatives = train.NegativeCount();

  Dataset result = train;
  for (int r = 0; r < train.NumRows(); ++r) {
    const RegionCounts& group = groups.at(counter.RowKey(train, r, leaf_mask));
    double group_size = static_cast<double>(group.Total());
    double class_size = train.Label(r) == 1 ? positives : negatives;
    double cell = train.Label(r) == 1
                      ? static_cast<double>(group.positives)
                      : static_cast<double>(group.negatives);
    REMEDY_DCHECK(cell > 0.0);  // the row itself is in the cell
    result.SetWeight(r, (group_size * class_size) / (n * cell));
  }
  return result;
}

}  // namespace remedy
