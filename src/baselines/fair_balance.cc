#include "baselines/fair_balance.h"

#include "common/check.h"
#include "core/region_counter.h"

namespace remedy {

Dataset ApplyFairBalance(const Dataset& train) {
  REMEDY_CHECK(train.NumRows() > 0);
  RegionCounter counter(train.schema());
  uint32_t leaf_mask = (1u << counter.NumProtected()) - 1u;
  NodeTable groups = counter.CountNode(train, leaf_mask);

  Dataset result = train;
  for (int r = 0; r < train.NumRows(); ++r) {
    const RegionCounts& group = groups.at(counter.RowKey(train, r, leaf_mask));
    double cell = train.Label(r) == 1
                      ? static_cast<double>(group.positives)
                      : static_cast<double>(group.negatives);
    REMEDY_DCHECK(cell > 0.0);
    result.SetWeight(r, static_cast<double>(group.Total()) / (2.0 * cell));
  }
  return result;
}

}  // namespace remedy
