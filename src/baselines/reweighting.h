#ifndef REMEDY_BASELINES_REWEIGHTING_H_
#define REMEDY_BASELINES_REWEIGHTING_H_

#include "data/dataset.h"

namespace remedy {

// Reweighting baseline (Kamiran & Calders [19], generalized to
// intersectional subgroups as in the paper's Table III): every instance in
// subgroup g with label y receives weight
//
//     w(g, y) = (|g| * |y|) / (n * |g ∩ y|)
//
// which makes label and subgroup membership statistically independent under
// the weighted empirical distribution. Subgroups are the leaf-level
// combinations of the protected attributes. Requires a weight-aware learner.
//
// Returns a copy of `train` with the weights set (rows untouched).
Dataset ApplyReweighting(const Dataset& train);

}  // namespace remedy

#endif  // REMEDY_BASELINES_REWEIGHTING_H_
