#include "baselines/threshold_postprocess.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/region_counter.h"

namespace remedy {

ThresholdPostprocessor::ThresholdPostprocessor(
    ClassifierPtr base, ThresholdPostprocessParams params)
    : base_(std::move(base)), params_(params) {
  REMEDY_CHECK(base_ != nullptr);
  REMEDY_CHECK(params_.statistic == Statistic::kFpr ||
               params_.statistic == Statistic::kFnr)
      << "threshold post-processing equalizes FPR or FNR";
}

void ThresholdPostprocessor::Fit(const Dataset& train) {
  REMEDY_CHECK(train.schema().NumProtected() > 0);
  base_->Fit(train);
  thresholds_.clear();

  RegionCounter counter(train.schema());
  const uint32_t leaf_mask = (1u << counter.NumProtected()) - 1u;
  std::unordered_map<uint64_t, std::vector<int>> groups =
      counter.CollectRows(train, leaf_mask);
  std::vector<double> probabilities = base_->PredictProbaAll(train);

  // The conditioning class whose rate we equalize.
  const int audited_label = params_.statistic == Statistic::kFpr ? 0 : 1;

  // Overall target rate at the default 0.5 threshold.
  int64_t relevant = 0, events = 0;
  for (int r = 0; r < train.NumRows(); ++r) {
    if (train.Label(r) != audited_label) continue;
    ++relevant;
    bool positive = probabilities[r] >= 0.5;
    events += params_.statistic == Statistic::kFpr ? positive : !positive;
  }
  const double target =
      relevant > 0 ? static_cast<double>(events) / relevant : 0.0;

  for (const auto& [key, rows] : groups) {
    if (static_cast<int64_t>(rows.size()) < params_.min_group_size) continue;
    // Scores of the subgroup's audited-class instances, sorted.
    std::vector<double> scores;
    for (int row : rows) {
      if (train.Label(row) == audited_label) {
        scores.push_back(probabilities[row]);
      }
    }
    if (scores.empty()) continue;
    std::sort(scores.begin(), scores.end());
    const int64_t m = static_cast<int64_t>(scores.size());

    // Candidate thresholds: midpoints between consecutive scores plus the
    // extremes; pick the one whose subgroup rate is closest to the target.
    std::vector<double> candidates = {0.0, 1.0 + 1e-9};
    for (int64_t i = 0; i + 1 < m; ++i) {
      candidates.push_back((scores[i] + scores[i + 1]) / 2.0);
    }
    double best_threshold = 0.5;
    double best_gap = std::fabs(
        [&] {
          int64_t above = m - (std::lower_bound(scores.begin(), scores.end(),
                                                0.5) -
                               scores.begin());
          double fp_rate = static_cast<double>(above) / m;
          return params_.statistic == Statistic::kFpr ? fp_rate
                                                      : 1.0 - fp_rate;
        }() -
        target);
    for (double threshold : candidates) {
      int64_t above = m - (std::lower_bound(scores.begin(), scores.end(),
                                            threshold) -
                           scores.begin());
      double positive_rate = static_cast<double>(above) / m;
      double rate = params_.statistic == Statistic::kFpr
                        ? positive_rate
                        : 1.0 - positive_rate;
      double gap = std::fabs(rate - target);
      if (gap < best_gap - 1e-12) {
        best_gap = gap;
        best_threshold = threshold;
      }
    }
    thresholds_[key] = best_threshold;
  }

  // Cache the row-key plumbing for Predict.
  protected_cols_ = train.schema().protected_indices();
  cardinalities_.clear();
  for (int column : protected_cols_) {
    cardinalities_.push_back(train.schema().attribute(column).Cardinality());
  }
  fitted_ = true;
}

double ThresholdPostprocessor::PredictProba(const Dataset& data,
                                            int row) const {
  return base_->PredictProba(data, row);
}

double ThresholdPostprocessor::ThresholdFor(const Dataset& data,
                                            int row) const {
  REMEDY_CHECK(fitted_);
  uint64_t key = 0;
  for (size_t i = 0; i < protected_cols_.size(); ++i) {
    key = key * cardinalities_[i] +
          static_cast<uint64_t>(data.Value(row, protected_cols_[i]));
  }
  auto it = thresholds_.find(key);
  return it == thresholds_.end() ? 0.5 : it->second;
}

int ThresholdPostprocessor::Predict(const Dataset& data, int row) const {
  return PredictProba(data, row) >= ThresholdFor(data, row) ? 1 : 0;
}

}  // namespace remedy
