#include "datagen/law_school.h"

#include "datagen/generator.h"

namespace remedy {
namespace {

enum : int {
  kAge = 0,
  kGender = 1,
  kRace = 2,
  kFamilyIncome = 3,
  kLsat = 4,
  kUgpa = 5,
  kRegion = 6,
  kSchoolTier = 7,
  kWorkExperience = 8,
  kExtracurricular = 9,
  kFirstGen = 10,
  kCluster = 11,
};

constexpr int kNumAttributes = 12;

std::vector<int> Only(std::initializer_list<std::pair<int, int>> assigned) {
  std::vector<int> pattern(kNumAttributes, -1);
  for (const auto& [attribute, value] : assigned) {
    pattern[attribute] = value;
  }
  return pattern;
}

}  // namespace

SyntheticSpec LawSchoolSpec(int num_rows) {
  SyntheticSpec spec;
  spec.name = "law_school";
  spec.num_rows = num_rows;

  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("age", {"<22", "22-25", ">25"}), {0.35, 0.45, 0.20}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("gender", {"Male", "Female"}), {0.55, 0.45}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("race", {"White", "Black", "Hispanic", "Asian"}),
      {0.72, 0.12, 0.09, 0.07}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("family_income", {"Low", "Mid-low", "Mid-high", "High"}),
      {0.20, 0.30, 0.30, 0.20}));
  // LSAT quartiles correlate with family income (test-prep access).
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("lsat", {"Q1", "Q2", "Q3", "Q4"}),
      {0.25, 0.25, 0.25, 0.25}, kFamilyIncome,
      {{0.34, 0.28, 0.22, 0.16},
       {0.28, 0.26, 0.24, 0.22},
       {0.22, 0.24, 0.26, 0.28},
       {0.16, 0.22, 0.28, 0.34}}));
  // UGPA tracks LSAT loosely.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("ugpa", {"Q1", "Q2", "Q3", "Q4"}),
      {0.25, 0.25, 0.25, 0.25}, kLsat,
      {{0.40, 0.30, 0.20, 0.10},
       {0.28, 0.30, 0.26, 0.16},
       {0.16, 0.26, 0.30, 0.28},
       {0.10, 0.20, 0.30, 0.40}}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("region", {"Northeast", "South", "Midwest", "West"}),
      {0.30, 0.27, 0.22, 0.21}));
  // Better scores open higher-tier schools.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("school_tier", {"T1", "T2", "T3"}), {0.25, 0.45, 0.30},
      kLsat,
      {{0.08, 0.40, 0.52},
       {0.15, 0.47, 0.38},
       {0.30, 0.48, 0.22},
       {0.50, 0.38, 0.12}}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("work_experience", {"No", "Yes"}), {0.60, 0.40}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("extracurricular", {"No", "Yes"}), {0.50, 0.50}));
  // First-generation students cluster at lower family incomes.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("first_gen", {"No", "Yes"}), {0.70, 0.30},
      kFamilyIncome,
      {{0.40, 0.60}, {0.62, 0.38}, {0.80, 0.20}, {0.92, 0.08}}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("cluster", {"A", "B", "C"}), {0.4, 0.35, 0.25}));

  spec.protected_indices = {kAge, kGender, kRace, kFamilyIncome};

  // Balanced labels (the paper uniform-sampled the original to 1:1).
  spec.base_logit = -0.6;
  spec.label_terms = {
      {kLsat, 0, -0.8},          {kLsat, 2, 0.5},
      {kLsat, 3, 1.0},           {kUgpa, 0, -0.6},
      {kUgpa, 3, 0.8},           {kSchoolTier, 0, 0.4},
      {kWorkExperience, 1, 0.2}, {kExtracurricular, 1, 0.15},
  };

  spec.injections = {
      {Only({{kRace, 1}, {kFamilyIncome, 0}}), -1.3},  // Black, low income
      {Only({{kGender, 1}, {kAge, 0}}), 0.9},          // young women
      {Only({{kRace, 0}, {kFamilyIncome, 3}}), 0.8},   // White, high income
      {Only({{kAge, 2}, {kGender, 0}, {kFamilyIncome, 1}}), -1.0},
  };
  return spec;
}

Dataset MakeLawSchool(int num_rows, uint64_t seed) {
  return GenerateSynthetic(LawSchoolSpec(num_rows), seed);
}

}  // namespace remedy
