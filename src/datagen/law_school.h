#ifndef REMEDY_DATAGEN_LAW_SCHOOL_H_
#define REMEDY_DATAGEN_LAW_SCHOOL_H_

#include <cstdint>

#include "data/dataset.h"
#include "datagen/synthetic_spec.h"

namespace remedy {

// Simulated Law School dataset (Table II: 4,590 rows, 12 attributes,
// protected X = {age, gender, race, family_income}). The paper balanced the
// original's extreme label skew by uniform sampling; the simulation targets
// a ~50% positive rate directly. Family income is included as protected to
// surface economic-background discrimination, as in the paper.
SyntheticSpec LawSchoolSpec(int num_rows = 4590);

Dataset MakeLawSchool(int num_rows = 4590, uint64_t seed = 303);

}  // namespace remedy

#endif  // REMEDY_DATAGEN_LAW_SCHOOL_H_
