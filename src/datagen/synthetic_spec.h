#ifndef REMEDY_DATAGEN_SYNTHETIC_SPEC_H_
#define REMEDY_DATAGEN_SYNTHETIC_SPEC_H_

#include <string>
#include <vector>

#include "data/attribute.h"
#include "data/schema.h"

namespace remedy {

// Declarative specification of a synthetic tabular population.
//
// The real Adult / ProPublica / Law School datasets are not available in
// this environment, so the library simulates them: attribute marginals and
// pairwise dependencies reproduce the published schema and base rates, a
// logistic label model provides genuine signal for the classifiers, and
// *bias injections* plant the paper's core phenomenon — intersectional
// regions whose class ratio is skewed relative to their neighboring regions
// (Implicit Biased Sets). Train and test splits share the distribution, as
// with the real data, so remedying the training set trades test accuracy
// for subgroup fairness exactly as the paper describes.

struct AttributeSpec {
  AttributeSchema schema;
  // Unnormalized sampling weights per value (the marginal distribution).
  std::vector<double> marginal;
  // Optional dependence on a previously declared attribute: when parent >= 0
  // the value is drawn from conditional[parent_value] instead of marginal.
  int parent = -1;
  std::vector<std::vector<double>> conditional;
};

// Builders for the common spec shapes (keep dataset factories terse).
AttributeSpec IndependentAttribute(AttributeSchema schema,
                                   std::vector<double> marginal);
AttributeSpec ConditionalAttribute(AttributeSchema schema,
                                   std::vector<double> marginal, int parent,
                                   std::vector<std::vector<double>>
                                       conditional);

// Adds `coefficient` to the label logit when attribute `attribute` takes
// value `value`. This is the honest signal classifiers can learn.
struct LabelTerm {
  int attribute = 0;
  int value = 0;
  double coefficient = 0.0;
};

// Simulated biased data collection: rows matching `pattern` (one entry per
// attribute, -1 = don't care) get `logit_boost` added to their label logit,
// skewing the region's positive/negative ratio relative to its neighbors —
// i.e., planting an IBS.
struct BiasInjection {
  std::vector<int> pattern;
  double logit_boost = 0.0;
};

struct SyntheticSpec {
  std::string name;
  std::vector<AttributeSpec> attributes;
  std::vector<int> protected_indices;
  int num_rows = 1000;
  double base_logit = 0.0;  // controls the base positive rate
  std::vector<LabelTerm> label_terms;
  std::vector<BiasInjection> injections;

  // Schema view of the spec (attributes + protected set).
  DataSchema MakeSchema() const;

  // Dies with a message if the spec is internally inconsistent (bad parent
  // references, weight/cardinality mismatches, out-of-range terms...).
  void Validate() const;
};

}  // namespace remedy

#endif  // REMEDY_DATAGEN_SYNTHETIC_SPEC_H_
