#include "datagen/synthetic_spec.h"

#include "common/check.h"

namespace remedy {

AttributeSpec IndependentAttribute(AttributeSchema schema,
                                   std::vector<double> marginal) {
  AttributeSpec spec;
  spec.schema = std::move(schema);
  spec.marginal = std::move(marginal);
  return spec;
}

AttributeSpec ConditionalAttribute(
    AttributeSchema schema, std::vector<double> marginal, int parent,
    std::vector<std::vector<double>> conditional) {
  AttributeSpec spec;
  spec.schema = std::move(schema);
  spec.marginal = std::move(marginal);
  spec.parent = parent;
  spec.conditional = std::move(conditional);
  return spec;
}

DataSchema SyntheticSpec::MakeSchema() const {
  std::vector<AttributeSchema> schemas;
  schemas.reserve(attributes.size());
  for (const AttributeSpec& attribute : attributes) {
    schemas.push_back(attribute.schema);
  }
  return DataSchema(std::move(schemas), protected_indices);
}

void SyntheticSpec::Validate() const {
  REMEDY_CHECK(num_rows > 0) << name << ": num_rows must be positive";
  REMEDY_CHECK(!attributes.empty()) << name << ": no attributes";
  const int m = static_cast<int>(attributes.size());

  for (int i = 0; i < m; ++i) {
    const AttributeSpec& attribute = attributes[i];
    const int cardinality = attribute.schema.Cardinality();
    REMEDY_CHECK(static_cast<int>(attribute.marginal.size()) == cardinality)
        << name << ": attribute " << attribute.schema.name()
        << " marginal size mismatch";
    if (attribute.parent >= 0) {
      REMEDY_CHECK(attribute.parent < i)
          << name << ": attribute " << attribute.schema.name()
          << " depends on a later attribute";
      const int parent_cardinality =
          attributes[attribute.parent].schema.Cardinality();
      REMEDY_CHECK(static_cast<int>(attribute.conditional.size()) ==
                   parent_cardinality)
          << name << ": conditional table rows mismatch for "
          << attribute.schema.name();
      for (const std::vector<double>& row : attribute.conditional) {
        REMEDY_CHECK(static_cast<int>(row.size()) == cardinality)
            << name << ": conditional table width mismatch for "
            << attribute.schema.name();
      }
    }
  }

  for (int index : protected_indices) {
    REMEDY_CHECK(index >= 0 && index < m)
        << name << ": bad protected index " << index;
  }

  for (const LabelTerm& term : label_terms) {
    REMEDY_CHECK(term.attribute >= 0 && term.attribute < m)
        << name << ": label term attribute out of range";
    REMEDY_CHECK(term.value >= 0 &&
                 term.value < attributes[term.attribute].schema.Cardinality())
        << name << ": label term value out of range";
  }

  for (const BiasInjection& injection : injections) {
    REMEDY_CHECK(static_cast<int>(injection.pattern.size()) == m)
        << name << ": injection pattern arity mismatch";
    for (int i = 0; i < m; ++i) {
      REMEDY_CHECK(injection.pattern[i] >= -1 &&
                   injection.pattern[i] < attributes[i].schema.Cardinality())
          << name << ": injection value out of range at attribute " << i;
    }
  }
}

}  // namespace remedy
