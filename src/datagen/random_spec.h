#ifndef REMEDY_DATAGEN_RANDOM_SPEC_H_
#define REMEDY_DATAGEN_RANDOM_SPEC_H_

#include "common/rng.h"
#include "datagen/synthetic_spec.h"

namespace remedy {

// Randomized dataset specifications for schema-fuzzing property tests:
// random attribute counts and cardinalities, random protected subsets,
// random marginals, label terms and bias injections. The fixed-schema unit
// tests pin behaviour; these pin it across the shape space (wide/narrow
// domains, many/few protected attributes, skewed/flat marginals).

struct RandomSpecOptions {
  int min_attributes = 3;
  int max_attributes = 6;
  int min_cardinality = 2;
  int max_cardinality = 5;
  int min_protected = 1;
  int max_protected = 4;  // capped at the attribute count
  int num_rows = 800;
  int num_injections = 3;
  double max_injection = 1.5;  // |logit boost| upper bound
};

// Draws a valid spec from `rng` (spec.Validate() always passes).
SyntheticSpec RandomSpec(Rng& rng, const RandomSpecOptions& options = {});

}  // namespace remedy

#endif  // REMEDY_DATAGEN_RANDOM_SPEC_H_
