#include "datagen/adult.h"

#include "common/check.h"
#include "datagen/generator.h"

namespace remedy {
namespace {

enum : int {
  kAge = 0,
  kRace = 1,
  kGender = 2,
  kMarital = 3,
  kRelationship = 4,
  kCountry = 5,
  kEducation = 6,
  kOccupation = 7,
  kWorkclass = 8,
  kHours = 9,
  kCapitalGain = 10,
  kCapitalLoss = 11,
  kIndustry = 12,
};

constexpr int kNumAttributes = 13;

std::vector<int> Only(std::initializer_list<std::pair<int, int>> assigned) {
  std::vector<int> pattern(kNumAttributes, -1);
  for (const auto& [attribute, value] : assigned) {
    pattern[attribute] = value;
  }
  return pattern;
}

}  // namespace

SyntheticSpec AdultSpec(int num_rows) {
  SyntheticSpec spec;
  spec.name = "adult";
  spec.num_rows = num_rows;

  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("age", {"<25", "25-34", "35-44", "45-54", "55+"}),
      {0.16, 0.26, 0.26, 0.18, 0.14}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("race",
                      {"White", "Black", "Asian-Pac", "Amer-Indian", "Other"}),
      {0.78, 0.12, 0.05, 0.025, 0.025}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("gender", {"Male", "Female"}), {0.68, 0.32}));
  // Marital status shifts with age.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("marital_status", {"Married", "Never-married",
                                         "Divorced", "Separated", "Widowed"}),
      {0.47, 0.32, 0.13, 0.03, 0.05}, kAge,
      {{0.10, 0.84, 0.04, 0.01, 0.01},
       {0.45, 0.45, 0.07, 0.02, 0.01},
       {0.60, 0.18, 0.17, 0.03, 0.02},
       {0.63, 0.08, 0.21, 0.04, 0.04},
       {0.58, 0.05, 0.18, 0.04, 0.15}}));
  // Relationship follows marital status.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("relationship",
                      {"Husband", "Wife", "Own-child", "Unmarried",
                       "Not-in-family", "Other-relative"}),
      {0.40, 0.16, 0.15, 0.10, 0.16, 0.03}, kMarital,
      {{0.66, 0.28, 0.01, 0.01, 0.03, 0.01},
       {0.01, 0.01, 0.40, 0.20, 0.33, 0.05},
       {0.01, 0.01, 0.06, 0.35, 0.52, 0.05},
       {0.01, 0.01, 0.08, 0.45, 0.40, 0.05},
       {0.01, 0.01, 0.03, 0.45, 0.45, 0.05}}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("country", {"US", "LatinAm", "Other"}),
      {0.90, 0.05, 0.05}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("education", {"HS-or-less", "Some-college", "Bachelors",
                                    "Masters", "Doctorate"}),
      {0.45, 0.25, 0.20, 0.08, 0.02}));
  // Occupation skews with education.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("occupation", {"Craft", "Service", "Sales", "Admin",
                                     "Professional", "Managerial"}),
      {0.20, 0.18, 0.15, 0.17, 0.15, 0.15}, kEducation,
      {{0.32, 0.28, 0.15, 0.15, 0.04, 0.06},
       {0.20, 0.18, 0.18, 0.22, 0.10, 0.12},
       {0.06, 0.08, 0.16, 0.16, 0.30, 0.24},
       {0.03, 0.04, 0.08, 0.10, 0.45, 0.30},
       {0.01, 0.02, 0.03, 0.04, 0.70, 0.20}}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("workclass", {"Private", "Self-emp", "Government",
                                    "Other"}),
      {0.70, 0.11, 0.15, 0.04}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("hours", {"Part", "Full", "Over"}), {0.15, 0.60, 0.25}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("capital_gain", {"None", "Low", "High"}),
      {0.90, 0.07, 0.03}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("capital_loss", {"None", "Some"}), {0.95, 0.05}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("industry",
                      {"Manufacturing", "Services", "Tech", "Public"}),
      {0.30, 0.40, 0.15, 0.15}));

  spec.protected_indices = {kAge,     kRace,         kGender,
                            kMarital, kRelationship, kCountry};

  // Income > 50K base rate around 25% before injections.
  spec.base_logit = -2.6;
  spec.label_terms = {
      {kEducation, 2, 0.8},    // Bachelors
      {kEducation, 3, 1.2},    // Masters
      {kEducation, 4, 1.6},    // Doctorate
      {kOccupation, 4, 0.6},   // Professional
      {kOccupation, 5, 0.8},   // Managerial
      {kHours, 2, 0.6},        // Over-time
      {kHours, 0, -0.8},       // Part-time
      {kCapitalGain, 1, 0.7},  // Low gains
      {kCapitalGain, 2, 2.0},  // High gains
      // Protected attributes carry only mild genuine signal; the heavy
      // lifting is in the non-protected features, so the single-attribute
      // (Top) view of the protected space stays close to clean.
      {kAge, 0, -0.5},   // <25
      {kAge, 2, 0.25},   // 35-44
      {kAge, 3, 0.3},    // 45-54
      {kMarital, 0, 0.35},  // Married
      {kGender, 0, 0.15},   // Male (historical bias in the signal)
  };

  // Biased collection pockets across hierarchy levels of the protected
  // space. The injections are gerrymandered in the sense of [21]: they come
  // in (mostly) counter-balancing pairs so the single-attribute marginals
  // stay near-clean and only the intersections carry the skew — the regime
  // where the Top baseline cannot help and the full lattice sweep is
  // needed (Fig. 4's Lattice-vs-Top contrast).
  spec.injections = {
      // XOR pair on gender x marital status.
      {Only({{kGender, 0}, {kMarital, 0}}), 0.9},   // married males
      {Only({{kGender, 1}, {kMarital, 1}}), 0.9},   // never-married females
      {Only({{kGender, 0}, {kMarital, 1}}), -0.9},  // never-married males
      {Only({{kGender, 1}, {kMarital, 0}}), -0.9},  // married females
      // Mirrored pair on race x gender: the Black marginal stays clean.
      {Only({{kRace, 1}, {kGender, 1}}), -1.2},  // Black females
      {Only({{kRace, 1}, {kGender, 0}}), 1.2},   // Black males
      // Mirrored pair on relationship x age.
      {Only({{kRelationship, 2}, {kAge, 1}}), 1.2},   // own-child 25-34
      {Only({{kRelationship, 2}, {kAge, 2}}), -1.2},  // own-child 35-44
      // Small unpaired pockets (tiny populations; marginal impact is weak).
      {Only({{kAge, 0}, {kCountry, 1}}), 1.4},  // young LatinAm
      {Only({{kRace, 0}, {kRelationship, 0}, {kCountry, 0}}), 0.4},
      {Only({{kMarital, 1}, {kGender, 1}, {kAge, 3}}), -0.8},
      // Deeper unpaired pocket: projects onto the (race, gender) plane that
      // the Table III setting audits, while staying invisible to
      // single-attribute views of the full protected space.
      {Only({{kRace, 1}, {kGender, 1}, {kAge, 1}}), -1.5},
      // Moderate marginal under-collection of positives for women and
      // Black respondents — the real Adult census shows such gaps. The
      // shifts keep the level-1 imbalance deltas under the tau_c = 0.5 the
      // paper tunes for this dataset (so the Top ablation stays coarse),
      // yet give the linear Table III setting a violation to remove.
      {Only({{kGender, 1}}), -0.45},
      {Only({{kRace, 1}}), -0.3},
  };
  return spec;
}

Dataset MakeAdult(int num_rows, uint64_t seed) {
  return GenerateSynthetic(AdultSpec(num_rows), seed);
}

std::vector<std::string> AdultScalabilityProtected(int count) {
  REMEDY_CHECK(count >= 1 && count <= 8);
  static const char* kOrder[] = {"age",          "race",
                                 "gender",       "marital_status",
                                 "relationship", "country",
                                 "education",    "occupation"};
  return std::vector<std::string>(kOrder, kOrder + count);
}

}  // namespace remedy
