#include "datagen/random_spec.h"

#include <string>

#include "common/check.h"

namespace remedy {

SyntheticSpec RandomSpec(Rng& rng, const RandomSpecOptions& options) {
  REMEDY_CHECK(options.min_attributes >= 1);
  REMEDY_CHECK(options.min_cardinality >= 2);
  REMEDY_CHECK(options.min_protected >= 1);

  SyntheticSpec spec;
  spec.name = "random";
  spec.num_rows = options.num_rows;

  const int num_attributes =
      rng.UniformRange(options.min_attributes, options.max_attributes);
  for (int a = 0; a < num_attributes; ++a) {
    int cardinality =
        rng.UniformRange(options.min_cardinality, options.max_cardinality);
    std::vector<std::string> values;
    std::vector<double> marginal;
    for (int v = 0; v < cardinality; ++v) {
      values.push_back("a" + std::to_string(a) + "v" + std::to_string(v));
      marginal.push_back(0.2 + rng.Uniform());  // bounded away from zero
    }
    spec.attributes.push_back(IndependentAttribute(
        AttributeSchema("attr" + std::to_string(a), std::move(values)),
        std::move(marginal)));
  }

  // Random protected subset.
  int num_protected = rng.UniformRange(
      options.min_protected,
      std::min(options.max_protected, num_attributes));
  spec.protected_indices =
      rng.SampleWithoutReplacement(num_attributes, num_protected);

  // Mild signal on a couple of attributes so classifiers have traction.
  spec.base_logit = -0.3 + 0.6 * rng.Uniform();
  for (int t = 0; t < 2; ++t) {
    int attribute = rng.UniformInt(num_attributes);
    int value = rng.UniformInt(
        spec.attributes[attribute].schema.Cardinality());
    spec.label_terms.push_back(
        {attribute, value, rng.Normal(0.0, 0.6)});
  }

  // Random intersectional bias injections over the protected subset.
  for (int i = 0; i < options.num_injections; ++i) {
    std::vector<int> pattern(num_attributes, -1);
    int arity = 1 + rng.UniformInt(
                        static_cast<int>(spec.protected_indices.size()));
    std::vector<int> positions = rng.SampleWithoutReplacement(
        static_cast<int>(spec.protected_indices.size()), arity);
    for (int position : positions) {
      int attribute = spec.protected_indices[position];
      pattern[attribute] =
          rng.UniformInt(spec.attributes[attribute].schema.Cardinality());
    }
    double boost = (rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                   (0.3 + rng.Uniform() * (options.max_injection - 0.3));
    spec.injections.push_back({std::move(pattern), boost});
  }

  spec.Validate();
  return spec;
}

}  // namespace remedy
