#ifndef REMEDY_DATAGEN_GENERATOR_H_
#define REMEDY_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "data/columnar.h"
#include "data/dataset.h"
#include "datagen/synthetic_spec.h"

namespace remedy {

// Samples `spec.num_rows` rows: attributes in declaration order (honoring
// conditional dependencies), then the binary label from the logistic model
// base_logit + label terms + matching bias-injection boosts. Deterministic
// given `seed`.
Dataset GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed);

// Chunk size of the streaming generator entry points below: large enough
// to amortize per-chunk overhead, small enough that peak memory stays at
// one chunk regardless of spec.num_rows.
inline constexpr int64_t kGeneratorChunkRows = 64 * 1024;

// Streams the exact row sequence of GenerateSynthetic(spec, seed) to
// `sink` in Datasets of at most `chunk_rows` rows, so arbitrarily large
// inputs are produced without the full Dataset ever materializing. The RNG
// consumption order is identical to GenerateSynthetic: concatenating the
// chunks reproduces it bit-for-bit, for any chunk size.
void GenerateSyntheticChunks(const SyntheticSpec& spec, uint64_t seed,
                             int64_t chunk_rows,
                             const std::function<void(const Dataset&)>& sink);

// Streams the generated rows straight into a columnar shard store — the
// 10M+-row counting path. Peak memory is the store's code columns (a few
// bytes per row) plus one in-flight row; no chunk Dataset is built at all.
ColumnarShardStore GenerateSyntheticStore(
    const SyntheticSpec& spec, uint64_t seed,
    int64_t shard_rows = ColumnarShardStore::kDefaultShardRows);

// Spill twin of GenerateSyntheticStore: streams the same rows (same RNG
// order, bit-identical shards) through a spill-mode builder into per-shard
// files under `dir`, so peak memory is one in-flight shard no matter how
// large spec.num_rows is. Returns the mmap-backed store re-opened over the
// files — the 100M+-row out-of-core counting path.
StatusOr<ColumnarShardStore> GenerateSyntheticSpilledStore(
    const SyntheticSpec& spec, uint64_t seed, const std::string& dir,
    int64_t shard_rows = ColumnarShardStore::kDefaultShardRows);

// Streams the generated rows to a CSV file (header + one record per row),
// writing chunk by chunk. Byte-identical to
// WriteCsvFile(path, GenerateSynthetic(spec, seed).ToCsv()) at any size.
Status GenerateSyntheticCsvFile(const SyntheticSpec& spec, uint64_t seed,
                                const std::string& path,
                                int64_t chunk_rows = kGeneratorChunkRows);

// The label logit of one attribute-value assignment under `spec`; exposed
// so tests can verify the generator hits the intended regional skews.
double LabelLogit(const SyntheticSpec& spec, const std::vector<int>& values);

}  // namespace remedy

#endif  // REMEDY_DATAGEN_GENERATOR_H_
