#ifndef REMEDY_DATAGEN_GENERATOR_H_
#define REMEDY_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"
#include "datagen/synthetic_spec.h"

namespace remedy {

// Samples `spec.num_rows` rows: attributes in declaration order (honoring
// conditional dependencies), then the binary label from the logistic model
// base_logit + label terms + matching bias-injection boosts. Deterministic
// given `seed`.
Dataset GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed);

// The label logit of one attribute-value assignment under `spec`; exposed
// so tests can verify the generator hits the intended regional skews.
double LabelLogit(const SyntheticSpec& spec, const std::vector<int>& values);

}  // namespace remedy

#endif  // REMEDY_DATAGEN_GENERATOR_H_
