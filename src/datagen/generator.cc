#include "datagen/generator.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace remedy {
namespace {

bool InjectionMatches(const BiasInjection& injection,
                      const std::vector<int>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (injection.pattern[i] >= 0 && injection.pattern[i] != values[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

double LabelLogit(const SyntheticSpec& spec, const std::vector<int>& values) {
  double logit = spec.base_logit;
  for (const LabelTerm& term : spec.label_terms) {
    if (values[term.attribute] == term.value) logit += term.coefficient;
  }
  for (const BiasInjection& injection : spec.injections) {
    if (InjectionMatches(injection, values)) logit += injection.logit_boost;
  }
  return logit;
}

Dataset GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed) {
  spec.Validate();
  Dataset data(spec.MakeSchema());
  Rng rng(seed);
  const int m = static_cast<int>(spec.attributes.size());
  std::vector<int> values(m);
  for (int r = 0; r < spec.num_rows; ++r) {
    for (int i = 0; i < m; ++i) {
      const AttributeSpec& attribute = spec.attributes[i];
      const std::vector<double>& weights =
          attribute.parent >= 0
              ? attribute.conditional[values[attribute.parent]]
              : attribute.marginal;
      values[i] = rng.Categorical(weights);
    }
    double logit = LabelLogit(spec, values);
    double p = 1.0 / (1.0 + std::exp(-logit));
    data.AddRow(values, rng.Bernoulli(p) ? 1 : 0);
  }
  return data;
}

}  // namespace remedy
