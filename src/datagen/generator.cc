#include "datagen/generator.h"

#include <cmath>
#include <fstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/rng.h"

namespace remedy {
namespace {

bool InjectionMatches(const BiasInjection& injection,
                      const std::vector<int>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (injection.pattern[i] >= 0 && injection.pattern[i] != values[i]) {
      return false;
    }
  }
  return true;
}

// The one row loop every generator entry point runs: samples attributes in
// declaration order, then the label, and hands each row to `sink`. A single
// shared loop is what makes the streaming forms bit-identical to
// GenerateSynthetic — the RNG is consumed in exactly one order.
template <typename RowSink>
void GenerateRows(const SyntheticSpec& spec, uint64_t seed, RowSink&& sink) {
  spec.Validate();
  Rng rng(seed);
  const int m = static_cast<int>(spec.attributes.size());
  std::vector<int> values(m);
  for (int r = 0; r < spec.num_rows; ++r) {
    for (int i = 0; i < m; ++i) {
      const AttributeSpec& attribute = spec.attributes[i];
      const std::vector<double>& weights =
          attribute.parent >= 0
              ? attribute.conditional[values[attribute.parent]]
              : attribute.marginal;
      values[i] = rng.Categorical(weights);
    }
    double logit = LabelLogit(spec, values);
    double p = 1.0 / (1.0 + std::exp(-logit));
    sink(values, rng.Bernoulli(p) ? 1 : 0);
  }
}

}  // namespace

double LabelLogit(const SyntheticSpec& spec, const std::vector<int>& values) {
  double logit = spec.base_logit;
  for (const LabelTerm& term : spec.label_terms) {
    if (values[term.attribute] == term.value) logit += term.coefficient;
  }
  for (const BiasInjection& injection : spec.injections) {
    if (InjectionMatches(injection, values)) logit += injection.logit_boost;
  }
  return logit;
}

Dataset GenerateSynthetic(const SyntheticSpec& spec, uint64_t seed) {
  Dataset data(spec.MakeSchema());
  GenerateRows(spec, seed, [&data](const std::vector<int>& values, int label) {
    data.AddRow(values, label);
  });
  return data;
}

void GenerateSyntheticChunks(
    const SyntheticSpec& spec, uint64_t seed, int64_t chunk_rows,
    const std::function<void(const Dataset&)>& sink) {
  REMEDY_CHECK(chunk_rows > 0) << "chunk_rows must be positive";
  DataSchema schema = spec.MakeSchema();
  Dataset chunk(schema);
  GenerateRows(spec, seed, [&](const std::vector<int>& values, int label) {
    chunk.AddRow(values, label);
    if (chunk.NumRows() >= chunk_rows) {
      sink(chunk);
      chunk = Dataset(schema);
    }
  });
  if (chunk.NumRows() > 0) sink(chunk);
}

ColumnarShardStore GenerateSyntheticStore(const SyntheticSpec& spec,
                                          uint64_t seed, int64_t shard_rows) {
  ColumnarShardStoreBuilder builder(spec.MakeSchema(), shard_rows);
  GenerateRows(spec, seed,
               [&builder](const std::vector<int>& values, int label) {
                 builder.AddRow(values, label);
               });
  return builder.Finish();
}

StatusOr<ColumnarShardStore> GenerateSyntheticSpilledStore(
    const SyntheticSpec& spec, uint64_t seed, const std::string& dir,
    int64_t shard_rows) {
  ColumnarShardStoreBuilder builder(spec.MakeSchema(), shard_rows);
  RETURN_IF_ERROR(builder.EnableSpill(dir));
  GenerateRows(spec, seed,
               [&builder](const std::vector<int>& values, int label) {
                 builder.AddRow(values, label);
               });
  return builder.FinishSpilled();
}

Status GenerateSyntheticCsvFile(const SyntheticSpec& spec, uint64_t seed,
                                const std::string& path, int64_t chunk_rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open '" + path + "' for writing");
  bool wrote_header = false;
  GenerateSyntheticChunks(spec, seed, chunk_rows, [&](const Dataset& chunk) {
    CsvTable table = chunk.ToCsv();
    if (wrote_header) table.header.clear();
    wrote_header = true;
    out << WriteCsv(table);
  });
  out.close();
  if (!out) return IoError("write to '" + path + "' failed");
  return OkStatus();
}

}  // namespace remedy
