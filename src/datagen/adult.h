#ifndef REMEDY_DATAGEN_ADULT_H_
#define REMEDY_DATAGEN_ADULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "datagen/synthetic_spec.h"

namespace remedy {

// Simulated AdultCensus dataset (Table II: 45,222 rows, 13 attributes,
// protected X = {age, race, gender, marital_status, relationship, country}).
// Positive label = income > 50K (base rate ~25%). Injections plant IBS at
// several hierarchy levels so the Lattice-vs-Leaf/Top comparison (Fig. 4)
// is meaningful.
SyntheticSpec AdultSpec(int num_rows = 45222);

Dataset MakeAdult(int num_rows = 45222, uint64_t seed = 202);

// The scalability experiments (Fig. 9) widen X with the non-protected
// education and occupation attributes, "despite them not being protected
// characteristics"; this returns the first `count` names of that widened
// ordering (3 <= count <= 8).
std::vector<std::string> AdultScalabilityProtected(int count);

}  // namespace remedy

#endif  // REMEDY_DATAGEN_ADULT_H_
