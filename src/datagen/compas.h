#ifndef REMEDY_DATAGEN_COMPAS_H_
#define REMEDY_DATAGEN_COMPAS_H_

#include <cstdint>

#include "data/dataset.h"
#include "datagen/synthetic_spec.h"

namespace remedy {

// Simulated ProPublica/COMPAS recidivism dataset (Table II: 6,172 rows,
// 6 attributes, protected X = {age, race, sex}). Positive label = recidivist
// (base rate ~45%). Bias injections plant the skewed regions the paper's
// running example is built on, e.g. the (race=Afr-Am, sex=Male) excess of
// positive records behind Example 1's 0.15 subgroup FPR.
SyntheticSpec CompasSpec(int num_rows = 6172);

Dataset MakeCompas(int num_rows = 6172, uint64_t seed = 101);

// Variant of the spec with the natural numeric orderings declared (age and
// priors become ordinal), exercising the refined attribute-distance setting
// of Def. 4: distance-1 neighbors of an age bucket are only the adjacent
// buckets, and the optimized identification falls back to the naive
// neighbor enumeration where its unit-distance identity no longer holds.
SyntheticSpec CompasOrdinalSpec(int num_rows = 6172);

Dataset MakeCompasOrdinal(int num_rows = 6172, uint64_t seed = 101);

}  // namespace remedy

#endif  // REMEDY_DATAGEN_COMPAS_H_
