#include "datagen/compas.h"

#include "datagen/generator.h"

namespace remedy {
namespace {

// Attribute positions in the COMPAS spec.
enum : int {
  kAge = 0,
  kRace = 1,
  kSex = 2,
  kPriors = 3,
  kCharge = 4,
  kJuvenile = 5,
};

constexpr int kNumAttributes = 6;

// Pattern helper: wildcard everywhere except the given assignments.
std::vector<int> Only(std::initializer_list<std::pair<int, int>> assigned) {
  std::vector<int> pattern(kNumAttributes, -1);
  for (const auto& [attribute, value] : assigned) {
    pattern[attribute] = value;
  }
  return pattern;
}

}  // namespace

SyntheticSpec CompasSpec(int num_rows) {
  SyntheticSpec spec;
  spec.name = "compas";
  spec.num_rows = num_rows;

  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("age", {"<25", "25-45", ">45"}), {0.22, 0.57, 0.21}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("race", {"Afr-Am", "Caucasian", "Hispanic", "Other"}),
      {0.51, 0.34, 0.09, 0.06}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("sex", {"Male", "Female"}), {0.81, 0.19}));
  // Priors accumulate with age.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("priors", {"0", "1-3", ">3"}), {0.4, 0.35, 0.25}, kAge,
      {{0.50, 0.35, 0.15}, {0.35, 0.35, 0.30}, {0.30, 0.30, 0.40}}));
  spec.attributes.push_back(IndependentAttribute(
      AttributeSchema("charge_degree", {"F", "M"}), {0.64, 0.36}));
  // Juvenile records are more common for younger defendants.
  spec.attributes.push_back(ConditionalAttribute(
      AttributeSchema("juvenile", {"none", "some"}), {0.85, 0.15}, kAge,
      {{0.70, 0.30}, {0.85, 0.15}, {0.95, 0.05}}));

  spec.protected_indices = {kAge, kRace, kSex};

  // Recidivism base rate around 45% before injections. The non-protected
  // criminal-history signal is the stronger part of the model, so remedying
  // the protected-space skew costs bounded accuracy, as in the paper.
  spec.base_logit = -1.9;
  spec.label_terms = {
      {kPriors, 2, 1.9},    // >3 priors
      {kPriors, 1, 0.9},    // 1-3 priors
      {kAge, 0, 0.4},       // <25
      {kAge, 2, -0.35},     // >45
      {kJuvenile, 1, 0.9},  // juvenile record
      {kCharge, 0, 0.5},    // felony charge
  };

  // Biased data collection in the intersectional space of {age, race, sex}.
  spec.injections = {
      {Only({{kRace, 0}, {kSex, 0}}), 1.0},   // Afr-Am males: excess positives
      {Only({{kAge, 0}, {kRace, 0}}), 0.8},   // young Afr-Am
      {Only({{kRace, 1}, {kSex, 1}}), -0.9},  // Caucasian females: excess negs
      {Only({{kAge, 2}, {kSex, 1}}), -0.7},   // older females
      {Only({{kAge, 1}, {kRace, 2}, {kSex, 0}}), 0.9},  // leaf-level pocket
  };
  return spec;
}

Dataset MakeCompas(int num_rows, uint64_t seed) {
  return GenerateSynthetic(CompasSpec(num_rows), seed);
}

SyntheticSpec CompasOrdinalSpec(int num_rows) {
  SyntheticSpec spec = CompasSpec(num_rows);
  spec.name = "compas_ordinal";
  // Same domains and distributions; only the distance metric changes.
  spec.attributes[kAge].schema = AttributeSchema(
      "age", spec.attributes[kAge].schema.values(), /*ordinal=*/true);
  spec.attributes[kPriors].schema = AttributeSchema(
      "priors", spec.attributes[kPriors].schema.values(), /*ordinal=*/true);
  return spec;
}

Dataset MakeCompasOrdinal(int num_rows, uint64_t seed) {
  return GenerateSynthetic(CompasOrdinalSpec(num_rows), seed);
}

}  // namespace remedy
