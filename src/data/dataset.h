#ifndef REMEDY_DATA_DATASET_H_
#define REMEDY_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "data/schema.h"

namespace remedy {

// Column-major categorical dataset with binary labels and per-instance
// weights.
//
// Cells hold value codes into the corresponding AttributeSchema domain.
// Labels are 0 (negative) / 1 (positive). Weights default to 1 and are used
// by the reweighting baselines and weight-aware learners.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(DataSchema schema);

  const DataSchema& schema() const { return schema_; }

  // Replaces the protected-attribute set (e.g. to widen X for scalability
  // experiments); row data is untouched.
  void SetProtected(const std::vector<std::string>& names);

  int NumRows() const { return static_cast<int>(labels_.size()); }
  int NumColumns() const { return schema_.NumAttributes(); }

  // Appends one row. `values[c]` must be a valid code for attribute c.
  void AddRow(const std::vector<int>& values, int label, double weight = 1.0);

  // Duplicates row `row` of `source` into this dataset (schemas must have the
  // same attribute count). Used by the sampling remedies.
  void AppendRowFrom(const Dataset& source, int row);

  int Value(int row, int column) const {
    return columns_[column][static_cast<size_t>(row)];
  }
  int Label(int row) const { return labels_[static_cast<size_t>(row)]; }
  double Weight(int row) const { return weights_[static_cast<size_t>(row)]; }

  void SetLabel(int row, int label);
  void SetWeight(int row, double weight);

  // Sets every instance weight to `weight` in one fill — the bulk form the
  // samplers use after a weighted bootstrap has already consumed the
  // weights (per-row SetWeight loops are O(n) bounds checks for nothing).
  void ResetWeights(double weight = 1.0);

  // All attribute codes of one row (decoded from column-major storage).
  std::vector<int> Row(int row) const;

  // Dataset restricted to `rows` (in the given order).
  Dataset Select(const std::vector<int>& rows) const;

  // Dataset with `rows` removed.
  Dataset Remove(const std::vector<int>& rows) const;

  // Dataset restricted to the rows with keep[row] != 0, in row order — the
  // one-pass, column-major compaction of a tombstone mask. `keep` must have
  // exactly NumRows() entries.
  Dataset Compact(const std::vector<char>& keep) const;

  // Appends every row of `other`. Schemas must have the same attribute count.
  void Append(const Dataset& other);

  // Random split into (train, test) with `train_fraction` of rows in train.
  std::pair<Dataset, Dataset> TrainTestSplit(double train_fraction,
                                             Rng& rng) const;

  // Uniform sample of `count` rows without replacement.
  Dataset SampleRows(int count, Rng& rng) const;

  int PositiveCount() const;
  int NegativeCount() const;
  double TotalWeight() const;

  // CSV round-trip using value names; the label is the last column.
  CsvTable ToCsv() const;
  // Parses rows of a CSV back into a dataset under `schema`. Returns false
  // and sets *error on unknown values or bad labels.
  static bool FromCsv(const DataSchema& schema, const CsvTable& table,
                      Dataset* dataset, std::string* error);

 private:
  DataSchema schema_;
  std::vector<std::vector<int32_t>> columns_;
  std::vector<int8_t> labels_;
  std::vector<double> weights_;
};

}  // namespace remedy

#endif  // REMEDY_DATA_DATASET_H_
