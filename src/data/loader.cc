#include "data/loader.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/pipeline_metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "data/discretize.h"

namespace remedy {
namespace {

constexpr char kOtherValue[] = "<other>";

bool ParseNumber(const std::string& text, double* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

struct ColumnPlan {
  bool numeric = false;
  bool pooled = false;
  AttributeSchema schema;
  Bucketizer bucketizer{"", {}};
  // Categorical value -> code (codes for pooled values map to "<other>").
  std::unordered_map<std::string, int> codes;
};

// Decides the type and domain of one column from its (trimmed, non-missing)
// values.
ColumnPlan PlanColumn(const std::string& name,
                      const std::vector<std::string>& values,
                      const LoaderOptions& options) {
  ColumnPlan plan;

  // Numeric if every value parses and the distinct count is large enough.
  bool all_numeric = true;
  std::vector<double> numbers;
  numbers.reserve(values.size());
  for (const std::string& value : values) {
    double number;
    if (!ParseNumber(value, &number)) {
      all_numeric = false;
      break;
    }
    numbers.push_back(number);
  }
  if (all_numeric) {
    std::vector<double> distinct = numbers;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    if (static_cast<int>(distinct.size()) >
        options.categorical_numeric_limit) {
      plan.numeric = true;
      plan.bucketizer =
          Bucketizer::Quantile(name, numbers, options.numeric_buckets);
      plan.schema = plan.bucketizer.MakeSchema();
      return plan;
    }
  }

  // Categorical: domain = observed values by descending frequency, pooling
  // the tail into "<other>" beyond max_categories.
  std::map<std::string, int> frequency;
  for (const std::string& value : values) ++frequency[value];
  std::vector<std::pair<int, std::string>> ranked;
  ranked.reserve(frequency.size());
  for (const auto& [value, count] : frequency) {
    ranked.emplace_back(count, value);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::vector<std::string> domain;
  int keep = static_cast<int>(ranked.size());
  if (keep > options.max_categories) {
    keep = options.max_categories - 1;  // reserve a slot for "<other>"
    plan.pooled = true;
  }
  for (int i = 0; i < keep; ++i) {
    plan.codes[ranked[i].second] = i;
    domain.push_back(ranked[i].second);
  }
  if (plan.pooled) {
    int other = static_cast<int>(domain.size());
    domain.push_back(kOtherValue);
    for (size_t i = keep; i < ranked.size(); ++i) {
      plan.codes[ranked[i].second] = other;
    }
  }
  plan.schema = AttributeSchema(name, std::move(domain));
  return plan;
}

// Settles the table's diverted records against the policy: fail, trip the
// corruption circuit breaker, or account for them and move on.
Status SettleBadRows(const CsvTable& table, const LoaderOptions& options,
                     LoaderReport* report, QuarantineReport* quarantine) {
  const int64_t bad = static_cast<int64_t>(table.bad_rows.size());
  if (bad == 0) return OkStatus();
  if (options.on_bad_row == BadRowPolicy::kFail) {
    // Normally unreachable via LoadCsvDataset (strict parse fails first);
    // covers callers handing a tolerantly parsed table to BuildDataset.
    const CsvBadRow& first = table.bad_rows.front();
    return DataCorruptionError("line " + std::to_string(first.line) + ": " +
                               first.reason);
  }
  const int64_t seen = bad + static_cast<int64_t>(table.rows.size());
  const double fraction =
      seen > 0 ? static_cast<double>(bad) / static_cast<double>(seen) : 1.0;
  report->rows_quarantined = bad;
  if (quarantine != nullptr) {
    quarantine->rows_quarantined = bad;
    quarantine->fraction = fraction;
    const int64_t keep =
        std::min<int64_t>(bad, QuarantineReport::kMaxExamples);
    quarantine->examples.assign(table.bad_rows.begin(),
                                table.bad_rows.begin() + keep);
  }
  if (options.on_bad_row == BadRowPolicy::kQuarantine &&
      fraction > options.max_quarantine_fraction) {
    return DataCorruptionError(
        "quarantined " + std::to_string(bad) + " of " + std::to_string(seen) +
        " records (" + std::to_string(fraction) +
        "), above max_quarantine_fraction=" +
        std::to_string(options.max_quarantine_fraction));
  }
  return OkStatus();
}

}  // namespace

StatusOr<Dataset> BuildDataset(const CsvTable& table,
                               const LoaderOptions& options,
                               LoaderReport* report_out,
                               QuarantineReport* quarantine) {
  REMEDY_FAULT_POINT("loader/build");
  REMEDY_TRACE_SPAN("loader/build_dataset");
  LoaderReport report;
  RETURN_IF_ERROR(SettleBadRows(table, options, &report, quarantine));
  if (table.header.empty()) {
    return DataCorruptionError("CSV has no header");
  }
  const int width = static_cast<int>(table.header.size());

  // Locate the label column.
  int label_column = width - 1;
  if (!options.label_column.empty()) {
    label_column = -1;
    for (int c = 0; c < width; ++c) {
      if (table.header[c] == options.label_column) label_column = c;
    }
    if (label_column < 0) {
      return InvalidArgumentError("label column '" + options.label_column +
                                  "' not found");
    }
  }

  // Drop rows with missing values (the paper's pre-processing).
  std::vector<const std::vector<std::string>*> rows;
  rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    bool missing = false;
    for (const std::string& field : row) {
      if (Trim(field).empty() || Trim(field) == "?") {
        missing = true;
        break;
      }
    }
    if (missing) {
      ++report.rows_dropped_missing;
    } else {
      rows.push_back(&row);
    }
  }
  if (rows.empty()) {
    return DataCorruptionError("no complete rows in the CSV");
  }

  // Plan every feature column.
  std::vector<ColumnPlan> plans;
  std::vector<int> feature_columns;
  for (int c = 0; c < width; ++c) {
    if (c == label_column) continue;
    feature_columns.push_back(c);
    std::vector<std::string> values;
    values.reserve(rows.size());
    for (const auto* row : rows) values.push_back(Trim((*row)[c]));
    plans.push_back(PlanColumn(table.header[c], values, options));
    if (plans.back().numeric) {
      ++report.numeric_columns;
    } else {
      ++report.categorical_columns;
      report.pooled_columns += plans.back().pooled;
    }
  }

  // Resolve the protected set.
  std::vector<int> protected_indices;
  for (const std::string& name : options.protected_attributes) {
    int found = -1;
    for (size_t i = 0; i < feature_columns.size(); ++i) {
      if (table.header[feature_columns[i]] == name) {
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      return InvalidArgumentError("protected attribute '" + name +
                                  "' not found (or is the label column)");
    }
    protected_indices.push_back(found);
  }

  std::vector<AttributeSchema> attributes;
  attributes.reserve(plans.size());
  for (const ColumnPlan& plan : plans) attributes.push_back(plan.schema);
  std::string label_name = table.header[label_column];
  Dataset dataset(
      DataSchema(std::move(attributes), protected_indices, label_name));

  // Encode the rows.
  int positives = 0;
  for (const auto* row : rows) {
    std::vector<int> codes(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      const std::string value = Trim((*row)[feature_columns[i]]);
      const ColumnPlan& plan = plans[i];
      if (plan.numeric) {
        double number = 0.0;
        if (!ParseNumber(value, &number)) {
          // PlanColumn only types a column numeric when every value parsed,
          // so reaching this means the table changed under us.
          return InternalError("non-numeric value '" + value +
                               "' in numeric column " + plan.schema.name());
        }
        codes[i] = plan.bucketizer.Code(number);
      } else {
        auto it = plan.codes.find(value);
        // PlanColumn saw every value, so this lookup cannot miss.
        codes[i] = it->second;
      }
    }
    int label =
        Trim((*row)[label_column]) == options.positive_label ? 1 : 0;
    positives += label;
    dataset.AddRow(codes, label);
  }
  report.rows_loaded = dataset.NumRows();

  if (positives == 0 || positives == dataset.NumRows()) {
    return InvalidArgumentError(
        "labels are constant after mapping positive_label='" +
        options.positive_label + "'");
  }

  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.loader_rows_loaded->Increment(report.rows_loaded);
  metrics.loader_rows_dropped_missing->Increment(report.rows_dropped_missing);
  metrics.loader_rows_quarantined->Increment(report.rows_quarantined);

  if (report_out != nullptr) *report_out = report;
  return dataset;
}

StatusOr<Dataset> LoadCsvDataset(const std::string& path,
                                 const LoaderOptions& options,
                                 LoaderReport* report,
                                 QuarantineReport* quarantine) {
  REMEDY_TRACE_SPAN("loader/load_csv");
  PipelineMetrics::Get().loader_files->Increment();
  CsvReadOptions read_options;
  read_options.parse.has_header = true;
  read_options.parse.tolerate_bad_rows =
      options.on_bad_row != BadRowPolicy::kFail;
  ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, read_options));
  StatusOr<Dataset> built = BuildDataset(table, options, report, quarantine);
  if (!built.ok()) return built.status().WithContext(path);
  return built;
}

}  // namespace remedy
