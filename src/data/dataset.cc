#include "data/dataset.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace remedy {

Dataset::Dataset(DataSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.NumAttributes());
}

void Dataset::SetProtected(const std::vector<std::string>& names) {
  schema_ = schema_.WithProtected(names);
}

void Dataset::AddRow(const std::vector<int>& values, int label,
                     double weight) {
  REMEDY_CHECK(static_cast<int>(values.size()) == NumColumns())
      << "row width " << values.size() << " != " << NumColumns();
  REMEDY_CHECK(label == 0 || label == 1) << "label must be binary";
  for (int c = 0; c < NumColumns(); ++c) {
    REMEDY_DCHECK(values[c] >= 0 &&
                  values[c] < schema_.attribute(c).Cardinality());
    columns_[c].push_back(values[c]);
  }
  labels_.push_back(static_cast<int8_t>(label));
  weights_.push_back(weight);
}

void Dataset::AppendRowFrom(const Dataset& source, int row) {
  REMEDY_CHECK(source.NumColumns() == NumColumns());
  REMEDY_CHECK(row >= 0 && row < source.NumRows());
  for (int c = 0; c < NumColumns(); ++c) {
    columns_[c].push_back(source.columns_[c][row]);
  }
  labels_.push_back(source.labels_[row]);
  weights_.push_back(source.weights_[row]);
}

void Dataset::SetLabel(int row, int label) {
  REMEDY_CHECK(row >= 0 && row < NumRows());
  REMEDY_CHECK(label == 0 || label == 1);
  labels_[row] = static_cast<int8_t>(label);
}

void Dataset::SetWeight(int row, double weight) {
  REMEDY_CHECK(row >= 0 && row < NumRows());
  REMEDY_CHECK(weight >= 0.0);
  weights_[row] = weight;
}

void Dataset::ResetWeights(double weight) {
  REMEDY_CHECK(weight >= 0.0);
  std::fill(weights_.begin(), weights_.end(), weight);
}

std::vector<int> Dataset::Row(int row) const {
  REMEDY_CHECK(row >= 0 && row < NumRows());
  std::vector<int> values(NumColumns());
  for (int c = 0; c < NumColumns(); ++c) values[c] = columns_[c][row];
  return values;
}

Dataset Dataset::Select(const std::vector<int>& rows) const {
  Dataset result(schema_);
  for (int c = 0; c < NumColumns(); ++c) {
    result.columns_[c].reserve(rows.size());
  }
  for (int row : rows) {
    REMEDY_CHECK(row >= 0 && row < NumRows());
    result.AppendRowFrom(*this, row);
  }
  return result;
}

Dataset Dataset::Remove(const std::vector<int>& rows) const {
  std::vector<char> dropped(NumRows(), 0);
  for (int row : rows) {
    REMEDY_CHECK(row >= 0 && row < NumRows());
    dropped[row] = 1;
  }
  std::vector<int> kept;
  kept.reserve(NumRows() - rows.size());
  for (int r = 0; r < NumRows(); ++r) {
    if (!dropped[r]) kept.push_back(r);
  }
  return Select(kept);
}

Dataset Dataset::Compact(const std::vector<char>& keep) const {
  REMEDY_CHECK(static_cast<int>(keep.size()) == NumRows());
  int kept = 0;
  for (char k : keep) kept += (k != 0);
  Dataset result(schema_);
  for (int c = 0; c < NumColumns(); ++c) {
    result.columns_[c].reserve(kept);
    for (int r = 0; r < NumRows(); ++r) {
      if (keep[r]) result.columns_[c].push_back(columns_[c][r]);
    }
  }
  result.labels_.reserve(kept);
  result.weights_.reserve(kept);
  for (int r = 0; r < NumRows(); ++r) {
    if (keep[r]) {
      result.labels_.push_back(labels_[r]);
      result.weights_.push_back(weights_[r]);
    }
  }
  return result;
}

void Dataset::Append(const Dataset& other) {
  REMEDY_CHECK(other.NumColumns() == NumColumns());
  for (int r = 0; r < other.NumRows(); ++r) AppendRowFrom(other, r);
}

std::pair<Dataset, Dataset> Dataset::TrainTestSplit(double train_fraction,
                                                    Rng& rng) const {
  REMEDY_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<int> order(NumRows());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  int train_size = static_cast<int>(NumRows() * train_fraction);
  train_size = std::clamp(train_size, 1, NumRows() - 1);
  std::vector<int> train_rows(order.begin(), order.begin() + train_size);
  std::vector<int> test_rows(order.begin() + train_size, order.end());
  return {Select(train_rows), Select(test_rows)};
}

Dataset Dataset::SampleRows(int count, Rng& rng) const {
  REMEDY_CHECK(count >= 0 && count <= NumRows());
  return Select(rng.SampleWithoutReplacement(NumRows(), count));
}

int Dataset::PositiveCount() const {
  int count = 0;
  for (int8_t label : labels_) count += label;
  return count;
}

int Dataset::NegativeCount() const { return NumRows() - PositiveCount(); }

double Dataset::TotalWeight() const {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

CsvTable Dataset::ToCsv() const {
  CsvTable table;
  for (const AttributeSchema& attr : schema_.attributes()) {
    table.header.push_back(attr.name());
  }
  table.header.push_back(schema_.label_name());
  table.rows.reserve(NumRows());
  for (int r = 0; r < NumRows(); ++r) {
    std::vector<std::string> row;
    row.reserve(NumColumns() + 1);
    for (int c = 0; c < NumColumns(); ++c) {
      row.push_back(schema_.attribute(c).ValueName(Value(r, c)));
    }
    row.push_back(Label(r) ? "1" : "0");
    table.rows.push_back(std::move(row));
  }
  return table;
}

bool Dataset::FromCsv(const DataSchema& schema, const CsvTable& table,
                      Dataset* dataset, std::string* error) {
  *dataset = Dataset(schema);
  const int num_attrs = schema.NumAttributes();
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (static_cast<int>(row.size()) != num_attrs + 1) {
      std::ostringstream msg;
      msg << "row " << r << " has " << row.size() << " fields, expected "
          << num_attrs + 1;
      *error = msg.str();
      return false;
    }
    std::vector<int> values(num_attrs);
    for (int c = 0; c < num_attrs; ++c) {
      values[c] = schema.attribute(c).ValueIndex(row[c]);
      if (values[c] < 0) {
        *error = "row " + std::to_string(r) + ": unknown value '" + row[c] +
                 "' for attribute " + schema.attribute(c).name();
        return false;
      }
    }
    const std::string& label = row[num_attrs];
    if (label != "0" && label != "1") {
      *error = "row " + std::to_string(r) + ": bad label '" + label + "'";
      return false;
    }
    dataset->AddRow(values, label == "1" ? 1 : 0);
  }
  return true;
}

}  // namespace remedy
