#ifndef REMEDY_DATA_ENCODING_H_
#define REMEDY_DATA_ENCODING_H_

#include <vector>

#include "data/dataset.h"

namespace remedy {

// One-hot encoding of categorical datasets into dense float rows, used by
// the numeric learners (logistic regression, neural network) and by the
// Fair-SMOTE kNN distance.
class OneHotEncoder {
 public:
  explicit OneHotEncoder(const DataSchema& schema);

  // Total encoded width (sum of attribute cardinalities).
  int Width() const { return width_; }

  // Encodes one row of `data` into `out` (resized to Width()).
  void EncodeRow(const Dataset& data, int row, std::vector<float>* out) const;

  // Encodes the full dataset, row-major: result[r * Width() + j].
  std::vector<float> EncodeAll(const Dataset& data) const;

  // Offset of attribute `column`'s first indicator in the encoded vector.
  int Offset(int column) const { return offsets_[column]; }

 private:
  std::vector<int> offsets_;
  std::vector<int> cardinalities_;
  int width_ = 0;
};

}  // namespace remedy

#endif  // REMEDY_DATA_ENCODING_H_
