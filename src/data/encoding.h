#ifndef REMEDY_DATA_ENCODING_H_
#define REMEDY_DATA_ENCODING_H_

#include <vector>

#include "data/dataset.h"

namespace remedy {

// One-hot encoding of categorical datasets into dense float rows, used by
// the numeric learners (logistic regression, neural network) and by the
// Fair-SMOTE kNN distance.
class OneHotEncoder {
 public:
  explicit OneHotEncoder(const DataSchema& schema);

  // Total encoded width (sum of attribute cardinalities).
  int Width() const { return width_; }

  // Encodes one row of `data` into `out` (resized to Width()).
  void EncodeRow(const Dataset& data, int row, std::vector<float>* out) const;

  // Encodes the full dataset, row-major: result[r * Width() + j].
  std::vector<float> EncodeAll(const Dataset& data) const;

  // Offset of attribute `column`'s first indicator in the encoded vector.
  int Offset(int column) const { return offsets_[column]; }

 private:
  std::vector<int> offsets_;
  std::vector<int> cardinalities_;
  int width_ = 0;
};

// One-hot encoding of a whole Dataset, built once and shared across every
// learner and metric that consumes the same split. Because each attribute
// contributes exactly one active indicator per row, the cache stores only
// that active one-hot index per (row, attribute) cell — the sparse form the
// numeric learners iterate — instead of a dense float matrix.
//
// The matrix borrows `data`: the Dataset must outlive it and must not be
// mutated while the matrix is in use (weights may change; values may not).
class EncodedMatrix {
 public:
  explicit EncodedMatrix(const Dataset& data);

  const Dataset& data() const { return *data_; }
  const OneHotEncoder& encoder() const { return encoder_; }

  int NumRows() const { return data_->NumRows(); }
  int NumColumns() const { return data_->NumColumns(); }
  // Width of the dense one-hot vector (sum of attribute cardinalities).
  int Width() const { return encoder_.Width(); }

  // The NumColumns() active one-hot indices of `row`; entry c equals
  // encoder().Offset(c) + data().Value(row, c).
  const int* ActiveRow(int row) const {
    return active_.data() + static_cast<size_t>(row) * num_columns_;
  }

 private:
  const Dataset* data_;
  OneHotEncoder encoder_;
  int num_columns_;
  std::vector<int> active_;
};

}  // namespace remedy

#endif  // REMEDY_DATA_ENCODING_H_
