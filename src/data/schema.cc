#include "data/schema.h"

#include <algorithm>

#include "common/check.h"

namespace remedy {

DataSchema::DataSchema(std::vector<AttributeSchema> attributes,
                       std::vector<int> protected_indices,
                       std::string label_name)
    : attributes_(std::move(attributes)),
      protected_indices_(std::move(protected_indices)),
      label_name_(std::move(label_name)) {
  for (int index : protected_indices_) {
    REMEDY_CHECK(index >= 0 && index < NumAttributes())
        << "protected index " << index << " out of range";
  }
  // Reject duplicates: the intersectional space is defined over a set.
  auto sorted = protected_indices_;
  std::sort(sorted.begin(), sorted.end());
  REMEDY_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
               sorted.end())
      << "duplicate protected attribute index";
}

const AttributeSchema& DataSchema::attribute(int index) const {
  REMEDY_CHECK(index >= 0 && index < NumAttributes())
      << "attribute index " << index << " out of range";
  return attributes_[index];
}

int DataSchema::AttributeIndex(const std::string& name) const {
  for (int i = 0; i < NumAttributes(); ++i) {
    if (attributes_[i].name() == name) return i;
  }
  return -1;
}

bool DataSchema::IsProtected(int index) const {
  return std::find(protected_indices_.begin(), protected_indices_.end(),
                   index) != protected_indices_.end();
}

DataSchema DataSchema::WithProtected(
    const std::vector<std::string>& names) const {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    int index = AttributeIndex(name);
    REMEDY_CHECK(index >= 0) << "unknown attribute " << name;
    indices.push_back(index);
  }
  return DataSchema(attributes_, std::move(indices), label_name_);
}

}  // namespace remedy
