#include "data/profile.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace remedy {

double CramersV(const Dataset& data, int attribute) {
  REMEDY_CHECK(attribute >= 0 && attribute < data.NumColumns());
  const int cardinality = data.schema().attribute(attribute).Cardinality();
  const int64_t n = data.NumRows();
  if (n == 0 || cardinality < 2) return 0.0;

  // Observed counts per (value, label) cell.
  std::vector<std::array<int64_t, 2>> observed(cardinality, {0, 0});
  int64_t positives = 0;
  for (int r = 0; r < data.NumRows(); ++r) {
    ++observed[data.Value(r, attribute)][data.Label(r)];
    positives += data.Label(r);
  }
  if (positives == 0 || positives == n) return 0.0;  // constant label

  double chi_squared = 0.0;
  int non_empty = 0;
  for (int v = 0; v < cardinality; ++v) {
    int64_t row_total = observed[v][0] + observed[v][1];
    if (row_total == 0) continue;
    ++non_empty;
    for (int y = 0; y < 2; ++y) {
      double column_total =
          static_cast<double>(y == 1 ? positives : n - positives);
      double expected = row_total * column_total / static_cast<double>(n);
      double delta = observed[v][y] - expected;
      chi_squared += delta * delta / expected;
    }
  }
  if (non_empty < 2) return 0.0;  // effectively constant attribute
  // min(r-1, c-1) = 1 with a binary label.
  return std::sqrt(chi_squared / static_cast<double>(n));
}

DatasetProfile ProfileDataset(const Dataset& data) {
  DatasetProfile profile;
  profile.rows = data.NumRows();
  profile.positive_rate =
      data.NumRows() > 0
          ? static_cast<double>(data.PositiveCount()) / data.NumRows()
          : 0.0;

  for (int c = 0; c < data.NumColumns(); ++c) {
    const AttributeSchema& schema = data.schema().attribute(c);
    AttributeProfile attribute;
    attribute.name = schema.name();
    attribute.is_protected = data.schema().IsProtected(c);
    attribute.cramers_v = CramersV(data, c);

    std::vector<int64_t> counts(schema.Cardinality(), 0);
    std::vector<int64_t> positives(schema.Cardinality(), 0);
    for (int r = 0; r < data.NumRows(); ++r) {
      int value = data.Value(r, c);
      ++counts[value];
      positives[value] += data.Label(r);
    }
    for (int v = 0; v < schema.Cardinality(); ++v) {
      ValueProfile value;
      value.value = schema.ValueName(v);
      value.count = counts[v];
      value.fraction = data.NumRows() > 0
                           ? static_cast<double>(counts[v]) / data.NumRows()
                           : 0.0;
      value.positive_rate =
          counts[v] > 0 ? static_cast<double>(positives[v]) / counts[v]
                        : 0.0;
      attribute.values.push_back(std::move(value));
    }
    profile.attributes.push_back(std::move(attribute));
  }
  return profile;
}

void PrintDatasetProfile(const DatasetProfile& profile, std::ostream& out,
                         int max_values_per_attribute) {
  out << profile.rows << " rows, positive rate "
      << FormatDouble(profile.positive_rate, 3) << "\n\n";

  std::vector<const AttributeProfile*> order;
  for (const AttributeProfile& attribute : profile.attributes) {
    order.push_back(&attribute);
  }
  std::sort(order.begin(), order.end(),
            [](const AttributeProfile* a, const AttributeProfile* b) {
              if (a->cramers_v != b->cramers_v) {
                return a->cramers_v > b->cramers_v;
              }
              return a->name < b->name;
            });

  TablePrinter table({"attribute", "protected", "Cramer's V",
                      "top values (share, positive rate)"});
  for (const AttributeProfile* attribute : order) {
    // Most frequent values first.
    std::vector<const ValueProfile*> values;
    for (const ValueProfile& value : attribute->values) {
      values.push_back(&value);
    }
    std::sort(values.begin(), values.end(),
              [](const ValueProfile* a, const ValueProfile* b) {
                return a->count > b->count;
              });
    std::string summary;
    int shown = 0;
    for (const ValueProfile* value : values) {
      if (shown == max_values_per_attribute) {
        summary += ", ...";
        break;
      }
      if (shown > 0) summary += ", ";
      summary += value->value + " (" + FormatDouble(value->fraction, 2) +
                 ", " + FormatDouble(value->positive_rate, 2) + ")";
      ++shown;
    }
    table.AddRow({attribute->name, attribute->is_protected ? "yes" : "no",
                  FormatDouble(attribute->cramers_v, 3), summary});
  }
  table.Print(out);
}

}  // namespace remedy
