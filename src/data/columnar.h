#ifndef REMEDY_DATA_COLUMNAR_H_
#define REMEDY_DATA_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace remedy {

// Dictionary-encoded, structure-of-arrays shard store over the protected
// attributes and the label — the counting substrate of the columnar
// backends (see src/core/counting_backend.h).
//
// The row-oriented Dataset keeps every attribute as a 4-byte code; the
// counting engine only ever reads the protected columns and the label, so
// this store re-encodes exactly those as contiguous per-attribute code
// arrays (u8 when the cardinality fits a byte, u16 otherwise) cut into
// fixed-size shards. One shard of Adult's 8-attribute protected space costs
// 9 bytes/row instead of the Dataset's 60, the per-attribute arrays stream
// through SIMD lanes without gathers, and shards give the parallel backend
// independently countable row ranges whose tallies merge exactly (integer
// sums) in ascending shard order.
//
// Rows are append-only: the store is a build-once counting input, not a
// mutable dataset (the remedy write path stays on Dataset).
class ColumnarShardStore {
 public:
  // ~256k rows per shard: big enough that per-shard setup (key plans,
  // partial tables) amortizes away, small enough that dozens of shards
  // exist at the row counts where parallel counting pays.
  static constexpr int64_t kDefaultShardRows = 256 * 1024;

  // One protected attribute's codes within one shard. Exactly one of the
  // two arrays is populated, chosen by the attribute's cardinality.
  struct ColumnCodes {
    std::vector<uint8_t> narrow;   // cardinality <= 256
    std::vector<uint16_t> wide;    // cardinality <= 65536
  };

  struct Shard {
    int64_t num_rows = 0;
    std::vector<ColumnCodes> columns;  // one per protected attribute
    std::vector<uint8_t> labels;       // 0 / 1
  };

  ColumnarShardStore() = default;

  // Re-encodes the protected columns + labels of `data`.
  static ColumnarShardStore FromDataset(const Dataset& data,
                                        int64_t shard_rows = kDefaultShardRows);

  const DataSchema& schema() const { return schema_; }
  int NumProtected() const { return static_cast<int>(cardinalities_.size()); }
  int Cardinality(int position) const { return cardinalities_[position]; }
  // True when protected attribute `position` is stored as u8 codes.
  bool IsNarrow(int position) const { return cardinalities_[position] <= 256; }

  int64_t NumRows() const { return num_rows_; }
  int64_t shard_rows() const { return shard_rows_; }
  int NumShards() const { return static_cast<int>(shards_.size()); }
  const Shard& shard(int index) const { return shards_[index]; }

  int64_t PositiveCount() const { return positives_; }
  int64_t NegativeCount() const { return negatives_; }

 private:
  friend class ColumnarShardStoreBuilder;

  DataSchema schema_;
  std::vector<int> cardinalities_;  // of the protected attributes, in order
  std::vector<Shard> shards_;
  int64_t shard_rows_ = kDefaultShardRows;
  int64_t num_rows_ = 0;
  int64_t positives_ = 0;
  int64_t negatives_ = 0;
};

// Streaming builder: appends rows (or whole Dataset chunks) one at a time,
// cutting a new shard every `shard_rows` rows, so arbitrarily large inputs
// build a store without any row-oriented copy ever materializing. The row
// stream fully determines the store: chunk boundaries never shift shard
// cuts, so streaming N rows in any chunking yields the same shards as
// FromDataset on the equivalent Dataset.
class ColumnarShardStoreBuilder {
 public:
  explicit ColumnarShardStoreBuilder(
      DataSchema schema,
      int64_t shard_rows = ColumnarShardStore::kDefaultShardRows);

  // Appends one row given the full attribute-code vector (Dataset::AddRow
  // layout; non-protected columns are ignored).
  void AddRow(const std::vector<int>& values, int label);

  // Appends every row of `chunk` (schema attribute count must match).
  void Append(const Dataset& chunk);

  int64_t NumRows() const { return store_.num_rows_; }

  // Finalizes and returns the store; the builder is left empty.
  ColumnarShardStore Finish();

 private:
  // Returns the shard the next row lands in, cutting a new one when the
  // current shard is full.
  ColumnarShardStore::Shard& ShardForNextRow();
  void PushCode(ColumnarShardStore::Shard& shard, int position, int code);
  void FinishRow(ColumnarShardStore::Shard& shard, int label);

  ColumnarShardStore store_;
  std::vector<int> protected_cols_;  // dataset column index per position
};

}  // namespace remedy

#endif  // REMEDY_DATA_COLUMNAR_H_
