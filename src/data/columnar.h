#ifndef REMEDY_DATA_COLUMNAR_H_
#define REMEDY_DATA_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace remedy {

// Dictionary-encoded, structure-of-arrays shard store over the protected
// attributes and the label — the counting substrate of the columnar
// backends (see src/core/counting_backend.h).
//
// The row-oriented Dataset keeps every attribute as a 4-byte code; the
// counting engine only ever reads the protected columns and the label, so
// this store re-encodes exactly those as contiguous per-attribute code
// arrays (u8 when the cardinality fits a byte, u16 otherwise) cut into
// fixed-size shards. One shard of Adult's 8-attribute protected space costs
// 9 bytes/row instead of the Dataset's 60, the per-attribute arrays stream
// through SIMD lanes without gathers, and shards give the parallel backend
// independently countable row ranges whose tallies merge exactly (integer
// sums) in ascending shard order.
//
// Rows are append-only: the store is a build-once counting input, not a
// mutable dataset (the remedy write path stays on Dataset).
//
// Shards live in one of two places:
//  - in memory (FromDataset / Finish): the original RAM-resident form;
//  - on disk (OpenSpilled / FinishSpilled): per-shard files written by the
//    builder's spill mode and memory-mapped lazily on first count, so the
//    store can exceed RAM. Both forms serve the counting kernels through
//    the same ShardView pointers and count bit-identically.
class ColumnarShardStore {
 public:
  // ~256k rows per shard: big enough that per-shard setup (key plans,
  // partial tables) amortizes away, small enough that dozens of shards
  // exist at the row counts where parallel counting pays.
  static constexpr int64_t kDefaultShardRows = 256 * 1024;

  // One protected attribute's codes within one shard. Exactly one of the
  // two arrays is populated, chosen by the attribute's cardinality.
  struct ColumnCodes {
    std::vector<uint8_t> narrow;   // cardinality <= 256
    std::vector<uint16_t> wide;    // cardinality <= 65536
  };

  struct Shard {
    int64_t num_rows = 0;
    std::vector<ColumnCodes> columns;  // one per protected attribute
    std::vector<uint8_t> labels;       // 0 / 1
  };

  // Raw-pointer view of one shard — the only form the counting kernels
  // read, so in-memory vectors and mmap'd file payloads count through
  // identical code. Pointers stay valid while the store is alive (and, for
  // spilled stores, mapped); views are cheap value types rebuilt per scan.
  struct ShardView {
    struct Column {
      const uint8_t* narrow = nullptr;   // set when the attribute is u8-coded
      const uint16_t* wide = nullptr;    // set when u16-coded
    };
    int64_t num_rows = 0;
    std::vector<Column> columns;  // one per protected attribute
    const uint8_t* labels = nullptr;
  };

  ColumnarShardStore() = default;

  // Re-encodes the protected columns + labels of `data`.
  static ColumnarShardStore FromDataset(const Dataset& data,
                                        int64_t shard_rows = kDefaultShardRows);

  // Opens a store spilled to `dir` by ColumnarShardStoreBuilder (see
  // EnableSpill): validates every shard file's header — magic, version,
  // checksum, schema digest against `schema`, column widths, contiguous
  // shard indices, exact file sizes — and computes the store totals from
  // the headers alone. No payload byte is read and nothing is mapped yet;
  // the first count (EnsureMapped / View) maps the files.
  // kIoError when files are missing or unreadable, kDataCorruption when
  // their bytes are wrong (e.g. a truncated spill), kInvalidArgument when
  // the store belongs to a different schema.
  static StatusOr<ColumnarShardStore> OpenSpilled(const std::string& dir,
                                                  const DataSchema& schema);

  const DataSchema& schema() const { return schema_; }
  int NumProtected() const { return static_cast<int>(cardinalities_.size()); }
  int Cardinality(int position) const { return cardinalities_[position]; }
  // True when protected attribute `position` is stored as u8 codes.
  bool IsNarrow(int position) const { return cardinalities_[position] <= 256; }

  int64_t NumRows() const { return num_rows_; }
  int64_t shard_rows() const { return shard_rows_; }
  int NumShards() const;
  // In-memory shard access (tests, re-encoding); dies on a spilled store —
  // counting code must go through View().
  const Shard& shard(int index) const;

  // View of shard `index`, mapping a spilled store's files on first use
  // (and dying if that map fails — Status-clean callers reach map errors
  // via EnsureMapped / Hierarchy::PrepareCounting first).
  ShardView View(int index) const;

  // True when the shards live in files and count memory-mapped.
  bool mmap_backed() const { return mapped_ != nullptr; }

  // Maps every shard file of a spilled store (no-op otherwise). Idempotent
  // and thread-safe; fault point "store/mmap_map". Mapping is deferred to
  // here — not OpenSpilled — so opening a store stays metadata-only and
  // pages only ever fault in under a tally pass.
  Status EnsureMapped() const;

  // Tally-pass paging hints around one shard, no-ops for in-memory stores:
  // Begin advises MADV_SEQUENTIAL over the shard's payload (aggressive
  // readahead for the streaming scan), End advises MADV_DONTNEED (drops
  // the clean pages so resident memory stays bounded by the shards in
  // flight, not the store size).
  void BeginShardPass(int index) const;
  void EndShardPass(int index) const;

  // Total on-disk bytes of a spilled store's shard files (0 in memory).
  int64_t SpilledBytes() const;

  int64_t PositiveCount() const { return positives_; }
  int64_t NegativeCount() const { return negatives_; }

 private:
  friend class ColumnarShardStoreBuilder;

  struct MappedState;  // the spilled-store half, defined in columnar.cc

  DataSchema schema_;
  std::vector<int> cardinalities_;  // of the protected attributes, in order
  std::vector<Shard> shards_;
  int64_t shard_rows_ = kDefaultShardRows;
  int64_t num_rows_ = 0;
  int64_t positives_ = 0;
  int64_t negatives_ = 0;
  // Shared (not unique) so the store keeps its value semantics; the state
  // is read-only after EnsureMapped, so sharing between copies is safe.
  std::shared_ptr<MappedState> mapped_;
};

// Streaming builder: appends rows (or whole Dataset chunks) one at a time,
// cutting a new shard every `shard_rows` rows, so arbitrarily large inputs
// build a store without any row-oriented copy ever materializing. The row
// stream fully determines the store: chunk boundaries never shift shard
// cuts, so streaming N rows in any chunking yields the same shards as
// FromDataset on the equivalent Dataset.
//
// With EnableSpill(dir) the builder becomes the out-of-core writer: every
// completed shard is written to its own checksummed file in `dir` (see
// data/shard_file.h) and dropped from memory, so peak RSS stays at one
// in-flight shard no matter how many rows stream through. Finish with
// FinishSpilled(), which returns the store re-opened over the files.
class ColumnarShardStoreBuilder {
 public:
  explicit ColumnarShardStoreBuilder(
      DataSchema schema,
      int64_t shard_rows = ColumnarShardStore::kDefaultShardRows);

  // Switches this builder to spill mode. `dir` is created if absent (one
  // level; parents must exist) and stale shard files in it are removed so
  // a shorter re-spill can never leave trailing shards behind. Must be
  // called before the first row; fails with kIoError when the directory
  // cannot be created or cleaned.
  Status EnableSpill(const std::string& dir);

  // Appends one row given the full attribute-code vector (Dataset::AddRow
  // layout; non-protected columns are ignored).
  void AddRow(const std::vector<int>& values, int label);

  // Appends every row of `chunk` (schema attribute count must match).
  void Append(const Dataset& chunk);

  int64_t NumRows() const { return store_.num_rows_; }

  // Finalizes and returns the in-memory store; the builder is left empty.
  // Dies in spill mode — use FinishSpilled().
  ColumnarShardStore Finish();

  // Spill-mode finalize: writes the final (possibly partial) shard, then
  // validates and opens the spilled store exactly as OpenSpilled would —
  // every header the writer just produced is re-read and re-checked. A
  // shard-write failure during AddRow/Append is sticky and surfaces here
  // (rows accepted after the failure are counted but never written, so the
  // builder stays cheap to drain). Fault point "store/spill_write" covers
  // each shard write.
  StatusOr<ColumnarShardStore> FinishSpilled();

 private:
  // Returns the shard the next row lands in, cutting a new one when the
  // current shard is full (in spill mode: writing it out and reusing the
  // buffer).
  ColumnarShardStore::Shard& ShardForNextRow();
  void PushCode(ColumnarShardStore::Shard& shard, int position, int code);
  void FinishRow(ColumnarShardStore::Shard& shard, int label);
  Status SpillShard(ColumnarShardStore::Shard& shard);

  ColumnarShardStore store_;
  std::vector<int> protected_cols_;  // dataset column index per position
  bool spilling_ = false;
  std::string spill_dir_;
  uint64_t schema_digest_ = 0;
  int spilled_shards_ = 0;
  Status spill_status_;
};

}  // namespace remedy

#endif  // REMEDY_DATA_COLUMNAR_H_
