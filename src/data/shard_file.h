#ifndef REMEDY_DATA_SHARD_FILE_H_
#define REMEDY_DATA_SHARD_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace remedy {

// On-disk format of one spilled columnar shard (see DESIGN.md,
// "Out-of-core shard store").
//
// A spilled store is a directory of files shard-000000.rcs,
// shard-000001.rcs, ... — one per 256k-row shard, every value
// little-endian. Each file is a checksummed header followed by the shard's
// raw code arrays, laid out exactly as the counting kernels read them:
//
//   [fixed 64-byte header][one width byte per column][zero pad to 64]
//   [column 0 codes][pad to 64][column 1 codes][pad to 64]...
//   [labels, one byte per row][pad to 64]
//
// Every segment starts 64-byte aligned so the mmap'd arrays satisfy the
// SIMD kernels' (and plain u16 loads') alignment with no copying. The
// header carries the schema digest, row count, per-column code widths and
// positive-label count, so OpenSpilled can validate a store and compute
// its totals without touching any payload byte — payloads are only ever
// faulted in by the tally pass itself.

inline constexpr uint32_t kShardFileMagic = 0x48534352u;  // "RCSH"
inline constexpr uint32_t kShardFileVersion = 1;
// Segment alignment of the payload arrays (and the header size rounding).
inline constexpr int64_t kShardFileAlign = 64;
// Fixed header bytes before the per-column width array.
inline constexpr int64_t kShardFileFixedBytes = 64;

// FNV-1a 64 over a byte range; `seed` chains multi-segment digests.
uint64_t Fnv1a64(const uint8_t* data, size_t size,
                 uint64_t seed = 0xcbf29ce484222325ull);

// Digest of the schema a store was spilled from: attribute names and value
// dictionaries, the protected positions, and the label name. A store only
// opens against a schema with the same digest, so stale or foreign shard
// directories are rejected before any row is read.
uint64_t SchemaDigest(const DataSchema& schema);

struct ShardFileHeader {
  uint32_t shard_index = 0;
  int64_t num_rows = 0;
  int64_t num_positives = 0;
  uint64_t schema_digest = 0;
  int64_t payload_bytes = 0;
  uint64_t payload_checksum = 0;
  std::vector<uint8_t> column_widths;  // 1 (u8 codes) or 2 (u16 codes)

  int num_columns() const { return static_cast<int>(column_widths.size()); }

  // Serialized header size: fixed bytes + width array, rounded up to
  // kShardFileAlign. The payload starts here.
  int64_t HeaderBytes() const;

  // Offsets within the payload (relative to HeaderBytes()); every segment
  // is kShardFileAlign-aligned.
  int64_t ColumnOffset(int position) const;
  int64_t LabelOffset() const;
  // Payload size the layout implies; a valid header's payload_bytes field
  // equals this, and the file size equals HeaderBytes() + payload_bytes.
  int64_t ComputedPayloadBytes() const;
};

// Serializes the header; the embedded header checksum is computed over the
// returned buffer with its own field zeroed.
std::vector<uint8_t> EncodeShardFileHeader(const ShardFileHeader& header);

// Parses and validates a header from the first `size` bytes of a shard
// file: magic, version, checksum, width values, and payload-size
// consistency. Schema digest and shard index are the caller's to check.
StatusOr<ShardFileHeader> DecodeShardFileHeader(const uint8_t* data,
                                                size_t size);

// Reads and validates the header of `path`, including that the file size
// is exactly HeaderBytes() + payload_bytes — a truncated or grown spill is
// a clean kDataCorruption here, before anything is mapped.
StatusOr<ShardFileHeader> ReadShardFileHeader(const std::string& path);

// File name of shard `index` within a store directory: "shard-000042.rcs".
std::string ShardFileName(int shard_index);

}  // namespace remedy

#endif  // REMEDY_DATA_SHARD_FILE_H_
