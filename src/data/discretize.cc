#include "data/discretize.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace remedy {

Bucketizer::Bucketizer(std::string attribute_name, std::vector<double> cuts)
    : attribute_name_(std::move(attribute_name)), cuts_(std::move(cuts)) {
  for (size_t i = 1; i < cuts_.size(); ++i) {
    REMEDY_CHECK(cuts_[i - 1] < cuts_[i])
        << "bucket cuts must be strictly increasing";
  }
}

Bucketizer Bucketizer::EqualWidth(std::string attribute_name,
                                  const std::vector<double>& values,
                                  int num_buckets) {
  REMEDY_CHECK(num_buckets >= 1);
  REMEDY_CHECK(!values.empty());
  auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  double lo = *min_it, hi = *max_it;
  std::vector<double> cuts;
  if (hi > lo) {
    double width = (hi - lo) / num_buckets;
    for (int i = 1; i < num_buckets; ++i) cuts.push_back(lo + width * i);
  }
  return Bucketizer(std::move(attribute_name), std::move(cuts));
}

Bucketizer Bucketizer::Quantile(std::string attribute_name,
                                const std::vector<double>& values,
                                int num_buckets) {
  REMEDY_CHECK(num_buckets >= 1);
  REMEDY_CHECK(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  for (int i = 1; i < num_buckets; ++i) {
    size_t rank = sorted.size() * static_cast<size_t>(i) / num_buckets;
    double cut = sorted[std::min(rank, sorted.size() - 1)];
    if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
  }
  // Drop a final cut equal to the maximum (it would create an empty bucket).
  if (!cuts.empty() && cuts.back() >= sorted.back()) cuts.pop_back();
  return Bucketizer(std::move(attribute_name), std::move(cuts));
}

int Bucketizer::Code(double value) const {
  // First cut point that is >= value; buckets are right-closed.
  auto it = std::lower_bound(cuts_.begin(), cuts_.end(), value);
  return static_cast<int>(it - cuts_.begin());
}

AttributeSchema Bucketizer::MakeSchema() const {
  std::vector<std::string> names;
  if (cuts_.empty()) {
    names.push_back("all");
  } else {
    names.push_back("<=" + FormatDouble(cuts_.front(), 0));
    for (size_t i = 1; i < cuts_.size(); ++i) {
      names.push_back("(" + FormatDouble(cuts_[i - 1], 0) + "-" +
                      FormatDouble(cuts_[i], 0) + "]");
    }
    names.push_back(">" + FormatDouble(cuts_.back(), 0));
  }
  return AttributeSchema(attribute_name_, std::move(names), /*ordinal=*/true);
}

}  // namespace remedy
