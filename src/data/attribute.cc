#include "data/attribute.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace remedy {

AttributeSchema::AttributeSchema(std::string name,
                                 std::vector<std::string> values, bool ordinal)
    : name_(std::move(name)), values_(std::move(values)), ordinal_(ordinal) {
  REMEDY_CHECK(!values_.empty()) << "attribute " << name_ << " has no values";
}

int AttributeSchema::ValueIndex(const std::string& value) const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == value) return static_cast<int>(i);
  }
  return -1;
}

const std::string& AttributeSchema::ValueName(int code) const {
  REMEDY_CHECK(code >= 0 && code < Cardinality())
      << "attribute " << name_ << ": code " << code << " out of range";
  return values_[code];
}

double AttributeSchema::Distance(int code_a, int code_b) const {
  REMEDY_DCHECK(code_a >= 0 && code_a < Cardinality());
  REMEDY_DCHECK(code_b >= 0 && code_b < Cardinality());
  if (code_a == code_b) return 0.0;
  if (ordinal_) return std::abs(code_a - code_b);
  return 1.0;
}

}  // namespace remedy
