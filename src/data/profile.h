#ifndef REMEDY_DATA_PROFILE_H_
#define REMEDY_DATA_PROFILE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace remedy {

// Dataset profiling for the audit workflow: per-attribute value
// distributions, per-value positive rates, and the association between each
// attribute and the label (Cramér's V). Surfacing where the label
// concentrates is the first thing an analyst checks before reading the IBS
// output — strong label association on a *protected* attribute is a warning
// sign in its own right.

struct ValueProfile {
  std::string value;
  int64_t count = 0;
  double fraction = 0.0;       // of all rows
  double positive_rate = 0.0;  // P(y=1 | attribute=value)
};

struct AttributeProfile {
  std::string name;
  bool is_protected = false;
  double cramers_v = 0.0;  // association with the label, in [0, 1]
  std::vector<ValueProfile> values;
};

struct DatasetProfile {
  int rows = 0;
  double positive_rate = 0.0;
  std::vector<AttributeProfile> attributes;
};

DatasetProfile ProfileDataset(const Dataset& data);

// Cramér's V between one categorical attribute and the binary label
// (chi-squared over sqrt(n * min(r-1, c-1)) with c = 2). 0 when the
// attribute is constant.
double CramersV(const Dataset& data, int attribute);

// Console rendering, attributes sorted by descending label association.
void PrintDatasetProfile(const DatasetProfile& profile, std::ostream& out,
                         int max_values_per_attribute = 8);

}  // namespace remedy

#endif  // REMEDY_DATA_PROFILE_H_
