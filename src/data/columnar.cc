#include "data/columnar.h"

#include <sys/stat.h>

#include <array>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/pipeline_metrics.h"
#include "data/mmap_file.h"
#include "data/shard_file.h"

namespace remedy {
namespace {

int64_t PadTo(int64_t bytes) {
  return (kShardFileAlign - bytes % kShardFileAlign) % kShardFileAlign;
}

// The on-disk format is little-endian; the mmap read path reinterprets the
// u16 code arrays in place, so a big-endian host gets a clean refusal
// instead of silently miscounted codes.
Status RequireLittleEndianHost(const char* operation) {
  if constexpr (std::endian::native != std::endian::little) {
    return IoError(std::string(operation) +
                   " requires a little-endian host (spilled stores are "
                   "fixed little-endian)");
  }
  return OkStatus();
}

// Bounded retry with doubling backoff for spilled-shard reads — the same
// transient-I/O policy ReadCsvFile applies to CSV files. Only kIoError is
// retried: corrupt bytes (kDataCorruption) and schema mismatches
// (kInvalidArgument) cannot heal by trying again.
constexpr int kShardReadMaxAttempts = 3;
constexpr int kShardReadInitialBackoffMs = 1;

template <typename Fn>
auto RetryShardRead(Fn&& attempt) -> decltype(attempt()) {
  auto result = attempt();
  int backoff_ms = kShardReadInitialBackoffMs;
  for (int retry = 2; retry <= kShardReadMaxAttempts && !result.ok() &&
                      result.status().code() == StatusCode::kIoError;
       ++retry) {
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    PipelineMetrics::Get().store_shard_read_retries->Increment();
    result = attempt();
  }
  return result;
}

// ReadShardFileHeader behind the retry policy and its fault point.
StatusOr<ShardFileHeader> ReadShardHeaderWithRetry(const std::string& path) {
  return RetryShardRead([&]() -> StatusOr<ShardFileHeader> {
    REMEDY_FAULT_POINT("store/shard_read");
    return ReadShardFileHeader(path);
  });
}

}  // namespace

// The spilled half of a store: per-shard file paths + validated headers
// from OpenSpilled, and — once EnsureMapped ran — the mappings and the
// kernel-ready views into them. Read-only after mapping, so one state may
// be shared by store copies and read from any counting thread.
struct ColumnarShardStore::MappedState {
  struct MappedShard {
    std::string path;
    ShardFileHeader header;
    MmapFile file;    // unmapped until EnsureMapped
    ShardView view;   // valid once `file` is mapped
  };

  std::string dir;
  std::vector<MappedShard> shards;
  int64_t total_bytes = 0;  // on-disk bytes across all shard files

  std::mutex mu;            // guards mapping; reads go through `done`
  std::atomic<bool> done{false};
};

int ColumnarShardStore::NumShards() const {
  return mapped_ != nullptr ? static_cast<int>(mapped_->shards.size())
                            : static_cast<int>(shards_.size());
}

const ColumnarShardStore::Shard& ColumnarShardStore::shard(int index) const {
  REMEDY_CHECK(mapped_ == nullptr)
      << "spilled stores have no in-memory shards; use View()";
  return shards_[index];
}

ColumnarShardStore::ShardView ColumnarShardStore::View(int index) const {
  if (mapped_ == nullptr) {
    const Shard& shard = shards_[index];
    ShardView view;
    view.num_rows = shard.num_rows;
    view.labels = shard.labels.data();
    view.columns.resize(shard.columns.size());
    for (size_t p = 0; p < shard.columns.size(); ++p) {
      if (IsNarrow(static_cast<int>(p))) {
        view.columns[p].narrow = shard.columns[p].narrow.data();
      } else {
        view.columns[p].wide = shard.columns[p].wide.data();
      }
    }
    return view;
  }
  Status mapped = EnsureMapped();
  REMEDY_CHECK(mapped.ok())
      << "cannot map spilled store: " << mapped.ToString();
  return mapped_->shards[index].view;
}

Status ColumnarShardStore::EnsureMapped() const {
  if (mapped_ == nullptr) return OkStatus();
  MappedState& state = *mapped_;
  if (state.done.load(std::memory_order_acquire)) return OkStatus();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.done.load(std::memory_order_relaxed)) return OkStatus();
  int64_t mapped_shards = 0;
  int64_t mapped_bytes = 0;
  for (MappedState::MappedShard& shard : state.shards) {
    if (shard.file.mapped()) continue;  // a previous attempt got this far
    StatusOr<MmapFile> file = RetryShardRead([&]() -> StatusOr<MmapFile> {
      REMEDY_FAULT_POINT("store/mmap_map");
      return MmapFile::Map(shard.path);
    });
    if (!file.ok()) {
      return file.status().WithContext("mapping spilled store shard");
    }
    const ShardFileHeader& header = shard.header;
    if (static_cast<int64_t>(file.value().size()) !=
        header.HeaderBytes() + header.payload_bytes) {
      return DataCorruptionError("shard file '" + shard.path +
                                 "' changed size since the store opened");
    }
    const uint8_t* payload = file.value().data() + header.HeaderBytes();
    ShardView view;
    view.num_rows = header.num_rows;
    view.columns.resize(header.num_columns());
    for (int p = 0; p < header.num_columns(); ++p) {
      const uint8_t* codes = payload + header.ColumnOffset(p);
      if (header.column_widths[p] == 1) {
        view.columns[p].narrow = codes;
      } else {
        view.columns[p].wide = reinterpret_cast<const uint16_t*>(codes);
      }
    }
    view.labels = payload + header.LabelOffset();
    mapped_bytes += static_cast<int64_t>(file.value().size());
    ++mapped_shards;
    shard.view = std::move(view);
    shard.file = std::move(file).value();
  }
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.lattice_mmap_shards->Increment(mapped_shards);
  metrics.lattice_mmap_bytes->Increment(mapped_bytes);
  state.done.store(true, std::memory_order_release);
  return OkStatus();
}

void ColumnarShardStore::BeginShardPass(int index) const {
  if (mapped_ == nullptr || !mapped_->done.load(std::memory_order_acquire)) {
    return;
  }
  const MappedState::MappedShard& shard = mapped_->shards[index];
  shard.file.AdviseSequential(
      static_cast<size_t>(shard.header.HeaderBytes()),
      static_cast<size_t>(shard.header.payload_bytes));
}

void ColumnarShardStore::EndShardPass(int index) const {
  if (mapped_ == nullptr || !mapped_->done.load(std::memory_order_acquire)) {
    return;
  }
  const MappedState::MappedShard& shard = mapped_->shards[index];
  shard.file.AdviseDontNeed(
      static_cast<size_t>(shard.header.HeaderBytes()),
      static_cast<size_t>(shard.header.payload_bytes));
  PipelineMetrics::Get().lattice_mmap_releases->Increment();
}

int64_t ColumnarShardStore::SpilledBytes() const {
  return mapped_ != nullptr ? mapped_->total_bytes : 0;
}

StatusOr<ColumnarShardStore> ColumnarShardStore::OpenSpilled(
    const std::string& dir, const DataSchema& schema) {
  RETURN_IF_ERROR(RequireLittleEndianHost("OpenSpilled"));
  if (schema.NumProtected() == 0) {
    return InvalidArgumentError(
        "ColumnarShardStore needs at least one protected attribute");
  }
  ColumnarShardStore store;
  store.schema_ = schema;
  store.cardinalities_.reserve(schema.NumProtected());
  for (int col : schema.protected_indices()) {
    const int cardinality = schema.attribute(col).Cardinality();
    if (cardinality > 65536) {
      return InvalidArgumentError(
          "attribute " + schema.attribute(col).name() + " cardinality " +
          std::to_string(cardinality) + " exceeds the u16 code space");
    }
    store.cardinalities_.push_back(cardinality);
  }
  const uint64_t digest = SchemaDigest(schema);
  auto mapped = std::make_shared<MappedState>();
  mapped->dir = dir;
  for (int index = 0;; ++index) {
    const std::string path = dir + "/" + ShardFileName(index);
    struct stat info;
    if (::stat(path.c_str(), &info) != 0) {
      if (index == 0) {
        return IoError("no spilled store in '" + dir + "' (missing " +
                       ShardFileName(0) + ")");
      }
      break;
    }
    ASSIGN_OR_RETURN(ShardFileHeader header, ReadShardHeaderWithRetry(path));
    if (header.schema_digest != digest) {
      return InvalidArgumentError(
          "shard file '" + path +
          "' was spilled from a different schema (digest mismatch)");
    }
    if (header.shard_index != static_cast<uint32_t>(index)) {
      return DataCorruptionError(
          "shard file '" + path + "' declares index " +
          std::to_string(header.shard_index) + ", expected " +
          std::to_string(index));
    }
    if (header.num_columns() != store.NumProtected()) {
      return DataCorruptionError(
          "shard file '" + path + "' has " +
          std::to_string(header.num_columns()) + " columns, schema has " +
          std::to_string(store.NumProtected()));
    }
    for (int p = 0; p < header.num_columns(); ++p) {
      const uint8_t expected = store.IsNarrow(p) ? 1 : 2;
      if (header.column_widths[p] != expected) {
        return DataCorruptionError(
            "shard file '" + path + "' column " + std::to_string(p) +
            " width " + std::to_string(header.column_widths[p]) +
            " does not match the schema's code width");
      }
    }
    if (index > 0) {
      const int64_t first_rows = mapped->shards[0].header.num_rows;
      if (mapped->shards[index - 1].header.num_rows != first_rows ||
          header.num_rows > first_rows || header.num_rows == 0) {
        return DataCorruptionError(
            "shard file '" + path +
            "' breaks the full-shards-then-one-partial layout");
      }
    }
    store.num_rows_ += header.num_rows;
    store.positives_ += header.num_positives;
    mapped->total_bytes += header.HeaderBytes() + header.payload_bytes;
    MappedState::MappedShard shard;
    shard.path = path;
    shard.header = std::move(header);
    mapped->shards.push_back(std::move(shard));
  }
  store.negatives_ = store.num_rows_ - store.positives_;
  store.shard_rows_ = mapped->shards[0].header.num_rows > 0
                          ? mapped->shards[0].header.num_rows
                          : kDefaultShardRows;
  store.mapped_ = std::move(mapped);
  return store;
}

ColumnarShardStoreBuilder::ColumnarShardStoreBuilder(DataSchema schema,
                                                     int64_t shard_rows) {
  REMEDY_CHECK(shard_rows > 0) << "shard_rows must be positive";
  REMEDY_CHECK(schema.NumProtected() > 0)
      << "ColumnarShardStore needs at least one protected attribute";
  protected_cols_ = schema.protected_indices();
  store_.schema_ = std::move(schema);
  store_.shard_rows_ = shard_rows;
  store_.cardinalities_.reserve(protected_cols_.size());
  for (int col : protected_cols_) {
    const int cardinality = store_.schema_.attribute(col).Cardinality();
    REMEDY_CHECK(cardinality <= 65536)
        << "attribute " << store_.schema_.attribute(col).name()
        << " cardinality " << cardinality << " exceeds the u16 code space";
    store_.cardinalities_.push_back(cardinality);
  }
}

Status ColumnarShardStoreBuilder::EnableSpill(const std::string& dir) {
  REMEDY_CHECK(!spilling_) << "EnableSpill called twice";
  REMEDY_CHECK(store_.num_rows_ == 0)
      << "EnableSpill must be called before the first row";
  RETURN_IF_ERROR(RequireLittleEndianHost("EnableSpill"));
  // mkdir -p: create every missing component so callers can point at a
  // fresh nested path (the bench's per-row-count subdirectories).
  for (size_t slash = dir.find('/', 1); slash != std::string::npos;
       slash = dir.find('/', slash + 1)) {
    const std::string parent = dir.substr(0, slash);
    if (::mkdir(parent.c_str(), 0755) != 0 && errno != EEXIST) {
      return IoError("cannot create spill directory '" + parent +
                     "': " + std::strerror(errno));
    }
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return IoError("cannot create spill directory '" + dir +
                   "': " + std::strerror(errno));
  }
  struct stat info;
  if (::stat(dir.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
    return IoError("spill path '" + dir + "' is not a directory");
  }
  // Remove stale shard files so a shorter re-spill never leaves trailing
  // shards a later OpenSpilled would read as part of this store.
  for (int index = 0;; ++index) {
    const std::string path = dir + "/" + ShardFileName(index);
    if (::stat(path.c_str(), &info) != 0) break;
    if (std::remove(path.c_str()) != 0) {
      return IoError("cannot remove stale shard file '" + path + "'");
    }
  }
  spill_dir_ = dir;
  schema_digest_ = SchemaDigest(store_.schema_);
  spilling_ = true;
  return OkStatus();
}

Status ColumnarShardStoreBuilder::SpillShard(
    ColumnarShardStore::Shard& shard) {
  REMEDY_FAULT_POINT("store/spill_write");
  ShardFileHeader header;
  header.shard_index = static_cast<uint32_t>(spilled_shards_);
  header.num_rows = shard.num_rows;
  header.schema_digest = schema_digest_;
  header.column_widths.resize(shard.columns.size());
  int64_t positives = 0;
  for (uint8_t label : shard.labels) positives += label;
  header.num_positives = positives;
  for (size_t p = 0; p < shard.columns.size(); ++p) {
    header.column_widths[p] = store_.IsNarrow(static_cast<int>(p)) ? 1 : 2;
  }
  header.payload_bytes = header.ComputedPayloadBytes();

  // Payload segments in file order: per-column code bytes, then labels,
  // each zero-padded to the segment alignment. The checksum chains over
  // the exact bytes written, pads included.
  static constexpr std::array<uint8_t, kShardFileAlign> kZeroPad{};
  std::vector<std::pair<const uint8_t*, int64_t>> segments;
  segments.reserve(shard.columns.size() + 1);
  for (size_t p = 0; p < shard.columns.size(); ++p) {
    if (header.column_widths[p] == 1) {
      segments.emplace_back(shard.columns[p].narrow.data(), shard.num_rows);
    } else {
      segments.emplace_back(
          reinterpret_cast<const uint8_t*>(shard.columns[p].wide.data()),
          2 * shard.num_rows);
    }
  }
  segments.emplace_back(shard.labels.data(), shard.num_rows);
  uint64_t checksum = 0xcbf29ce484222325ull;
  for (const auto& [data, bytes] : segments) {
    checksum = Fnv1a64(data, static_cast<size_t>(bytes), checksum);
    checksum = Fnv1a64(kZeroPad.data(), static_cast<size_t>(PadTo(bytes)),
                       checksum);
  }
  header.payload_checksum = checksum;

  const std::string path =
      spill_dir_ + "/" + ShardFileName(spilled_shards_);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return IoError("cannot open shard file '" + path +
                   "' for writing: " + std::strerror(errno));
  }
  const std::vector<uint8_t> encoded = EncodeShardFileHeader(header);
  bool ok = std::fwrite(encoded.data(), 1, encoded.size(), file) ==
            encoded.size();
  for (const auto& [data, bytes] : segments) {
    if (!ok) break;
    ok = std::fwrite(data, 1, static_cast<size_t>(bytes), file) ==
         static_cast<size_t>(bytes);
    const size_t pad = static_cast<size_t>(PadTo(bytes));
    ok = ok && std::fwrite(kZeroPad.data(), 1, pad, file) == pad;
  }
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(path.c_str());
    return IoError("write of shard file '" + path + "' failed");
  }
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.lattice_spill_shards->Increment();
  metrics.lattice_spill_bytes->Increment(
      static_cast<int64_t>(encoded.size()) + header.payload_bytes);
  return OkStatus();
}

ColumnarShardStore::Shard& ColumnarShardStoreBuilder::ShardForNextRow() {
  const bool full = !store_.shards_.empty() &&
                    store_.shards_.back().num_rows == store_.shard_rows_;
  if (full && spilling_) {
    // Write the completed shard out and reuse its buffers for the next one
    // (a write failure is sticky and surfaces at FinishSpilled; later
    // shards are dropped unwritten so draining the stream stays cheap).
    ColumnarShardStore::Shard& shard = store_.shards_.back();
    if (spill_status_.ok()) {
      Status written = SpillShard(shard);
      if (written.ok()) {
        ++spilled_shards_;
      } else {
        spill_status_ = std::move(written);
      }
    }
    for (ColumnarShardStore::ColumnCodes& column : shard.columns) {
      column.narrow.clear();
      column.wide.clear();
    }
    shard.labels.clear();
    shard.num_rows = 0;
    return shard;
  }
  if (store_.shards_.empty() || full) {
    ColumnarShardStore::Shard& shard = store_.shards_.emplace_back();
    shard.columns.resize(protected_cols_.size());
    const size_t reserve = static_cast<size_t>(store_.shard_rows_);
    for (size_t p = 0; p < protected_cols_.size(); ++p) {
      if (store_.IsNarrow(static_cast<int>(p))) {
        shard.columns[p].narrow.reserve(reserve);
      } else {
        shard.columns[p].wide.reserve(reserve);
      }
    }
    shard.labels.reserve(reserve);
  }
  return store_.shards_.back();
}

void ColumnarShardStoreBuilder::PushCode(ColumnarShardStore::Shard& shard,
                                         int position, int code) {
  REMEDY_DCHECK(code >= 0 && code < store_.cardinalities_[position]);
  ColumnarShardStore::ColumnCodes& column = shard.columns[position];
  if (store_.IsNarrow(position)) {
    column.narrow.push_back(static_cast<uint8_t>(code));
  } else {
    column.wide.push_back(static_cast<uint16_t>(code));
  }
}

void ColumnarShardStoreBuilder::FinishRow(ColumnarShardStore::Shard& shard,
                                          int label) {
  REMEDY_DCHECK(label == 0 || label == 1);
  shard.labels.push_back(static_cast<uint8_t>(label));
  ++shard.num_rows;
  ++store_.num_rows_;
  if (label == 1) {
    ++store_.positives_;
  } else {
    ++store_.negatives_;
  }
}

void ColumnarShardStoreBuilder::AddRow(const std::vector<int>& values,
                                       int label) {
  REMEDY_DCHECK(static_cast<int>(values.size()) ==
                store_.schema_.NumAttributes());
  ColumnarShardStore::Shard& shard = ShardForNextRow();
  for (size_t p = 0; p < protected_cols_.size(); ++p) {
    PushCode(shard, static_cast<int>(p), values[protected_cols_[p]]);
  }
  FinishRow(shard, label);
}

void ColumnarShardStoreBuilder::Append(const Dataset& chunk) {
  REMEDY_CHECK(chunk.NumColumns() == store_.schema_.NumAttributes())
      << "chunk attribute count " << chunk.NumColumns() << " != "
      << store_.schema_.NumAttributes();
  for (int r = 0; r < chunk.NumRows(); ++r) {
    ColumnarShardStore::Shard& shard = ShardForNextRow();
    for (size_t p = 0; p < protected_cols_.size(); ++p) {
      PushCode(shard, static_cast<int>(p), chunk.Value(r, protected_cols_[p]));
    }
    FinishRow(shard, chunk.Label(r));
  }
}

ColumnarShardStore ColumnarShardStoreBuilder::Finish() {
  REMEDY_CHECK(!spilling_)
      << "spill-mode builders finish with FinishSpilled()";
  ColumnarShardStore out = std::move(store_);
  store_ = ColumnarShardStore();
  return out;
}

StatusOr<ColumnarShardStore> ColumnarShardStoreBuilder::FinishSpilled() {
  REMEDY_CHECK(spilling_) << "FinishSpilled without EnableSpill";
  if (spill_status_.ok()) {
    if (store_.shards_.empty()) {
      // Zero rows streamed: write one empty shard so the directory is a
      // valid (empty) store rather than indistinguishable from garbage.
      ColumnarShardStore::Shard empty;
      empty.columns.resize(protected_cols_.size());
      spill_status_ = SpillShard(empty);
      if (spill_status_.ok()) ++spilled_shards_;
    } else if (store_.shards_.back().num_rows > 0 || spilled_shards_ == 0) {
      spill_status_ = SpillShard(store_.shards_.back());
      if (spill_status_.ok()) ++spilled_shards_;
    }
  }
  const std::string dir = spill_dir_;
  const DataSchema schema = store_.schema_;
  Status status = std::move(spill_status_);
  store_ = ColumnarShardStore();
  spill_status_ = OkStatus();
  spilling_ = false;
  spill_dir_.clear();
  spilled_shards_ = 0;
  if (!status.ok()) {
    // The directory holds an incomplete store (some shards written, the
    // rest lost to the failure). Remove the shard files so nothing can
    // later OpenSpilled a truncated store, and so a re-spill starts clean.
    struct stat info;
    for (int index = 0;; ++index) {
      const std::string path = dir + "/" + ShardFileName(index);
      if (::stat(path.c_str(), &info) != 0) break;
      std::remove(path.c_str());  // best-effort; the write error dominates
    }
    return status.WithContext("spilling store to '" + dir + "'");
  }
  // Re-open what was just written: every header the writer produced is
  // re-read and re-validated, so a FinishSpilled success means the store
  // on disk is complete and openable.
  return ColumnarShardStore::OpenSpilled(dir, schema);
}

ColumnarShardStore ColumnarShardStore::FromDataset(const Dataset& data,
                                                   int64_t shard_rows) {
  ColumnarShardStoreBuilder builder(data.schema(), shard_rows);
  builder.Append(data);
  return builder.Finish();
}

}  // namespace remedy
