#include "data/columnar.h"

#include <utility>

#include "common/check.h"

namespace remedy {

ColumnarShardStoreBuilder::ColumnarShardStoreBuilder(DataSchema schema,
                                                     int64_t shard_rows) {
  REMEDY_CHECK(shard_rows > 0) << "shard_rows must be positive";
  REMEDY_CHECK(schema.NumProtected() > 0)
      << "ColumnarShardStore needs at least one protected attribute";
  protected_cols_ = schema.protected_indices();
  store_.schema_ = std::move(schema);
  store_.shard_rows_ = shard_rows;
  store_.cardinalities_.reserve(protected_cols_.size());
  for (int col : protected_cols_) {
    const int cardinality = store_.schema_.attribute(col).Cardinality();
    REMEDY_CHECK(cardinality <= 65536)
        << "attribute " << store_.schema_.attribute(col).name()
        << " cardinality " << cardinality << " exceeds the u16 code space";
    store_.cardinalities_.push_back(cardinality);
  }
}

ColumnarShardStore::Shard& ColumnarShardStoreBuilder::ShardForNextRow() {
  if (store_.shards_.empty() ||
      store_.shards_.back().num_rows == store_.shard_rows_) {
    ColumnarShardStore::Shard& shard = store_.shards_.emplace_back();
    shard.columns.resize(protected_cols_.size());
    const size_t reserve = static_cast<size_t>(store_.shard_rows_);
    for (size_t p = 0; p < protected_cols_.size(); ++p) {
      if (store_.IsNarrow(static_cast<int>(p))) {
        shard.columns[p].narrow.reserve(reserve);
      } else {
        shard.columns[p].wide.reserve(reserve);
      }
    }
    shard.labels.reserve(reserve);
  }
  return store_.shards_.back();
}

void ColumnarShardStoreBuilder::PushCode(ColumnarShardStore::Shard& shard,
                                         int position, int code) {
  REMEDY_DCHECK(code >= 0 && code < store_.cardinalities_[position]);
  ColumnarShardStore::ColumnCodes& column = shard.columns[position];
  if (store_.IsNarrow(position)) {
    column.narrow.push_back(static_cast<uint8_t>(code));
  } else {
    column.wide.push_back(static_cast<uint16_t>(code));
  }
}

void ColumnarShardStoreBuilder::FinishRow(ColumnarShardStore::Shard& shard,
                                          int label) {
  REMEDY_DCHECK(label == 0 || label == 1);
  shard.labels.push_back(static_cast<uint8_t>(label));
  ++shard.num_rows;
  ++store_.num_rows_;
  if (label == 1) {
    ++store_.positives_;
  } else {
    ++store_.negatives_;
  }
}

void ColumnarShardStoreBuilder::AddRow(const std::vector<int>& values,
                                       int label) {
  REMEDY_DCHECK(static_cast<int>(values.size()) ==
                store_.schema_.NumAttributes());
  ColumnarShardStore::Shard& shard = ShardForNextRow();
  for (size_t p = 0; p < protected_cols_.size(); ++p) {
    PushCode(shard, static_cast<int>(p), values[protected_cols_[p]]);
  }
  FinishRow(shard, label);
}

void ColumnarShardStoreBuilder::Append(const Dataset& chunk) {
  REMEDY_CHECK(chunk.NumColumns() == store_.schema_.NumAttributes())
      << "chunk attribute count " << chunk.NumColumns() << " != "
      << store_.schema_.NumAttributes();
  for (int r = 0; r < chunk.NumRows(); ++r) {
    ColumnarShardStore::Shard& shard = ShardForNextRow();
    for (size_t p = 0; p < protected_cols_.size(); ++p) {
      PushCode(shard, static_cast<int>(p), chunk.Value(r, protected_cols_[p]));
    }
    FinishRow(shard, chunk.Label(r));
  }
}

ColumnarShardStore ColumnarShardStoreBuilder::Finish() {
  ColumnarShardStore out = std::move(store_);
  store_ = ColumnarShardStore();
  return out;
}

ColumnarShardStore ColumnarShardStore::FromDataset(const Dataset& data,
                                                   int64_t shard_rows) {
  ColumnarShardStoreBuilder builder(data.schema(), shard_rows);
  builder.Append(data);
  return builder.Finish();
}

}  // namespace remedy
