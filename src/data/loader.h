#ifndef REMEDY_DATA_LOADER_H_
#define REMEDY_DATA_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "data/dataset.h"

namespace remedy {

// CSV import with schema inference — the entry point for running the
// library on real tabular data (e.g. the original Adult / COMPAS / Law
// School files, when available).
//
// Column typing follows the paper's "standard pre-processing": columns
// whose non-empty values all parse as numbers and exceed
// `categorical_numeric_limit` distinct values are treated as continuous and
// quantile-bucketized into `numeric_buckets` ordinal buckets; everything
// else is categorical with the observed value set as its domain. Rows with
// missing values (empty fields) are dropped, as in the paper.
//
// Structurally malformed records (ragged width, unterminated quotes) are
// governed by `on_bad_row`: fail the load, quarantine them with a report and
// a corruption circuit breaker, or silently drop them.

// What to do with a structurally malformed CSV record.
enum class BadRowPolicy {
  kFail,        // first bad record fails the load with kDataCorruption
  kQuarantine,  // divert bad records, report them, trip the circuit breaker
                // when their fraction exceeds max_quarantine_fraction
  kDrop,        // divert bad records silently (reported count only)
};

struct LoaderOptions {
  // Attribute names forming the protected set X. Must be header names.
  std::vector<std::string> protected_attributes;
  // Label column name; empty means the last column.
  std::string label_column;
  // The label value mapped to 1; every other value maps to 0.
  std::string positive_label = "1";
  // Quantile buckets for continuous columns.
  int numeric_buckets = 4;
  // Numeric columns with at most this many distinct values stay categorical
  // (e.g. a 0/1 flag encoded as numbers).
  int categorical_numeric_limit = 10;
  // Upper bound on a categorical column's domain; beyond it the rarest
  // values are pooled into an "<other>" value to keep the lattice tractable.
  int max_categories = 24;
  BadRowPolicy on_bad_row = BadRowPolicy::kFail;
  // Circuit breaker for kQuarantine: when more than this fraction of the
  // parsed records is malformed the file is judged corrupt, not merely
  // scuffed, and the load fails with kDataCorruption.
  double max_quarantine_fraction = 0.05;
};

// Where and why the quarantined records were refused.
struct QuarantineReport {
  // Up to this many concrete bad records are kept as examples; the counters
  // below always cover all of them.
  static constexpr int kMaxExamples = 10;

  int64_t rows_quarantined = 0;
  double fraction = 0.0;  // quarantined / all records seen
  std::vector<CsvBadRow> examples;
};

// Statistics of one load, for sanity reporting.
struct LoaderReport {
  int rows_loaded = 0;
  int rows_dropped_missing = 0;
  int64_t rows_quarantined = 0;  // structurally malformed records diverted
  int numeric_columns = 0;
  int categorical_columns = 0;
  int pooled_columns = 0;  // columns that needed an "<other>" value
};

// Builds a dataset from a parsed CSV table (header required). Fails with
// kDataCorruption on malformed input, kInvalidArgument on unknown
// protected/label names or a non-binary outcome after mapping.
StatusOr<Dataset> BuildDataset(const CsvTable& table,
                               const LoaderOptions& options,
                               LoaderReport* report = nullptr,
                               QuarantineReport* quarantine = nullptr);

// Reads and builds from a CSV file. On `on_bad_row` != kFail the parse runs
// in tolerant mode and the diverted records flow into `quarantine`.
StatusOr<Dataset> LoadCsvDataset(const std::string& path,
                                 const LoaderOptions& options,
                                 LoaderReport* report = nullptr,
                                 QuarantineReport* quarantine = nullptr);

}  // namespace remedy

#endif  // REMEDY_DATA_LOADER_H_
