#ifndef REMEDY_DATA_LOADER_H_
#define REMEDY_DATA_LOADER_H_

#include <string>
#include <vector>

#include "common/csv.h"
#include "data/dataset.h"

namespace remedy {

// CSV import with schema inference — the entry point for running the
// library on real tabular data (e.g. the original Adult / COMPAS / Law
// School files, when available).
//
// Column typing follows the paper's "standard pre-processing": columns
// whose non-empty values all parse as numbers and exceed
// `categorical_numeric_limit` distinct values are treated as continuous and
// quantile-bucketized into `numeric_buckets` ordinal buckets; everything
// else is categorical with the observed value set as its domain. Rows with
// missing values (empty fields) are dropped, as in the paper.

struct LoaderOptions {
  // Attribute names forming the protected set X. Must be header names.
  std::vector<std::string> protected_attributes;
  // Label column name; empty means the last column.
  std::string label_column;
  // The label value mapped to 1; every other value maps to 0.
  std::string positive_label = "1";
  // Quantile buckets for continuous columns.
  int numeric_buckets = 4;
  // Numeric columns with at most this many distinct values stay categorical
  // (e.g. a 0/1 flag encoded as numbers).
  int categorical_numeric_limit = 10;
  // Upper bound on a categorical column's domain; beyond it the rarest
  // values are pooled into an "<other>" value to keep the lattice tractable.
  int max_categories = 24;
};

// Statistics of one load, for sanity reporting.
struct LoaderReport {
  int rows_loaded = 0;
  int rows_dropped_missing = 0;
  int numeric_columns = 0;
  int categorical_columns = 0;
  int pooled_columns = 0;  // columns that needed an "<other>" value
};

// Builds a dataset from a parsed CSV table (header required). Returns false
// with a message in *error on malformed input, unknown protected/label
// names, or a non-binary outcome after mapping.
bool BuildDataset(const CsvTable& table, const LoaderOptions& options,
                  Dataset* dataset, std::string* error,
                  LoaderReport* report = nullptr);

// Reads and builds from a CSV file.
bool LoadCsvDataset(const std::string& path, const LoaderOptions& options,
                    Dataset* dataset, std::string* error,
                    LoaderReport* report = nullptr);

}  // namespace remedy

#endif  // REMEDY_DATA_LOADER_H_
