#include "data/shard_file.h"

#include <cstdio>
#include <cstring>
#include <sys/stat.h>

namespace remedy {
namespace {

int64_t RoundUpAligned(int64_t bytes) {
  return (bytes + kShardFileAlign - 1) / kShardFileAlign * kShardFileAlign;
}

// Little-endian scalar writes/reads, independent of host byte order.
void PutU32(std::vector<uint8_t>& out, size_t at, uint32_t value) {
  for (int i = 0; i < 4; ++i) out[at + i] = (value >> (8 * i)) & 0xff;
}

void PutU64(std::vector<uint8_t>& out, size_t at, uint64_t value) {
  for (int i = 0; i < 8; ++i) out[at + i] = (value >> (8 * i)) & 0xff;
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= uint32_t{data[i]} << (8 * i);
  return value;
}

uint64_t GetU64(const uint8_t* data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= uint64_t{data[i]} << (8 * i);
  return value;
}

// Fixed-part field offsets (see the layout comment in the header).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffShardIndex = 8;
constexpr size_t kOffNumColumns = 12;
constexpr size_t kOffNumRows = 16;
constexpr size_t kOffNumPositives = 24;
constexpr size_t kOffSchemaDigest = 32;
constexpr size_t kOffPayloadBytes = 40;
constexpr size_t kOffPayloadChecksum = 48;
constexpr size_t kOffHeaderChecksum = 56;

void MixU64(uint64_t& digest, uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = (value >> (8 * i)) & 0xff;
  digest = Fnv1a64(bytes, sizeof(bytes), digest);
}

void MixString(uint64_t& digest, const std::string& text) {
  MixU64(digest, text.size());
  digest = Fnv1a64(reinterpret_cast<const uint8_t*>(text.data()), text.size(),
                   digest);
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size, uint64_t seed) {
  uint64_t digest = seed;
  for (size_t i = 0; i < size; ++i) {
    digest ^= data[i];
    digest *= 0x100000001b3ull;
  }
  return digest;
}

uint64_t SchemaDigest(const DataSchema& schema) {
  uint64_t digest = 0xcbf29ce484222325ull;
  MixU64(digest, static_cast<uint64_t>(schema.NumAttributes()));
  for (const AttributeSchema& attribute : schema.attributes()) {
    MixString(digest, attribute.name());
    MixU64(digest, static_cast<uint64_t>(attribute.Cardinality()));
    for (const std::string& value : attribute.values()) {
      MixString(digest, value);
    }
  }
  MixU64(digest, static_cast<uint64_t>(schema.NumProtected()));
  for (int index : schema.protected_indices()) {
    MixU64(digest, static_cast<uint64_t>(index));
  }
  MixString(digest, schema.label_name());
  return digest;
}

int64_t ShardFileHeader::HeaderBytes() const {
  return RoundUpAligned(kShardFileFixedBytes + num_columns());
}

int64_t ShardFileHeader::ColumnOffset(int position) const {
  int64_t offset = 0;
  for (int p = 0; p < position; ++p) {
    offset += RoundUpAligned(num_rows * column_widths[p]);
  }
  return offset;
}

int64_t ShardFileHeader::LabelOffset() const {
  return ColumnOffset(num_columns());
}

int64_t ShardFileHeader::ComputedPayloadBytes() const {
  return LabelOffset() + RoundUpAligned(num_rows);
}

std::vector<uint8_t> EncodeShardFileHeader(const ShardFileHeader& header) {
  std::vector<uint8_t> out(static_cast<size_t>(header.HeaderBytes()), 0);
  PutU32(out, kOffMagic, kShardFileMagic);
  PutU32(out, kOffVersion, kShardFileVersion);
  PutU32(out, kOffShardIndex, header.shard_index);
  PutU32(out, kOffNumColumns, static_cast<uint32_t>(header.num_columns()));
  PutU64(out, kOffNumRows, static_cast<uint64_t>(header.num_rows));
  PutU64(out, kOffNumPositives, static_cast<uint64_t>(header.num_positives));
  PutU64(out, kOffSchemaDigest, header.schema_digest);
  PutU64(out, kOffPayloadBytes, static_cast<uint64_t>(header.payload_bytes));
  PutU64(out, kOffPayloadChecksum, header.payload_checksum);
  for (int p = 0; p < header.num_columns(); ++p) {
    out[kShardFileFixedBytes + p] = header.column_widths[p];
  }
  // Checksum over the whole serialized header with its own field zeroed.
  PutU64(out, kOffHeaderChecksum, Fnv1a64(out.data(), out.size()));
  return out;
}

StatusOr<ShardFileHeader> DecodeShardFileHeader(const uint8_t* data,
                                                size_t size) {
  if (size < static_cast<size_t>(kShardFileFixedBytes)) {
    return DataCorruptionError("truncated shard header (" +
                               std::to_string(size) + " bytes)");
  }
  if (GetU32(data + kOffMagic) != kShardFileMagic) {
    return DataCorruptionError("bad shard file magic");
  }
  if (GetU32(data + kOffVersion) != kShardFileVersion) {
    return DataCorruptionError(
        "unsupported shard file version " +
        std::to_string(GetU32(data + kOffVersion)));
  }
  ShardFileHeader header;
  header.shard_index = GetU32(data + kOffShardIndex);
  const uint32_t num_columns = GetU32(data + kOffNumColumns);
  if (num_columns == 0 || num_columns > 32) {
    return DataCorruptionError("shard file declares " +
                               std::to_string(num_columns) + " columns");
  }
  header.num_rows = static_cast<int64_t>(GetU64(data + kOffNumRows));
  header.num_positives =
      static_cast<int64_t>(GetU64(data + kOffNumPositives));
  header.schema_digest = GetU64(data + kOffSchemaDigest);
  header.payload_bytes =
      static_cast<int64_t>(GetU64(data + kOffPayloadBytes));
  header.payload_checksum = GetU64(data + kOffPayloadChecksum);
  header.column_widths.resize(num_columns);
  if (size < static_cast<size_t>(header.HeaderBytes())) {
    return DataCorruptionError("truncated shard header (" +
                               std::to_string(size) + " of " +
                               std::to_string(header.HeaderBytes()) +
                               " bytes)");
  }
  for (uint32_t p = 0; p < num_columns; ++p) {
    header.column_widths[p] = data[kShardFileFixedBytes + p];
    if (header.column_widths[p] != 1 && header.column_widths[p] != 2) {
      return DataCorruptionError(
          "shard file column " + std::to_string(p) + " has code width " +
          std::to_string(header.column_widths[p]));
    }
  }
  // Verify the checksum over the serialized header with its field zeroed.
  std::vector<uint8_t> check(data, data + header.HeaderBytes());
  const uint64_t expected = GetU64(check.data() + kOffHeaderChecksum);
  PutU64(check, kOffHeaderChecksum, 0);
  if (Fnv1a64(check.data(), check.size()) != expected) {
    return DataCorruptionError("shard header checksum mismatch");
  }
  if (header.num_rows < 0 || header.num_positives < 0 ||
      header.num_positives > header.num_rows) {
    return DataCorruptionError("shard header row counts are inconsistent");
  }
  if (header.payload_bytes != header.ComputedPayloadBytes()) {
    return DataCorruptionError(
        "shard header payload size " + std::to_string(header.payload_bytes) +
        " does not match its layout (" +
        std::to_string(header.ComputedPayloadBytes()) + ")");
  }
  return header;
}

StatusOr<ShardFileHeader> ReadShardFileHeader(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return IoError("cannot open shard file '" + path + "'");
  }
  // The header is at most fixed bytes + 32 widths, rounded up: 128 bytes.
  uint8_t buffer[2 * kShardFileFixedBytes];
  const size_t read = std::fread(buffer, 1, sizeof(buffer), file);
  std::fclose(file);
  StatusOr<ShardFileHeader> header = DecodeShardFileHeader(buffer, read);
  if (!header.ok()) {
    return header.status().WithContext("shard file '" + path + "'");
  }
  struct stat info;
  if (::stat(path.c_str(), &info) != 0) {
    return IoError("cannot stat shard file '" + path + "'");
  }
  const int64_t expected_size =
      header.value().HeaderBytes() + header.value().payload_bytes;
  if (static_cast<int64_t>(info.st_size) != expected_size) {
    return DataCorruptionError(
        "shard file '" + path + "' is " + std::to_string(info.st_size) +
        " bytes, header declares " + std::to_string(expected_size) +
        " (truncated or overwritten spill)");
  }
  return header;
}

std::string ShardFileName(int shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%06d.rcs", shard_index);
  return name;
}

}  // namespace remedy
