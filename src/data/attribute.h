#ifndef REMEDY_DATA_ATTRIBUTE_H_
#define REMEDY_DATA_ATTRIBUTE_H_

#include <string>
#include <vector>

namespace remedy {

// Schema of one categorical (or discretized) attribute.
//
// Values are referenced by their integer code (the index into `values`).
// Following the paper (Def. 4), all distinct values of a nominal attribute
// are one unit apart; attributes with a natural numeric ordering (age
// buckets, #priors, education) may be flagged `ordinal`, in which case the
// distance between codes i and j is |i - j|.
class AttributeSchema {
 public:
  AttributeSchema() = default;
  AttributeSchema(std::string name, std::vector<std::string> values,
                  bool ordinal = false);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& values() const { return values_; }
  bool ordinal() const { return ordinal_; }

  // Number of values in the domain.
  int Cardinality() const { return static_cast<int>(values_.size()); }

  // Code of `value`, or -1 if it is not in the domain.
  int ValueIndex(const std::string& value) const;

  // Human-readable value for a code.
  const std::string& ValueName(int code) const;

  // Distance between two value codes under this attribute's metric.
  double Distance(int code_a, int code_b) const;

 private:
  std::string name_;
  std::vector<std::string> values_;
  bool ordinal_ = false;
};

}  // namespace remedy

#endif  // REMEDY_DATA_ATTRIBUTE_H_
