#include "data/encoding.h"

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/trace.h"

namespace remedy {

OneHotEncoder::OneHotEncoder(const DataSchema& schema) {
  offsets_.reserve(schema.NumAttributes());
  cardinalities_.reserve(schema.NumAttributes());
  for (int c = 0; c < schema.NumAttributes(); ++c) {
    offsets_.push_back(width_);
    int cardinality = schema.attribute(c).Cardinality();
    cardinalities_.push_back(cardinality);
    width_ += cardinality;
  }
}

void OneHotEncoder::EncodeRow(const Dataset& data, int row,
                              std::vector<float>* out) const {
  REMEDY_DCHECK(data.NumColumns() == static_cast<int>(offsets_.size()));
  out->assign(width_, 0.0f);
  for (size_t c = 0; c < offsets_.size(); ++c) {
    int code = data.Value(row, static_cast<int>(c));
    REMEDY_DCHECK(code >= 0 && code < cardinalities_[c]);
    (*out)[offsets_[c] + code] = 1.0f;
  }
}

EncodedMatrix::EncodedMatrix(const Dataset& data)
    : data_(&data), encoder_(data.schema()), num_columns_(data.NumColumns()) {
  REMEDY_TRACE_SPAN("ml/encode");
  active_.resize(static_cast<size_t>(data.NumRows()) * num_columns_);
  for (int r = 0; r < data.NumRows(); ++r) {
    int* row = active_.data() + static_cast<size_t>(r) * num_columns_;
    for (int c = 0; c < num_columns_; ++c) {
      row[c] = encoder_.Offset(c) + data.Value(r, c);
    }
  }
  PipelineMetrics::Get().ml_encoded_matrices->Increment();
}

std::vector<float> OneHotEncoder::EncodeAll(const Dataset& data) const {
  std::vector<float> encoded(static_cast<size_t>(data.NumRows()) * width_,
                             0.0f);
  for (int r = 0; r < data.NumRows(); ++r) {
    float* row = encoded.data() + static_cast<size_t>(r) * width_;
    for (size_t c = 0; c < offsets_.size(); ++c) {
      row[offsets_[c] + data.Value(r, static_cast<int>(c))] = 1.0f;
    }
  }
  return encoded;
}

}  // namespace remedy
