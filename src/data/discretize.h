#ifndef REMEDY_DATA_DISCRETIZE_H_
#define REMEDY_DATA_DISCRETIZE_H_

#include <string>
#include <vector>

#include "data/attribute.h"

namespace remedy {

// Bucketization of continuous attributes into categorical codes.
//
// The paper performs "standard pre-processing ... bucketizing continuous
// values for protected attributes"; these helpers implement that step for
// CSV imports and for the synthetic generators (e.g. hours-per-week, LSAT
// scores). Buckets become ordinal attribute values so the neighboring-region
// distance can respect the numeric ordering.
class Bucketizer {
 public:
  // Cut points must be strictly increasing; they induce buckets
  // (-inf, cuts[0]], (cuts[0], cuts[1]], ..., (cuts.back(), +inf).
  Bucketizer(std::string attribute_name, std::vector<double> cuts);

  // Equal-width buckets over the observed [min, max] of `values`.
  static Bucketizer EqualWidth(std::string attribute_name,
                               const std::vector<double>& values,
                               int num_buckets);

  // Buckets with (approximately) equal population, using sample quantiles.
  // Degenerate quantiles (ties) are collapsed, so the result may have fewer
  // than `num_buckets` buckets.
  static Bucketizer Quantile(std::string attribute_name,
                             const std::vector<double>& values,
                             int num_buckets);

  // Bucket code of a raw value.
  int Code(double value) const;

  int NumBuckets() const { return static_cast<int>(cuts_.size()) + 1; }
  const std::vector<double>& cuts() const { return cuts_; }

  // Ordinal attribute schema with human-readable range names
  // ("<=30", "(30-45]", ">45").
  AttributeSchema MakeSchema() const;

 private:
  std::string attribute_name_;
  std::vector<double> cuts_;
};

}  // namespace remedy

#endif  // REMEDY_DATA_DISCRETIZE_H_
