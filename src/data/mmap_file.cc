#include "data/mmap_file.h"

#include <algorithm>
#include <utility>

#if defined(_WIN32)
// No mmap on this toolchain: Map fails with a clean Status and the store
// stays on its in-memory path. Nothing else in the library requires it.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace remedy {

MmapFile::~MmapFile() { Unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

#if defined(_WIN32)

StatusOr<MmapFile> MmapFile::Map(const std::string& path) {
  return IoError("memory mapping is not supported on this platform ('" +
                 path + "')");
}

void MmapFile::AdviseSequential(size_t, size_t) const {}
void MmapFile::AdviseDontNeed(size_t, size_t) const {}
void MmapFile::Unmap() {}

#else

namespace {

size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

// Expands [offset, offset + length) to page boundaries, clamped to `size`;
// returns false when the range is empty after clamping.
bool AlignRange(size_t size, size_t& offset, size_t& length) {
  if (offset >= size) return false;
  const size_t page = PageSize();
  const size_t end = std::min(size, offset + length);
  offset -= offset % page;
  length = end - offset;
  return length > 0;
}

}  // namespace

StatusOr<MmapFile> MmapFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoError("cannot open '" + path +
                   "' for mapping: " + std::strerror(errno));
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return IoError("cannot stat '" + path + "': " + error);
  }
  if (info.st_size <= 0) {
    ::close(fd);
    return IoError("cannot map empty file '" + path + "'");
  }
  const size_t size = static_cast<size_t>(info.st_size);
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point either way.
  ::close(fd);
  if (data == MAP_FAILED) {
    return IoError("mmap of '" + path + "' (" + std::to_string(size) +
                   " bytes) failed: " + std::strerror(errno));
  }
  MmapFile file;
  file.data_ = data;
  file.size_ = size;
  return file;
}

void MmapFile::AdviseSequential(size_t offset, size_t length) const {
  if (data_ == nullptr || !AlignRange(size_, offset, length)) return;
  ::madvise(static_cast<char*>(data_) + offset, length, MADV_SEQUENTIAL);
}

void MmapFile::AdviseDontNeed(size_t offset, size_t length) const {
  if (data_ == nullptr || !AlignRange(size_, offset, length)) return;
  ::madvise(static_cast<char*>(data_) + offset, length, MADV_DONTNEED);
}

void MmapFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

#endif  // _WIN32

}  // namespace remedy
