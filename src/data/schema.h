#ifndef REMEDY_DATA_SCHEMA_H_
#define REMEDY_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "data/attribute.h"

namespace remedy {

// Schema of a binary-labelled tabular dataset: the full training feature set
// `A = {a_1 .. a_m}` plus the subset of protected attributes `X ⊆ A` used to
// define intersectional subgroups.
class DataSchema {
 public:
  DataSchema() = default;
  DataSchema(std::vector<AttributeSchema> attributes,
             std::vector<int> protected_indices,
             std::string label_name = "label");

  int NumAttributes() const { return static_cast<int>(attributes_.size()); }
  const AttributeSchema& attribute(int index) const;
  const std::vector<AttributeSchema>& attributes() const { return attributes_; }

  // Indices (into `attributes`) of the protected attributes, in declaration
  // order. This is the set the paper calls X.
  const std::vector<int>& protected_indices() const {
    return protected_indices_;
  }
  int NumProtected() const {
    return static_cast<int>(protected_indices_.size());
  }

  const std::string& label_name() const { return label_name_; }

  // Index of the attribute named `name`, or -1 if absent.
  int AttributeIndex(const std::string& name) const;

  // True if attribute `index` is protected.
  bool IsProtected(int index) const;

  // Returns a copy of this schema with a different protected set, given by
  // attribute names. Dies if a name is unknown.
  DataSchema WithProtected(const std::vector<std::string>& names) const;

 private:
  std::vector<AttributeSchema> attributes_;
  std::vector<int> protected_indices_;
  std::string label_name_ = "label";
};

}  // namespace remedy

#endif  // REMEDY_DATA_SCHEMA_H_
