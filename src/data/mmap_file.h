#ifndef REMEDY_DATA_MMAP_FILE_H_
#define REMEDY_DATA_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace remedy {

// Read-only memory mapping of one file — the substrate of the out-of-core
// shard store (see ColumnarShardStore::OpenSpilled). The mapping is shared
// and never written, so pages are clean: the kernel drops and re-faults
// them from the file at will, which is what lets a store larger than RAM
// stream through the counting backends at a bounded resident set.
//
// The Advise* calls wrap madvise with page alignment handled here; they are
// hints, so failures are ignored by design (counting stays correct, only
// the paging pattern degrades).
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Maps `path` read-only. kIoError when the file cannot be opened, sized,
  // or mapped (including zero-length files, which POSIX mmap rejects).
  static StatusOr<MmapFile> Map(const std::string& path);

  bool mapped() const { return data_ != nullptr; }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

  // MADV_SEQUENTIAL over [offset, offset + length): aggressive readahead
  // for the streaming tally pass over one shard.
  void AdviseSequential(size_t offset, size_t length) const;
  // MADV_DONTNEED over [offset, offset + length): drops the (clean) pages
  // once a shard's tally is folded, bounding resident memory to the shards
  // in flight instead of the whole store.
  void AdviseDontNeed(size_t offset, size_t length) const;

  // Unmaps now (also done by the destructor); mapped() becomes false.
  void Unmap();

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace remedy

#endif  // REMEDY_DATA_MMAP_FILE_H_
