#ifndef REMEDY_SERVE_DAEMON_H_
#define REMEDY_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/ibs_incremental.h"
#include "core/remedy_backend.h"
#include "serve/wal.h"

namespace remedy {

struct CsvTable;

// How PublishSnapshot maintains the per-epoch IBS (--identify-mode):
// kFull re-scores the whole lattice every identify epoch; kIncremental
// re-scores only the regions the epoch's deltas touched plus their
// comparison neighborhoods (core/ibs_incremental.h), falling back to a
// full sweep on recovery and cold starts. Output is bit-identical either
// way — the mode only moves the per-epoch cost.
enum class IdentifyMode {
  kFull,
  kIncremental,
};

// The crash-safe streaming fairness daemon (see docs/SERVICE.md).
//
// Row deltas stream in as CSV batches, land in a bounded ingest queue
// (backpressure: a full queue rejects with kResourceExhausted and a
// retry-after hint), and a single apply thread drains the queue in group
// commits — WAL append + one fsync, then Hierarchy::ApplyDeltas, then an
// immutable epoch snapshot is published for readers. Identify/audit
// queries never touch the live lattice: they read the pinned snapshot of
// some epoch, so a reader observes one consistent cut no matter how many
// batches commit mid-query.
//
// Degradation ladder: a WAL append/fsync failure or a post-commit apply
// failure that survives its retries trips read-only mode — ingestion
// rejects, queries keep answering from the last good snapshot, and the
// health endpoint says why. A post-commit failure additionally marks the
// daemon needs-recovery (the durable state is ahead of the in-memory
// lattice); restarting the daemon replays the WAL and heals. Stop() drains
// the queue, checkpoints, and resets the log, so a clean shutdown restarts
// with an empty replay.
struct ServeOptions {
  // Directory holding the daemon's durable state (created if absent, one
  // level): deltas.wal and checkpoint.rck.
  std::string state_dir;

  // Ingest queue capacity in batches; a full queue is backpressure.
  size_t queue_capacity = 64;
  // Retry-after hint (milliseconds) embedded in backpressure rejections.
  int retry_after_ms = 10;

  // Consecutive failures of one batch's post-commit lattice apply before
  // the watchdog trips read-only mode (the batch is retried in place up to
  // this many times; WAL and checkpoint failures trip immediately).
  int watchdog_trip_threshold = 3;

  // Checkpoint + WAL reset automatically every this many applied batches
  // (0 = only on Checkpoint() / Stop()).
  int64_t checkpoint_every_batches = 0;

  // Identification parameters of the per-epoch subgroup audit.
  IbsParams ibs;
  // Re-identify the IBS every this many published epochs (1 = every epoch,
  // 0 = never; the snapshot then carries the previous epoch's IBS). The
  // online monitor only sees change at identify epochs.
  int identify_every_epochs = 1;
  // Full vs dirty-region incremental identify (see IdentifyMode above).
  IdentifyMode identify_mode = IdentifyMode::kIncremental;

  // Rollup fan-out of the recovery-time EagerBuild (<= 0 = all CPUs).
  int build_threads = 1;

  // --- online remedy (the RemedyBackend seam; docs/REMEDY.md) ---------

  // Publish each epoch's leaf counts with its snapshot so SubmitRemedy can
  // plan against a pinned cut. Off by default: the copy costs one leaf
  // table per epoch. auto_remedy implies it.
  bool enable_remedy = false;
  // Which RemedyBackend plans submitted remedies (docs/REMEDY.md). The
  // streaming backend is the daemon-native one; rebuild/incremental plan
  // on the same materialized counts and commit identically.
  RemedyBackendKind remedy_backend = RemedyBackendKind::kStreaming;
  // Technique/seed/planning parameters of submitted and auto remedies.
  // The `ibs` field is overridden by ServeOptions::ibs at Start so the
  // remedy always targets the same subgroup set the monitor reports.
  RemedyParams remedy;
  // Monitor policy hook: when an identify epoch publishes a non-empty IBS,
  // a dedicated remedy thread plans and commits one remedy round, up to
  // auto_remedy_max_rounds consecutive rounds without external ingest
  // (ingest resets the budget). Convergence is natural: a round that plans
  // no deltas publishes no epoch and so triggers no further round.
  bool auto_remedy = false;
  int auto_remedy_max_rounds = 4;
};

// One published epoch: an immutable, internally consistent cut of the
// daemon's state. Readers hold the shared_ptr for as long as they like;
// publishing never mutates an already-published snapshot.
struct EpochSnapshot {
  uint64_t epoch = 0;
  uint64_t wal_sequence = 0;  // last committed record this cut includes
  RegionCounts totals;
  uint64_t counts_digest = 0;  // Hierarchy::CountsDigest at this cut
  std::vector<BiasedRegion> ibs;
  uint64_t ibs_epoch = 0;  // epoch the ibs field was identified at
  bool read_only = false;
  // This cut's leaf census; only populated when the daemon was started
  // with remedy enabled (ServeOptions::enable_remedy / auto_remedy).
  std::shared_ptr<const NodeTable> leaf_counts;
};

// Outcome of one ServeDaemon::SubmitRemedy call.
struct RemedyCommitResult {
  uint64_t planned_epoch = 0;    // snapshot the plan was pinned to
  uint64_t pinned_sequence = 0;  // WAL sequence of that snapshot
  bool committed = false;        // false: the plan was empty (a no-op)
  uint64_t applied_epoch = 0;    // epoch the remedy became visible at
  size_t deltas = 0;             // net leaf deltas in the plan
  RemedyStats stats;
};

class ServeDaemon {
 public:
  // File names inside ServeOptions::state_dir.
  static constexpr const char* kWalFileName = "deltas.wal";
  static constexpr const char* kCheckpointFileName = "checkpoint.rck";

  // Recovers durable state (checkpoint + WAL tail replay; a cold start is
  // an empty lattice), publishes epoch 1, and starts the apply thread.
  static StatusOr<std::unique_ptr<ServeDaemon>> Start(
      const DataSchema& schema, const ServeOptions& options);

  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // --- ingest side (thread-safe) -------------------------------------

  // Parses one CSV batch into leaf deltas and submits it. The header must
  // name every protected attribute and the label column (extra columns are
  // ignored); each row is one instance added (label 1/0), or, when an
  // optional "__count" column is present, a signed instance-count delta.
  // Fault point "serve/ingest". Parse errors reject the whole batch —
  // nothing partial is ever queued.
  Status IngestCsv(const std::string& csv_text);

  // Same, reading the batch from a file through the bounded-retry CSV
  // reader (transient I/O faults are retried with doubling backoff).
  Status IngestCsvFile(const std::string& path);

  // Queues pre-aggregated deltas. kResourceExhausted when the queue is
  // full (message carries the retry-after hint), kInternal in read-only
  // mode. Acceptance means queued, not yet durable — Flush() is the
  // durability barrier.
  Status Submit(std::vector<Hierarchy::LeafDelta> deltas);

  // Blocks until every batch accepted before the call has been applied (or
  // dropped by a failure). Returns the first error the daemon tripped on,
  // OkStatus while healthy.
  Status Flush();

  // --- remedy side (thread-safe; requires enable_remedy) ---------------

  // Plans one remedy with the configured RemedyBackend against a pinned
  // epoch snapshot (the newest, or `pinned` when given) and commits the
  // plan as one WAL batch through the same all-or-nothing group-commit
  // path as ingest — crash-safe, and visible to readers only at the next
  // epoch. Planning runs on the calling thread, off the apply thread, so
  // ingest keeps committing while a remedy plans.
  //
  // Monotonic with ingest: the plan carries the pinned WAL sequence, and
  // the apply thread rejects it with kResourceExhausted if any batch
  // committed after the pin — re-plan against the newer epoch and retry.
  // An empty plan (nothing to do) returns committed=false, not an error.
  StatusOr<RemedyCommitResult> SubmitRemedy(const RemedyParams& params);
  StatusOr<RemedyCommitResult> SubmitRemedy(
      const RemedyParams& params,
      std::shared_ptr<const EpochSnapshot> pinned);

  // Blocks until no auto-remedy round is pending or in flight (returns
  // immediately when auto_remedy is off). Call after Flush() to observe a
  // quiesced post-remedy state deterministically.
  void WaitRemedyIdle();

  // Remedy batches WAL-committed and applied since Start.
  int64_t remedy_commits() const;

  // --- query side (thread-safe, wait-free of the apply thread) --------

  // The newest published epoch; never null after Start.
  std::shared_ptr<const EpochSnapshot> Snapshot() const;

  // A recent epoch by number (the daemon keeps a short ring of published
  // snapshots so an audit can pin one epoch across several queries);
  // nullptr when the epoch has already rotated out.
  std::shared_ptr<const EpochSnapshot> SnapshotAt(uint64_t epoch) const;

  // The IBS of the newest epoch (counts one served query).
  std::vector<BiasedRegion> QueryIbs() const;

  // One-line machine-readable health/stats report over the daemon state
  // and the metrics registry.
  std::string HealthJson() const;

  bool read_only() const;
  bool needs_recovery() const;
  uint64_t epoch() const;

  // --- lifecycle ------------------------------------------------------

  // Drains the apply thread, writes a checkpoint covering every committed
  // record, and resets the WAL. Refused (kInternal) when needs-recovery —
  // checkpointing a lattice that lags its log would lose the lag.
  Status Checkpoint();

  // Stops ingestion, drains the queue, checkpoints (unless
  // needs-recovery), and joins the apply thread. Idempotent and safe to
  // call concurrently — later callers wait for the first to finish and
  // return the same result (the first shutdown error, OkStatus if clean).
  Status Stop();

 private:
  // One queued unit of work. Ingest batches are plain deltas; a remedy
  // batch additionally carries the WAL sequence its plan was pinned to
  // (the apply thread rejects it as stale if ingest advanced past it) and
  // a ticket the submitting thread waits on for the batch's fate.
  struct Batch {
    std::vector<Hierarchy::LeafDelta> deltas;
    bool is_remedy = false;
    uint64_t pinned_sequence = 0;
    uint64_t ticket = 0;  // nonzero iff is_remedy
  };
  struct RemedyOutcome {
    Status status;
    uint64_t epoch = 0;  // publish epoch when status is OK
  };

  ServeDaemon(const DataSchema& schema, const ServeOptions& options);

  bool RemedyEnabled() const {
    return options_.enable_remedy || options_.auto_remedy;
  }

  // Shared row-parsing half of the CSV ingest entry points.
  Status IngestTable(const CsvTable& table);

  // The apply thread's main loop: drain batches in group commits.
  void ApplyLoop();
  // The auto-remedy thread: waits for monitor triggers, then SubmitRemedy.
  void RemedyLoop();
  // One group: validate + WAL-append each batch, one sync, then apply.
  // `*applied` counts the batches that made it into the lattice; remedy
  // batches report their per-ticket fate into `*remedy_outcomes` (tickets
  // missing after a group-level failure are swept by ApplyLoop). Called
  // with engine_mu_ held.
  Status CommitGroup(
      const std::vector<Batch>& batches, int64_t* applied,
      std::vector<std::pair<uint64_t, Status>>* remedy_outcomes);
  // Publishes a fresh snapshot of the current lattice state (engine_mu_
  // held).
  void PublishSnapshot();
  // Writes the checkpoint + resets the WAL (engine_mu_ held).
  Status CheckpointLocked();
  // Trips read-only mode with `why` (any thread).
  void TripReadOnly(const std::string& why, bool lattice_lags_log);

  const ServeOptions options_;
  DataSchema schema_;
  RegionCounter counter_;
  uint64_t schema_digest_ = 0;
  std::string wal_path_;
  std::string checkpoint_path_;
  RemedyParams remedy_params_;  // options_.remedy with ibs = options_.ibs
  const char* counting_backend_name_ = "scalar";  // fixed before serving

  // Engine state: everything the apply thread owns between commits.
  mutable std::mutex engine_mu_;
  std::unique_ptr<Hierarchy> hierarchy_;
  std::unique_ptr<DeltaWal> wal_;
  uint64_t epoch_ = 0;
  uint64_t last_committed_sequence_ = 0;
  int64_t batches_since_checkpoint_ = 0;
  std::vector<BiasedRegion> last_ibs_;
  uint64_t last_ibs_epoch_ = 0;
  uint64_t last_ibs_digest_ = 0;  // of the identified subgroup set
  std::atomic<int64_t> monitor_alerts_{0};
  // Dirty-region identify state (apply thread only, engine_mu_ held).
  IncrementalIbsState ibs_state_;
  // The leaf census last materialized into a snapshot; re-copied only when
  // a batch changed the lattice since (copy-on-write — an epoch published
  // by a dropped batch or an empty group shares the previous census).
  std::shared_ptr<const NodeTable> leaf_census_;
  bool leaf_census_stale_ = true;

  // Queue + control state.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // apply thread waits here
  std::condition_variable drain_cv_;  // Flush / Stop / SubmitRemedy wait here
  std::condition_variable remedy_cv_;  // remedy thread + WaitRemedyIdle
  std::deque<Batch> queue_;
  int64_t submitted_batches_ = 0;
  int64_t processed_batches_ = 0;  // applied or dropped
  int64_t applied_batches_ = 0;
  int64_t failed_batches_ = 0;
  uint64_t next_ticket_ = 1;
  std::unordered_map<uint64_t, RemedyOutcome> remedy_results_;
  int64_t remedy_commits_ = 0;
  int auto_remedy_rounds_ = 0;   // consecutive rounds since last ingest
  bool remedy_pending_ = false;  // a monitor trigger awaits the thread
  bool remedy_inflight_ = false;  // the thread is planning/committing
  bool read_only_ = false;
  bool needs_recovery_ = false;
  std::string trip_reason_;
  bool stopping_ = false;
  bool stop_started_ = false;  // some thread owns the shutdown sequence
  bool stopped_ = false;
  Status first_error_;
  // Last identify pass's accounting, mirrored here (mu_) so HealthJson
  // never has to take engine_mu_ behind a long identify or commit.
  struct IdentifyHealth {
    bool last_incremental = false;
    int64_t dirty_leaves = 0;
    int64_t rescored_regions = 0;
    int64_t cached_regions = 0;
    std::string fallback_reason;
  };
  IdentifyHealth identify_health_;

  // Published epochs, newest last; capped at kSnapshotRing.
  static constexpr size_t kSnapshotRing = 8;
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EpochSnapshot> snapshot_;
  std::deque<std::shared_ptr<const EpochSnapshot>> ring_;

  std::thread apply_thread_;
  std::thread remedy_thread_;  // only started when auto_remedy is on
};

}  // namespace remedy

#endif  // REMEDY_SERVE_DAEMON_H_
