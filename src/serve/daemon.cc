#include "serve/daemon.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/pipeline_metrics.h"
#include "data/shard_file.h"

namespace remedy {
namespace {

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return OkStatus();
  return IoError("cannot create state directory '" + dir + "': " +
                 std::strerror(errno));
}

bool FileExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0;
}

// Minimal JSON string escaping for the health report.
std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeDaemon::ServeDaemon(const DataSchema& schema,
                         const ServeOptions& options)
    : options_(options),
      schema_(schema),
      counter_(schema_),
      schema_digest_(SchemaDigest(schema_)),
      wal_path_(options.state_dir + "/" + kWalFileName),
      checkpoint_path_(options.state_dir + "/" + kCheckpointFileName),
      remedy_params_(options.remedy) {
  // One subgroup definition per daemon: remedies target exactly the
  // regions the per-epoch audit (and the monitor) reports.
  remedy_params_.ibs = options.ibs;
}

StatusOr<std::unique_ptr<ServeDaemon>> ServeDaemon::Start(
    const DataSchema& schema, const ServeOptions& options) {
  if (options.state_dir.empty()) {
    return InvalidArgumentError("ServeOptions::state_dir must be set");
  }
  if (options.queue_capacity == 0) {
    return InvalidArgumentError("ServeOptions::queue_capacity must be >= 1");
  }
  RETURN_IF_ERROR(EnsureDirectory(options.state_dir));
  std::unique_ptr<ServeDaemon> daemon(new ServeDaemon(schema, options));

  // Recovery: checkpoint (or cold start) + WAL tail replay.
  NodeTable leaf_counts;
  RegionCounts totals;
  uint64_t checkpoint_sequence = 0;
  const bool had_checkpoint = FileExists(daemon->checkpoint_path_);
  if (had_checkpoint) {
    ASSIGN_OR_RETURN(WalCheckpoint checkpoint,
                     ReadWalCheckpoint(daemon->checkpoint_path_));
    if (checkpoint.schema_digest != daemon->schema_digest_) {
      return InvalidArgumentError("checkpoint '" + daemon->checkpoint_path_ +
                                  "' belongs to a different schema");
    }
    leaf_counts = std::move(checkpoint.leaf_counts);
    totals = checkpoint.totals;
    checkpoint_sequence = checkpoint.wal_sequence;
    daemon->epoch_ = checkpoint.epoch;
  }
  daemon->hierarchy_ = std::make_unique<Hierarchy>(
      schema, std::move(leaf_counts), totals);
  RETURN_IF_ERROR(daemon->hierarchy_->EagerBuild(options.build_threads)
                      .WithContext("rebuilding the lattice from checkpoint"));
  ASSIGN_OR_RETURN(
      WalReplayResult replay,
      DeltaWal::Replay(daemon->wal_path_, daemon->schema_digest_,
                       checkpoint_sequence,
                       [&daemon](const WalRecord& record) {
                         daemon->hierarchy_->ApplyDeltas(
                             record.deltas, /*insert_missing=*/true);
                         return OkStatus();
                       }));
  daemon->last_committed_sequence_ = replay.last_sequence;
  daemon->counting_backend_name_ =
      CountingBackendName(daemon->hierarchy_->counting_backend());
  ASSIGN_OR_RETURN(daemon->wal_,
                   DeltaWal::Open(daemon->wal_path_, daemon->schema_digest_,
                                  replay.last_sequence + 1));

  // The incremental identify state starts cold either way; the reason
  // distinguishes "this daemon healed from durable state" (the chaos tests
  // assert the first post-recovery identify is a full sweep) from a truly
  // empty start.
  daemon->ibs_state_.Invalidate(
      had_checkpoint || replay.records_applied > 0 ? "recovery"
                                                   : "cold_start");

  {
    std::lock_guard<std::mutex> engine_lock(daemon->engine_mu_);
    daemon->PublishSnapshot();
  }
  daemon->apply_thread_ = std::thread(&ServeDaemon::ApplyLoop, daemon.get());
  if (options.auto_remedy) {
    daemon->remedy_thread_ =
        std::thread(&ServeDaemon::RemedyLoop, daemon.get());
  }
  return daemon;
}

ServeDaemon::~ServeDaemon() {
  const Status stopped = Stop();  // shutdown errors surfaced via Stop()
  (void)stopped;
}

Status ServeDaemon::IngestCsv(const std::string& csv_text) {
  REMEDY_FAULT_POINT("serve/ingest");
  ASSIGN_OR_RETURN(CsvTable table, ParseCsv(csv_text));
  return IngestTable(table);
}

Status ServeDaemon::IngestCsvFile(const std::string& path) {
  REMEDY_FAULT_POINT("serve/ingest");
  ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  return IngestTable(table).WithContext("ingesting '" + path + "'");
}

Status ServeDaemon::IngestTable(const CsvTable& table) {
  // Resolve the batch's columns: every protected attribute plus the label,
  // by name; an optional "__count" column weights each row.
  const int num_protected = schema_.NumProtected();
  std::vector<int> value_cols(num_protected, -1);
  int label_col = -1;
  int count_col = -1;
  for (size_t c = 0; c < table.header.size(); ++c) {
    const std::string& name = table.header[c];
    if (name == schema_.label_name()) {
      label_col = static_cast<int>(c);
      continue;
    }
    if (name == "__count") {
      count_col = static_cast<int>(c);
      continue;
    }
    for (int p = 0; p < num_protected; ++p) {
      if (name == schema_.attribute(schema_.protected_indices()[p]).name()) {
        value_cols[p] = static_cast<int>(c);
      }
    }
  }
  if (label_col < 0) {
    return InvalidArgumentError("batch header lacks the label column '" +
                                schema_.label_name() + "'");
  }
  for (int p = 0; p < num_protected; ++p) {
    if (value_cols[p] < 0) {
      return InvalidArgumentError(
          "batch header lacks protected attribute '" +
          schema_.attribute(schema_.protected_indices()[p]).name() + "'");
    }
  }

  // Aggregate rows into per-leaf-key deltas. Any bad row rejects the whole
  // batch before anything is queued.
  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> aggregate;
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const std::vector<std::string>& row = table.rows[r];
    uint64_t key = 0;
    for (int p = 0; p < num_protected; ++p) {
      const AttributeSchema& attribute =
          schema_.attribute(schema_.protected_indices()[p]);
      const int code = attribute.ValueIndex(row[value_cols[p]]);
      if (code < 0) {
        return InvalidArgumentError(
            "batch row " + std::to_string(r + 1) + ": unknown value '" +
            row[value_cols[p]] + "' for protected attribute '" +
            attribute.name() + "'");
      }
      key = key * static_cast<uint64_t>(counter_.Cardinality(p)) +
            static_cast<uint64_t>(code);
    }
    const std::string& label = row[label_col];
    if (label != "0" && label != "1") {
      return InvalidArgumentError("batch row " + std::to_string(r + 1) +
                                  ": label must be 0 or 1, got '" + label +
                                  "'");
    }
    int64_t count = 1;
    if (count_col >= 0) {
      const std::string& text = row[count_col];
      char* end = nullptr;
      errno = 0;
      count = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return InvalidArgumentError("batch row " + std::to_string(r + 1) +
                                    ": bad __count '" + text + "'");
      }
    }
    auto& [positives, negatives] = aggregate[key];
    if (label == "1") {
      positives += count;
    } else {
      negatives += count;
    }
  }
  std::vector<Hierarchy::LeafDelta> deltas;
  deltas.reserve(aggregate.size());
  for (const auto& [key, counts] : aggregate) {
    if (counts.first == 0 && counts.second == 0) continue;
    deltas.push_back({key, counts.first, counts.second});
  }
  // Deterministic batch content regardless of hash order.
  std::sort(deltas.begin(), deltas.end(),
            [](const Hierarchy::LeafDelta& a, const Hierarchy::LeafDelta& b) {
              return a.leaf_key < b.leaf_key;
            });
  return Submit(std::move(deltas));
}

Status ServeDaemon::Submit(std::vector<Hierarchy::LeafDelta> deltas) {
  if (deltas.empty()) return OkStatus();
  int64_t rows = 0;
  for (const Hierarchy::LeafDelta& delta : deltas) {
    rows += std::abs(delta.delta_positives) + std::abs(delta.delta_negatives);
  }
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || stopped_) {
    metrics.serve_batches_rejected->Increment();
    return InternalError("daemon is shutting down");
  }
  if (read_only_) {
    metrics.serve_batches_rejected->Increment();
    return InternalError("daemon is read-only: " + trip_reason_);
  }
  if (queue_.size() >= options_.queue_capacity) {
    metrics.serve_batches_rejected->Increment();
    return ResourceExhaustedError(
        "ingest queue full (" + std::to_string(options_.queue_capacity) +
        " batches); retry after " + std::to_string(options_.retry_after_ms) +
        "ms");
  }
  Batch batch;
  batch.deltas = std::move(deltas);
  queue_.push_back(std::move(batch));
  ++submitted_batches_;
  metrics.serve_batches_ingested->Increment();
  metrics.serve_rows_ingested->Increment(rows);
  metrics.serve_queue_depth->Set(static_cast<int64_t>(queue_.size()));
  work_cv_.notify_one();
  return OkStatus();
}

Status ServeDaemon::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t target = submitted_batches_;
  drain_cv_.wait(lock, [&] {
    return processed_batches_ >= target || stopped_;
  });
  return first_error_;
}

void ServeDaemon::ApplyLoop() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  while (true) {
    std::vector<Batch> group;
    bool tripped = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and drained
      tripped = read_only_;
      while (!queue_.empty()) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics.serve_queue_depth->Set(0);
    }
    if (tripped) {
      // Batches that slipped into the queue while a trip was in flight
      // (Submit raced CommitGroup's TripReadOnly) must not commit:
      // appending would strand records behind a torn tail, and applying
      // would advance the lattice past the durable state. Drop them as
      // failed; only the trip on this thread sets read_only_, so this
      // drain-time check cannot itself race.
      metrics.serve_apply_failures->Increment(
          static_cast<int64_t>(group.size()));
      {
        std::lock_guard<std::mutex> lock(mu_);
        processed_batches_ += static_cast<int64_t>(group.size());
        failed_batches_ += static_cast<int64_t>(group.size());
        for (const Batch& batch : group) {
          if (batch.is_remedy) {
            remedy_results_[batch.ticket] = {
                InternalError("daemon is read-only: " + trip_reason_), 0};
          }
        }
      }
      drain_cv_.notify_all();
      continue;
    }
    const int64_t start_ns = NowNanos();
    int64_t applied = 0;
    uint64_t post_epoch = 0;
    Status committed;
    std::vector<std::pair<uint64_t, Status>> remedy_outcomes;
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      committed = CommitGroup(group, &applied, &remedy_outcomes);
      // External ingest refills the auto-remedy round budget. The refill
      // must precede PublishSnapshot: the publish below may consume a
      // round for the epoch this very ingest produced, and refilling
      // afterwards would hand the loop one free round over the budget.
      int64_t committed_remedies = 0;
      for (const auto& [ticket, status] : remedy_outcomes) {
        if (status.ok()) ++committed_remedies;
      }
      if (applied > committed_remedies) {
        std::lock_guard<std::mutex> lock(mu_);
        auto_remedy_rounds_ = 0;
      }
      PublishSnapshot();
      post_epoch = epoch_;
      bool lagging;
      {
        std::lock_guard<std::mutex> lock(mu_);
        lagging = needs_recovery_;
      }
      if (committed.ok() && !lagging &&
          options_.checkpoint_every_batches > 0 &&
          batches_since_checkpoint_ >= options_.checkpoint_every_batches) {
        committed = CheckpointLocked();
      }
    }
    metrics.serve_apply_ns->Observe(NowNanos() - start_ns);
    {
      std::lock_guard<std::mutex> lock(mu_);
      processed_batches_ += static_cast<int64_t>(group.size());
      applied_batches_ += applied;
      failed_batches_ += static_cast<int64_t>(group.size()) - applied;
      if (!committed.ok() && first_error_.ok()) first_error_ = committed;
      // Resolve every remedy ticket of this group. A ticket CommitGroup
      // never reached (a group-level WAL failure returned early) fails
      // with that error; its record may still be durable, which recovery
      // reconciles like any other committed-but-unapplied batch.
      for (const auto& [ticket, status] : remedy_outcomes) {
        if (status.ok()) {
          ++remedy_commits_;
          remedy_results_[ticket] = {status, post_epoch};
        } else {
          remedy_results_[ticket] = {status, 0};
        }
      }
      for (const Batch& batch : group) {
        if (batch.is_remedy &&
            remedy_results_.find(batch.ticket) == remedy_results_.end()) {
          remedy_results_[batch.ticket] = {
              committed.ok()
                  ? InternalError("remedy batch dropped by a group failure")
                  : committed,
              0};
        }
      }
    }
    drain_cv_.notify_all();
  }
}

void ServeDaemon::RemedyLoop() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      remedy_cv_.wait(lock, [&] { return stopping_ || remedy_pending_; });
      if (stopping_) break;
      remedy_pending_ = false;
      remedy_inflight_ = true;
    }
    metrics.remedy_backend_auto_triggers->Increment();
    // A stale or rejected round is not retried here: if the subgroup set
    // still warrants a remedy, the next identify epoch re-triggers it.
    const StatusOr<RemedyCommitResult> result = SubmitRemedy(remedy_params_);
    (void)result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      remedy_inflight_ = false;
    }
    remedy_cv_.notify_all();  // WaitRemedyIdle observers
  }
}

Status ServeDaemon::CommitGroup(
    const std::vector<Batch>& batches, int64_t* applied,
    std::vector<std::pair<uint64_t, Status>>* remedy_outcomes) {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  const uint32_t leaf_mask = hierarchy_->LeafMask();
  const NodeTable& leaf = hierarchy_->NodeCounts(leaf_mask);

  // Validate each batch against the lattice counts plus the net effect of
  // the earlier batches of this group, so nothing that would drive a
  // region negative is ever WAL-committed (a committed record must replay
  // cleanly forever). Each delta lands in the overlay as it is checked —
  // Submit does not require key-unique batches, and apply replays deltas
  // one by one, so a duplicate key (or a transient dip below zero) must be
  // caught here, not just the batch's net effect. A failed batch rolls its
  // accepted prefix back out of the overlay.
  auto validate = [&leaf](
      const std::vector<Hierarchy::LeafDelta>& batch,
      std::unordered_map<uint64_t, std::pair<int64_t, int64_t>>& overlay) {
    size_t accepted = 0;
    for (const Hierarchy::LeafDelta& delta : batch) {
      auto it = leaf.find(delta.leaf_key);
      const int64_t positives = it == leaf.end() ? 0 : it->second.positives;
      const int64_t negatives = it == leaf.end() ? 0 : it->second.negatives;
      auto& slot = overlay[delta.leaf_key];
      if (positives + slot.first + delta.delta_positives < 0 ||
          negatives + slot.second + delta.delta_negatives < 0) {
        for (size_t i = 0; i < accepted; ++i) {
          auto& undo = overlay[batch[i].leaf_key];
          undo.first -= batch[i].delta_positives;
          undo.second -= batch[i].delta_negatives;
        }
        return false;
      }
      slot.first += delta.delta_positives;
      slot.second += delta.delta_negatives;
      ++accepted;
    }
    return true;
  };

  std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> overlay;
  std::vector<std::pair<const Batch*, uint64_t>> committed;
  // The sequence a remedy planned at this instant would have pinned:
  // everything already durable plus the batches appended ahead of it in
  // this group. A remedy whose pin is older has raced an ingest commit.
  uint64_t projected = last_committed_sequence_;
  for (const Batch& batch : batches) {
    if (batch.is_remedy && batch.pinned_sequence != projected) {
      // Stale plan: a batch committed after the snapshot the remedy was
      // planned from, so its deltas describe counts that no longer exist.
      // Reject before anything is durable — the caller re-plans against
      // the newer epoch. This is what keeps remedy monotonic with ingest.
      metrics.serve_apply_failures->Increment();
      metrics.remedy_backend_stale_plans->Increment();
      remedy_outcomes->emplace_back(
          batch.ticket,
          ResourceExhaustedError(
              "remedy plan is stale: pinned WAL sequence " +
              std::to_string(batch.pinned_sequence) + " but ingest is at " +
              std::to_string(projected) + "; re-plan and retry"));
      continue;
    }
    if (!validate(batch.deltas, overlay)) {
      // The batch would underflow a region: reject it (it was never
      // durable) and keep going — one bad client batch must not wedge the
      // daemon.
      metrics.serve_apply_failures->Increment();
      if (batch.is_remedy) {
        remedy_outcomes->emplace_back(
            batch.ticket,
            InternalError("remedy plan would underflow a region"));
      }
      continue;
    }
    StatusOr<uint64_t> sequence = wal_->Append(batch.deltas);
    if (!sequence.ok()) {
      // The log may now end in torn bytes; appending more would strand
      // records behind the tear, so stop taking writes until a restart
      // replays and repairs the log.
      metrics.serve_apply_failures->Increment();
      TripReadOnly("WAL append failed: " + sequence.status().message(),
                   /*lattice_lags_log=*/true);
      return sequence.status();
    }
    committed.emplace_back(&batch, sequence.value());
    projected = sequence.value();
  }
  if (committed.empty()) return OkStatus();
  Status synced = wal_->Sync();
  if (!synced.ok()) {
    // Unknown durability: the records may or may not survive a crash. Do
    // not apply them — keeping the in-memory lattice at or behind the
    // durable state is what lets a restart heal by replay alone.
    metrics.serve_apply_failures->Increment();
    TripReadOnly("WAL fsync failed: " + synced.message(),
                 /*lattice_lags_log=*/true);
    return synced;
  }
  for (const auto& [batch, sequence] : committed) {
    int attempts = 0;
    while (true) {
      Status stage = [&]() -> Status {
        REMEDY_FAULT_POINT("serve/apply");
        return OkStatus();
      }();
      if (stage.ok()) break;
      metrics.serve_apply_failures->Increment();
      if (++attempts >= options_.watchdog_trip_threshold) {
        // The record is durable but not in the lattice: serve stale reads
        // only, and let the next start replay the log to heal.
        TripReadOnly("lattice apply failed " + std::to_string(attempts) +
                         " times: " + stage.message(),
                     /*lattice_lags_log=*/true);
        return stage;
      }
    }
    hierarchy_->ApplyDeltas(batch->deltas, /*insert_missing=*/true);
    leaf_census_stale_ = true;
    last_committed_sequence_ = sequence;
    ++batches_since_checkpoint_;
    ++*applied;
    metrics.serve_batches_applied->Increment();
    if (batch->is_remedy) {
      metrics.remedy_backend_streaming_commits->Increment();
      remedy_outcomes->emplace_back(batch->ticket, OkStatus());
    }
  }
  return OkStatus();
}

void ServeDaemon::PublishSnapshot() {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  ++epoch_;
  const bool identify =
      options_.identify_every_epochs > 0 &&
      (last_ibs_epoch_ == 0 ||
       epoch_ % static_cast<uint64_t>(options_.identify_every_epochs) == 0);
  if (identify) {
    std::vector<BiasedRegion> ibs;
    if (options_.identify_mode == IdentifyMode::kIncremental) {
      // Bit-identical to the full sweep below (see IncrementalIbsState);
      // only the cost moves. The state self-falls-back to a full pass on
      // cold cache, recovery, or anything it cannot prove incremental.
      ibs = ibs_state_.Identify(*hierarchy_, options_.ibs);
      const IncrementalIdentifyStats& st = ibs_state_.last_stats();
      std::lock_guard<std::mutex> lock(mu_);
      identify_health_.last_incremental = st.incremental;
      identify_health_.dirty_leaves = st.dirty_leaves;
      identify_health_.rescored_regions = st.rescored_regions;
      identify_health_.cached_regions = st.cached_regions;
      identify_health_.fallback_reason = ibs_state_.last_fallback_reason();
    } else {
      for (uint32_t mask : ScopeMasks(*hierarchy_, options_.ibs.scope)) {
        std::vector<BiasedRegion> in_node =
            IdentifyIbsInNode(*hierarchy_, mask, options_.ibs);
        ibs.insert(ibs.end(), in_node.begin(), in_node.end());
      }
    }
    // The online monitor: digest the identified subgroup set (node mask +
    // region key per subgroup) and flag epoch-over-epoch changes.
    uint64_t digest = 0xcbf29ce484222325ull;
    for (const BiasedRegion& region : ibs) {
      const uint32_t mask = region.pattern.DeterministicMask();
      uint8_t bytes[12];
      for (int i = 0; i < 4; ++i) bytes[i] = (mask >> (8 * i)) & 0xff;
      const uint64_t key = counter_.KeyFor(region.pattern, mask);
      for (int i = 0; i < 8; ++i) bytes[4 + i] = (key >> (8 * i)) & 0xff;
      digest = Fnv1a64(bytes, sizeof(bytes), digest);
    }
    if (last_ibs_epoch_ != 0 && digest != last_ibs_digest_) {
      monitor_alerts_.fetch_add(1, std::memory_order_relaxed);
      metrics.serve_monitor_alerts->Increment();
    }
    last_ibs_ = std::move(ibs);
    last_ibs_digest_ = digest;
    last_ibs_epoch_ = epoch_;
  }

  auto snapshot = std::make_shared<EpochSnapshot>();
  snapshot->epoch = epoch_;
  snapshot->wal_sequence = last_committed_sequence_;
  snapshot->totals = hierarchy_->TotalCounts();
  snapshot->counts_digest = hierarchy_->CountsDigest();
  snapshot->ibs = last_ibs_;
  snapshot->ibs_epoch = last_ibs_epoch_;
  if (RemedyEnabled()) {
    // Copy-on-write census: a publish with no committed leaf change (e.g. a
    // drained group whose batches all failed validation) shares the previous
    // epoch's table instead of deep-copying a potentially million-row
    // NodeTable. Snapshots only ever read it.
    if (leaf_census_stale_ || leaf_census_ == nullptr) {
      leaf_census_ = std::make_shared<const NodeTable>(
          hierarchy_->NodeCounts(hierarchy_->LeafMask()));
      leaf_census_stale_ = false;
    }
    snapshot->leaf_counts = leaf_census_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot->read_only = read_only_;
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = snapshot;
    ring_.push_back(snapshot);
    while (ring_.size() > kSnapshotRing) ring_.pop_front();
  }

  // The monitor policy hook: a freshly identified non-empty subgroup set
  // wakes the auto-remedy thread, bounded by a per-quiet-period round
  // budget (external ingest refills it). The trigger must come AFTER the
  // snapshot install above: the woken thread pins Snapshot(), and pinning
  // the previous epoch would plan against a census that predates the very
  // IBS that fired. A round that commits publishes a new epoch, which
  // re-identifies and may trigger the next round; a round that plans
  // nothing publishes nothing, so the loop converges.
  if (options_.auto_remedy && identify && !last_ibs_.empty()) {
    bool trigger = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!read_only_ && !stopping_ && !remedy_pending_ &&
          auto_remedy_rounds_ < options_.auto_remedy_max_rounds) {
        remedy_pending_ = true;
        ++auto_remedy_rounds_;
        trigger = true;
      }
    }
    if (trigger) remedy_cv_.notify_all();
  }
  metrics.serve_epochs_published->Increment();
}

StatusOr<RemedyCommitResult> ServeDaemon::SubmitRemedy(
    const RemedyParams& params) {
  return SubmitRemedy(params, nullptr);
}

StatusOr<RemedyCommitResult> ServeDaemon::SubmitRemedy(
    const RemedyParams& params,
    std::shared_ptr<const EpochSnapshot> pinned) {
  if (!RemedyEnabled()) {
    return InvalidArgumentError(
        "remedy is disabled; start the daemon with "
        "ServeOptions::enable_remedy (or auto_remedy)");
  }
  if (pinned == nullptr) pinned = Snapshot();
  if (pinned->leaf_counts == nullptr) {
    return InvalidArgumentError(
        "pinned snapshot carries no leaf counts (epoch " +
        std::to_string(pinned->epoch) + " predates enable_remedy)");
  }

  // Plan on the calling thread against the pinned, immutable cut: the
  // apply thread keeps committing ingest while this runs.
  const std::unique_ptr<RemedyBackend> backend =
      RemedyBackend::Create(options_.remedy_backend);
  RemedySource source;
  source.schema = &schema_;
  source.leaf_counts = pinned->leaf_counts.get();
  ASSIGN_OR_RETURN(RemedyDeltaPlan plan,
                   backend->PlanDeltas(source, params));

  RemedyCommitResult result;
  result.planned_epoch = pinned->epoch;
  result.pinned_sequence = pinned->wal_sequence;
  result.stats = plan.stats;
  result.deltas = plan.deltas.size();
  if (plan.deltas.empty()) return result;  // nothing to commit

  uint64_t ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || stopped_) {
      PipelineMetrics::Get().serve_batches_rejected->Increment();
      return InternalError("daemon is shutting down");
    }
    if (read_only_) {
      PipelineMetrics::Get().serve_batches_rejected->Increment();
      return InternalError("daemon is read-only: " + trip_reason_);
    }
    if (queue_.size() >= options_.queue_capacity) {
      PipelineMetrics::Get().serve_batches_rejected->Increment();
      return ResourceExhaustedError(
          "ingest queue full (" + std::to_string(options_.queue_capacity) +
          " batches); retry after " +
          std::to_string(options_.retry_after_ms) + "ms");
    }
    ticket = next_ticket_++;
    Batch batch;
    batch.deltas = std::move(plan.deltas);
    batch.is_remedy = true;
    batch.pinned_sequence = pinned->wal_sequence;
    batch.ticket = ticket;
    queue_.push_back(std::move(batch));
    ++submitted_batches_;
    PipelineMetrics::Get().serve_queue_depth->Set(
        static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();

  RemedyOutcome outcome;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] {
      return remedy_results_.find(ticket) != remedy_results_.end() ||
             stopped_;
    });
    auto it = remedy_results_.find(ticket);
    if (it == remedy_results_.end()) {
      return InternalError("daemon stopped before the remedy resolved");
    }
    outcome = std::move(it->second);
    remedy_results_.erase(it);
  }
  RETURN_IF_ERROR(outcome.status);
  result.committed = true;
  result.applied_epoch = outcome.epoch;
  return result;
}

void ServeDaemon::WaitRemedyIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  remedy_cv_.wait(lock, [&] {
    return stopping_ || stopped_ ||
           (!remedy_pending_ && !remedy_inflight_);
  });
}

int64_t ServeDaemon::remedy_commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remedy_commits_;
}

std::shared_ptr<const EpochSnapshot> ServeDaemon::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const EpochSnapshot> ServeDaemon::SnapshotAt(
    uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  for (const auto& snapshot : ring_) {
    if (snapshot->epoch == epoch) return snapshot;
  }
  return nullptr;
}

std::vector<BiasedRegion> ServeDaemon::QueryIbs() const {
  PipelineMetrics::Get().serve_queries_served->Increment();
  return Snapshot()->ibs;
}

std::string ServeDaemon::HealthJson() const {
  const std::shared_ptr<const EpochSnapshot> snapshot = Snapshot();
  size_t queue_depth;
  int64_t submitted, applied, failed, remedy_commits;
  bool is_read_only, lagging;
  std::string reason;
  IdentifyHealth identify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    submitted = submitted_batches_;
    applied = applied_batches_;
    failed = failed_batches_;
    remedy_commits = remedy_commits_;
    is_read_only = read_only_;
    lagging = needs_recovery_;
    reason = trip_reason_;
    identify = identify_health_;
  }
  std::string json = "{";
  json += "\"status\":\"" +
          std::string(is_read_only ? "read_only" : "serving") + "\",";
  // Backend identity first, so operators can correlate this report with
  // the recovery and parity guarantees of docs/SERVICE.md + docs/REMEDY.md.
  json += "\"counting_backend\":\"" + std::string(counting_backend_name_) +
          "\",";
  json += "\"remedy_backend\":\"" +
          std::string(RemedyEnabled()
                          ? RemedyBackendName(options_.remedy_backend)
                          : "disabled") +
          "\",";
  json += "\"auto_remedy\":" +
          std::string(options_.auto_remedy ? "true" : "false") + ",";
  json += "\"remedy_commits\":" + std::to_string(remedy_commits) + ",";
  json += "\"epoch\":" + std::to_string(snapshot->epoch) + ",";
  json += "\"wal_sequence\":" + std::to_string(snapshot->wal_sequence) + ",";
  json += "\"counts_digest\":" + std::to_string(snapshot->counts_digest) +
          ",";
  json += "\"totals\":{\"positives\":" +
          std::to_string(snapshot->totals.positives) +
          ",\"negatives\":" + std::to_string(snapshot->totals.negatives) +
          "},";
  json += "\"ibs_regions\":" + std::to_string(snapshot->ibs.size()) + ",";
  json += "\"ibs_epoch\":" + std::to_string(snapshot->ibs_epoch) + ",";
  json += "\"monitor_alerts\":" +
          std::to_string(monitor_alerts_.load(std::memory_order_relaxed)) +
          ",";
  json += "\"queue_depth\":" + std::to_string(queue_depth) + ",";
  json += "\"queue_capacity\":" + std::to_string(options_.queue_capacity) +
          ",";
  json += "\"batches\":{\"submitted\":" + std::to_string(submitted) +
          ",\"applied\":" + std::to_string(applied) +
          ",\"failed\":" + std::to_string(failed) + "},";
  json += "\"read_only\":" + std::string(is_read_only ? "true" : "false") +
          ",";
  json += "\"needs_recovery\":" + std::string(lagging ? "true" : "false") +
          ",";
  json += "\"trip_reason\":\"" + EscapeJson(reason) + "\",";
  json += "\"identify_mode\":\"" +
          std::string(options_.identify_mode == IdentifyMode::kIncremental
                          ? "incremental"
                          : "full") +
          "\",";
  json += "\"identify\":{\"last_epoch_incremental\":" +
          std::string(identify.last_incremental ? "true" : "false") +
          ",\"dirty_leaves\":" + std::to_string(identify.dirty_leaves) +
          ",\"rescored_regions\":" +
          std::to_string(identify.rescored_regions) +
          ",\"cached_regions\":" + std::to_string(identify.cached_regions) +
          ",\"fallback_reason\":\"" + EscapeJson(identify.fallback_reason) +
          "\"},";
  json += "\"metrics\":" +
          MetricsToJson(MetricsRegistry::Global().Snapshot());
  json += "}";
  return json;
}

bool ServeDaemon::read_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_only_;
}

bool ServeDaemon::needs_recovery() const {
  std::lock_guard<std::mutex> lock(mu_);
  return needs_recovery_;
}

uint64_t ServeDaemon::epoch() const { return Snapshot()->epoch; }

void ServeDaemon::TripReadOnly(const std::string& why,
                               bool lattice_lags_log) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!read_only_) {
    read_only_ = true;
    trip_reason_ = why;
    PipelineMetrics::Get().serve_read_only_trips->Increment();
  }
  if (lattice_lags_log) needs_recovery_ = true;
}

Status ServeDaemon::CheckpointLocked() {
  // A Start that failed mid-recovery destructs before the WAL handle (or
  // even the lattice) exists; there is nothing to cut yet.
  if (wal_ == nullptr || hierarchy_ == nullptr) return OkStatus();
  RETURN_IF_ERROR(wal_->Sync());
  WalCheckpoint checkpoint;
  checkpoint.schema_digest = schema_digest_;
  checkpoint.epoch = epoch_;
  checkpoint.wal_sequence = last_committed_sequence_;
  checkpoint.leaf_counts = hierarchy_->NodeCounts(hierarchy_->LeafMask());
  checkpoint.totals = hierarchy_->TotalCounts();
  RETURN_IF_ERROR(WriteWalCheckpoint(checkpoint_path_, checkpoint));
  RETURN_IF_ERROR(wal_->Reset());
  batches_since_checkpoint_ = 0;
  return OkStatus();
}

Status ServeDaemon::Checkpoint() {
  std::lock_guard<std::mutex> engine_lock(engine_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (needs_recovery_) {
      return InternalError(
          "refusing to checkpoint: the lattice lags the WAL (" +
          trip_reason_ + "); restart to replay and heal");
    }
  }
  return CheckpointLocked();
}

Status ServeDaemon::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_started_) {
      // Another caller owns the shutdown sequence (joining a std::thread
      // from two threads is UB); wait for it and report the same result.
      drain_cv_.wait(lock, [&] { return stopped_; });
      return first_error_;
    }
    stop_started_ = true;
    stopping_ = true;
  }
  work_cv_.notify_all();
  remedy_cv_.notify_all();
  // The remedy thread first: it may be waiting inside SubmitRemedy for a
  // queued batch's outcome, which the still-running apply thread resolves
  // while draining.
  if (remedy_thread_.joinable()) remedy_thread_.join();
  if (apply_thread_.joinable()) apply_thread_.join();
  Status checkpointed = needs_recovery() ? OkStatus() : Checkpoint();
  Status result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    if (first_error_.ok() && !checkpointed.ok()) {
      first_error_ = checkpointed.WithContext("shutdown checkpoint");
    }
    result = first_error_;
  }
  drain_cv_.notify_all();
  return result;
}

}  // namespace remedy
