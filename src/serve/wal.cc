#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/pipeline_metrics.h"
#include "data/shard_file.h"

namespace remedy {
namespace {

// Little-endian scalar writes/reads, independent of host byte order (same
// helpers as the .rcs shard files keep privately).
void PutU32(std::vector<uint8_t>& out, size_t at, uint32_t value) {
  for (int i = 0; i < 4; ++i) out[at + i] = (value >> (8 * i)) & 0xff;
}

void PutU64(std::vector<uint8_t>& out, size_t at, uint64_t value) {
  for (int i = 0; i < 8; ++i) out[at + i] = (value >> (8 * i)) & 0xff;
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= uint32_t{data[i]} << (8 * i);
  return value;
}

uint64_t GetU64(const uint8_t* data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= uint64_t{data[i]} << (8 * i);
  return value;
}

// Log header field offsets.
constexpr size_t kLogOffMagic = 0;
constexpr size_t kLogOffVersion = 4;
constexpr size_t kLogOffSchemaDigest = 8;
// Bytes 16..24 are reserved (zero).
constexpr size_t kLogOffChecksum = 24;

// Frame field offsets.
constexpr size_t kFrameOffMagic = 0;
constexpr size_t kFrameOffNumDeltas = 4;
constexpr size_t kFrameOffSequence = 8;
constexpr size_t kFrameOffPayloadChecksum = 16;
constexpr size_t kFrameOffChecksum = 24;

// Checkpoint header field offsets.
constexpr size_t kCkptOffMagic = 0;
constexpr size_t kCkptOffVersion = 4;
constexpr size_t kCkptOffNumEntries = 8;
constexpr size_t kCkptOffEpoch = 16;
constexpr size_t kCkptOffWalSequence = 24;
constexpr size_t kCkptOffSchemaDigest = 32;
constexpr size_t kCkptOffPayloadBytes = 40;
constexpr size_t kCkptOffPayloadChecksum = 48;
constexpr size_t kCkptOffChecksum = 56;

// Caps a frame's declared delta count so a corrupt count can never drive a
// multi-gigabyte allocation before its checksum is even checked.
constexpr uint32_t kMaxDeltasPerRecord = uint32_t{1} << 24;

std::vector<uint8_t> EncodeLogHeader(uint64_t schema_digest) {
  std::vector<uint8_t> out(static_cast<size_t>(kWalHeaderBytes), 0);
  PutU32(out, kLogOffMagic, kWalFileMagic);
  PutU32(out, kLogOffVersion, kWalFileVersion);
  PutU64(out, kLogOffSchemaDigest, schema_digest);
  PutU64(out, kLogOffChecksum, Fnv1a64(out.data(), out.size()));
  return out;
}

// Validates the 32 header bytes of an existing log against `schema_digest`.
Status CheckLogHeader(const uint8_t* data, uint64_t schema_digest,
                      const std::string& path) {
  if (GetU32(data + kLogOffMagic) != kWalFileMagic) {
    return DataCorruptionError("bad WAL magic in '" + path + "'");
  }
  if (GetU32(data + kLogOffVersion) != kWalFileVersion) {
    return DataCorruptionError(
        "unsupported WAL version " +
        std::to_string(GetU32(data + kLogOffVersion)) + " in '" + path + "'");
  }
  std::vector<uint8_t> check(data, data + kWalHeaderBytes);
  const uint64_t expected = GetU64(data + kLogOffChecksum);
  PutU64(check, kLogOffChecksum, 0);
  if (Fnv1a64(check.data(), check.size()) != expected) {
    return DataCorruptionError("WAL header checksum mismatch in '" + path +
                               "'");
  }
  if (GetU64(data + kLogOffSchemaDigest) != schema_digest) {
    return InvalidArgumentError("WAL '" + path +
                                "' belongs to a different schema");
  }
  return OkStatus();
}

std::vector<uint8_t> EncodeRecord(
    uint64_t sequence, const std::vector<Hierarchy::LeafDelta>& deltas) {
  const size_t payload_bytes = deltas.size() * kWalDeltaBytes;
  std::vector<uint8_t> out(static_cast<size_t>(kWalFrameBytes) + payload_bytes,
                           0);
  size_t at = kWalFrameBytes;
  for (const Hierarchy::LeafDelta& delta : deltas) {
    PutU64(out, at, delta.leaf_key);
    PutU64(out, at + 8, static_cast<uint64_t>(delta.delta_positives));
    PutU64(out, at + 16, static_cast<uint64_t>(delta.delta_negatives));
    at += kWalDeltaBytes;
  }
  PutU32(out, kFrameOffMagic, kWalRecordMagic);
  PutU32(out, kFrameOffNumDeltas, static_cast<uint32_t>(deltas.size()));
  PutU64(out, kFrameOffSequence, sequence);
  PutU64(out, kFrameOffPayloadChecksum,
         Fnv1a64(out.data() + kWalFrameBytes, payload_bytes));
  PutU64(out, kFrameOffChecksum, Fnv1a64(out.data(), kWalFrameBytes));
  return out;
}

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return IoError("fsync of " + what + " failed: " + std::strerror(errno));
  }
  return OkStatus();
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoError("cannot open '" + path + "' to fsync: " +
                   std::strerror(errno));
  }
  Status synced = FsyncFd(fd, "'" + path + "'");
  ::close(fd);
  return synced;
}

// Truncates `path` to `size` bytes and syncs the truncation.
Status TruncateFile(const std::string& path, int64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return IoError("cannot truncate '" + path + "': " + std::strerror(errno));
  }
  return FsyncPath(path);
}

}  // namespace

DeltaWal::~DeltaWal() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<DeltaWal>> DeltaWal::Open(const std::string& path,
                                                   uint64_t schema_digest,
                                                   uint64_t next_sequence) {
  REMEDY_CHECK(next_sequence >= 1) << "WAL sequences are 1-based";
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  bool fresh = false;
  if (file == nullptr) {
    if (errno != ENOENT) {
      return IoError("cannot open WAL '" + path + "': " +
                     std::strerror(errno));
    }
    file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) {
      return IoError("cannot create WAL '" + path + "': " +
                     std::strerror(errno));
    }
    fresh = true;
  }
  if (!fresh) {
    uint8_t header[kWalHeaderBytes];
    const size_t read = std::fread(header, 1, sizeof(header), file);
    if (read < sizeof(header)) {
      // A crash during creation left fewer bytes than one header; nothing
      // in the file can have been acknowledged (the creation fsync happens
      // before the first append), so rewrite it as fresh.
      if (std::fseek(file, 0, SEEK_SET) != 0 ||
          ::ftruncate(::fileno(file), 0) != 0) {
        std::fclose(file);
        return IoError("cannot reset torn WAL '" + path + "'");
      }
      fresh = true;
    } else {
      Status valid = CheckLogHeader(header, schema_digest, path);
      if (!valid.ok()) {
        std::fclose(file);
        return valid;
      }
    }
  }
  if (fresh) {
    const std::vector<uint8_t> header = EncodeLogHeader(schema_digest);
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
        std::fflush(file) != 0) {
      std::fclose(file);
      return IoError("cannot write WAL header to '" + path + "'");
    }
    Status synced = FsyncFd(::fileno(file), "WAL '" + path + "'");
    if (!synced.ok()) {
      std::fclose(file);
      return synced;
    }
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return IoError("cannot seek to the end of WAL '" + path + "'");
  }
  return std::unique_ptr<DeltaWal>(
      new DeltaWal(file, path, schema_digest, next_sequence));
}

StatusOr<uint64_t> DeltaWal::Append(
    const std::vector<Hierarchy::LeafDelta>& deltas) {
  REMEDY_CHECK(file_ != nullptr);
  REMEDY_FAULT_POINT("wal/append");
  const std::vector<uint8_t> record = EncodeRecord(next_sequence_, deltas);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    // The log may now hold a torn record; recovery truncates it away.
    return IoError("short write appending to WAL '" + path_ + "'");
  }
  dirty_ = true;
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.wal_records_appended->Increment();
  metrics.wal_bytes_appended->Increment(static_cast<int64_t>(record.size()));
  return next_sequence_++;
}

Status DeltaWal::Sync() {
  REMEDY_CHECK(file_ != nullptr);
  if (!dirty_) return OkStatus();
  REMEDY_FAULT_POINT("wal/fsync");
  if (std::fflush(file_) != 0) {
    return IoError("cannot flush WAL '" + path_ + "': " +
                   std::strerror(errno));
  }
  RETURN_IF_ERROR(FsyncFd(::fileno(file_), "WAL '" + path_ + "'"));
  dirty_ = false;
  PipelineMetrics::Get().wal_syncs->Increment();
  return OkStatus();
}

Status DeltaWal::Reset() {
  REMEDY_CHECK(file_ != nullptr);
  if (std::fflush(file_) != 0 ||
      ::ftruncate(::fileno(file_), kWalHeaderBytes) != 0 ||
      std::fseek(file_, 0, SEEK_END) != 0) {
    return IoError("cannot reset WAL '" + path_ + "': " +
                   std::strerror(errno));
  }
  dirty_ = false;
  REMEDY_FAULT_POINT("wal/fsync");
  return FsyncFd(::fileno(file_), "WAL '" + path_ + "'");
}

StatusOr<WalReplayResult> DeltaWal::Replay(
    const std::string& path, uint64_t schema_digest, uint64_t min_sequence,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayResult result;
  result.last_sequence = min_sequence;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return result;  // no log yet: nothing to replay
    return IoError("cannot open WAL '" + path + "': " + std::strerror(errno));
  }
  uint8_t header[kWalHeaderBytes];
  const size_t header_read = std::fread(header, 1, sizeof(header), file);
  if (header_read < sizeof(header)) {
    // Torn creation: no record can have been acknowledged. Drop the file's
    // bytes; Open rewrites a fresh header.
    std::fclose(file);
    RETURN_IF_ERROR(TruncateFile(path, 0));
    result.tail_repaired = true;
    PipelineMetrics::Get().wal_torn_tails_repaired->Increment();
    return result;
  }
  {
    Status valid = CheckLogHeader(header, schema_digest, path);
    if (!valid.ok()) {
      std::fclose(file);
      return valid;
    }
  }

  int64_t valid_end = kWalHeaderBytes;  // file offset after the last good
                                        // record
  uint64_t prev_sequence = 0;
  bool torn = false;
  std::vector<uint8_t> payload;
  while (true) {
    uint8_t frame[kWalFrameBytes];
    const size_t frame_read = std::fread(frame, 1, sizeof(frame), file);
    if (frame_read == 0) break;  // clean end of log
    if (frame_read < sizeof(frame) ||
        GetU32(frame + kFrameOffMagic) != kWalRecordMagic) {
      torn = true;
      break;
    }
    {
      std::vector<uint8_t> check(frame, frame + kWalFrameBytes);
      const uint64_t expected = GetU64(frame + kFrameOffChecksum);
      PutU64(check, kFrameOffChecksum, 0);
      if (Fnv1a64(check.data(), check.size()) != expected) {
        torn = true;
        break;
      }
    }
    const uint32_t num_deltas = GetU32(frame + kFrameOffNumDeltas);
    if (num_deltas > kMaxDeltasPerRecord) {
      torn = true;
      break;
    }
    payload.resize(static_cast<size_t>(num_deltas) * kWalDeltaBytes);
    if (std::fread(payload.data(), 1, payload.size(), file) !=
            payload.size() ||
        Fnv1a64(payload.data(), payload.size()) !=
            GetU64(frame + kFrameOffPayloadChecksum)) {
      torn = true;
      break;
    }
    const uint64_t sequence = GetU64(frame + kFrameOffSequence);
    if (sequence <= prev_sequence) {
      // A torn tail cannot yield a checksum-valid record out of order; the
      // log itself is wrong.
      std::fclose(file);
      return DataCorruptionError(
          "WAL '" + path + "' sequence " + std::to_string(sequence) +
          " does not advance past " + std::to_string(prev_sequence));
    }
    prev_sequence = sequence;
    valid_end += static_cast<int64_t>(kWalFrameBytes + payload.size());
    if (sequence <= min_sequence) continue;  // the checkpoint covers it

    // The record is committed and uncovered: decode and apply.
    Status replayed = [&]() -> Status {
      REMEDY_FAULT_POINT("wal/replay");
      WalRecord record;
      record.sequence = sequence;
      record.deltas.resize(num_deltas);
      for (uint32_t i = 0; i < num_deltas; ++i) {
        const uint8_t* at = payload.data() + size_t{i} * kWalDeltaBytes;
        record.deltas[i].leaf_key = GetU64(at);
        record.deltas[i].delta_positives =
            static_cast<int64_t>(GetU64(at + 8));
        record.deltas[i].delta_negatives =
            static_cast<int64_t>(GetU64(at + 16));
      }
      return apply(record);
    }();
    if (!replayed.ok()) {
      std::fclose(file);
      return replayed.WithContext("replaying WAL '" + path + "' record " +
                                  std::to_string(sequence));
    }
    result.last_sequence = sequence;
    ++result.records_applied;
    PipelineMetrics::Get().wal_records_replayed->Increment();
  }
  std::fclose(file);
  if (torn) {
    RETURN_IF_ERROR(TruncateFile(path, valid_end));
    result.tail_repaired = true;
    PipelineMetrics::Get().wal_torn_tails_repaired->Increment();
  }
  return result;
}

Status WriteWalCheckpoint(const std::string& path,
                          const WalCheckpoint& checkpoint) {
  const size_t num_entries = checkpoint.leaf_counts.size();
  const size_t payload_bytes = num_entries * 24 + 16;
  std::vector<uint8_t> out(static_cast<size_t>(kCheckpointHeaderBytes) +
                               payload_bytes,
                           0);
  size_t at = kCheckpointHeaderBytes;
  for (const auto& [key, counts] : checkpoint.leaf_counts) {
    PutU64(out, at, key);
    PutU64(out, at + 8, static_cast<uint64_t>(counts.positives));
    PutU64(out, at + 16, static_cast<uint64_t>(counts.negatives));
    at += 24;
  }
  PutU64(out, at, static_cast<uint64_t>(checkpoint.totals.positives));
  PutU64(out, at + 8, static_cast<uint64_t>(checkpoint.totals.negatives));
  PutU32(out, kCkptOffMagic, kCheckpointMagic);
  PutU32(out, kCkptOffVersion, kCheckpointVersion);
  PutU64(out, kCkptOffNumEntries, num_entries);
  PutU64(out, kCkptOffEpoch, checkpoint.epoch);
  PutU64(out, kCkptOffWalSequence, checkpoint.wal_sequence);
  PutU64(out, kCkptOffSchemaDigest, checkpoint.schema_digest);
  PutU64(out, kCkptOffPayloadBytes, payload_bytes);
  PutU64(out, kCkptOffPayloadChecksum,
         Fnv1a64(out.data() + kCheckpointHeaderBytes, payload_bytes));
  PutU64(out, kCkptOffChecksum, Fnv1a64(out.data(), kCheckpointHeaderBytes));

  const std::string tmp = path + ".tmp";
  Status written = [&]() -> Status {
    REMEDY_FAULT_POINT("wal/append");
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      return IoError("cannot create checkpoint '" + tmp + "': " +
                     std::strerror(errno));
    }
    if (std::fwrite(out.data(), 1, out.size(), file) != out.size() ||
        std::fflush(file) != 0) {
      std::fclose(file);
      return IoError("short write to checkpoint '" + tmp + "'");
    }
    Status synced = [&]() -> Status {
      REMEDY_FAULT_POINT("wal/fsync");
      return FsyncFd(::fileno(file), "checkpoint '" + tmp + "'");
    }();
    std::fclose(file);
    RETURN_IF_ERROR(synced);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      return IoError("cannot rename checkpoint '" + tmp + "' over '" + path +
                     "': " + std::strerror(errno));
    }
    // Make the rename durable: sync the containing directory.
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    REMEDY_FAULT_POINT("wal/fsync");
    return FsyncPath(dir);
  }();
  if (!written.ok()) {
    std::remove(tmp.c_str());  // never leave a torn tmp behind
    return written;
  }
  PipelineMetrics::Get().wal_checkpoints->Increment();
  return OkStatus();
}

StatusOr<WalCheckpoint> ReadWalCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return IoError("cannot open checkpoint '" + path + "': " +
                   std::strerror(errno));
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> bytes(size > 0 ? static_cast<size_t>(size) : 0);
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (read != bytes.size() ||
      bytes.size() < static_cast<size_t>(kCheckpointHeaderBytes)) {
    return DataCorruptionError("checkpoint '" + path + "' is truncated");
  }
  const uint8_t* data = bytes.data();
  if (GetU32(data + kCkptOffMagic) != kCheckpointMagic) {
    return DataCorruptionError("bad checkpoint magic in '" + path + "'");
  }
  if (GetU32(data + kCkptOffVersion) != kCheckpointVersion) {
    return DataCorruptionError(
        "unsupported checkpoint version " +
        std::to_string(GetU32(data + kCkptOffVersion)) + " in '" + path +
        "'");
  }
  {
    std::vector<uint8_t> check(data, data + kCheckpointHeaderBytes);
    const uint64_t expected = GetU64(data + kCkptOffChecksum);
    PutU64(check, kCkptOffChecksum, 0);
    if (Fnv1a64(check.data(), check.size()) != expected) {
      return DataCorruptionError("checkpoint header checksum mismatch in '" +
                                 path + "'");
    }
  }
  const uint64_t num_entries = GetU64(data + kCkptOffNumEntries);
  const uint64_t payload_bytes = GetU64(data + kCkptOffPayloadBytes);
  // Derive the entry count bound from the bytes actually present before
  // trusting num_entries: checking `num_entries * 24 + 16` directly wraps
  // for a crafted header (~2^60 entries) whose checksum was recomputed,
  // and the decode loop would then read far past the buffer.
  const uint64_t capacity =
      static_cast<uint64_t>(bytes.size()) -
      static_cast<uint64_t>(kCheckpointHeaderBytes);
  if (payload_bytes != capacity || payload_bytes < 16 ||
      (payload_bytes - 16) % 24 != 0 ||
      num_entries != (payload_bytes - 16) / 24) {
    return DataCorruptionError("checkpoint '" + path +
                               "' payload size is inconsistent");
  }
  if (Fnv1a64(data + kCheckpointHeaderBytes, payload_bytes) !=
      GetU64(data + kCkptOffPayloadChecksum)) {
    return DataCorruptionError("checkpoint payload checksum mismatch in '" +
                               path + "'");
  }
  WalCheckpoint checkpoint;
  checkpoint.schema_digest = GetU64(data + kCkptOffSchemaDigest);
  checkpoint.epoch = GetU64(data + kCkptOffEpoch);
  checkpoint.wal_sequence = GetU64(data + kCkptOffWalSequence);
  std::vector<NodeTable::Entry> entries;
  entries.reserve(num_entries);
  const uint8_t* at = data + kCheckpointHeaderBytes;
  for (uint64_t i = 0; i < num_entries; ++i, at += 24) {
    RegionCounts counts;
    counts.positives = static_cast<int64_t>(GetU64(at + 8));
    counts.negatives = static_cast<int64_t>(GetU64(at + 16));
    if (counts.positives < 0 || counts.negatives < 0) {
      return DataCorruptionError("checkpoint '" + path +
                                 "' holds negative region counts");
    }
    entries.emplace_back(GetU64(at), counts);
  }
  checkpoint.leaf_counts = NodeTable(std::move(entries));
  checkpoint.totals.positives = static_cast<int64_t>(GetU64(at));
  checkpoint.totals.negatives = static_cast<int64_t>(GetU64(at + 8));
  if (checkpoint.totals.positives < 0 || checkpoint.totals.negatives < 0) {
    return DataCorruptionError("checkpoint '" + path +
                               "' holds negative totals");
  }
  return checkpoint;
}

}  // namespace remedy
