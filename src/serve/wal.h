#ifndef REMEDY_SERVE_WAL_H_
#define REMEDY_SERVE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/hierarchy.h"
#include "core/region_counter.h"
#include "data/schema.h"

namespace remedy {

// Write-ahead delta log + leaf-count checkpoints — the durability layer of
// the streaming fairness daemon (see docs/SERVICE.md).
//
// The daemon's persistent state is two files in one directory:
//
//   deltas.wal       append-only log of committed delta batches
//   checkpoint.rck   leaf NodeTable + totals as of some log position
//
// Commit protocol: a batch becomes durable by appending one framed record
// to the log and fsync'ing (group commit: many appends, one sync). Only
// after the sync does the batch touch the in-memory lattice, so a crash at
// any instant loses at most un-acked batches — never acknowledged ones —
// and replaying the log tail over the last checkpoint reconstructs the
// lattice byte-identically (Hierarchy::CountsDigest equality is the
// acceptance check; serve_chaos_test proves it for truncation at every
// byte offset).
//
// Checkpoints are written tmp + rename + fsync, then the log is reset. The
// checkpoint remembers the sequence of the last record it covers; replay
// skips records at or below it, so a crash between the rename and the log
// reset cannot double-apply.
//
// File formats (every value little-endian, FNV-1a 64 checksums, in the
// style of the .rcs shard files — see data/shard_file.h):
//
//   log    = [32-byte log header][record]...
//   record = [32-byte frame][num_deltas x 24-byte delta]
//   frame  = magic u32, num_deltas u32, sequence u64,
//            payload checksum u64, frame checksum u64 (self-zeroed)
//   delta  = leaf_key u64, delta_positives i64, delta_negatives i64
//
// A torn tail (crash mid-write) decodes as a short or checksum-failing
// frame or payload; Replay stops at the first invalid byte, truncates the
// file there, and reports how many committed records survived. Nothing
// after a torn record can be valid — records are written in order and the
// file is never overwritten in place — so stopping is safe, not lossy.

inline constexpr uint32_t kWalFileMagic = 0x4c415752u;    // "RWAL"
inline constexpr uint32_t kWalRecordMagic = 0x43525752u;  // "RWRC"
inline constexpr uint32_t kWalFileVersion = 1;
inline constexpr int64_t kWalHeaderBytes = 32;
inline constexpr int64_t kWalFrameBytes = 32;
inline constexpr int64_t kWalDeltaBytes = 24;

inline constexpr uint32_t kCheckpointMagic = 0x504b4352u;  // "RCKP"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr int64_t kCheckpointHeaderBytes = 64;

// One committed record, as handed to Replay's callback.
struct WalRecord {
  uint64_t sequence = 0;
  std::vector<Hierarchy::LeafDelta> deltas;
};

// What Replay found in a log.
struct WalReplayResult {
  uint64_t last_sequence = 0;  // highest sequence applied (0 when none)
  int64_t records_applied = 0;
  bool tail_repaired = false;  // a torn tail was truncated away
};

// The append-only delta log. Not thread-safe: the daemon funnels every
// append through its single apply thread.
class DeltaWal {
 public:
  DeltaWal(const DeltaWal&) = delete;
  DeltaWal& operator=(const DeltaWal&) = delete;
  ~DeltaWal();

  // Opens `path` for appending, creating it (with a fresh header) when
  // absent. An existing log must carry this schema digest; its committed
  // records are NOT validated here — call Replay first when recovering.
  // `next_sequence` numbers the first record this handle appends; pass
  // 1 + the replayed last_sequence (or 1 + the checkpoint's wal_sequence
  // when the log is empty).
  static StatusOr<std::unique_ptr<DeltaWal>> Open(const std::string& path,
                                                  uint64_t schema_digest,
                                                  uint64_t next_sequence);

  // Frames and buffers one record; returns its sequence. Durable only
  // after the next Sync(). Fault point "wal/append".
  StatusOr<uint64_t> Append(const std::vector<Hierarchy::LeafDelta>& deltas);

  // Group commit: flushes buffered appends and fsyncs the file. Fault
  // point "wal/fsync". No-op when nothing was appended since the last
  // sync.
  Status Sync();

  // Truncates the log back to its bare header after a checkpoint covering
  // every appended record; subsequent appends keep numbering from
  // next_sequence(). Syncs the truncation.
  Status Reset();

  // Sequence the next Append will be assigned.
  uint64_t next_sequence() const { return next_sequence_; }

  // Replays the committed records of `path` in order, invoking `apply` for
  // each record with sequence > `min_sequence` (checkpoint cut-off). A
  // torn tail is truncated off the file (repair); bytes that are invalid
  // for any other reason — bad header, foreign schema digest,
  // non-monotonic sequences — fail with kDataCorruption. A missing file
  // replays as zero records. Fault point "wal/replay" (per record).
  static StatusOr<WalReplayResult> Replay(
      const std::string& path, uint64_t schema_digest, uint64_t min_sequence,
      const std::function<Status(const WalRecord&)>& apply);

 private:
  DeltaWal(std::FILE* file, std::string path, uint64_t schema_digest,
           uint64_t next_sequence)
      : file_(file),
        path_(std::move(path)),
        schema_digest_(schema_digest),
        next_sequence_(next_sequence) {}

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t schema_digest_ = 0;
  uint64_t next_sequence_ = 1;
  bool dirty_ = false;  // appends since the last Sync
};

// A durable cut of the daemon's state: the leaf node's counts (every
// coarser node re-derives by exact rollups), the level-0 totals, the query
// epoch, and the WAL sequence the counts already include.
struct WalCheckpoint {
  uint64_t schema_digest = 0;
  uint64_t epoch = 0;
  uint64_t wal_sequence = 0;
  NodeTable leaf_counts;
  RegionCounts totals;
};

// Writes `checkpoint` atomically: serialize to `path`.tmp, fsync, rename
// over `path`, fsync the directory. A crash leaves either the old
// checkpoint or the new one, never a torn file. Fault points "wal/append"
// (the serialized write) and "wal/fsync" (both syncs).
Status WriteWalCheckpoint(const std::string& path,
                          const WalCheckpoint& checkpoint);

// Reads and fully validates `path` (header + payload checksums). A missing
// file is kIoError; the caller treats it as "cold start" when no daemon
// state exists yet.
StatusOr<WalCheckpoint> ReadWalCheckpoint(const std::string& path);

}  // namespace remedy

#endif  // REMEDY_SERVE_WAL_H_
