#include "core/ibs_identify.h"

#include <cmath>
#include <iterator>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/trace.h"

namespace remedy {

std::vector<uint32_t> ScopeMasks(const Hierarchy& hierarchy, IbsScope scope) {
  switch (scope) {
    case IbsScope::kLattice:
      return hierarchy.BottomUpMasks();
    case IbsScope::kLeaf:
      return {hierarchy.LeafMask()};
    case IbsScope::kTop: {
      std::vector<uint32_t> masks;
      for (int i = 0; i < hierarchy.NumProtected(); ++i) {
        masks.push_back(1u << i);
      }
      return masks;
    }
  }
  REMEDY_CHECK(false) << "unreachable scope";
  return {};
}

RegionVerdict ScoreRegion(Hierarchy& hierarchy,
                          NeighborhoodCalculator& neighborhood,
                          bool use_optimized, uint32_t mask, uint64_t key,
                          const RegionCounts& counts, const IbsParams& params,
                          BiasedRegion* out) {
  if (counts.Total() <= params.min_region_size) return RegionVerdict::kSkipped;
  Pattern pattern = hierarchy.counter().PatternFor(key, mask);
  RegionCounts neighbor_counts =
      use_optimized ? neighborhood.OptimizedNeighborCounts(pattern, counts)
                    : neighborhood.NaiveNeighborCounts(pattern);
  double ratio = ImbalanceScore(counts);
  double neighbor_ratio = ImbalanceScore(neighbor_counts);
  if (std::abs(ratio - neighbor_ratio) <= params.imbalance_threshold) {
    return RegionVerdict::kUnbiased;
  }
  *out = {std::move(pattern), counts, neighbor_counts, ratio, neighbor_ratio};
  return RegionVerdict::kBiased;
}

std::vector<BiasedRegion> IdentifyIbsInNode(Hierarchy& hierarchy,
                                            uint32_t mask,
                                            const IbsParams& params) {
  NeighborhoodCalculator neighborhood(hierarchy, params.distance_threshold);
  const bool use_optimized =
      params.algorithm == IbsAlgorithm::kOptimized &&
      neighborhood.SupportsOptimized(mask);

  // NodeTable iteration is already in ascending key order, so the sweep is
  // deterministic without re-sorting, and each entry carries its counts —
  // no second lookup per region.
  const NodeTable& node = hierarchy.NodeCounts(mask);
  std::vector<BiasedRegion> biased;
  // Batch the per-region tallies locally and publish once per node, so the
  // inner sweep costs no atomics.
  int64_t reuse = 0;
  int64_t naive = 0;
  for (const auto& [key, counts] : node) {
    BiasedRegion region;
    const RegionVerdict verdict = ScoreRegion(
        hierarchy, neighborhood, use_optimized, mask, key, counts, params,
        &region);
    if (verdict == RegionVerdict::kSkipped) continue;
    use_optimized ? ++reuse : ++naive;
    if (verdict == RegionVerdict::kBiased) {
      biased.push_back(std::move(region));
    }
  }
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.ibs_nodes_visited->Increment();
  metrics.ibs_hits->Increment(static_cast<int64_t>(biased.size()));
  if (reuse > 0) metrics.ibs_neighbor_reuse->Increment(reuse);
  if (naive > 0) metrics.ibs_neighbor_naive->Increment(naive);
  return biased;
}

namespace {

StatusOr<std::vector<BiasedRegion>> IdentifyWithHierarchy(
    Hierarchy& hierarchy, const IbsParams& params) {
  REMEDY_TRACE_SPAN("ibs/identify");
  hierarchy.SetCountingBackend(params.backend, params.backend_threads);
  // A spilled store maps its shard files here, so a missing or truncated
  // spill is a clean error from IdentifyIbs instead of a crash mid-count.
  RETURN_IF_ERROR(hierarchy.PrepareCounting());
  std::vector<BiasedRegion> ibs;
  for (uint32_t mask : ScopeMasks(hierarchy, params.scope)) {
    REMEDY_TRACE_SPAN_ARG("ibs/node", mask);
    std::vector<BiasedRegion> node_biased =
        IdentifyIbsInNode(hierarchy, mask, params);
    ibs.insert(ibs.end(), std::make_move_iterator(node_biased.begin()),
               std::make_move_iterator(node_biased.end()));
  }
  return ibs;
}

}  // namespace

StatusOr<std::vector<BiasedRegion>> IdentifyIbs(const Dataset& data,
                                                const IbsParams& params) {
  if (data.schema().NumProtected() == 0) {
    return InvalidArgumentError(
        "IBS identification needs protected attributes");
  }
  Hierarchy hierarchy(data);
  return IdentifyWithHierarchy(hierarchy, params);
}

StatusOr<std::vector<BiasedRegion>> IdentifyIbs(
    const ColumnarShardStore& store, const IbsParams& params) {
  if (store.schema().NumProtected() == 0) {
    return InvalidArgumentError(
        "IBS identification needs protected attributes");
  }
  Hierarchy hierarchy(store);
  return IdentifyWithHierarchy(hierarchy, params);
}

bool DominatesAnyBiasedRegion(const Pattern& pattern,
                              const std::vector<BiasedRegion>& ibs) {
  for (const BiasedRegion& region : ibs) {
    if (pattern.Dominates(region.pattern)) return true;
  }
  return false;
}

}  // namespace remedy
