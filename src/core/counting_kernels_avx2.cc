// AVX2 half of the counting kernels. This translation unit is the only one
// compiled with -mavx2 (when the toolchain supports it — see the
// REMEDY_COMPILE_AVX2 probe in src/CMakeLists.txt), so AVX2 instructions
// never leak into code that runs on pre-AVX2 hosts; the portable build
// compiles the stubs below instead. Whether the kernel may run is decided
// once per process from the CPU feature bits.
//
// The kernel is exact u32 integer arithmetic (mullo + add per attribute),
// so its output is bit-identical to ComputeShardKeysPortable — the
// cross-backend equivalence suite pins that on every test run.

#include "core/counting_kernels.h"

#include "common/check.h"

#if defined(REMEDY_COMPILE_AVX2)

#include <immintrin.h>

namespace remedy {

bool Avx2CountingAvailable() {
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
}

void ComputeShardKeysAvx2(const ColumnarShardStore::ShardView& shard,
                          const LeafKeyPlan& plan, int64_t row_begin,
                          int64_t count, uint32_t* keys) {
  REMEDY_DCHECK(plan.FitsU32());
  REMEDY_DCHECK(row_begin >= 0 && row_begin + count <= shard.num_rows);
  if (plan.positions.empty()) {
    for (int64_t i = 0; i < count; ++i) keys[i] = 0;
    return;
  }
  bool first = true;
  for (size_t p = 0; p < plan.positions.size(); ++p) {
    const ColumnarShardStore::ShardView::Column& column =
        shard.columns[plan.positions[p]];
    const __m256i stride = _mm256_set1_epi32(
        static_cast<int>(plan.strides[p]));
    const bool narrow = column.wide == nullptr;
    const uint8_t* codes8 = narrow ? column.narrow + row_begin : nullptr;
    const uint16_t* codes16 = narrow ? nullptr : column.wide + row_begin;
    int64_t i = 0;
    for (; i + 8 <= count; i += 8) {
      // 8 codes -> 8 u32 lanes; key lane += code * stride (exact in u32:
      // every partial sum is bounded by the final key < key_space <= 2^32).
      __m256i codes;
      if (narrow) {
        codes = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(codes8 + i)));
      } else {
        codes = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(codes16 + i)));
      }
      const __m256i term = _mm256_mullo_epi32(codes, stride);
      __m256i* slot = reinterpret_cast<__m256i*>(keys + i);
      if (first) {
        _mm256_storeu_si256(slot, term);
      } else {
        _mm256_storeu_si256(slot,
                            _mm256_add_epi32(_mm256_loadu_si256(slot), term));
      }
    }
    for (; i < count; ++i) {
      const uint32_t code = narrow ? codes8[i] : codes16[i];
      const uint32_t term = code * plan.strides[p];
      keys[i] = first ? term : keys[i] + term;
    }
    first = false;
  }
}

}  // namespace remedy

#else  // !REMEDY_COMPILE_AVX2

namespace remedy {

bool Avx2CountingAvailable() { return false; }

void ComputeShardKeysAvx2(const ColumnarShardStore::ShardView& shard,
                          const LeafKeyPlan& plan, int64_t row_begin,
                          int64_t count, uint32_t* keys) {
  // Unreachable by contract (Avx2CountingAvailable() is false), but keep a
  // correct fallback rather than a trap.
  ComputeShardKeysPortable(shard, plan, row_begin, count, keys);
}

}  // namespace remedy

#endif  // REMEDY_COMPILE_AVX2
