#include "core/hierarchy.h"

#include <bit>

#include "common/check.h"

namespace remedy {

Hierarchy::Hierarchy(const Dataset& data)
    : data_(&data), counter_(data.schema()) {}

const std::unordered_map<uint64_t, RegionCounts>& Hierarchy::NodeCounts(
    uint32_t mask) {
  REMEDY_CHECK(mask != 0 && (mask & ~LeafMask()) == 0)
      << "invalid node mask " << mask;
  auto it = node_cache_.find(mask);
  if (it == node_cache_.end()) {
    it = node_cache_.emplace(mask, counter_.CountNode(*data_, mask)).first;
  }
  return it->second;
}

const RegionCounts& Hierarchy::TotalCounts() {
  if (!total_valid_) {
    total_counts_ = counter_.DatasetCounts(*data_);
    total_valid_ = true;
  }
  return total_counts_;
}

std::vector<uint32_t> Hierarchy::ParentMasks(uint32_t mask) {
  std::vector<uint32_t> parents;
  for (uint32_t bits = mask; bits != 0;) {
    uint32_t low_bit = bits & (~bits + 1);
    uint32_t parent = mask & ~low_bit;
    if (parent != 0) parents.push_back(parent);
    bits &= ~low_bit;
  }
  return parents;
}

std::vector<uint32_t> Hierarchy::MasksAtLevel(int level) const {
  REMEDY_CHECK(level >= 1 && level <= NumProtected());
  std::vector<uint32_t> masks;
  const uint32_t leaf = LeafMask();
  for (uint32_t mask = 1; mask <= leaf; ++mask) {
    if (std::popcount(mask) == level) masks.push_back(mask);
  }
  return masks;
}

std::vector<uint32_t> Hierarchy::BottomUpMasks() const {
  std::vector<uint32_t> masks;
  for (int level = NumProtected(); level >= 1; --level) {
    std::vector<uint32_t> at_level = MasksAtLevel(level);
    masks.insert(masks.end(), at_level.begin(), at_level.end());
  }
  return masks;
}

void Hierarchy::Invalidate() {
  node_cache_.clear();
  total_valid_ = false;
}

}  // namespace remedy
