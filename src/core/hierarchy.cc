#include "core/hierarchy.h"

#include <bit>
#include <memory>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace remedy {

Hierarchy::Hierarchy(const Dataset& data)
    : data_(&data),
      counter_(data.schema()),
      backend_(CountingBackend::Create(CountingBackendKind::kScalar)) {}

Hierarchy::Hierarchy(const ColumnarShardStore& store)
    : store_(&store),
      counter_(store.schema()),
      backend_(CountingBackend::Create(CountingBackendKind::kScalar)) {}

Hierarchy::Hierarchy(const DataSchema& schema, NodeTable leaf_counts,
                     const RegionCounts& totals)
    : owned_schema_(std::make_unique<DataSchema>(schema)),
      counter_(*owned_schema_),
      backend_(CountingBackend::Create(CountingBackendKind::kScalar)) {
  node_cache_.emplace(LeafMask(), std::move(leaf_counts));
  total_counts_ = totals;
  total_valid_ = true;
}

const Dataset& Hierarchy::data() const {
  REMEDY_CHECK(data_ != nullptr)
      << "store-backed hierarchy has no row-oriented Dataset view";
  return *data_;
}

void Hierarchy::SetCountingBackend(CountingBackendKind kind, int threads) {
  if (kind != backend_kind_) {
    backend_ = CountingBackend::Create(kind);
    backend_kind_ = kind;
  }
  backend_threads_ = threads;
}

CountingSource Hierarchy::SourceForCounting() {
  CountingSource source{data_, store_};
  if (source.store == nullptr &&
      backend_kind_ != CountingBackendKind::kScalar) {
    // Columnar backend over a Dataset-backed hierarchy: re-encode once and
    // keep the store for later Invalidate()+rebuild rounds.
    if (owned_store_ == nullptr) {
      owned_store_ = std::make_unique<ColumnarShardStore>(
          ColumnarShardStore::FromDataset(*data_));
    }
    source.store = owned_store_.get();
  }
  return source;
}

Status Hierarchy::PrepareCounting() {
  const CountingSource source = SourceForCounting();
  if (source.store != nullptr) {
    return source.store->EnsureMapped();
  }
  return OkStatus();
}

const NodeTable& Hierarchy::NodeCounts(uint32_t mask) {
  REMEDY_CHECK(mask != 0 && (mask & ~LeafMask()) == 0)
      << "invalid node mask " << mask;
  auto it = node_cache_.find(mask);
  if (it == node_cache_.end()) {
    NodeTable table = BuildNode(mask);
    it = node_cache_.emplace(mask, std::move(table)).first;
  }
  return it->second;
}

NodeTable Hierarchy::BuildNode(uint32_t mask) {
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.lattice_nodes_built->Increment();
  if (mask == LeafMask()) {
    REMEDY_CHECK(data_ != nullptr || store_ != nullptr)
        << "count-seeded hierarchy lost its leaf table (Invalidate?) and "
           "has no row source to rescan";
    metrics.lattice_leaf_scans->Increment();
    return backend_->CountNode(SourceForCounting(), counter_, mask,
                               backend_threads_);
  }
  // Prefer any already-built child (one extra deterministic attribute);
  // otherwise recurse through the lowest missing position, terminating at
  // the leaf scan. Any child yields the same counts: rolling up a marginal
  // is exact whichever attribute order the projection takes.
  const uint32_t missing = LeafMask() & ~mask;
  for (uint32_t bits = missing; bits != 0; bits &= bits - 1) {
    const uint32_t child = mask | (bits & (~bits + 1));
    auto it = node_cache_.find(child);
    if (it != node_cache_.end()) {
      metrics.lattice_rollups->Increment();
      return counter_.RollUp(it->second, child, mask);
    }
  }
  metrics.lattice_rollups->Increment();
  const uint32_t child = mask | (missing & (~missing + 1));
  return counter_.RollUp(NodeCounts(child), child, mask);
}

namespace {

// Below this many nodes a level's rollups are cheaper than the pool
// round-trip that would fan them out.
constexpr size_t kMinNodesForParallelLevel = 8;

}  // namespace

Status Hierarchy::EagerBuild(int threads) {
  REMEDY_TRACE_SPAN("hierarchy/eager_build");
  RETURN_IF_ERROR(PrepareCounting());
  if (threads <= 0) threads = ThreadPool::DefaultThreads();
  {
    REMEDY_TRACE_SPAN_ARG("hierarchy/leaf_scan", NumProtected());
    NodeCounts(LeafMask());  // the one dataset scan
    TotalCounts();
  }
  if (NumProtected() == 1) {
    fully_built_ = true;
    return OkStatus();
  }

  // The pool is spun up only for the first level wide enough to feed it, so
  // a single-core host (or a narrow lattice) never pays thread start-up and
  // scheduling costs just to run the rollups inline anyway.
  std::unique_ptr<ThreadPool> pool;
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  for (int level = NumProtected() - 1; level >= 1; --level) {
    REMEDY_TRACE_SPAN_ARG("hierarchy/build_level", level);
    // Pre-insert this level's slots single-threaded so the parallel phase
    // never mutates the cache map — workers fill distinct, already-inserted
    // values and only read the fully-built level below.
    std::vector<std::pair<uint32_t, NodeTable*>> work;
    for (uint32_t mask : MasksAtLevel(level)) {
      auto [it, inserted] = node_cache_.try_emplace(mask);
      if (inserted) work.emplace_back(mask, &it->second);
    }
    metrics.lattice_nodes_built->Increment(static_cast<int64_t>(work.size()));
    metrics.lattice_rollups->Increment(static_cast<int64_t>(work.size()));
    auto build_one = [this, &work](int64_t i) {
      const uint32_t mask = work[i].first;
      // Fixed child choice (lowest missing position) keeps the build
      // independent of scheduling; every level-(L+1) superset exists.
      const uint32_t missing = LeafMask() & ~mask;
      const uint32_t child = mask | (missing & (~missing + 1));
      auto child_it = node_cache_.find(child);
      REMEDY_CHECK(child_it != node_cache_.end());
      *work[i].second = counter_.RollUp(child_it->second, child, mask);
    };
    if (threads == 1 || work.size() < kMinNodesForParallelLevel) {
      for (size_t i = 0; i < work.size(); ++i) build_one(i);
    } else {
      if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
      Status built =
          pool->ParallelFor(static_cast<int64_t>(work.size()), build_one);
      if (!built.ok()) {
        // The level's pre-inserted slots may hold empty tables; drop the
        // memo so nothing downstream reads a half-built lattice.
        Invalidate();
        return built.WithContext("EagerBuild level " + std::to_string(level));
      }
    }
  }
  fully_built_ = true;
  return OkStatus();
}

void Hierarchy::ApplyDeltas(const std::vector<LeafDelta>& deltas,
                            bool insert_missing) {
  REMEDY_CHECK(fully_built_ && total_valid_)
      << "ApplyDeltas requires a fully built hierarchy (call EagerBuild)";
  if (deltas.empty()) return;
  PipelineMetrics::Get().lattice_delta_rows->Increment(
      static_cast<int64_t>(deltas.size()));
  const uint32_t leaf = LeafMask();
  for (auto& [mask, table] : node_cache_) {
    std::unordered_set<uint64_t>* touched =
        dirty_tracking_ ? &dirty_.touched[mask] : nullptr;
    for (const LeafDelta& delta : deltas) {
      const uint64_t key = counter_.ProjectKey(delta.leaf_key, leaf, mask);
      if (touched != nullptr) touched->insert(key);
      if (insert_missing) {
        table.UpsertDelta(key, delta.delta_positives, delta.delta_negatives);
      } else {
        table.ApplyDelta(key, delta.delta_positives, delta.delta_negatives);
      }
    }
  }
  for (const LeafDelta& delta : deltas) {
    total_counts_.positives += delta.delta_positives;
    total_counts_.negatives += delta.delta_negatives;
  }
  if (dirty_tracking_) {
    for (const LeafDelta& delta : deltas) {
      dirty_.delta_positives += delta.delta_positives;
      dirty_.delta_negatives += delta.delta_negatives;
    }
  } else {
    // Untracked mutation: a dirty-set consumer can no longer trust its
    // cache against these counts.
    ++generation_;
  }
  REMEDY_CHECK(total_counts_.positives >= 0 && total_counts_.negatives >= 0)
      << "deltas drove the dataset totals negative";
}

void Hierarchy::ApplyDelta(const LeafDelta& delta) {
  ApplyDeltas(std::vector<LeafDelta>{delta});
}

uint64_t Hierarchy::CountsDigest() {
  REMEDY_CHECK(fully_built_ && total_valid_)
      << "CountsDigest requires a fully built hierarchy (call EagerBuild)";
  uint64_t digest = 14695981039346656037ull;
  auto mix = [&digest](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (value >> (8 * i)) & 0xff;
      digest *= 1099511628211ull;
    }
  };
  // node_cache_ is hash-ordered; walk the masks in the deterministic
  // bottom-up order instead so equal lattices always digest equal.
  for (uint32_t mask : BottomUpMasks()) {
    const auto it = node_cache_.find(mask);
    REMEDY_CHECK(it != node_cache_.end());
    mix(mask);
    mix(it->second.size());
    for (const auto& [key, counts] : it->second) {
      mix(key);
      mix(static_cast<uint64_t>(counts.positives));
      mix(static_cast<uint64_t>(counts.negatives));
    }
  }
  mix(static_cast<uint64_t>(total_counts_.positives));
  mix(static_cast<uint64_t>(total_counts_.negatives));
  return digest;
}

const RegionCounts& Hierarchy::TotalCounts() {
  if (!total_valid_) {
    if (data_ != nullptr) {
      total_counts_ = counter_.DatasetCounts(*data_);
    } else {
      total_counts_.positives = store_->PositiveCount();
      total_counts_.negatives = store_->NegativeCount();
    }
    total_valid_ = true;
  }
  return total_counts_;
}

std::vector<uint32_t> Hierarchy::ParentMasks(uint32_t mask) {
  std::vector<uint32_t> parents;
  for (uint32_t bits = mask; bits != 0;) {
    uint32_t low_bit = bits & (~bits + 1);
    uint32_t parent = mask & ~low_bit;
    if (parent != 0) parents.push_back(parent);
    bits &= ~low_bit;
  }
  return parents;
}

std::vector<uint32_t> Hierarchy::MasksAtLevel(int level) const {
  const int n = NumProtected();
  REMEDY_CHECK(level >= 1 && level <= n);
  if (level == n) return {LeafMask()};
  // Enumerate the C(n, level) masks directly with Gosper's hack: from each
  // combination, the next one in ascending numeric order is formed from its
  // lowest set bit `low` and the carry `ripple`. No scan over all 2^n masks.
  std::vector<uint32_t> masks;
  uint64_t mask = (uint64_t{1} << level) - 1;
  const uint64_t limit = LeafMask();
  while (mask <= limit) {
    masks.push_back(static_cast<uint32_t>(mask));
    const uint64_t low = mask & (~mask + 1);
    const uint64_t ripple = mask + low;
    mask = (((mask ^ ripple) >> 2) / low) | ripple;
  }
  return masks;
}

std::vector<uint32_t> Hierarchy::BottomUpMasks() const {
  std::vector<uint32_t> masks;
  for (int level = NumProtected(); level >= 1; --level) {
    std::vector<uint32_t> at_level = MasksAtLevel(level);
    masks.insert(masks.end(), at_level.begin(), at_level.end());
  }
  return masks;
}

void Hierarchy::Invalidate() {
  node_cache_.clear();
  // The owned columnar re-encoding mirrors the Dataset's rows, so a
  // dataset mutation invalidates it too.
  owned_store_.reset();
  total_valid_ = false;
  fully_built_ = false;
  // The rebuilt counts will not be described by the dirty set.
  dirty_.Clear();
  ++generation_;
}

}  // namespace remedy
