#ifndef REMEDY_CORE_RADIX_SORT_H_
#define REMEDY_CORE_RADIX_SORT_H_

#include <cstdint>
#include <vector>

#include "core/region_counter.h"

namespace remedy {

// LSD radix sort of NodeTable entries by region key, byte digits, stable.
//
// Region keys are dense mixed-radix packings, so their significant bytes
// are the low ones: the sort first finds the maximum key and only runs the
// counting passes that cover it (Adult's 135k-key leaf space sorts in 3
// passes; a comparison sort pays ~17 branchy compares per entry instead).
// Stability makes the result identical to std::stable_sort by key, which
// the equivalence property test pins.
void RadixSortByKey(std::vector<NodeTable::Entry>& entries);

// Entry count at which NodeTable switches from std::sort to the radix
// sort (below it, the counting-pass setup dominates).
inline constexpr size_t kRadixSortMinEntries = 512;

}  // namespace remedy

#endif  // REMEDY_CORE_RADIX_SORT_H_
