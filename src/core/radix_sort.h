#ifndef REMEDY_CORE_RADIX_SORT_H_
#define REMEDY_CORE_RADIX_SORT_H_

#include <cstdint>
#include <vector>

#include "core/region_counter.h"

namespace remedy {

// LSD radix sort of NodeTable entries by region key, byte digits, stable.
//
// Region keys are dense mixed-radix packings, so their significant bytes
// are the low ones: the sort first finds the maximum key and only runs the
// counting passes that cover it (Adult's 135k-key leaf space sorts in 3
// passes; a comparison sort pays ~17 branchy compares per entry instead).
// Stability makes the result identical to std::stable_sort by key, which
// the equivalence property test pins.
void RadixSortByKey(std::vector<NodeTable::Entry>& entries);

// Parallel variant for NodeTables that outgrow one core. The entries are
// first partitioned by their most significant key byte: per-thread chunk
// histograms, an exclusive prefix sum in (bucket-major, chunk-minor)
// order, and a scatter into disjoint destination ranges — chunk order
// within a bucket preserves input order, so the partition is stable.
// Each non-empty bucket is then LSD-sorted over the remaining low bytes
// independently on the thread pool, and the buckets already sit in
// ascending order, so no merge step exists at all. The output is the
// stable sort by key — byte-identical to RadixSortByKey and to
// std::stable_sort — for every thread count and every chunking.
// `threads` <= 0 means every usable CPU; small inputs and threads == 1
// fall back to the serial sort.
void RadixSortByKey(std::vector<NodeTable::Entry>& entries, int threads);

// Entry count at which NodeTable switches from std::sort to the radix
// sort (below it, the counting-pass setup dominates).
inline constexpr size_t kRadixSortMinEntries = 512;

// Entry count at which NodeTable hands unsorted input to the parallel
// radix sort instead of the serial one (given > 1 sort threads). Below
// it, partition + pool dispatch cost more than the passes they split.
inline constexpr size_t kParallelRadixSortMinEntries = size_t{1} << 16;

}  // namespace remedy

#endif  // REMEDY_CORE_RADIX_SORT_H_
