#ifndef REMEDY_CORE_PATTERN_H_
#define REMEDY_CORE_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace remedy {

// A pattern over the protected attributes X: a conjunction of
// attribute-value assignments where each element is either deterministic
// (a = v) or non-deterministic (a = X, "don't care").
//
// Positions are aligned with DataSchema::protected_indices(); a value of
// Pattern::kWildcard marks a non-deterministic element. A pattern denotes the
// region/subgroup of instances matching all deterministic elements (Sec. II).
class Pattern {
 public:
  static constexpr int kWildcard = -1;

  Pattern() = default;

  // All-wildcard pattern of the given arity (the level-0 "entire dataset").
  explicit Pattern(int arity) : values_(arity, kWildcard) {}

  // Pattern with explicit values; use kWildcard for non-deterministic slots.
  explicit Pattern(std::vector<int> values) : values_(std::move(values)) {}

  int Arity() const { return static_cast<int>(values_.size()); }
  int Value(int position) const { return values_[position]; }
  void SetValue(int position, int value) { values_[position] = value; }
  bool IsDeterministic(int position) const {
    return values_[position] != kWildcard;
  }

  // d: number of deterministic elements (the pattern's level).
  int NumDeterministic() const;

  // Bitmask with bit i set iff position i is deterministic. Identifies the
  // hierarchy node the pattern belongs to. Arity must be <= 32.
  uint32_t DeterministicMask() const;

  // True if `row` of `data` matches every deterministic element. Positions
  // map through data.schema().protected_indices().
  bool Matches(const Dataset& data, int row) const;

  // Dominance (Def. 2): true if `region` is dominated by this pattern, i.e.
  // this pattern can be obtained from region's by replacing deterministic
  // elements with wildcards. Every pattern dominates itself.
  bool Dominates(const Pattern& region) const;

  // True if both patterns have the same deterministic attribute set
  // (same hierarchy node).
  bool SameNode(const Pattern& other) const {
    return DeterministicMask() == other.DeterministicMask();
  }

  // Euclidean distance between two regions of the same node (Def. 4):
  // sqrt of the summed squared per-attribute distances. Dies if the patterns
  // are in different nodes (such regions are never neighbors).
  double Distance(const Pattern& other, const DataSchema& schema) const;

  // Human-readable form, e.g. "(age='25-45', race=Afr-Am)"; wildcards are
  // omitted as in the paper.
  std::string ToString(const DataSchema& schema) const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.values_ == b.values_;
  }

  // Lexicographic order for deterministic output.
  friend bool operator<(const Pattern& a, const Pattern& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<int> values_;
};

}  // namespace remedy

#endif  // REMEDY_CORE_PATTERN_H_
