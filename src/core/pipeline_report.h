#ifndef REMEDY_CORE_PIPELINE_REPORT_H_
#define REMEDY_CORE_PIPELINE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/remedy.h"
#include "data/dataset.h"

namespace remedy {

// Audit trail of one identify-and-remedy run: for every biased region found
// in the input, where its imbalance stood before the remedy, what the
// technique did about it, and where the region stands in the remedied data.
// This is the artifact a fairness review files next to the remedied dataset
// — remedy_cli --report prints it, --report-json serializes it.

// One biased region's before/after record.
struct RegionReportEntry {
  std::string region;         // human-readable pattern, wildcards omitted
  uint32_t node_mask = 0;     // hierarchy node of the region
  int64_t positives_before = 0;
  int64_t negatives_before = 0;
  double score_before = 0.0;    // ratio_r at identification time
  double neighbor_score = 0.0;  // ratio_rn, the target the remedy aimed at
  // The planned update (Def. 6). The committed change can be smaller when
  // the oversampling budget truncated it.
  int64_t planned_delta_positives = 0;
  int64_t planned_delta_negatives = 0;
  int64_t planned_flips = 0;
  bool reachable = true;  // false: the technique cannot hit the target
  // The region's state in the remedied dataset (exact recount).
  int64_t positives_after = 0;
  int64_t negatives_after = 0;
  double score_after = 0.0;
  bool improved = false;  // |score - neighbor| shrank
};

struct PipelineReport {
  std::string technique;
  std::string engine;
  uint64_t seed = 0;
  int64_t rows_before = 0;
  int64_t rows_after = 0;
  RemedyStats stats;  // committed row changes, region accounting
  std::vector<RegionReportEntry> regions;  // identification order
  int64_t regions_improved = 0;
  int64_t residual_ibs_size = 0;  // |IBS| of the remedied dataset

  // One JSON object (regions as an array, stats flattened in).
  std::string ToJson() const;
};

// Renders `report` as a human-readable summary plus a per-region table.
void PrintPipelineReport(const PipelineReport& report, std::ostream& out);

// Runs the full audited pipeline on `train`: identify the IBS, plan the
// per-region updates, remedy the dataset, then re-score every identified
// region against the remedied data. Returns the report and, when
// `remedied_out` is non-null, the remedied dataset itself.
StatusOr<PipelineReport> RunAuditedRemedy(const Dataset& train,
                                          const RemedyParams& params,
                                          Dataset* remedied_out = nullptr);

}  // namespace remedy

#endif  // REMEDY_CORE_PIPELINE_REPORT_H_
