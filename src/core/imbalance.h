#ifndef REMEDY_CORE_IMBALANCE_H_
#define REMEDY_CORE_IMBALANCE_H_

#include <cstdint>

#include "core/hierarchy.h"
#include "core/pattern.h"
#include "core/region_counter.h"

namespace remedy {

// Sentinel imbalance score for regions with no negative instances (Def. 3).
inline constexpr double kAllPositiveRatio = -1.0;

// Imbalance score ratio_r = |r+| / |r-|, or kAllPositiveRatio when |r-| = 0.
double ImbalanceScore(const RegionCounts& counts);
double ImbalanceScore(int64_t positives, int64_t negatives);

// Computes the (positive, negative) counts of a region's neighboring region
// r_n — the union of same-node regions within Euclidean distance T (Def. 4).
//
// Two interchangeable strategies mirror Sec. III:
//  * Naive: enumerate every candidate neighbor pattern within distance T and
//    sum its counts — (c-1)·d·T lookups per region.
//  * Optimized: reuse the counts of the dominating regions R_d one level up:
//      |r_n^±| = Σ_{r_k ∈ R_d} |r_k^±|  −  |R_d| · |r^±|      (T = 1)
//    and for T = |X| the neighboring region is everything but r, so node
//    totals (= dataset totals) minus r. Only d·T parent lookups per region.
//
// The optimized strategy assumes the paper's basic unit-distance setting
// (every pair of distinct values one unit apart); the naive strategy also
// honors ordinal attribute metrics. `IdentifyIbs` property-tests their
// agreement on nominal data.
class NeighborhoodCalculator {
 public:
  // `hierarchy` must outlive the calculator. T is the distance threshold.
  NeighborhoodCalculator(Hierarchy& hierarchy, double distance_threshold);

  double distance_threshold() const { return distance_threshold_; }

  // Naive neighbor counts of region `pattern` (mask = its node).
  RegionCounts NaiveNeighborCounts(const Pattern& pattern);

  // Optimized neighbor counts via dominating regions. Requires T == 1 or
  // T >= the node diameter (the T = |X| regime); dies otherwise.
  RegionCounts OptimizedNeighborCounts(const Pattern& pattern,
                                       const RegionCounts& region_counts);

  // True when `distance_threshold` is handled by the optimized fast paths.
  bool SupportsOptimized(uint32_t mask) const;

  // True when T covers node `mask`'s whole key space (T >= the node
  // diameter): every region of the node is then in every other region's
  // neighboring region, so r_n = node totals - r for both strategies. In
  // this regime a region's neighbor counts change only when the dataset
  // totals or its own counts do — the incremental identify path keys its
  // re-evaluation rule on this predicate.
  bool WholeNodeNeighborhood(uint32_t mask) const;

  // Appends the region key of every candidate neighbor pattern of
  // `pattern` (the same-node patterns within distance T, excluding the
  // region itself) to `keys`, whether or not the node's table holds an
  // entry for it. Mirrors NaiveNeighborCounts' enumeration exactly —
  // same budget, same per-attribute metrics — so "the keys this returns"
  // is precisely "the regions whose neighborhood contains `pattern`"
  // (the metric is symmetric). This is the dirty-frontier expansion of
  // the incremental identify path.
  void AppendNeighborKeys(const Pattern& pattern, std::vector<uint64_t>* keys);

 private:
  // Recursively enumerates neighbor patterns by substituting deterministic
  // values, pruning on accumulated squared distance.
  void AccumulateNeighbors(const Pattern& original, Pattern& current,
                           const std::vector<int>& det_positions,
                           size_t next_position, double squared_distance,
                           RegionCounts* total);

  // Same enumeration, collecting keys instead of summing counts.
  void CollectNeighborKeys(const Pattern& original, Pattern& current,
                           const std::vector<int>& det_positions,
                           size_t next_position, double squared_distance,
                           std::vector<uint64_t>* keys);

  // Largest possible squared distance between two regions of node `mask`
  // under the per-attribute metrics.
  double SquaredDiameter(uint32_t mask) const;

  Hierarchy& hierarchy_;
  double distance_threshold_;
};

}  // namespace remedy

#endif  // REMEDY_CORE_IMBALANCE_H_
