#include "core/region_counter.h"

#include "common/check.h"

namespace remedy {

RegionCounter::RegionCounter(const DataSchema& schema)
    : protected_cols_(schema.protected_indices()) {
  REMEDY_CHECK(!protected_cols_.empty())
      << "RegionCounter needs at least one protected attribute";
  REMEDY_CHECK(protected_cols_.size() <= 32);
  cardinalities_.reserve(protected_cols_.size());
  uint64_t capacity = 1;
  for (int col : protected_cols_) {
    int cardinality = schema.attribute(col).Cardinality();
    cardinalities_.push_back(cardinality);
    // Guard the mixed-radix packing against overflow; fairness workloads are
    // far below this bound (the paper uses at most 8 protected attributes).
    REMEDY_CHECK(capacity < (UINT64_MAX / (cardinality + 1)))
        << "protected-attribute domain too large to pack into 64-bit keys";
    capacity *= static_cast<uint64_t>(cardinality);
  }
}

uint64_t RegionCounter::KeyFor(const Pattern& pattern, uint32_t mask) const {
  REMEDY_DCHECK(pattern.DeterministicMask() == mask);
  uint64_t key = 0;
  for (int i = 0; i < NumProtected(); ++i) {
    if (mask & (1u << i)) {
      key = key * cardinalities_[i] + static_cast<uint64_t>(pattern.Value(i));
    }
  }
  return key;
}

Pattern RegionCounter::PatternFor(uint64_t key, uint32_t mask) const {
  Pattern pattern(NumProtected());
  // Unpack in reverse position order to mirror KeyFor.
  for (int i = NumProtected() - 1; i >= 0; --i) {
    if (mask & (1u << i)) {
      pattern.SetValue(i, static_cast<int>(key % cardinalities_[i]));
      key /= cardinalities_[i];
    }
  }
  REMEDY_DCHECK(key == 0);
  return pattern;
}

uint64_t RegionCounter::RowKey(const Dataset& data, int row,
                               uint32_t mask) const {
  uint64_t key = 0;
  for (int i = 0; i < NumProtected(); ++i) {
    if (mask & (1u << i)) {
      key = key * cardinalities_[i] +
            static_cast<uint64_t>(data.Value(row, protected_cols_[i]));
    }
  }
  return key;
}

std::unordered_map<uint64_t, RegionCounts> RegionCounter::CountNode(
    const Dataset& data, uint32_t mask) const {
  std::unordered_map<uint64_t, RegionCounts> counts;
  for (int r = 0; r < data.NumRows(); ++r) {
    RegionCounts& entry = counts[RowKey(data, r, mask)];
    if (data.Label(r) == 1) {
      ++entry.positives;
    } else {
      ++entry.negatives;
    }
  }
  return counts;
}

std::unordered_map<uint64_t, std::vector<int>> RegionCounter::CollectRows(
    const Dataset& data, uint32_t mask) const {
  std::unordered_map<uint64_t, std::vector<int>> rows;
  for (int r = 0; r < data.NumRows(); ++r) {
    rows[RowKey(data, r, mask)].push_back(r);
  }
  return rows;
}

RegionCounts RegionCounter::DatasetCounts(const Dataset& data) const {
  RegionCounts counts;
  counts.positives = data.PositiveCount();
  counts.negatives = data.NegativeCount();
  return counts;
}

}  // namespace remedy
