#include "core/region_counter.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "core/radix_sort.h"

namespace remedy {
namespace {

// Below this key-space size CountNode accumulates into a dense array indexed
// by key instead of a hash map: one predictable store per row, no hashing,
// and the collection pass emits keys already sorted.
constexpr uint64_t kDenseKeySpaceLimit = uint64_t{1} << 21;

}  // namespace

NodeTable::NodeTable(std::vector<Entry> entries)
    : NodeTable(std::move(entries), /*sort_threads=*/1) {}

NodeTable::NodeTable(std::vector<Entry> entries, int sort_threads)
    : entries_(std::move(entries)) {
  // Dense-array counting and shard merges emit keys already ascending;
  // skip the sort entirely for them.
  const auto key_less = [](const Entry& a, const Entry& b) {
    return a.first < b.first;
  };
  if (!std::is_sorted(entries_.begin(), entries_.end(), key_less)) {
    if (sort_threads != 1 &&
        entries_.size() >= kParallelRadixSortMinEntries) {
      RadixSortByKey(entries_, sort_threads);
    } else if (entries_.size() >= kRadixSortMinEntries) {
      RadixSortByKey(entries_);
    } else {
      std::sort(entries_.begin(), entries_.end(), key_less);
    }
  }
  // Merge duplicate keys in place (rollup projections collapse sibling
  // regions onto the same parent key).
  size_t out = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].first == entries_[i].first) {
      entries_[out - 1].second.positives += entries_[i].second.positives;
      entries_[out - 1].second.negatives += entries_[i].second.negatives;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

NodeTable::const_iterator NodeTable::find(uint64_t key) const {
  const_iterator it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& entry, uint64_t k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) return entries_.end();
  return it;
}

const RegionCounts& NodeTable::at(uint64_t key) const {
  const_iterator it = find(key);
  REMEDY_CHECK(it != end()) << "region key " << key << " not in node";
  return it->second;
}

void NodeTable::ApplyDelta(uint64_t key, int64_t delta_positives,
                           int64_t delta_negatives) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& entry, uint64_t k) { return entry.first < k; });
  REMEDY_CHECK(it != entries_.end() && it->first == key)
      << "delta for region key " << key << " not in node";
  it->second.positives += delta_positives;
  it->second.negatives += delta_negatives;
  REMEDY_DCHECK(it->second.positives >= 0 && it->second.negatives >= 0)
      << "delta drove region key " << key << " negative";
}

void NodeTable::UpsertDelta(uint64_t key, int64_t delta_positives,
                            int64_t delta_negatives) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& entry, uint64_t k) { return entry.first < k; });
  if (it == entries_.end() || it->first != key) {
    it = entries_.insert(it, {key, RegionCounts{}});
  }
  it->second.positives += delta_positives;
  it->second.negatives += delta_negatives;
  // Full CHECK (not DCHECK) to match ApplyDelta: this is the streaming
  // daemon's apply path, and a negative count here means durable state has
  // diverged — release builds must not silently accept it.
  REMEDY_CHECK(it->second.positives >= 0 && it->second.negatives >= 0)
      << "delta drove region key " << key << " negative";
}

RegionCounter::RegionCounter(const DataSchema& schema)
    : protected_cols_(schema.protected_indices()) {
  REMEDY_CHECK(!protected_cols_.empty())
      << "RegionCounter needs at least one protected attribute";
  REMEDY_CHECK(protected_cols_.size() <= 32);
  cardinalities_.reserve(protected_cols_.size());
  uint64_t capacity = 1;
  for (int col : protected_cols_) {
    int cardinality = schema.attribute(col).Cardinality();
    cardinalities_.push_back(cardinality);
    // Guard the mixed-radix packing against overflow; fairness workloads are
    // far below this bound (the paper uses at most 8 protected attributes).
    REMEDY_CHECK(capacity < (UINT64_MAX / (cardinality + 1)))
        << "protected-attribute domain too large to pack into 64-bit keys";
    capacity *= static_cast<uint64_t>(cardinality);
  }
}

uint64_t RegionCounter::KeySpace(uint32_t mask) const {
  uint64_t space = 1;
  for (int i = 0; i < NumProtected(); ++i) {
    if (mask & (1u << i)) space *= static_cast<uint64_t>(cardinalities_[i]);
  }
  return space;
}

uint64_t RegionCounter::KeyFor(const Pattern& pattern, uint32_t mask) const {
  REMEDY_DCHECK(pattern.DeterministicMask() == mask);
  uint64_t key = 0;
  for (int i = 0; i < NumProtected(); ++i) {
    if (mask & (1u << i)) {
      key = key * cardinalities_[i] + static_cast<uint64_t>(pattern.Value(i));
    }
  }
  return key;
}

Pattern RegionCounter::PatternFor(uint64_t key, uint32_t mask) const {
  Pattern pattern(NumProtected());
  // Unpack in reverse position order to mirror KeyFor.
  for (int i = NumProtected() - 1; i >= 0; --i) {
    if (mask & (1u << i)) {
      pattern.SetValue(i, static_cast<int>(key % cardinalities_[i]));
      key /= cardinalities_[i];
    }
  }
  REMEDY_DCHECK(key == 0);
  return pattern;
}

uint64_t RegionCounter::RowKey(const Dataset& data, int row,
                               uint32_t mask) const {
  uint64_t key = 0;
  for (int i = 0; i < NumProtected(); ++i) {
    if (mask & (1u << i)) {
      key = key * cardinalities_[i] +
            static_cast<uint64_t>(data.Value(row, protected_cols_[i]));
    }
  }
  return key;
}

NodeTable RegionCounter::CountNode(const Dataset& data, uint32_t mask) const {
  std::vector<NodeTable::Entry> entries;
  const uint64_t key_space = KeySpace(mask);
  if (key_space <= kDenseKeySpaceLimit) {
    std::vector<RegionCounts> dense(key_space);
    for (int r = 0; r < data.NumRows(); ++r) {
      RegionCounts& entry = dense[RowKey(data, r, mask)];
      if (data.Label(r) == 1) {
        ++entry.positives;
      } else {
        ++entry.negatives;
      }
    }
    for (uint64_t key = 0; key < key_space; ++key) {
      if (dense[key].Total() > 0) entries.emplace_back(key, dense[key]);
    }
  } else {
    std::unordered_map<uint64_t, RegionCounts> counts;
    for (int r = 0; r < data.NumRows(); ++r) {
      RegionCounts& entry = counts[RowKey(data, r, mask)];
      if (data.Label(r) == 1) {
        ++entry.positives;
      } else {
        ++entry.negatives;
      }
    }
    entries.assign(counts.begin(), counts.end());
  }
  return NodeTable(std::move(entries));
}

NodeTable RegionCounter::RollUp(const NodeTable& child, uint32_t child_mask,
                                uint32_t parent_mask) const {
  REMEDY_CHECK((parent_mask & ~child_mask) == 0)
      << "parent node must drop attributes of the child node";
  const uint32_t removed = child_mask ^ parent_mask;
  REMEDY_CHECK(removed != 0 && (removed & (removed - 1)) == 0)
      << "RollUp projects out exactly one attribute per step";
  const int position = std::countr_zero(removed);

  // Mixed-radix layout of a child key (position 0 most significant):
  //   key = (high * card_p + v_p) * low_radix + low
  // where low spans the deterministic positions after `position`. Dropping
  // the v_p digit yields exactly the parent node's packing.
  uint64_t low_radix = 1;
  for (int i = position + 1; i < NumProtected(); ++i) {
    if (child_mask & (1u << i)) {
      low_radix *= static_cast<uint64_t>(cardinalities_[i]);
    }
  }
  const uint64_t card_p = static_cast<uint64_t>(cardinalities_[position]);

  std::vector<NodeTable::Entry> entries;
  entries.reserve(child.size());
  for (const NodeTable::Entry& entry : child) {
    const uint64_t low = entry.first % low_radix;
    const uint64_t high = entry.first / low_radix / card_p;
    entries.emplace_back(high * low_radix + low, entry.second);
  }
  return NodeTable(std::move(entries));
}

uint64_t RegionCounter::ProjectKey(uint64_t key, uint32_t from_mask,
                                   uint32_t to_mask) const {
  REMEDY_DCHECK((to_mask & ~from_mask) == 0)
      << "projection target must drop attributes of the source node";
  if (from_mask == to_mask) return key;
  // Peel the mixed-radix digits least-significant-first (mirroring
  // PatternFor), then re-pack the surviving ones in KeyFor order.
  int digits[32] = {0};
  for (int i = NumProtected() - 1; i >= 0; --i) {
    if (from_mask & (1u << i)) {
      digits[i] = static_cast<int>(key % cardinalities_[i]);
      key /= cardinalities_[i];
    }
  }
  REMEDY_DCHECK(key == 0);
  uint64_t projected = 0;
  for (int i = 0; i < NumProtected(); ++i) {
    if (to_mask & (1u << i)) {
      projected = projected * cardinalities_[i] +
                  static_cast<uint64_t>(digits[i]);
    }
  }
  return projected;
}

std::unordered_map<uint64_t, std::vector<int>> RegionCounter::CollectRows(
    const Dataset& data, uint32_t mask) const {
  std::unordered_map<uint64_t, std::vector<int>> rows;
  for (int r = 0; r < data.NumRows(); ++r) {
    rows[RowKey(data, r, mask)].push_back(r);
  }
  return rows;
}

RegionCounts RegionCounter::DatasetCounts(const Dataset& data) const {
  RegionCounts counts;
  counts.positives = data.PositiveCount();
  counts.negatives = data.NegativeCount();
  return counts;
}

}  // namespace remedy
