#include "core/ibs_incremental.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "common/check.h"
#include "common/clock.h"
#include "common/pipeline_metrics.h"
#include "common/trace.h"
#include "core/imbalance.h"

namespace remedy {
namespace {

// The params fields a cached verdict depends on (backend choice only moves
// where counts come from, and counts are bit-identical across backends).
bool SameParams(const IbsParams& a, const IbsParams& b) {
  return a.imbalance_threshold == b.imbalance_threshold &&
         a.distance_threshold == b.distance_threshold &&
         a.min_region_size == b.min_region_size && a.scope == b.scope &&
         a.algorithm == b.algorithm;
}

}  // namespace

std::string IncrementalIbsState::FullPassReason(const Hierarchy& hierarchy,
                                                const IbsParams& params) const {
  if (!pending_reason_.empty()) return pending_reason_;
  if (!have_cache_) return "cold_cache";
  if (cached_hierarchy_ != &hierarchy) return "hierarchy_swapped";
  if (cached_generation_ != hierarchy.mutation_generation()) {
    return "lattice_rebuilt";
  }
  if (!SameParams(cached_params_, params)) return "params_changed";
  if (!hierarchy.dirty_tracking()) return "tracking_disabled";
  return "";
}

std::vector<BiasedRegion> IncrementalIbsState::FullPass(
    Hierarchy& hierarchy, const IbsParams& params, const std::string& reason) {
  REMEDY_TRACE_SPAN("ibs_incr/full_pass");
  PipelineMetrics::Get().ibs_incr_full_fallbacks->Increment();
  stats_ = {};
  last_fallback_reason_ = reason;
  cache_.clear();
  std::vector<BiasedRegion> out;
  for (uint32_t mask : ScopeMasks(hierarchy, params.scope)) {
    std::vector<BiasedRegion> node_biased =
        IdentifyIbsInNode(hierarchy, mask, params);
    NodeCache& cached = cache_[mask];
    cached.biased.reserve(node_biased.size());
    for (const BiasedRegion& region : node_biased) {
      cached.biased.emplace_back(
          hierarchy.counter().KeyFor(region.pattern, mask), region);
    }
    out.insert(out.end(), std::make_move_iterator(node_biased.begin()),
               std::make_move_iterator(node_biased.end()));
  }
  have_cache_ = true;
  pending_reason_.clear();
  cached_hierarchy_ = &hierarchy;
  cached_params_ = params;
  // From here on the dirty set describes exactly what diverges from the
  // cache; the generation stamp catches anything it would not.
  hierarchy.EnableDirtyTracking();
  hierarchy.ClearDirtySet();
  cached_generation_ = hierarchy.mutation_generation();
  return out;
}

std::vector<BiasedRegion> IncrementalIbsState::Identify(
    Hierarchy& hierarchy, const IbsParams& params) {
  const std::string reason = FullPassReason(hierarchy, params);
  if (!reason.empty()) return FullPass(hierarchy, params, reason);

  REMEDY_TRACE_SPAN("ibs_incr/identify");
  const int64_t start_ns = MonotonicNanos();
  stats_ = {};
  stats_.incremental = true;
  const DirtySet& dirty = hierarchy.dirty_set();
  const bool totals_drifted =
      dirty.delta_positives != 0 || dirty.delta_negatives != 0;
  {
    auto leaf_it = dirty.touched.find(hierarchy.LeafMask());
    if (leaf_it != dirty.touched.end()) {
      stats_.dirty_leaves = static_cast<int64_t>(leaf_it->second.size());
    }
  }

  NeighborhoodCalculator neighborhood(hierarchy, params.distance_threshold);
  std::vector<BiasedRegion> out;
  int64_t reuse = 0;
  int64_t naive = 0;
  for (uint32_t mask : ScopeMasks(hierarchy, params.scope)) {
    NodeCache& cached = cache_[mask];
    auto dirty_it = dirty.touched.find(mask);
    const bool node_dirty =
        dirty_it != dirty.touched.end() && !dirty_it->second.empty();
    const bool whole_node = neighborhood.WholeNodeNeighborhood(mask);

    // Untouched node outside the totals-dependent regime: every region's
    // own counts and neighborhood counts are unchanged, so every cached
    // verdict is exact.
    if (!node_dirty && !(whole_node && totals_drifted)) {
      stats_.cached_regions += static_cast<int64_t>(cached.biased.size());
      for (const auto& [key, region] : cached.biased) out.push_back(region);
      continue;
    }

    const NodeTable& node = hierarchy.NodeCounts(mask);
    const bool use_optimized = params.algorithm == IbsAlgorithm::kOptimized &&
                               neighborhood.SupportsOptimized(mask);
    if (node_dirty) {
      stats_.dirty_regions += static_cast<int64_t>(dirty_it->second.size());
    }

    // T >= node diameter: r_n = totals - r for every region, so a totals
    // drift moves every neighborhood at once — re-sweep the whole node
    // (these nodes are the coarse, small ones).
    if (whole_node && totals_drifted) {
      ++stats_.full_node_rescores;
      std::vector<std::pair<uint64_t, BiasedRegion>> fresh;
      for (const auto& [key, counts] : node) {
        BiasedRegion region;
        const RegionVerdict verdict =
            ScoreRegion(hierarchy, neighborhood, use_optimized, mask, key,
                        counts, params, &region);
        if (verdict == RegionVerdict::kSkipped) continue;
        ++stats_.rescored_regions;
        use_optimized ? ++reuse : ++naive;
        if (verdict == RegionVerdict::kBiased) {
          fresh.emplace_back(key, std::move(region));
        }
      }
      cached.biased = std::move(fresh);
      for (const auto& [key, region] : cached.biased) out.push_back(region);
      continue;
    }

    // Re-evaluation set: the dirty keys (own counts changed), plus — when
    // a neighborhood is a proper subset of the node — every region within
    // distance T of a dirty key (its neighbor sum includes the change; the
    // metric is symmetric). In the whole-node regime with steady totals,
    // clean regions keep r_n = totals - r unchanged, so no expansion.
    std::vector<uint64_t> reeval(dirty_it->second.begin(),
                                 dirty_it->second.end());
    const int64_t num_dirty = static_cast<int64_t>(reeval.size());
    if (!whole_node) {
      for (int64_t i = 0; i < num_dirty; ++i) {
        Pattern pattern = hierarchy.counter().PatternFor(reeval[i], mask);
        neighborhood.AppendNeighborKeys(pattern, &reeval);
      }
    }
    std::sort(reeval.begin(), reeval.end());
    reeval.erase(std::unique(reeval.begin(), reeval.end()), reeval.end());
    if (!whole_node) {
      stats_.expanded_regions +=
          static_cast<int64_t>(reeval.size()) - num_dirty;
    }

    // Merge: walk the cached biased verdicts and the re-evaluation keys in
    // one ascending-key sweep — the NodeTable iteration order of the full
    // sweep — keeping untouched verdicts and re-scoring the rest.
    std::vector<std::pair<uint64_t, BiasedRegion>> fresh;
    size_t ci = 0;
    size_t ri = 0;
    while (ci < cached.biased.size() || ri < reeval.size()) {
      if (ri == reeval.size() ||
          (ci < cached.biased.size() && cached.biased[ci].first < reeval[ri])) {
        fresh.push_back(cached.biased[ci]);
        ++stats_.cached_regions;
        ++ci;
        continue;
      }
      const uint64_t key = reeval[ri++];
      if (ci < cached.biased.size() && cached.biased[ci].first == key) {
        ++ci;  // superseded by the re-score below
      }
      auto it = node.find(key);
      // A frontier key with no table entry is a region the full sweep never
      // visits (it iterates entries only) — nothing to score.
      if (it == node.end()) continue;
      BiasedRegion region;
      const RegionVerdict verdict =
          ScoreRegion(hierarchy, neighborhood, use_optimized, mask, key,
                      it->second, params, &region);
      if (verdict == RegionVerdict::kSkipped) continue;
      ++stats_.rescored_regions;
      use_optimized ? ++reuse : ++naive;
      if (verdict == RegionVerdict::kBiased) {
        fresh.emplace_back(key, std::move(region));
      }
    }
    cached.biased = std::move(fresh);
    for (const auto& [key, region] : cached.biased) out.push_back(region);
  }
  hierarchy.ClearDirtySet();
  cached_generation_ = hierarchy.mutation_generation();

  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.ibs_incr_dirty_leaves->Increment(stats_.dirty_leaves);
  metrics.ibs_incr_rescored_regions->Increment(stats_.rescored_regions);
  metrics.ibs_incr_neighborhood_expansions->Increment(
      stats_.expanded_regions);
  metrics.ibs_incr_cache_hits->Increment(stats_.cached_regions);
  if (reuse > 0) metrics.ibs_neighbor_reuse->Increment(reuse);
  if (naive > 0) metrics.ibs_neighbor_naive->Increment(naive);
  metrics.ibs_incr_identify_ns->Observe(MonotonicNanos() - start_ns);
  return out;
}

void IncrementalIbsState::Invalidate(const std::string& reason) {
  pending_reason_ = reason.empty() ? "invalidated" : reason;
  have_cache_ = false;
  cache_.clear();
}

uint64_t IbsSetDigest(const std::vector<BiasedRegion>& ibs) {
  uint64_t digest = 14695981039346656037ull;
  auto mix = [&digest](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (value >> (8 * i)) & 0xff;
      digest *= 1099511628211ull;
    }
  };
  auto mix_double = [&mix](double value) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<uint64_t>(ibs.size()));
  for (const BiasedRegion& region : ibs) {
    mix(region.pattern.DeterministicMask());
    mix(static_cast<uint64_t>(region.pattern.Arity()));
    for (int i = 0; i < region.pattern.Arity(); ++i) {
      mix(static_cast<uint64_t>(
          static_cast<int64_t>(region.pattern.Value(i))));
    }
    mix(static_cast<uint64_t>(region.counts.positives));
    mix(static_cast<uint64_t>(region.counts.negatives));
    mix(static_cast<uint64_t>(region.neighbor_counts.positives));
    mix(static_cast<uint64_t>(region.neighbor_counts.negatives));
    mix_double(region.ratio);
    mix_double(region.neighbor_ratio);
  }
  return digest;
}

}  // namespace remedy
