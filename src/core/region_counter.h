#ifndef REMEDY_CORE_REGION_COUNTER_H_
#define REMEDY_CORE_REGION_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/pattern.h"
#include "data/dataset.h"

namespace remedy {

// Positive / negative instance counts of one region.
struct RegionCounts {
  int64_t positives = 0;
  int64_t negatives = 0;

  int64_t Total() const { return positives + negatives; }

  friend bool operator==(const RegionCounts& a, const RegionCounts& b) {
    return a.positives == b.positives && a.negatives == b.negatives;
  }
};

// Group-by engine over subsets of the protected attributes.
//
// A hierarchy node is identified by a bitmask over the protected-attribute
// positions; within a node, each region is keyed by the packed (mixed-radix)
// combination of its deterministic values. One linear pass over the dataset
// produces the (positive, negative) counts of every region in a node.
class RegionCounter {
 public:
  explicit RegionCounter(const DataSchema& schema);

  int NumProtected() const {
    return static_cast<int>(cardinalities_.size());
  }
  int Cardinality(int position) const { return cardinalities_[position]; }

  // Packs the deterministic values of `pattern` (whose DeterministicMask()
  // must equal `mask`) into a region key.
  uint64_t KeyFor(const Pattern& pattern, uint32_t mask) const;

  // Inverse of KeyFor: reconstructs the pattern of a region key.
  Pattern PatternFor(uint64_t key, uint32_t mask) const;

  // Counts every region of node `mask` in one pass over `data`.
  std::unordered_map<uint64_t, RegionCounts> CountNode(
      const Dataset& data, uint32_t mask) const;

  // Row indices of every region of node `mask` (used by the remedy step to
  // pick the concrete instances to duplicate / remove / relabel).
  std::unordered_map<uint64_t, std::vector<int>> CollectRows(
      const Dataset& data, uint32_t mask) const;

  // Counts over the whole dataset (the level-0 node).
  RegionCounts DatasetCounts(const Dataset& data) const;

  // Packs the protected values of one dataset row under `mask` — the key of
  // the node-`mask` region the row belongs to.
  uint64_t RowKey(const Dataset& data, int row, uint32_t mask) const;

 private:

  std::vector<int> protected_cols_;
  std::vector<int> cardinalities_;
};

}  // namespace remedy

#endif  // REMEDY_CORE_REGION_COUNTER_H_
