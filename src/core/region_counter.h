#ifndef REMEDY_CORE_REGION_COUNTER_H_
#define REMEDY_CORE_REGION_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pattern.h"
#include "data/dataset.h"

namespace remedy {

// Positive / negative instance counts of one region.
struct RegionCounts {
  int64_t positives = 0;
  int64_t negatives = 0;

  int64_t Total() const { return positives + negatives; }

  friend bool operator==(const RegionCounts& a, const RegionCounts& b) {
    return a.positives == b.positives && a.negatives == b.negatives;
  }
};

// Region counts of one hierarchy node, stored as a flat vector of
// (region key, counts) entries sorted ascending by key.
//
// The flat layout replaces the per-node unordered_map of the original
// counting engine: iteration is cache-friendly and already in the
// deterministic key order the identification sweep needs, and lookups are
// binary searches. The read API mirrors std::unordered_map (find / at /
// count / range-for over pair entries) so node consumers stay idiomatic.
class NodeTable {
 public:
  using Entry = std::pair<uint64_t, RegionCounts>;
  using const_iterator = std::vector<Entry>::const_iterator;

  NodeTable() = default;

  // Takes entries in any order; duplicate keys are merged by summing their
  // counts (the rollup projection produces such duplicates).
  explicit NodeTable(std::vector<Entry> entries);

  // Same, but unsorted inputs large enough for it are ordered by the
  // parallel radix sort on `sort_threads` workers (<= 0 = every usable
  // CPU). The result is identical for every thread count — the parallel
  // sort reproduces the stable sort exactly.
  NodeTable(std::vector<Entry> entries, int sort_threads);

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Binary search; end() when the key is absent.
  const_iterator find(uint64_t key) const;
  size_t count(uint64_t key) const { return find(key) == end() ? 0 : 1; }
  // Dies when the key is absent.
  const RegionCounts& at(uint64_t key) const;

  // Adds (delta_positives, delta_negatives) to the entry at `key`, which
  // must already exist (the remedy deltas only ever touch populated
  // regions). A count may reach zero but never goes negative; the entry is
  // kept, so consumers must treat Total() == 0 entries as empty regions.
  void ApplyDelta(uint64_t key, int64_t delta_positives,
                  int64_t delta_negatives);

  // ApplyDelta that inserts the entry (in key order) when `key` is absent —
  // the streaming-ingest form, where a delta may describe a region no
  // batch-counted row ever populated. O(n) on insert; amortized fine for
  // the daemon's batched deltas, which mostly touch existing regions.
  void UpsertDelta(uint64_t key, int64_t delta_positives,
                   int64_t delta_negatives);

  const std::vector<Entry>& entries() const { return entries_; }

  friend bool operator==(const NodeTable& a, const NodeTable& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<Entry> entries_;
};

// Group-by engine over subsets of the protected attributes.
//
// A hierarchy node is identified by a bitmask over the protected-attribute
// positions; within a node, each region is keyed by the packed (mixed-radix)
// combination of its deterministic values. The finest node is materialized
// with one linear pass over the dataset; every coarser node is derived from
// a node one level below with RollUp (project out one attribute from each
// region key and merge — a data-cube rollup), so a whole-lattice build costs
// one O(rows) scan plus O(#non-empty regions) merges instead of 2^|X| - 1
// scans.
class RegionCounter {
 public:
  explicit RegionCounter(const DataSchema& schema);

  int NumProtected() const {
    return static_cast<int>(cardinalities_.size());
  }
  int Cardinality(int position) const { return cardinalities_[position]; }

  // Number of distinct region keys of node `mask` (the product of the
  // deterministic attributes' cardinalities).
  uint64_t KeySpace(uint32_t mask) const;

  // Packs the deterministic values of `pattern` (whose DeterministicMask()
  // must equal `mask`) into a region key.
  uint64_t KeyFor(const Pattern& pattern, uint32_t mask) const;

  // Inverse of KeyFor: reconstructs the pattern of a region key.
  Pattern PatternFor(uint64_t key, uint32_t mask) const;

  // Counts every region of node `mask` in one pass over `data`.
  NodeTable CountNode(const Dataset& data, uint32_t mask) const;

  // Derives the counts of node `parent_mask` from those of `child_mask`,
  // which must have exactly one extra deterministic attribute. Exact: the
  // projection marginalizes integer counts, so the result equals a direct
  // CountNode scan.
  NodeTable RollUp(const NodeTable& child, uint32_t child_mask,
                   uint32_t parent_mask) const;

  // Projects a node-`from_mask` region key onto node `to_mask` (a subset of
  // `from_mask`) by dropping the digits of the removed attributes — the
  // multi-digit generalization of the RollUp projection, used to route a
  // leaf-level count delta to every ancestor node.
  uint64_t ProjectKey(uint64_t key, uint32_t from_mask,
                      uint32_t to_mask) const;

  // Row indices of every region of node `mask` (used by the remedy step to
  // pick the concrete instances to duplicate / remove / relabel).
  std::unordered_map<uint64_t, std::vector<int>> CollectRows(
      const Dataset& data, uint32_t mask) const;

  // Counts over the whole dataset (the level-0 node).
  RegionCounts DatasetCounts(const Dataset& data) const;

  // Packs the protected values of one dataset row under `mask` — the key of
  // the node-`mask` region the row belongs to.
  uint64_t RowKey(const Dataset& data, int row, uint32_t mask) const;

 private:

  std::vector<int> protected_cols_;
  std::vector<int> cardinalities_;
};

}  // namespace remedy

#endif  // REMEDY_CORE_REGION_COUNTER_H_
