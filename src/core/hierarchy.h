#ifndef REMEDY_CORE_HIERARCHY_H_
#define REMEDY_CORE_HIERARCHY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/region_counter.h"
#include "data/dataset.h"

namespace remedy {

// The region hierarchy of Sec. III (Fig. 1): nodes group the patterns that
// share the same deterministic attribute set; a node is identified by a
// bitmask over the |X| protected-attribute positions and its level is the
// popcount of that mask. Level 0 is the entire dataset, the leaf level has
// all attributes deterministic.
//
// Node region counts are computed lazily (one dataset pass per node) and
// memoized, so callers that only touch a slice of the lattice — the Leaf /
// Top identification scopes, or the per-node re-identification of the remedy
// loop — pay only for what they use. `Invalidate()` drops the memo after the
// underlying dataset changes.
class Hierarchy {
 public:
  // `data` must outlive the hierarchy.
  explicit Hierarchy(const Dataset& data);

  int NumProtected() const { return counter_.NumProtected(); }
  uint32_t LeafMask() const {
    return (NumProtected() == 32) ? 0xffffffffu
                                  : ((1u << NumProtected()) - 1u);
  }

  const RegionCounter& counter() const { return counter_; }
  const Dataset& data() const { return *data_; }

  // Region counts of node `mask` (memoized).
  const std::unordered_map<uint64_t, RegionCounts>& NodeCounts(uint32_t mask);

  // Counts of the whole dataset (level-0 node).
  const RegionCounts& TotalCounts();

  // Masks of the parent nodes of `mask` (one deterministic element removed).
  // The empty mask (level 0) has no parents here; its counts come from
  // TotalCounts().
  static std::vector<uint32_t> ParentMasks(uint32_t mask);

  // All node masks at `level` deterministic elements, ascending.
  std::vector<uint32_t> MasksAtLevel(int level) const;

  // All non-empty-node masks from the leaf level down to level 1, in the
  // bottom-up traversal order of Algorithm 1.
  std::vector<uint32_t> BottomUpMasks() const;

  // Drops memoized counts (call after mutating the dataset).
  void Invalidate();

 private:
  const Dataset* data_;
  RegionCounter counter_;
  std::unordered_map<uint32_t, std::unordered_map<uint64_t, RegionCounts>>
      node_cache_;
  RegionCounts total_counts_;
  bool total_valid_ = false;
};

}  // namespace remedy

#endif  // REMEDY_CORE_HIERARCHY_H_
