#ifndef REMEDY_CORE_HIERARCHY_H_
#define REMEDY_CORE_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/counting_backend.h"
#include "core/region_counter.h"
#include "data/columnar.h"
#include "data/dataset.h"

namespace remedy {

// The region hierarchy of Sec. III (Fig. 1): nodes group the patterns that
// share the same deterministic attribute set; a node is identified by a
// bitmask over the |X| protected-attribute positions and its level is the
// popcount of that mask. Level 0 is the entire dataset, the leaf level has
// all attributes deterministic.
//
// Counting engine: only the leaf node is ever counted with a dataset scan;
// every coarser node is derived from an already-built node one level below
// via RegionCounter::RollUp, so materializing any slice of the lattice costs
// at most one O(rows) pass plus per-node merges over the non-empty regions.
// Nodes are memoized lazily on first access; EagerBuild() precomputes the
// whole lattice level by level, optionally fanning the independent nodes of
// a level out over a thread pool. `Invalidate()` drops the memo after the
// underlying dataset changes.
// The region keys ApplyDeltas touched since the set was last cleared — the
// seed of the incremental identify path (see core/ibs_incremental.h). Every
// leaf delta projects into exactly one region of every node, and ApplyDeltas
// computes those projections anyway, so recording them here is free of extra
// key arithmetic. The set accumulates across epochs until a consumer clears
// it, so an identify that runs every N epochs still sees every touched key.
struct DirtySet {
  // Per node mask: the region keys some applied delta projected into.
  std::unordered_map<uint32_t, std::unordered_set<uint64_t>> touched;
  // Net drift of the level-0 totals since the set was last cleared.
  int64_t delta_positives = 0;
  int64_t delta_negatives = 0;

  // True iff no delta was applied since the last Clear (a delta touches
  // every node, so `touched` is empty exactly when nothing changed).
  bool empty() const {
    return touched.empty() && delta_positives == 0 && delta_negatives == 0;
  }
  void Clear() {
    touched.clear();
    delta_positives = 0;
    delta_negatives = 0;
  }
};

class Hierarchy {
 public:
  // `data` must outlive the hierarchy.
  explicit Hierarchy(const Dataset& data);

  // Store-backed hierarchy: counts come from the columnar shards alone, so
  // arbitrarily large inputs never need a row-oriented Dataset (the remedy
  // write path, which mutates rows, still requires the Dataset form).
  // `store` must outlive the hierarchy.
  explicit Hierarchy(const ColumnarShardStore& store);

  // Count-seeded hierarchy: no row source at all — the leaf node's counts
  // (and the level-0 totals they imply) are handed in directly, and every
  // coarser node derives from them by the usual exact rollups. This is the
  // recovery path of the streaming service: a checkpoint stores the leaf
  // table, and replaying it here rebuilds the identical lattice without
  // any dataset or shard store on hand. The schema is copied and owned.
  // Invalidate() on a count-seeded hierarchy discards the only count
  // source, so any later (re)build dies — don't mutate what you can't
  // recount.
  Hierarchy(const DataSchema& schema, NodeTable leaf_counts,
            const RegionCounts& totals);

  // Selects the engine behind the one leaf-node scan (default: scalar, the
  // original row-oriented path). The columnar backends count from the
  // attached store; a Dataset-backed hierarchy builds one on first use.
  // `threads` sizes the sharded backend's per-shard fan-out (<= 0 = every
  // usable CPU). Output is bit-identical across backends and thread
  // counts; call before building — switching later does not drop memoized
  // nodes (they are equal by contract anyway).
  void SetCountingBackend(CountingBackendKind kind, int threads = 1);
  CountingBackendKind counting_backend() const { return backend_kind_; }

  int NumProtected() const { return counter_.NumProtected(); }
  uint32_t LeafMask() const {
    return (NumProtected() == 32) ? 0xffffffffu
                                  : ((1u << NumProtected()) - 1u);
  }

  const RegionCounter& counter() const { return counter_; }
  // Schema of whichever backing this hierarchy counts from.
  const DataSchema& schema() const {
    if (data_ != nullptr) return data_->schema();
    if (store_ != nullptr) return store_->schema();
    return *owned_schema_;
  }
  // Dies on a store-backed hierarchy (no row-oriented view exists).
  const Dataset& data() const;
  bool has_dataset() const { return data_ != nullptr; }

  // Readies the counting source before any node is built: for a spilled
  // (mmap-backed) store this maps the shard files, which is the one
  // fallible step of out-of-core counting. EagerBuild and IdentifyIbs call
  // it so a missing or truncated shard file surfaces as a clean Status;
  // lazy NodeCounts on an unprepared store still works but dies on a map
  // failure. No-op for in-memory sources.
  Status PrepareCounting();

  // Region counts of node `mask` (memoized; built by rollup, see above).
  const NodeTable& NodeCounts(uint32_t mask);

  // Materializes every lattice node (leaf scan + bottom-up rollups) plus the
  // level-0 totals. `threads` > 1 evaluates the nodes of each level in
  // parallel; 0 means ThreadPool::DefaultThreads(). Levels are barriers: the
  // workers of level L only read the already-built level L + 1, never nodes
  // of their own level, so the build is race-free and its result is
  // identical for every thread count. Levels with fewer nodes than the fan
  // out is worth (and single-threaded builds) run inline without touching a
  // pool, so the parallel entry point never loses to the serial one.
  // On a pool failure the partially-built memo is dropped (Invalidate) so a
  // later lazy NodeCounts never reads a half-filled level.
  Status EagerBuild(int threads = 0);

  // True once EagerBuild has materialized every node (reset by Invalidate).
  bool fully_built() const { return fully_built_; }

  // One leaf-region count adjustment: the net (positive, negative) change of
  // the leaf region at `leaf_key`, e.g. (-1, +1) for one positive-to-negative
  // label flip or (0, -3) for removing three negative rows.
  struct LeafDelta {
    uint64_t leaf_key = 0;
    int64_t delta_positives = 0;
    int64_t delta_negatives = 0;
  };

  // Applies leaf-level count deltas to every materialized node and to the
  // level-0 totals: each delta lands at the leaf entry and at the ancestor
  // entry its key projects to (digit projection), exactly as a full rebuild
  // of the mutated dataset would count — without rescanning any rows.
  // Requires a fully built hierarchy (EagerBuild) so no node is left behind
  // to be lazily rebuilt from a dataset the deltas already describe.
  // Deltas must be pre-aggregated per leaf key and must never drive a
  // region's counts negative. Entries whose counts reach zero are kept.
  // With `insert_missing` (the streaming-ingest form) a delta whose key no
  // node has seen yet inserts the entry instead of dying — new subgroups
  // can appear mid-stream, which a batch-counted lattice never allows.
  void ApplyDeltas(const std::vector<LeafDelta>& deltas,
                   bool insert_missing = false);
  void ApplyDelta(const LeafDelta& delta);

  // Order-stable FNV-1a digest over every materialized node's entries plus
  // the level-0 totals. Two fully built hierarchies agree iff their counts
  // are byte-identical node for node — the recovery acceptance check of
  // the streaming service (a WAL replay must land on the digest of the
  // uninterrupted run). Requires a fully built hierarchy.
  uint64_t CountsDigest();

  // Counts of the whole dataset (level-0 node).
  const RegionCounts& TotalCounts();

  // Masks of the parent nodes of `mask` (one deterministic element removed).
  // The empty mask (level 0) has no parents here; its counts come from
  // TotalCounts().
  static std::vector<uint32_t> ParentMasks(uint32_t mask);

  // All node masks at `level` deterministic elements, ascending.
  std::vector<uint32_t> MasksAtLevel(int level) const;

  // All non-empty-node masks from the leaf level down to level 1, in the
  // bottom-up traversal order of Algorithm 1.
  std::vector<uint32_t> BottomUpMasks() const;

  // Drops memoized counts (call after mutating the dataset).
  void Invalidate();

  // --- dirty-region tracking (the incremental identify seed) ----------

  // Starts recording the region keys ApplyDeltas touches into dirty_set().
  // Cheap when off (one branch per node per batch); callers that never
  // consume the set never pay for it.
  void EnableDirtyTracking() { dirty_tracking_ = true; }
  bool dirty_tracking() const { return dirty_tracking_; }
  const DirtySet& dirty_set() const { return dirty_; }
  void ClearDirtySet() { dirty_.Clear(); }

  // Monotonic stamp of "the counts changed in a way dirty_set() does not
  // describe": bumped by Invalidate() (the lattice is rebuilt from its row
  // source) and by any ApplyDeltas that ran while tracking was off. A
  // cached incremental-identify state compares stamps and falls back to a
  // full pass on mismatch.
  uint64_t mutation_generation() const { return generation_; }

 private:
  // Computes node `mask` from the cheapest available source: a leaf scan,
  // or a rollup of a (possibly recursively built) child one level below.
  NodeTable BuildNode(uint32_t mask);

  // The source handed to the counting backend; re-encodes the Dataset into
  // an owned columnar store the first time a columnar backend needs one.
  CountingSource SourceForCounting();

  const Dataset* data_ = nullptr;
  const ColumnarShardStore* store_ = nullptr;
  std::unique_ptr<ColumnarShardStore> owned_store_;
  std::unique_ptr<DataSchema> owned_schema_;  // count-seeded form only
  RegionCounter counter_;
  std::unique_ptr<CountingBackend> backend_;
  CountingBackendKind backend_kind_ = CountingBackendKind::kScalar;
  int backend_threads_ = 1;
  std::unordered_map<uint32_t, NodeTable> node_cache_;
  RegionCounts total_counts_;
  bool total_valid_ = false;
  bool fully_built_ = false;
  bool dirty_tracking_ = false;
  DirtySet dirty_;
  uint64_t generation_ = 0;
};

}  // namespace remedy

#endif  // REMEDY_CORE_HIERARCHY_H_
