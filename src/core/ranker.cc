#include "core/ranker.h"

#include <algorithm>

#include "common/check.h"

namespace remedy {

namespace {

// Shared ordering of (score, row) pairs; see RankBorderline's contract.
std::vector<int> SortBorderline(std::vector<std::pair<double, int>> scored,
                                int label) {
  if (label == 1) {
    // Positives with low P(y=1) look most like negatives.
    std::sort(scored.begin(), scored.end());
  } else {
    // Negatives with high P(y=1) look most like positives.
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }
  std::vector<int> ranked;
  ranked.reserve(scored.size());
  for (const auto& [score, row] : scored) ranked.push_back(row);
  return ranked;
}

}  // namespace

BorderlineRanker::BorderlineRanker(const Dataset& data) {
  model_.Fit(data);
}

double BorderlineRanker::Score(const Dataset& data, int row) const {
  return model_.PredictProba(data, row);
}

std::vector<double> BorderlineRanker::ScoreAll(const Dataset& data) const {
  std::vector<double> scores(data.NumRows());
  for (int row = 0; row < data.NumRows(); ++row) {
    scores[row] = Score(data, row);
  }
  return scores;
}

std::vector<int> BorderlineRanker::RankBorderline(
    const Dataset& data, const std::vector<int>& rows, int label) const {
  REMEDY_CHECK(label == 0 || label == 1);
  std::vector<std::pair<double, int>> scored;
  scored.reserve(rows.size());
  for (int row : rows) {
    REMEDY_DCHECK(data.Label(row) == label);
    scored.emplace_back(Score(data, row), row);
  }
  return SortBorderline(std::move(scored), label);
}

std::vector<int> BorderlineRanker::RankWithScores(
    const std::vector<double>& scores, const std::vector<int>& rows,
    int label) {
  REMEDY_CHECK(label == 0 || label == 1);
  std::vector<std::pair<double, int>> scored;
  scored.reserve(rows.size());
  for (int row : rows) {
    REMEDY_DCHECK(row >= 0 && row < static_cast<int>(scores.size()));
    scored.emplace_back(scores[row], row);
  }
  return SortBorderline(std::move(scored), label);
}

}  // namespace remedy
