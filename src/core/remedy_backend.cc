#include "core/remedy_backend.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "data/shard_file.h"

namespace remedy {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ValidateSource(const RemedySource& source) {
  if ((source.dataset == nullptr) == (source.leaf_counts == nullptr)) {
    return InvalidArgumentError(
        "RemedySource wants exactly one of dataset / leaf_counts");
  }
  if (source.leaf_counts != nullptr && source.schema == nullptr) {
    return InvalidArgumentError(
        "RemedySource::leaf_counts requires RemedySource::schema");
  }
  return OkStatus();
}

const DataSchema& SourceSchema(const RemedySource& source) {
  return source.dataset != nullptr ? source.dataset->schema()
                                   : *source.schema;
}

// The source's leaf census, whichever form it arrived in.
NodeTable SourceLeafCounts(const RemedySource& source) {
  return source.dataset != nullptr ? LeafCountsOf(*source.dataset)
                                   : *source.leaf_counts;
}

int64_t TotalInstances(const NodeTable& counts) {
  int64_t total = 0;
  for (const auto& [key, region] : counts) total += region.Total();
  return total;
}

// rebuild / incremental: the two batch engines of RemedyDataset behind the
// backend API. Row-faithful on a dataset source; a count source is
// materialized first.
class BatchRemedyBackend : public RemedyBackend {
 public:
  explicit BatchRemedyBackend(RemedyBackendKind kind) : kind_(kind) {}

  RemedyBackendKind kind() const override { return kind_; }

  StatusOr<Dataset> Remedy(const RemedySource& source,
                           const RemedyParams& params,
                           RemedyStats* stats) const override {
    RETURN_IF_ERROR(ValidateSource(source));
    RemedyParams engine_params = params;
    engine_params.engine = kind_ == RemedyBackendKind::kRebuild
                               ? RemedyEngine::kRebuild
                               : RemedyEngine::kIncremental;
    if (source.dataset != nullptr) {
      return RemedyDataset(*source.dataset, engine_params, stats);
    }
    ASSIGN_OR_RETURN(
        Dataset materialized,
        MaterializeLeafCounts(*source.schema, *source.leaf_counts));
    return RemedyDataset(materialized, engine_params, stats);
  }

 private:
  const RemedyBackendKind kind_;
};

// streaming: plans on the canonical materialization of the source's leaf
// counts, so the plan is a pure function of the counts — exactly what the
// daemon snapshots. The result is re-materialized from the remedied counts,
// making the row output canonical too (count-faithful by construction).
// Parity with the rebuild engine on the same materialized dataset follows
// from the engines' proven byte-identity (tests/remedy_test.cc).
class StreamingRemedyBackend : public RemedyBackend {
 public:
  RemedyBackendKind kind() const override {
    return RemedyBackendKind::kStreaming;
  }

  StatusOr<Dataset> Remedy(const RemedySource& source,
                           const RemedyParams& params,
                           RemedyStats* stats) const override {
    RETURN_IF_ERROR(ValidateSource(source));
    const DataSchema& schema = SourceSchema(source);
    const NodeTable counts = SourceLeafCounts(source);
    ASSIGN_OR_RETURN(Dataset canonical,
                     MaterializeLeafCounts(schema, counts));
    RemedyParams engine_params = params;
    engine_params.engine = RemedyEngine::kIncremental;
    ASSIGN_OR_RETURN(Dataset remedied,
                     RemedyDataset(canonical, engine_params, stats));
    return MaterializeLeafCounts(schema, LeafCountsOf(remedied));
  }
};

}  // namespace

const char* RemedyBackendName(RemedyBackendKind kind) {
  switch (kind) {
    case RemedyBackendKind::kRebuild:
      return "rebuild";
    case RemedyBackendKind::kIncremental:
      return "incremental";
    case RemedyBackendKind::kStreaming:
      return "streaming";
  }
  return "unknown";
}

StatusOr<RemedyBackendKind> ParseRemedyBackend(const std::string& name) {
  if (name == "rebuild") return RemedyBackendKind::kRebuild;
  if (name == "incremental") return RemedyBackendKind::kIncremental;
  if (name == "streaming") return RemedyBackendKind::kStreaming;
  return InvalidArgumentError("unknown remedy backend '" + name +
                              "' (want rebuild|incremental|streaming)");
}

std::unique_ptr<RemedyBackend> RemedyBackend::Create(RemedyBackendKind kind) {
  switch (kind) {
    case RemedyBackendKind::kRebuild:
    case RemedyBackendKind::kIncremental:
      return std::make_unique<BatchRemedyBackend>(kind);
    case RemedyBackendKind::kStreaming:
      return std::make_unique<StreamingRemedyBackend>();
  }
  REMEDY_CHECK(false) << "unhandled RemedyBackendKind";
  return nullptr;
}

StatusOr<RemedyDeltaPlan> RemedyBackend::PlanDeltas(
    const RemedySource& source, const RemedyParams& params) const {
  RETURN_IF_ERROR(ValidateSource(source));
  const PipelineMetrics& metrics = PipelineMetrics::Get();
  const int64_t start_ns = NowNanos();
  const NodeTable before = SourceLeafCounts(source);
  RemedyDeltaPlan plan;
  if (TotalInstances(before) == 0) return plan;  // nothing to remedy yet
  ASSIGN_OR_RETURN(Dataset remedied, Remedy(source, params, &plan.stats));
  plan.deltas = DiffLeafCounts(before, LeafCountsOf(remedied));
  metrics.remedy_backend_plans->Increment();
  metrics.remedy_backend_deltas_planned->Increment(
      static_cast<int64_t>(plan.deltas.size()));
  metrics.remedy_backend_plan_ns->Observe(NowNanos() - start_ns);
  return plan;
}

StatusOr<Dataset> MaterializeLeafCounts(const DataSchema& schema,
                                        const NodeTable& leaf_counts) {
  if (schema.NumProtected() == 0) {
    return InvalidArgumentError(
        "cannot materialize counts without protected attributes");
  }
  const RegionCounter counter(schema);
  const uint32_t leaf_mask =
      (uint32_t{1} << static_cast<uint32_t>(schema.NumProtected())) - 1;
  Dataset data(schema);
  std::vector<int> values(static_cast<size_t>(schema.NumAttributes()), 0);
  for (const auto& [key, counts] : leaf_counts) {
    if (counts.positives < 0 || counts.negatives < 0) {
      return InvalidArgumentError(
          "cannot materialize negative counts at leaf key " +
          std::to_string(key));
    }
    if (counts.Total() == 0) continue;
    const Pattern pattern = counter.PatternFor(key, leaf_mask);
    std::fill(values.begin(), values.end(), 0);
    for (int p = 0; p < schema.NumProtected(); ++p) {
      values[schema.protected_indices()[p]] = pattern.Value(p);
    }
    for (int64_t i = 0; i < counts.positives; ++i) data.AddRow(values, 1);
    for (int64_t i = 0; i < counts.negatives; ++i) data.AddRow(values, 0);
  }
  return data;
}

NodeTable LeafCountsOf(const Dataset& data) {
  const RegionCounter counter(data.schema());
  const uint32_t leaf_mask =
      (uint32_t{1} << static_cast<uint32_t>(data.schema().NumProtected())) -
      1;
  return counter.CountNode(data, leaf_mask);
}

std::vector<Hierarchy::LeafDelta> DiffLeafCounts(const NodeTable& before,
                                                 const NodeTable& after) {
  std::vector<Hierarchy::LeafDelta> deltas;
  auto a = before.begin();
  auto b = after.begin();
  auto emit = [&deltas](uint64_t key, int64_t delta_positives,
                        int64_t delta_negatives) {
    if (delta_positives != 0 || delta_negatives != 0) {
      deltas.push_back({key, delta_positives, delta_negatives});
    }
  };
  while (a != before.end() || b != after.end()) {
    if (b == after.end() || (a != before.end() && a->first < b->first)) {
      emit(a->first, -a->second.positives, -a->second.negatives);
      ++a;
    } else if (a == before.end() || b->first < a->first) {
      emit(b->first, b->second.positives, b->second.negatives);
      ++b;
    } else {
      emit(a->first, b->second.positives - a->second.positives,
           b->second.negatives - a->second.negatives);
      ++a;
      ++b;
    }
  }
  return deltas;
}

uint64_t LeafCountsDigest(const NodeTable& counts) {
  uint64_t digest = 0xcbf29ce484222325ull;
  for (const auto& [key, region] : counts) {
    // Digest the non-empty support only: a leaf drained to zero by deltas
    // stays in the table as an explicit {0,0} entry, but is unobservable —
    // it materializes no rows and a census never emits it — so it must
    // digest identically to its absence.
    if (region.Total() == 0) continue;
    uint8_t bytes[24];
    const uint64_t words[3] = {key,
                               static_cast<uint64_t>(region.positives),
                               static_cast<uint64_t>(region.negatives)};
    for (int w = 0; w < 3; ++w) {
      for (int i = 0; i < 8; ++i) {
        bytes[8 * w + i] = static_cast<uint8_t>(words[w] >> (8 * i));
      }
    }
    digest = Fnv1a64(bytes, sizeof(bytes), digest);
  }
  return digest;
}

}  // namespace remedy
