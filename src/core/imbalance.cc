#include "core/imbalance.h"

#include <cmath>

#include "common/check.h"

namespace remedy {

double ImbalanceScore(int64_t positives, int64_t negatives) {
  if (negatives == 0) return kAllPositiveRatio;
  return static_cast<double>(positives) / static_cast<double>(negatives);
}

double ImbalanceScore(const RegionCounts& counts) {
  return ImbalanceScore(counts.positives, counts.negatives);
}

NeighborhoodCalculator::NeighborhoodCalculator(Hierarchy& hierarchy,
                                               double distance_threshold)
    : hierarchy_(hierarchy), distance_threshold_(distance_threshold) {
  REMEDY_CHECK(distance_threshold_ > 0.0);
}

RegionCounts NeighborhoodCalculator::NaiveNeighborCounts(
    const Pattern& pattern) {
  std::vector<int> det_positions;
  for (int i = 0; i < pattern.Arity(); ++i) {
    if (pattern.IsDeterministic(i)) det_positions.push_back(i);
  }
  REMEDY_CHECK(!det_positions.empty())
      << "the level-0 region has no neighboring region";
  RegionCounts total;
  Pattern current = pattern;
  AccumulateNeighbors(pattern, current, det_positions, 0, 0.0, &total);
  return total;
}

void NeighborhoodCalculator::AccumulateNeighbors(
    const Pattern& original, Pattern& current,
    const std::vector<int>& det_positions, size_t next_position,
    double squared_distance, RegionCounts* total) {
  if (next_position == det_positions.size()) {
    if (squared_distance <= 0.0) return;  // the region itself is not in r_n
    const auto& node = hierarchy_.NodeCounts(original.DeterministicMask());
    auto it =
        node.find(hierarchy_.counter().KeyFor(current,
                                              original.DeterministicMask()));
    if (it != node.end()) {
      total->positives += it->second.positives;
      total->negatives += it->second.negatives;
    }
    return;
  }

  const DataSchema& schema = hierarchy_.schema();
  const int position = det_positions[next_position];
  const AttributeSchema& attr =
      schema.attribute(schema.protected_indices()[position]);
  const int original_value = original.Value(position);
  const double budget =
      distance_threshold_ * distance_threshold_ + 1e-9;
  for (int value = 0; value < attr.Cardinality(); ++value) {
    double d = attr.Distance(original_value, value);
    double next_squared = squared_distance + d * d;
    if (next_squared > budget) continue;
    current.SetValue(position, value);
    AccumulateNeighbors(original, current, det_positions, next_position + 1,
                        next_squared, total);
  }
  current.SetValue(position, original_value);
}

double NeighborhoodCalculator::SquaredDiameter(uint32_t mask) const {
  const DataSchema& schema = hierarchy_.schema();
  double squared_diameter = 0.0;
  for (int i = 0; i < schema.NumProtected(); ++i) {
    if (!(mask & (1u << i))) continue;
    const AttributeSchema& attr =
        schema.attribute(schema.protected_indices()[i]);
    double max_d = attr.ordinal() ? attr.Cardinality() - 1 : 1.0;
    squared_diameter += max_d * max_d;
  }
  return squared_diameter;
}

bool NeighborhoodCalculator::WholeNodeNeighborhood(uint32_t mask) const {
  const double squared_t = distance_threshold_ * distance_threshold_;
  return squared_t + 1e-9 >= SquaredDiameter(mask);
}

void NeighborhoodCalculator::AppendNeighborKeys(const Pattern& pattern,
                                                std::vector<uint64_t>* keys) {
  std::vector<int> det_positions;
  for (int i = 0; i < pattern.Arity(); ++i) {
    if (pattern.IsDeterministic(i)) det_positions.push_back(i);
  }
  REMEDY_CHECK(!det_positions.empty())
      << "the level-0 region has no neighboring region";
  Pattern current = pattern;
  CollectNeighborKeys(pattern, current, det_positions, 0, 0.0, keys);
}

void NeighborhoodCalculator::CollectNeighborKeys(
    const Pattern& original, Pattern& current,
    const std::vector<int>& det_positions, size_t next_position,
    double squared_distance, std::vector<uint64_t>* keys) {
  if (next_position == det_positions.size()) {
    if (squared_distance <= 0.0) return;  // the region itself is not in r_n
    keys->push_back(hierarchy_.counter().KeyFor(
        current, original.DeterministicMask()));
    return;
  }

  const DataSchema& schema = hierarchy_.schema();
  const int position = det_positions[next_position];
  const AttributeSchema& attr =
      schema.attribute(schema.protected_indices()[position]);
  const int original_value = original.Value(position);
  const double budget = distance_threshold_ * distance_threshold_ + 1e-9;
  for (int value = 0; value < attr.Cardinality(); ++value) {
    double d = attr.Distance(original_value, value);
    double next_squared = squared_distance + d * d;
    if (next_squared > budget) continue;
    current.SetValue(position, value);
    CollectNeighborKeys(original, current, det_positions, next_position + 1,
                        next_squared, keys);
  }
  current.SetValue(position, original_value);
}

bool NeighborhoodCalculator::SupportsOptimized(uint32_t mask) const {
  const DataSchema& schema = hierarchy_.schema();
  if (WholeNodeNeighborhood(mask)) return true;  // T = |X| regime
  // The dominating-region identity holds for T = 1 in the unit-distance
  // setting: the distance-1 neighbors are exactly the regions that change
  // one attribute, which is what R_d sums (minus the over-counted r).
  if (std::abs(distance_threshold_ - 1.0) > 1e-9) return false;
  for (int i = 0; i < schema.NumProtected(); ++i) {
    if ((mask & (1u << i)) &&
        schema.attribute(schema.protected_indices()[i]).ordinal()) {
      return false;
    }
  }
  return true;
}

RegionCounts NeighborhoodCalculator::OptimizedNeighborCounts(
    const Pattern& pattern, const RegionCounts& region_counts) {
  const uint32_t mask = pattern.DeterministicMask();
  REMEDY_CHECK(mask != 0);
  REMEDY_CHECK(SupportsOptimized(mask))
      << "optimized neighbor counts require T = 1 on nominal attributes or "
         "the T = |X| regime";

  const DataSchema& schema = hierarchy_.schema();
  if (WholeNodeNeighborhood(mask)) {
    // T = |X|: the neighboring region is every other region of the node,
    // whose union is the entire dataset minus r.
    const RegionCounts& total = hierarchy_.TotalCounts();
    return {total.positives - region_counts.positives,
            total.negatives - region_counts.negatives};
  }

  // T = 1: sum the dominating regions R_d (one deterministic element
  // removed) and subtract the |R_d|-fold over-count of r itself.
  RegionCounts sum;
  int64_t num_dominating = 0;
  for (int i = 0; i < schema.NumProtected(); ++i) {
    if (!(mask & (1u << i))) continue;
    const uint32_t parent_mask = mask & ~(1u << i);
    ++num_dominating;
    if (parent_mask == 0) {
      const RegionCounts& total = hierarchy_.TotalCounts();
      sum.positives += total.positives;
      sum.negatives += total.negatives;
      continue;
    }
    Pattern parent = pattern;
    parent.SetValue(i, Pattern::kWildcard);
    const auto& node = hierarchy_.NodeCounts(parent_mask);
    auto it = node.find(hierarchy_.counter().KeyFor(parent, parent_mask));
    // The parent region contains r, so it must exist whenever r does.
    REMEDY_CHECK(it != node.end()) << "dominating region missing from node";
    sum.positives += it->second.positives;
    sum.negatives += it->second.negatives;
  }
  return {sum.positives - num_dominating * region_counts.positives,
          sum.negatives - num_dominating * region_counts.negatives};
}

}  // namespace remedy
