#ifndef REMEDY_CORE_RANKER_H_
#define REMEDY_CORE_RANKER_H_

#include <vector>

#include "data/dataset.h"
#include "ml/naive_bayes.h"

namespace remedy {

// Borderline-instance ranker used by preferential sampling and data
// massaging (Sec. IV-A): a naive Bayes model scores P(y = 1 | x); instances
// whose score disagrees most with their label are "borderline" — they have a
// high probability of belonging to the other class.
class BorderlineRanker {
 public:
  // Trains the ranker on `data`.
  explicit BorderlineRanker(const Dataset& data);

  // P(y = 1 | x) of one row.
  double Score(const Dataset& data, int row) const;

  // Score of every row of `data`. The model only reads features, never
  // labels, so the result doubles as a remedy-wide score cache: label flips
  // leave it valid, and a duplicated row inherits its source's score.
  std::vector<double> ScoreAll(const Dataset& data) const;

  // Sorts `rows` (all holding instances of class `label` in `data`) so that
  // the most borderline instances come first: for positives, ascending
  // P(y=1); for negatives, descending P(y=1). Ties break on row index for
  // determinism.
  std::vector<int> RankBorderline(const Dataset& data,
                                  const std::vector<int>& rows,
                                  int label) const;

  // RankBorderline over precomputed scores (`scores[row]` = P(y = 1 | x) of
  // `row`, e.g. a ScoreAll result): identical order, no model evaluation.
  static std::vector<int> RankWithScores(const std::vector<double>& scores,
                                         const std::vector<int>& rows,
                                         int label);

 private:
  NaiveBayes model_;
};

}  // namespace remedy

#endif  // REMEDY_CORE_RANKER_H_
