#ifndef REMEDY_CORE_COUNTING_BACKEND_H_
#define REMEDY_CORE_COUNTING_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/region_counter.h"
#include "data/columnar.h"
#include "data/dataset.h"

namespace remedy {

// Runtime-selectable implementations of the one dataset scan the counting
// engine performs (the leaf-node group-by; every coarser node rolls up
// from it). One API, three engines — the AbstractGfxLayer discipline:
//
//   scalar   the original row-oriented single scan (RegionCounter::
//            CountNode) — the reference the others must match byte for
//            byte; also counts a columnar store row-at-a-time when no
//            Dataset is attached.
//   simd     columnar single-threaded scan: vectorized mixed-radix key
//            computation (AVX2 when compiled in and the CPU has it, a
//            bit-identical unrolled portable kernel otherwise) feeding
//            per-lane partial tallies.
//   sharded  columnar parallel scan: every ~256k-row shard is tallied
//            independently (with the simd kernels) on a thread pool and
//            the shard-local tables are merged in ascending shard order.
//
// All three produce the same NodeTable for the same rows: region counts
// are exact integer sums, which commute, and NodeTable stores entries in
// ascending key order — so output bytes cannot depend on the backend or
// on the thread count. The randomized cross-backend equivalence suite
// (tests/counting_backend_test.cc) pins this contract.
enum class CountingBackendKind {
  kScalar,
  kSimd,
  kSharded,
};

// Canonical lowercase name ("scalar" / "simd" / "sharded").
const char* CountingBackendName(CountingBackendKind kind);

// Parses a --backend= value; kInvalidArgument on anything unknown.
StatusOr<CountingBackendKind> ParseCountingBackend(const std::string& name);

// What a backend counts from. Exactly one pointer may be null; the scalar
// backend prefers the Dataset when both are present, the columnar backends
// require the store (Hierarchy builds one on demand).
struct CountingSource {
  const Dataset* dataset = nullptr;
  const ColumnarShardStore* store = nullptr;
};

class CountingBackend {
 public:
  virtual ~CountingBackend() = default;

  virtual CountingBackendKind kind() const = 0;
  const char* name() const { return CountingBackendName(kind()); }

  // Counts every region of node `mask` in one pass over the source rows.
  // `threads` follows the library convention (<= 0 = every usable CPU,
  // 1 = serial); only the sharded backend fans out.
  virtual NodeTable CountNode(const CountingSource& source,
                              const RegionCounter& counter, uint32_t mask,
                              int threads) const = 0;

  static std::unique_ptr<CountingBackend> Create(CountingBackendKind kind);
};

}  // namespace remedy

#endif  // REMEDY_CORE_COUNTING_BACKEND_H_
