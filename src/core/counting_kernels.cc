#include "core/counting_kernels.h"

#include "common/check.h"

namespace remedy {

LeafKeyPlan MakeLeafKeyPlan(const std::vector<int>& cardinalities,
                            uint32_t mask) {
  LeafKeyPlan plan;
  const int n = static_cast<int>(cardinalities.size());
  for (int i = 0; i < n; ++i) {
    if (mask & (1u << i)) {
      plan.positions.push_back(i);
      plan.key_space *= static_cast<uint64_t>(cardinalities[i]);
    }
  }
  // stride of position i = product of the later deterministic
  // cardinalities; sum(code_i * stride_i) equals the Horner packing of
  // RegionCounter::RowKey digit for digit.
  plan.strides.resize(plan.positions.size());
  uint64_t stride = 1;
  for (int p = static_cast<int>(plan.positions.size()) - 1; p >= 0; --p) {
    plan.strides[p] = static_cast<uint32_t>(stride);
    stride *= static_cast<uint64_t>(cardinalities[plan.positions[p]]);
  }
  return plan;
}

void ComputeShardKeysPortable(const ColumnarShardStore::ShardView& shard,
                              const LeafKeyPlan& plan, int64_t row_begin,
                              int64_t count, uint32_t* keys) {
  REMEDY_DCHECK(plan.FitsU32());
  REMEDY_DCHECK(row_begin >= 0 && row_begin + count <= shard.num_rows);
  bool first = true;
  for (size_t p = 0; p < plan.positions.size(); ++p) {
    const ColumnarShardStore::ShardView::Column& column =
        shard.columns[plan.positions[p]];
    const uint32_t stride = plan.strides[p];
    // Column-at-a-time accumulation: each pass streams one contiguous code
    // array, 4 rows per step, so the compiler can keep the adds in
    // registers and auto-vectorize where profitable.
    auto accumulate = [&](auto* codes) {
      int64_t i = 0;
      if (first) {
        for (; i + 4 <= count; i += 4) {
          keys[i] = stride * static_cast<uint32_t>(codes[i]);
          keys[i + 1] = stride * static_cast<uint32_t>(codes[i + 1]);
          keys[i + 2] = stride * static_cast<uint32_t>(codes[i + 2]);
          keys[i + 3] = stride * static_cast<uint32_t>(codes[i + 3]);
        }
        for (; i < count; ++i) {
          keys[i] = stride * static_cast<uint32_t>(codes[i]);
        }
      } else {
        for (; i + 4 <= count; i += 4) {
          keys[i] += stride * static_cast<uint32_t>(codes[i]);
          keys[i + 1] += stride * static_cast<uint32_t>(codes[i + 1]);
          keys[i + 2] += stride * static_cast<uint32_t>(codes[i + 2]);
          keys[i + 3] += stride * static_cast<uint32_t>(codes[i + 3]);
        }
        for (; i < count; ++i) {
          keys[i] += stride * static_cast<uint32_t>(codes[i]);
        }
      }
    };
    if (column.wide != nullptr) {
      accumulate(column.wide + row_begin);
    } else {
      accumulate(column.narrow + row_begin);
    }
    first = false;
  }
  if (first) {
    // Empty mask plan (level 0): every row keys to 0.
    for (int64_t i = 0; i < count; ++i) keys[i] = 0;
  }
}

void ComputeShardKeys(const ColumnarShardStore::ShardView& shard,
                      const LeafKeyPlan& plan, int64_t row_begin,
                      int64_t count, uint32_t* keys) {
  if (Avx2CountingAvailable()) {
    ComputeShardKeysAvx2(shard, plan, row_begin, count, keys);
  } else {
    ComputeShardKeysPortable(shard, plan, row_begin, count, keys);
  }
}

void TallyKeysSingle(const uint32_t* keys, const uint8_t* labels,
                     int64_t count, int64_t* tally) {
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    ++tally[2 * static_cast<int64_t>(keys[i]) + labels[i]];
    ++tally[2 * static_cast<int64_t>(keys[i + 1]) + labels[i + 1]];
    ++tally[2 * static_cast<int64_t>(keys[i + 2]) + labels[i + 2]];
    ++tally[2 * static_cast<int64_t>(keys[i + 3]) + labels[i + 3]];
  }
  for (; i < count; ++i) {
    ++tally[2 * static_cast<int64_t>(keys[i]) + labels[i]];
  }
}

void TallyKeysLanes(const uint32_t* keys, const uint8_t* labels,
                    int64_t count, uint64_t key_space, int64_t* lanes) {
  const int64_t lane_stride = 2 * static_cast<int64_t>(key_space);
  int64_t* lane0 = lanes;
  int64_t* lane1 = lanes + lane_stride;
  int64_t* lane2 = lanes + 2 * lane_stride;
  int64_t* lane3 = lanes + 3 * lane_stride;
  static_assert(kTallyLanes == 4, "lane unroll below assumes 4 lanes");
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    ++lane0[2 * static_cast<int64_t>(keys[i]) + labels[i]];
    ++lane1[2 * static_cast<int64_t>(keys[i + 1]) + labels[i + 1]];
    ++lane2[2 * static_cast<int64_t>(keys[i + 2]) + labels[i + 2]];
    ++lane3[2 * static_cast<int64_t>(keys[i + 3]) + labels[i + 3]];
  }
  for (; i < count; ++i) {
    ++lane0[2 * static_cast<int64_t>(keys[i]) + labels[i]];
  }
}

void MergeTallyLanes(const int64_t* lanes, uint64_t key_space,
                     int64_t* tally) {
  const int64_t lane_stride = 2 * static_cast<int64_t>(key_space);
  for (int lane = 0; lane < kTallyLanes; ++lane) {
    const int64_t* src = lanes + lane * lane_stride;
    for (int64_t j = 0; j < lane_stride; ++j) tally[j] += src[j];
  }
}

}  // namespace remedy
