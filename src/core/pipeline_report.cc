#include "core/pipeline_report.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/table_printer.h"
#include "common/trace.h"
#include "core/hierarchy.h"
#include "core/ibs_identify.h"
#include "core/imbalance.h"

namespace remedy {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream out;
  out << std::setprecision(6) << value;
  return out.str();
}

// Display form of an imbalance score; the all-positive sentinel reads as
// "inf" rather than its internal -1 encoding.
std::string ScoreString(double score) {
  if (score == kAllPositiveRatio) return "inf";
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << score;
  return out.str();
}

// Distance of a score from its target, treating the all-positive sentinel
// as larger than any finite score.
double ScoreGap(double score, double target) {
  const bool score_inf = score == kAllPositiveRatio;
  const bool target_inf = target == kAllPositiveRatio;
  if (score_inf && target_inf) return 0.0;
  if (score_inf || target_inf) return std::numeric_limits<double>::infinity();
  return std::abs(score - target);
}

}  // namespace

std::string PipelineReport::ToJson() const {
  std::ostringstream out;
  out << "{\"technique\": \"" << JsonEscape(technique) << "\", \"engine\": \""
      << JsonEscape(engine) << "\", \"seed\": " << seed
      << ", \"rows_before\": " << rows_before
      << ", \"rows_after\": " << rows_after
      << ", \"regions_identified\": " << regions.size()
      << ", \"regions_processed\": " << stats.regions_processed
      << ", \"regions_skipped\": " << stats.regions_skipped
      << ", \"regions_improved\": " << regions_improved
      << ", \"residual_ibs_size\": " << residual_ibs_size
      << ", \"instances_added\": " << stats.instances_added
      << ", \"instances_removed\": " << stats.instances_removed
      << ", \"labels_flipped\": " << stats.labels_flipped
      << ", \"add_budget_exhausted\": "
      << (stats.add_budget_exhausted ? "true" : "false") << ", \"regions\": [";
  for (size_t i = 0; i < regions.size(); ++i) {
    const RegionReportEntry& r = regions[i];
    if (i > 0) out << ", ";
    out << "{\"region\": \"" << JsonEscape(r.region)
        << "\", \"node_mask\": " << r.node_mask
        << ", \"positives_before\": " << r.positives_before
        << ", \"negatives_before\": " << r.negatives_before
        << ", \"score_before\": " << JsonDouble(r.score_before)
        << ", \"neighbor_score\": " << JsonDouble(r.neighbor_score)
        << ", \"planned_delta_positives\": " << r.planned_delta_positives
        << ", \"planned_delta_negatives\": " << r.planned_delta_negatives
        << ", \"planned_flips\": " << r.planned_flips
        << ", \"reachable\": " << (r.reachable ? "true" : "false")
        << ", \"positives_after\": " << r.positives_after
        << ", \"negatives_after\": " << r.negatives_after
        << ", \"score_after\": " << JsonDouble(r.score_after)
        << ", \"improved\": " << (r.improved ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

void PrintPipelineReport(const PipelineReport& report, std::ostream& out) {
  out << "Remedy pipeline report\n"
      << "  technique: " << report.technique << " (" << report.engine
      << " engine, seed " << report.seed << ")\n"
      << "  rows: " << report.rows_before << " -> " << report.rows_after
      << " (+" << report.stats.instances_added << " / -"
      << report.stats.instances_removed << ", "
      << report.stats.labels_flipped << " labels flipped)\n"
      << "  regions: " << report.regions.size() << " identified, "
      << report.stats.regions_processed << " remedied, "
      << report.stats.regions_skipped << " skipped, " << report.regions_improved
      << " improved\n"
      << "  residual IBS after remedy: " << report.residual_ibs_size << "\n";
  if (report.stats.add_budget_exhausted) {
    out << "  NOTE: the oversampling row budget was exhausted; some regions "
           "received a truncated remedy\n";
  }
  if (report.regions.empty()) return;
  TablePrinter table({"region", "before (+/-)", "score", "target", "after (+/-)",
                      "score'", "improved"});
  for (const RegionReportEntry& r : report.regions) {
    table.AddRow({r.region,
                  std::to_string(r.positives_before) + "/" +
                      std::to_string(r.negatives_before),
                  ScoreString(r.score_before), ScoreString(r.neighbor_score),
                  std::to_string(r.positives_after) + "/" +
                      std::to_string(r.negatives_after),
                  ScoreString(r.score_after),
                  r.reachable ? (r.improved ? "yes" : "no") : "unreachable"});
  }
  table.Print(out);
}

StatusOr<PipelineReport> RunAuditedRemedy(const Dataset& train,
                                          const RemedyParams& params,
                                          Dataset* remedied_out) {
  REMEDY_TRACE_SPAN("report/audited_remedy");
  PipelineReport report;
  report.technique = TechniqueName(params.technique);
  report.engine = params.engine == RemedyEngine::kIncremental ? "incremental"
                                                              : "rebuild";
  report.seed = params.seed;
  report.rows_before = train.NumRows();

  // The identification the remedy's first pass will act on, with the
  // per-region plan it implies.
  ASSIGN_OR_RETURN(std::vector<PlannedAction> plan, PlanRemedy(train, params));

  ASSIGN_OR_RETURN(Dataset remedied,
                   RemedyDataset(train, params, &report.stats));
  report.rows_after = remedied.NumRows();

  // Exact recount of every identified region against the remedied data.
  // (The remedy re-identifies per node as it sweeps, so committed changes
  // can differ from the plan; the recount reports what actually happened.)
  Hierarchy after(remedied);
  report.regions.reserve(plan.size());
  for (const PlannedAction& action : plan) {
    const Pattern& pattern = action.region.pattern;
    const uint32_t mask = pattern.DeterministicMask();
    RegionReportEntry entry;
    entry.region = pattern.ToString(train.schema());
    entry.node_mask = mask;
    entry.positives_before = action.region.counts.positives;
    entry.negatives_before = action.region.counts.negatives;
    entry.score_before = action.region.ratio;
    entry.neighbor_score = action.region.neighbor_ratio;
    entry.planned_delta_positives = action.update.delta_positives;
    entry.planned_delta_negatives = action.update.delta_negatives;
    entry.planned_flips = action.update.flips;
    entry.reachable = action.update.reachable;

    const uint64_t key = after.counter().KeyFor(pattern, mask);
    const NodeTable& node = after.NodeCounts(mask);
    auto it = node.find(key);
    if (it != node.end()) {
      entry.positives_after = it->second.positives;
      entry.negatives_after = it->second.negatives;
    }
    entry.score_after =
        ImbalanceScore(entry.positives_after, entry.negatives_after);
    entry.improved = ScoreGap(entry.score_after, entry.neighbor_score) <
                     ScoreGap(entry.score_before, entry.neighbor_score);
    if (entry.improved) ++report.regions_improved;
    report.regions.push_back(std::move(entry));
  }

  ASSIGN_OR_RETURN(std::vector<BiasedRegion> residual,
                   IdentifyIbs(remedied, params.ibs));
  report.residual_ibs_size = static_cast<int64_t>(residual.size());

  if (remedied_out != nullptr) *remedied_out = std::move(remedied);
  return report;
}

}  // namespace remedy
