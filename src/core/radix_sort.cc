#include "core/radix_sort.h"

#include <array>
#include <utility>

#include "common/pipeline_metrics.h"

namespace remedy {

void RadixSortByKey(std::vector<NodeTable::Entry>& entries) {
  if (entries.size() < 2) return;
  uint64_t max_key = 0;
  for (const NodeTable::Entry& entry : entries) {
    if (entry.first > max_key) max_key = entry.first;
  }

  std::vector<NodeTable::Entry> scratch(entries.size());
  std::vector<NodeTable::Entry>* src = &entries;
  std::vector<NodeTable::Entry>* dst = &scratch;
  int64_t passes = 0;
  for (int shift = 0; shift < 64 && (max_key >> shift) != 0; shift += 8) {
    // One counting pass per significant byte: histogram, exclusive prefix
    // sum, stable scatter.
    std::array<size_t, 256> counts{};
    for (const NodeTable::Entry& entry : *src) {
      ++counts[(entry.first >> shift) & 0xff];
    }
    size_t offset = 0;
    for (size_t bucket = 0; bucket < 256; ++bucket) {
      const size_t count = counts[bucket];
      counts[bucket] = offset;
      offset += count;
    }
    for (NodeTable::Entry& entry : *src) {
      (*dst)[counts[(entry.first >> shift) & 0xff]++] = std::move(entry);
    }
    std::swap(src, dst);
    ++passes;
  }
  if (src != &entries) entries = std::move(scratch);

  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.lattice_radix_sort_keys->Increment(
      static_cast<int64_t>(entries.size()));
  metrics.lattice_radix_sort_passes->Increment(passes);
}

}  // namespace remedy
