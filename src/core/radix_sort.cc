#include "core/radix_sort.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <utility>

#include "common/check.h"
#include "common/pipeline_metrics.h"
#include "common/thread_pool.h"

namespace remedy {
namespace {

// Serial LSD passes over the key bytes below `shift_limit`: counting
// passes ping-pong `count` entries between `home` (the input) and
// `scratch`, and the sorted result is moved back into `home` when the
// pass parity ends on the scratch side. Returns the passes run.
int64_t LsdSortRange(NodeTable::Entry* home, NodeTable::Entry* scratch,
                     size_t count, uint64_t max_key, int shift_limit) {
  NodeTable::Entry* src = home;
  NodeTable::Entry* dst = scratch;
  int64_t passes = 0;
  for (int shift = 0; shift < shift_limit && (max_key >> shift) != 0;
       shift += 8) {
    std::array<size_t, 256> counts{};
    for (size_t i = 0; i < count; ++i) {
      ++counts[(src[i].first >> shift) & 0xff];
    }
    size_t offset = 0;
    for (size_t bucket = 0; bucket < 256; ++bucket) {
      const size_t bucket_count = counts[bucket];
      counts[bucket] = offset;
      offset += bucket_count;
    }
    for (size_t i = 0; i < count; ++i) {
      dst[counts[(src[i].first >> shift) & 0xff]++] = std::move(src[i]);
    }
    std::swap(src, dst);
    ++passes;
  }
  if (src != home) {
    std::move(src, src + count, home);
  }
  return passes;
}

}  // namespace

void RadixSortByKey(std::vector<NodeTable::Entry>& entries) {
  if (entries.size() < 2) return;
  uint64_t max_key = 0;
  for (const NodeTable::Entry& entry : entries) {
    if (entry.first > max_key) max_key = entry.first;
  }

  std::vector<NodeTable::Entry> scratch(entries.size());
  const int64_t passes =
      LsdSortRange(entries.data(), scratch.data(), entries.size(), max_key,
                   /*shift_limit=*/64);

  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.lattice_radix_sort_keys->Increment(
      static_cast<int64_t>(entries.size()));
  metrics.lattice_radix_sort_passes->Increment(passes);
}

void RadixSortByKey(std::vector<NodeTable::Entry>& entries, int threads) {
  const size_t n = entries.size();
  const int workers = ResolveThreadCount(threads);
  // Below a few thousand entries the partition + pool dispatch overhead
  // beats any pass it could split; one byte of key means the serial sort
  // is a single pass anyway.
  if (workers <= 1 || n < 4096) {
    RadixSortByKey(entries);
    return;
  }
  uint64_t max_key = 0;
  for (const NodeTable::Entry& entry : entries) {
    if (entry.first > max_key) max_key = entry.first;
  }
  int top_shift = 0;
  while (top_shift + 8 < 64 && (max_key >> (top_shift + 8)) != 0) {
    top_shift += 8;
  }
  if (top_shift == 0) {
    RadixSortByKey(entries);
    return;
  }

  // Phase 1 — stable MSB partition into 256 disjoint bucket ranges.
  // Fixed chunking by worker count; stability comes from the scatter
  // visiting chunks in input order within each bucket, and the output is
  // the stable top-byte sort regardless of how many chunks exist.
  const int num_chunks = workers;
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  auto chunk_range = [&](int chunk) {
    const size_t begin = std::min(n, static_cast<size_t>(chunk) * chunk_size);
    const size_t end = std::min(n, begin + chunk_size);
    return std::pair<size_t, size_t>(begin, end);
  };
  std::vector<std::array<size_t, 256>> histograms(num_chunks);
  ThreadPool pool(workers);
  Status partitioned = pool.ParallelFor(num_chunks, [&](int64_t chunk) {
    std::array<size_t, 256>& histogram = histograms[chunk];
    histogram.fill(0);
    const auto [begin, end] = chunk_range(static_cast<int>(chunk));
    for (size_t i = begin; i < end; ++i) {
      ++histogram[(entries[i].first >> top_shift) & 0xff];
    }
  });
  REMEDY_CHECK(partitioned.ok())
      << "parallel radix histogram failed: " << partitioned.ToString();

  // Exclusive prefix sum, bucket-major then chunk-minor: histograms[c][b]
  // becomes chunk c's first destination slot within bucket b.
  std::array<size_t, 256> bucket_begin{};
  size_t offset = 0;
  for (size_t bucket = 0; bucket < 256; ++bucket) {
    bucket_begin[bucket] = offset;
    for (int chunk = 0; chunk < num_chunks; ++chunk) {
      const size_t count = histograms[chunk][bucket];
      histograms[chunk][bucket] = offset;
      offset += count;
    }
  }

  std::vector<NodeTable::Entry> scratch(n);
  Status scattered = pool.ParallelFor(num_chunks, [&](int64_t chunk) {
    std::array<size_t, 256>& cursor = histograms[chunk];
    const auto [begin, end] = chunk_range(static_cast<int>(chunk));
    for (size_t i = begin; i < end; ++i) {
      scratch[cursor[(entries[i].first >> top_shift) & 0xff]++] =
          std::move(entries[i]);
    }
  });
  REMEDY_CHECK(scattered.ok())
      << "parallel radix scatter failed: " << scattered.ToString();

  // Phase 2 — each non-empty bucket LSD-sorts its low bytes independently;
  // scratch holds the partitioned input, the bucket's slice of `entries`
  // is its ping-pong buffer and final home, so concatenation in bucket
  // order happens by construction.
  struct BucketRange {
    size_t begin;
    size_t count;
  };
  std::vector<BucketRange> buckets;
  for (size_t bucket = 0; bucket < 256; ++bucket) {
    const size_t begin = bucket_begin[bucket];
    const size_t end = bucket + 1 < 256 ? bucket_begin[bucket + 1] : n;
    if (end > begin) buckets.push_back({begin, end - begin});
  }
  const uint64_t low_mask = (uint64_t{1} << top_shift) - 1;
  std::atomic<int64_t> low_passes{0};
  Status sorted = pool.ParallelFor(
      static_cast<int64_t>(buckets.size()), [&](int64_t b) {
        const BucketRange range = buckets[b];
        uint64_t bucket_max = 0;
        for (size_t i = range.begin; i < range.begin + range.count; ++i) {
          bucket_max = std::max(bucket_max, scratch[i].first & low_mask);
        }
        // Entries within a bucket share every byte from top_shift up, so
        // sorting the low bytes sorts the bucket; the pass count depends
        // only on the data, never the thread count.
        std::move(scratch.begin() + range.begin,
                  scratch.begin() + range.begin + range.count,
                  entries.begin() + range.begin);
        const int64_t passes = LsdSortRange(
            entries.data() + range.begin, scratch.data() + range.begin,
            range.count, bucket_max, top_shift);
        low_passes.fetch_add(passes, std::memory_order_relaxed);
      });
  REMEDY_CHECK(sorted.ok())
      << "parallel radix bucket sort failed: " << sorted.ToString();

  const PipelineMetrics& metrics = PipelineMetrics::Get();
  metrics.lattice_radix_sort_keys->Increment(static_cast<int64_t>(n));
  metrics.lattice_radix_sort_passes->Increment(
      1 + low_passes.load(std::memory_order_relaxed));
}

}  // namespace remedy
