#ifndef REMEDY_CORE_IBS_INCREMENTAL_H_
#define REMEDY_CORE_IBS_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hierarchy.h"
#include "core/ibs_identify.h"

namespace remedy {

// Per-pass accounting of one IncrementalIbsState::Identify call.
struct IncrementalIdentifyStats {
  bool incremental = false;      // false: the pass fell back to a full sweep
  int64_t dirty_leaves = 0;      // leaf region keys the epoch's deltas touched
  int64_t dirty_regions = 0;     // touched keys summed over every node
  int64_t rescored_regions = 0;  // regions re-scored this pass
  int64_t expanded_regions = 0;  // neighborhood-frontier keys added to dirty
  int64_t cached_regions = 0;    // biased verdicts reused from the cache
  int64_t full_node_rescores = 0;  // whole nodes re-swept (T >= diameter)
};

// Dirty-region incremental IBS maintenance: caches the previous identify
// pass's per-node biased verdicts and, on the next pass, re-scores only the
// regions the interim ApplyDeltas batches touched (Hierarchy::dirty_set())
// plus their comparison neighborhoods, merging with the cached verdicts
// elsewhere. The output is bit-identical to a from-scratch sweep of
// IdentifyIbsInNode over ScopeMasks — same regions, same floats, same
// order — because:
//
//  * every re-scored region runs the exact ScoreRegion the full sweep runs,
//    on the same NodeTable counts;
//  * a region is re-scored iff its verdict's inputs could have changed: its
//    own counts changed (it is dirty), or a region within distance T of it
//    changed (the dirty frontier expanded one neighborhood hop — the metric
//    is symmetric, so "neighbors of dirty" is exactly "regions whose
//    neighborhood contains a dirty region"); in the T >= node-diameter
//    regime, where r_n = totals - r, the whole node is re-swept when the
//    totals drifted and only the dirty regions when they did not;
//  * the merged per-node output walks cached and re-scored entries in
//    ascending key order — the NodeTable iteration order of the full sweep.
//
// Falls back to a full sweep (recording why) on: a cold cache, an
// Invalidate() call (the daemon does this on recovery), a rebuilt or
// swapped hierarchy, a params change, or dirty tracking having been off
// while deltas applied (Hierarchy::mutation_generation() moves).
//
// Not thread-safe; the daemon drives it from its single apply thread.
class IncrementalIbsState {
 public:
  // The identify pass: incremental when the cache is valid, else a full
  // sweep that (re)fills it. Consumes and clears the hierarchy's dirty set
  // and enables dirty tracking for the next inter-pass window.
  std::vector<BiasedRegion> Identify(Hierarchy& hierarchy,
                                     const IbsParams& params);

  // Forces the next Identify to run a full sweep, recording `reason` as
  // the fallback reason (e.g. "recovery").
  void Invalidate(const std::string& reason);

  // Accounting of the most recent Identify call.
  const IncrementalIdentifyStats& last_stats() const { return stats_; }

  // Why the most recent full sweep ran ("" until one has). Sticky: later
  // incremental passes do not clear it, so a health report can always say
  // what last forced a fallback.
  const std::string& last_fallback_reason() const {
    return last_fallback_reason_;
  }

  bool has_cache() const { return have_cache_; }

 private:
  struct NodeCache {
    // Biased verdicts of one node, ascending by region key.
    std::vector<std::pair<uint64_t, BiasedRegion>> biased;
  };

  // Non-empty reason iff the cache cannot serve `hierarchy` + `params`.
  std::string FullPassReason(const Hierarchy& hierarchy,
                             const IbsParams& params) const;

  std::vector<BiasedRegion> FullPass(Hierarchy& hierarchy,
                                     const IbsParams& params,
                                     const std::string& reason);

  std::unordered_map<uint32_t, NodeCache> cache_;
  bool have_cache_ = false;
  std::string pending_reason_ = "cold_cache";  // non-empty: full pass forced
  const Hierarchy* cached_hierarchy_ = nullptr;
  uint64_t cached_generation_ = 0;
  IbsParams cached_params_;
  IncrementalIdentifyStats stats_;
  std::string last_fallback_reason_;
};

// Order-sensitive FNV-1a digest over an identified subgroup set: pattern
// values, counts, neighbor counts, and the raw ratio bits of every region.
// Two IBS vectors digest equal iff they are byte-identical region for
// region — the parity check of the incremental identify tests and the
// serve_steady bench.
uint64_t IbsSetDigest(const std::vector<BiasedRegion>& ibs);

}  // namespace remedy

#endif  // REMEDY_CORE_IBS_INCREMENTAL_H_
