#ifndef REMEDY_CORE_COUNTING_KERNELS_H_
#define REMEDY_CORE_COUNTING_KERNELS_H_

#include <cstdint>
#include <vector>

#include "data/columnar.h"

namespace remedy {

// Vectorizable primitives of the columnar counting backends: the
// mixed-radix leaf-key computation over a shard's code arrays, and the
// per-lane label tally. Everything here is exact integer arithmetic, so
// the AVX2 and portable paths produce bit-identical results; which one
// runs is a pure CPU-capability question (see Avx2CountingAvailable).

// Mixed-radix packing plan of one node mask over a store's protected
// attributes: key = sum over deterministic positions of code * stride,
// which equals RegionCounter::RowKey's Horner form exactly.
struct LeafKeyPlan {
  std::vector<int> positions;      // deterministic positions, ascending
  std::vector<uint32_t> strides;   // stride per entry of `positions`
  uint64_t key_space = 1;

  // The SIMD key path packs into u32 lanes; keys must fit.
  bool FitsU32() const { return key_space <= (uint64_t{1} << 32); }
};

// Builds the plan for `mask` from the store's protected cardinalities.
LeafKeyPlan MakeLeafKeyPlan(const std::vector<int>& cardinalities,
                            uint32_t mask);

// True when the AVX2 kernel TU was compiled with AVX2 support and this CPU
// executes AVX2. The result never changes within a process.
bool Avx2CountingAvailable();

// Writes keys[i] = packed key of shard row (row_begin + i) for i in
// [0, count). Requires plan.FitsU32() and row_begin + count <= shard rows.
// Kernels read shards through ColumnarShardStore::ShardView, so in-memory
// and mmap-backed stores run the exact same code.
void ComputeShardKeysPortable(const ColumnarShardStore::ShardView& shard,
                              const LeafKeyPlan& plan, int64_t row_begin,
                              int64_t count, uint32_t* keys);
// AVX2 twin (8 rows per iteration, scalar tail). Only callable when
// Avx2CountingAvailable(); output is bit-identical to the portable kernel.
void ComputeShardKeysAvx2(const ColumnarShardStore::ShardView& shard,
                          const LeafKeyPlan& plan, int64_t row_begin,
                          int64_t count, uint32_t* keys);
// Dispatches to the AVX2 kernel when available, else the portable one.
void ComputeShardKeys(const ColumnarShardStore::ShardView& shard,
                      const LeafKeyPlan& plan, int64_t row_begin,
                      int64_t count, uint32_t* keys);

// Number of interleaved partial tally tables the lane tally splits small
// key spaces across (merged lane-by-lane afterwards), breaking the
// store-to-load dependence of consecutive increments to the same region.
inline constexpr int kTallyLanes = 4;
// Key spaces at or below this use the per-lane layout; larger dense tables
// would blow the cache kTallyLanes times over instead.
inline constexpr uint64_t kLaneTallyKeyLimit = uint64_t{1} << 14;
inline bool UseLaneTally(uint64_t key_space) {
  return key_space <= kLaneTallyKeyLimit;
}

// tally[2 * key + label] += 1 for each of the `count` (key, label) pairs.
// `tally` holds 2 * key_space entries (positives at 2k + 1, negatives at
// 2k, matching label codes).
void TallyKeysSingle(const uint32_t* keys, const uint8_t* labels,
                     int64_t count, int64_t* tally);
// Per-lane variant: pair i lands in table (i mod kTallyLanes) of `lanes`
// (kTallyLanes * 2 * key_space entries, caller-zeroed, reusable across
// blocks of one scan). MergeTallyLanes folds the lanes into `tally` in
// ascending lane order.
void TallyKeysLanes(const uint32_t* keys, const uint8_t* labels,
                    int64_t count, uint64_t key_space, int64_t* lanes);
void MergeTallyLanes(const int64_t* lanes, uint64_t key_space,
                     int64_t* tally);

}  // namespace remedy

#endif  // REMEDY_CORE_COUNTING_KERNELS_H_
