#ifndef REMEDY_CORE_IBS_IDENTIFY_H_
#define REMEDY_CORE_IBS_IDENTIFY_H_

#include <vector>

#include "common/status.h"
#include "core/counting_backend.h"
#include "core/hierarchy.h"
#include "core/imbalance.h"
#include "core/pattern.h"
#include "data/columnar.h"
#include "data/dataset.h"

namespace remedy {

// Which slice of the hierarchy the identification traverses (Sec. V-A/b).
enum class IbsScope {
  kLattice,  // every level from the leaves up to level 1 (the paper's method)
  kLeaf,     // only fully-deterministic intersectional regions
  kTop,      // only level 1 (single protected attributes)
};

// Which neighbor-count computation to use (Sec. III-A vs III-B).
enum class IbsAlgorithm {
  kNaive,
  kOptimized,
};

// Parameters of Problem 1 (Implicit Biased Set identification).
struct IbsParams {
  double imbalance_threshold = 0.1;  // tau_c
  double distance_threshold = 1.0;   // T
  int min_region_size = 30;          // k, the CLT rule of thumb
  IbsScope scope = IbsScope::kLattice;
  IbsAlgorithm algorithm = IbsAlgorithm::kOptimized;
  // Engine behind the leaf-node scan (--backend=scalar|simd|sharded);
  // output is byte-identical across all three and any thread count.
  CountingBackendKind backend = CountingBackendKind::kScalar;
  int backend_threads = 0;  // sharded counting workers; <= 0 = all CPUs
};

// One region of the Implicit Biased Set, with the evidence that put it there.
struct BiasedRegion {
  Pattern pattern;
  RegionCounts counts;           // |r+|, |r-|
  RegionCounts neighbor_counts;  // |r_n+|, |r_n-|
  double ratio = 0.0;            // ratio_r
  double neighbor_ratio = 0.0;   // ratio_rn
};

// Identifies the IBS of `data` (Algorithm 1): every region with more than
// `min_region_size` instances whose imbalance score differs from its
// neighboring region's by more than `imbalance_threshold`. Regions are
// returned in the bottom-up traversal order, deterministically.
// Fails with kInvalidArgument when `data` has no protected attributes.
StatusOr<std::vector<BiasedRegion>> IdentifyIbs(const Dataset& data,
                                                const IbsParams& params);

// Same identification over a columnar shard store — the out-of-core entry
// point: a 10M+-row input streams into a store chunk by chunk (see
// GenerateSyntheticStore) and is identified without a Dataset copy ever
// existing. Output is byte-identical to the Dataset form on equal rows.
StatusOr<std::vector<BiasedRegion>> IdentifyIbs(
    const ColumnarShardStore& store, const IbsParams& params);

// Same, but reusing a caller-owned hierarchy (so the remedy loop can share
// memoized node counts across nodes of one pass).
std::vector<BiasedRegion> IdentifyIbsInNode(Hierarchy& hierarchy,
                                            uint32_t mask,
                                            const IbsParams& params);

// Outcome of scoring one region: too small to judge, judged clean, or
// judged biased (out filled).
enum class RegionVerdict { kSkipped, kUnbiased, kBiased };

// Scores the region at `key` of node `mask` exactly as the full
// IdentifyIbsInNode sweep does — the one scoring implementation both the
// full and the incremental identify paths run, which is what makes their
// outputs bit-identical by construction (same inputs, same float ops).
// `use_optimized` must be `params.algorithm == kOptimized &&
// neighborhood.SupportsOptimized(mask)`, i.e. the caller resolves the
// strategy once per node.
RegionVerdict ScoreRegion(Hierarchy& hierarchy,
                          NeighborhoodCalculator& neighborhood,
                          bool use_optimized, uint32_t mask, uint64_t key,
                          const RegionCounts& counts, const IbsParams& params,
                          BiasedRegion* out);

// Node masks visited under `scope`, in traversal order.
std::vector<uint32_t> ScopeMasks(const Hierarchy& hierarchy, IbsScope scope);

// True if `pattern`'s region is in (or equal to) one of the biased regions'
// patterns — convenience for the Fig. 3 validation experiment, which also
// marks subgroups that *dominate* biased regions.
bool DominatesAnyBiasedRegion(const Pattern& pattern,
                              const std::vector<BiasedRegion>& ibs);

}  // namespace remedy

#endif  // REMEDY_CORE_IBS_IDENTIFY_H_
