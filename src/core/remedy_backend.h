#ifndef REMEDY_CORE_REMEDY_BACKEND_H_
#define REMEDY_CORE_REMEDY_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/hierarchy.h"
#include "core/region_counter.h"
#include "core/remedy.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace remedy {

// Runtime-selectable implementations of the remedy write path — the
// CountingBackend seam applied to Algorithm 2 (see docs/REMEDY.md). One
// API, three backends:
//
//   rebuild      the full-replan reference engine: invalidate the lattice
//                and copy the dataset after every node that changed. The
//                oracle the others are equivalence-tested against.
//   incremental  the delta-maintained engine (PR 2): one EagerBuild, leaf
//                deltas per node visit, tombstoned removals compacted at
//                the end. Byte-identical output to rebuild, proven by the
//                randomized suite in tests/remedy_test.cc.
//   streaming    the daemon's online form: plans against a pinned epoch's
//                leaf counts (no rows required) and emits the plan as
//                signed leaf-count deltas, which ServeDaemon::SubmitRemedy
//                commits through the WAL-backed group-commit path.
//
// The streaming backend is count-faithful, not row-faithful: the daemon
// holds leaf counts, not rows, so it plans on the canonical materialization
// of those counts (MaterializeLeafCounts below). Its post-commit counts are
// byte-identical — same FNV-1a digest — to running the batch rebuild engine
// on that same materialized dataset, for any thread count; the randomized
// parity suite in tests/remedy_backend_test.cc pins this contract.
enum class RemedyBackendKind {
  kRebuild,
  kIncremental,
  kStreaming,
};

// Canonical lowercase name ("rebuild" / "incremental" / "streaming").
const char* RemedyBackendName(RemedyBackendKind kind);

// Parses a --remedy-backend= value; kInvalidArgument on anything unknown,
// with the valid names listed in the message.
StatusOr<RemedyBackendKind> ParseRemedyBackend(const std::string& name);

// What a backend remedies. Exactly one of `dataset` / `leaf_counts` may be
// set; `leaf_counts` (the count form the daemon uses) requires `schema`.
// With a dataset, `schema` is ignored in favor of dataset->schema().
struct RemedySource {
  const Dataset* dataset = nullptr;
  const DataSchema* schema = nullptr;
  const NodeTable* leaf_counts = nullptr;
};

// A remedy expressed as net signed leaf-count deltas: applying `deltas` to
// the source's leaf counts yields exactly the leaf counts of the remedied
// dataset. Sorted ascending by key; zero-net entries omitted.
struct RemedyDeltaPlan {
  std::vector<Hierarchy::LeafDelta> deltas;
  RemedyStats stats;
};

class RemedyBackend {
 public:
  virtual ~RemedyBackend() = default;

  virtual RemedyBackendKind kind() const = 0;
  const char* name() const { return RemedyBackendName(kind()); }

  // Row form: the remedied dataset. The batch backends are row-faithful
  // when given a dataset; the streaming backend always returns the
  // canonical materialization of the remedied counts. Fails like
  // RemedyDataset (kInvalidArgument on an empty source, etc.).
  virtual StatusOr<Dataset> Remedy(const RemedySource& source,
                                   const RemedyParams& params,
                                   RemedyStats* stats = nullptr) const = 0;

  // Delta form (shared across backends): runs Remedy and diffs the leaf
  // counts. An empty source yields an empty plan (a no-op, not an error) —
  // the daemon may ask for a remedy before any data arrived.
  StatusOr<RemedyDeltaPlan> PlanDeltas(const RemedySource& source,
                                       const RemedyParams& params) const;

  static std::unique_ptr<RemedyBackend> Create(RemedyBackendKind kind);
};

// The canonical count→row materialization shared by the streaming backend
// and its parity oracle: leaf keys ascending; per key, `positives` rows of
// label 1 then `negatives` rows of label 0; protected values decoded from
// the key; every non-protected attribute pinned to code 0. Deterministic in
// the counts alone — independent of how the counts were produced.
// kInvalidArgument when the schema has no protected attributes or a count
// is negative.
StatusOr<Dataset> MaterializeLeafCounts(const DataSchema& schema,
                                        const NodeTable& leaf_counts);

// The leaf census of a dataset (one CountNode scan of the finest node).
NodeTable LeafCountsOf(const Dataset& data);

// Net signed deltas such that `before` + deltas = `after`, ascending by
// key, zero-net entries omitted.
std::vector<Hierarchy::LeafDelta> DiffLeafCounts(const NodeTable& before,
                                                 const NodeTable& after);

// FNV-1a digest over (key, positives, negatives) little-endian triples —
// the byte-identity witness of the parity suite and the smoke tooling.
uint64_t LeafCountsDigest(const NodeTable& counts);

}  // namespace remedy

#endif  // REMEDY_CORE_REMEDY_BACKEND_H_
